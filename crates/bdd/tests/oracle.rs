//! Differential oracle for the BDD manager under garbage collection.
//!
//! Every operation the manager supports is mirrored against a brute-force
//! truth-table evaluator over `NVARS ≤ 16` variables. Random operation
//! sequences — interleaved with `gc()` calls and root-set churn — must
//! produce BDDs whose `eval` matches the oracle on all `2^NVARS`
//! assignments, and whose `sat_count`/`first_sat` answers are unchanged by
//! collection. This is the safety net that lets the reachable-mark GC touch
//! the unique table at all.

use campion_bdd::{Assignment, Bdd, GcPolicy, Manager};
use proptest::collection::vec;
use proptest::prelude::*;

/// Variable count for the exhaustive oracle: 2^8 = 256 assignments keeps
/// full truth-table comparison cheap enough to run after every step.
const NVARS: u32 = 8;
const TABLE: usize = 1 << NVARS;

/// Case budget: the `PROPTEST_CASES` env var (read by the vendored shim's
/// `Config::default`) always wins; otherwise run a heavier floor in release
/// builds (CI runs this suite with `PROPTEST_CASES=512`).
fn oracle_config() -> ProptestConfig {
    let floor = if cfg!(debug_assertions) { 64 } else { 256 };
    ProptestConfig::with_cases(ProptestConfig::default().cases.max(floor))
}

/// A function under test: the manager handle plus its ground-truth table,
/// `table[bits]` = value under the assignment encoded by `bits`.
struct Entry {
    bdd: Bdd,
    table: Vec<bool>,
}

fn assignment(bits: usize) -> Assignment {
    Assignment::new((0..NVARS).map(|v| bits >> v & 1 == 1).collect())
}

fn check_entry(m: &Manager, e: &Entry) -> Result<(), TestCaseError> {
    for bits in 0..TABLE {
        let got = m.eval(e.bdd, &assignment(bits));
        prop_assert_eq!(got, e.table[bits], "eval mismatch at bits={:#010b}", bits);
    }
    let want_count = e.table.iter().filter(|&&b| b).count() as u128;
    prop_assert_eq!(m.sat_count(e.bdd), want_count);
    Ok(())
}

/// Interpret one random step against both the manager and the oracle.
/// Returns false when the step was a structural action (gc/drop) rather
/// than a function-producing operation.
fn apply_step(
    m: &mut Manager,
    built: &mut Vec<Entry>,
    op: u8,
    a: u16,
    b: u16,
    c: u16,
) -> Result<(), TestCaseError> {
    let pick = |x: u16| x as usize % built.len();
    let entry = match op % 12 {
        0 => {
            let v = a as u32 % NVARS;
            Entry {
                bdd: m.var(v),
                table: (0..TABLE).map(|bits| bits >> v & 1 == 1).collect(),
            }
        }
        1 => {
            let f = pick(a);
            Entry {
                bdd: m.not(built[f].bdd),
                table: built[f].table.iter().map(|&x| !x).collect(),
            }
        }
        2..=5 => {
            let (f, g) = (pick(a), pick(b));
            let bdd = match op % 12 {
                2 => m.and(built[f].bdd, built[g].bdd),
                3 => m.or(built[f].bdd, built[g].bdd),
                4 => m.xor(built[f].bdd, built[g].bdd),
                _ => m.diff(built[f].bdd, built[g].bdd),
            };
            let table = built[f]
                .table
                .iter()
                .zip(&built[g].table)
                .map(|(&x, &y)| match op % 12 {
                    2 => x && y,
                    3 => x || y,
                    4 => x != y,
                    _ => x && !y,
                })
                .collect();
            Entry { bdd, table }
        }
        6 => {
            let (f, g, h) = (pick(a), pick(b), pick(c));
            Entry {
                bdd: m.ite(built[f].bdd, built[g].bdd, built[h].bdd),
                table: (0..TABLE)
                    .map(|i| {
                        if built[f].table[i] {
                            built[g].table[i]
                        } else {
                            built[h].table[i]
                        }
                    })
                    .collect(),
            }
        }
        7 => {
            let f = pick(a);
            let (v, val) = (b as u32 % NVARS, c & 1 == 1);
            Entry {
                bdd: m.restrict(built[f].bdd, v, val),
                table: (0..TABLE)
                    .map(|bits| {
                        let forced = if val { bits | 1 << v } else { bits & !(1 << v) };
                        built[f].table[forced]
                    })
                    .collect(),
            }
        }
        8 => {
            let f = pick(a);
            let v = b as u32 % NVARS;
            Entry {
                bdd: m.exists(built[f].bdd, &[v]),
                table: (0..TABLE)
                    .map(|bits| built[f].table[bits | 1 << v] || built[f].table[bits & !(1 << v)])
                    .collect(),
            }
        }
        9 => {
            // Drop a function from the root set: it becomes collectable and
            // must never be consulted again.
            let f = pick(a);
            let dead = built.swap_remove(f);
            m.unprotect(dead.bdd);
            return Ok(());
        }
        10 => {
            // Manual collection mid-sequence. Everything in `built` is
            // protected, so sat_count/first_sat must be unchanged by it.
            let before: Vec<_> = built
                .iter()
                .map(|e| (m.sat_count(e.bdd), m.first_sat(e.bdd)))
                .collect();
            m.gc();
            m.assert_gc_invariants();
            for (e, (count, cube)) in built.iter().zip(before) {
                prop_assert_eq!(m.sat_count(e.bdd), count, "sat_count changed across gc");
                prop_assert_eq!(m.first_sat(e.bdd), cube, "first_sat changed across gc");
            }
            return Ok(());
        }
        _ => {
            // Policy-driven safe point (exercises the automatic trigger and
            // the mark-only back-off path).
            m.gc_checkpoint();
            return Ok(());
        }
    };
    check_entry(m, &entry)?;
    m.protect(entry.bdd);
    built.push(entry);
    Ok(())
}

fn seed_entries(m: &mut Manager) -> Vec<Entry> {
    let mut built = vec![
        Entry {
            bdd: m.false_(),
            table: vec![false; TABLE],
        },
        Entry {
            bdd: m.true_(),
            table: vec![true; TABLE],
        },
    ];
    for v in 0..NVARS {
        let bdd = m.var(v);
        m.protect(bdd);
        built.push(Entry {
            bdd,
            table: (0..TABLE).map(|bits| bits >> v & 1 == 1).collect(),
        });
    }
    built
}

proptest! {
    #![proptest_config(oracle_config())]

    /// Random op sequences interleaved with gc() match the truth-table
    /// oracle on every assignment, with sat_count/first_sat stable across
    /// collections.
    #[test]
    fn ops_with_gc_match_oracle(
        steps in vec((0u8..=11, 0u16..4096, 0u16..4096, 0u16..4096), 4..28),
    ) {
        let mut m = Manager::new(NVARS);
        m.set_gc_policy(GcPolicy::Automatic { growth_factor: 2, min_nodes: 64 });
        let mut built = seed_entries(&mut m);
        for (op, a, b, c) in steps {
            // Keep at least the constants + vars so index picking stays sane.
            if op % 12 == 9 && built.len() <= 2 {
                continue;
            }
            apply_step(&mut m, &mut built, op, a, b, c)?;
        }
        // Final exhaustive re-check of every surviving function.
        m.gc();
        m.assert_gc_invariants();
        for e in &built {
            check_entry(&m, e)?;
        }
    }

    /// After every gc the unique table holds exactly the root-reachable
    /// nodes, and canonicity is preserved: two surviving functions are
    /// `equivalent` iff their oracle tables are identical iff their handles
    /// are equal.
    #[test]
    fn gc_preserves_canonicity(
        steps in vec((0u8..=9, 0u16..4096, 0u16..4096, 0u16..4096), 4..20),
    ) {
        let mut m = Manager::new(NVARS);
        let mut built = seed_entries(&mut m);
        for (op, a, b, c) in steps {
            if op % 12 == 9 && built.len() <= 2 {
                continue;
            }
            apply_step(&mut m, &mut built, op, a, b, c)?;
            m.gc();
            m.assert_gc_invariants();
        }
        for (i, e1) in built.iter().enumerate() {
            for e2 in &built[i + 1..] {
                let same_fn = e1.table == e2.table;
                prop_assert_eq!(e1.bdd == e2.bdd, same_fn, "handle equality != semantic equality");
                prop_assert_eq!(m.equivalent(e1.bdd, e2.bdd), same_fn);
            }
        }
    }
}

/// Build→drop-roots→collect over 1k random ACL-rule-shaped BDDs: the arena
/// must stay bounded instead of growing monotonically (the pre-GC failure
/// mode called out in ROADMAP.md).
#[test]
fn acl_rule_churn_keeps_node_count_bounded() {
    let mut m = Manager::new(16);
    m.set_gc_policy(GcPolicy::Automatic {
        growth_factor: 2,
        min_nodes: 1 << 10,
    });
    // Deterministic xorshift64* stream; no external RNG needed.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let mut high_water = 0usize;
    for _ in 0..1000 {
        // A random 5-conjunct rule over 16 vars, rooted while "in use".
        let bits = rng();
        let mut acc = m.true_();
        for j in 0..5u32 {
            let v = (bits >> (j * 8)) as u32 % 16;
            let lit = m.literal(v, bits >> (40 + j) & 1 == 1);
            acc = m.and(acc, lit);
        }
        m.protect(acc);
        // Simulate the rule leaving scope, then hit a safe point.
        m.unprotect(acc);
        m.gc_checkpoint();
        high_water = high_water.max(m.node_count());
    }
    m.gc();
    assert_eq!(m.node_count(), 2, "nothing is rooted; all nodes must go");
    // The automatic policy must cap the arena well below 1k-rules-worth of
    // retained garbage: floor 2^10 nodes, trigger at 2×, so the arena never
    // legitimately exceeds ~2×floor plus one rule's worth of slack.
    assert!(
        high_water <= (1 << 11) + 64,
        "node_count unbounded under churn: high water {high_water}"
    );
    let s = m.stats();
    assert!(s.gc_runs > 0, "automatic trigger never fired");
    assert!(s.gc_nodes_freed > 0);
}
