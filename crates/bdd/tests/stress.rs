//! Concurrent stress suite for the shared BDD manager.
//!
//! N worker threads hammer one shared arena with interleaved
//! `var`/`not`/`and`/`or`/`xor`/`ite` chains — every function mirrored
//! against a brute-force truth table over `NVARS` variables — while GC
//! checkpoints (and explicit `gc()` requests) force stop-the-world
//! collections at random points. Any lost CAS insert, cross-shard
//! duplicate, stale cache entry surviving a sweep, or index recycled under
//! a live root shows up as an `eval`/`sat_count` divergence from the
//! oracle or as a canonicity violation (two handles, one function).
//!
//! The determinism half re-runs one deterministic script on {1, 2, 4}
//! workers × every GC policy and checks the *functions* (truth tables) of
//! the surviving handles are identical — handles themselves may differ
//! across schedules; the semantics must not.

use std::sync::Arc;

use campion_bdd::{Assignment, Bdd, GcPolicy, SharedManager, SharedWorker};

const NVARS: u32 = 8;
const TABLE: usize = 1 << NVARS;

/// Deterministic per-thread RNG (splitmix64) so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

struct Entry {
    bdd: Bdd,
    table: Vec<bool>,
}

fn assignment(bits: usize) -> Assignment {
    Assignment::new((0..NVARS).map(|v| bits >> v & 1 == 1).collect())
}

fn check_entry(w: &SharedWorker, e: &Entry, ctx: &str) {
    for bits in 0..TABLE {
        assert_eq!(
            w.eval(e.bdd, &assignment(bits)),
            e.table[bits],
            "{ctx}: eval mismatch at bits={bits:#010b}"
        );
    }
    let want = e.table.iter().filter(|&&b| b).count() as u128;
    assert_eq!(w.sat_count(e.bdd), want, "{ctx}: sat_count mismatch");
}

/// One random step: build a function (mirrored in the oracle), or churn
/// the root set / trigger GC. Entries are protected for their lifetime,
/// so every table in `built` must stay valid across any collection.
fn step(w: &mut SharedWorker, rng: &mut Rng, built: &mut Vec<Entry>) {
    let r = rng.next();
    let op = r % 16;
    let pick = |x: u64, len: usize| (x % len as u64) as usize;
    let entry = match op {
        0 | 1 => {
            let v = (r >> 8) as u32 % NVARS;
            Entry {
                bdd: w.var(v),
                table: (0..TABLE).map(|bits| bits >> v & 1 == 1).collect(),
            }
        }
        2 => {
            let f = pick(r >> 8, built.len());
            Entry {
                bdd: w.not(built[f].bdd),
                table: built[f].table.iter().map(|&x| !x).collect(),
            }
        }
        3..=8 => {
            let (f, g) = (pick(r >> 8, built.len()), pick(r >> 24, built.len()));
            let (tf, tg) = (&built[f].table, &built[g].table);
            let (bdd, table): (Bdd, Vec<bool>) = match op {
                3 | 4 => (
                    w.and(built[f].bdd, built[g].bdd),
                    tf.iter().zip(tg).map(|(&a, &b)| a && b).collect(),
                ),
                5 | 6 => (
                    w.or(built[f].bdd, built[g].bdd),
                    tf.iter().zip(tg).map(|(&a, &b)| a || b).collect(),
                ),
                7 => (
                    w.xor(built[f].bdd, built[g].bdd),
                    tf.iter().zip(tg).map(|(&a, &b)| a ^ b).collect(),
                ),
                _ => (
                    w.diff(built[f].bdd, built[g].bdd),
                    tf.iter().zip(tg).map(|(&a, &b)| a && !b).collect(),
                ),
            };
            Entry { bdd, table }
        }
        9 | 10 => {
            let (c, t, e) = (
                pick(r >> 8, built.len()),
                pick(r >> 24, built.len()),
                pick(r >> 40, built.len()),
            );
            let table = (0..TABLE)
                .map(|bits| {
                    if built[c].table[bits] {
                        built[t].table[bits]
                    } else {
                        built[e].table[bits]
                    }
                })
                .collect();
            Entry {
                bdd: w.ite(built[c].bdd, built[t].bdd, built[e].bdd),
                table,
            }
        }
        11 => {
            // Drop a random root (keep a floor so binary ops have inputs).
            if built.len() > 4 {
                let i = pick(r >> 8, built.len());
                let e = built.swap_remove(i);
                w.unprotect(e.bdd);
            }
            w.gc_checkpoint();
            return;
        }
        12 => {
            // Request a full stop-the-world collection; siblings will
            // rendezvous at their own checkpoints.
            w.gc();
            return;
        }
        _ => {
            // Spot-check a surviving function right after a safe point —
            // the window where a buggy sweep would have corrupted it.
            w.gc_checkpoint();
            let i = pick(r >> 8, built.len());
            check_entry(w, &built[i], "post-checkpoint");
            return;
        }
    };
    w.protect(entry.bdd);
    built.push(entry);
    // Cap per-thread roots: the pool stays small enough that full
    // truth-table checks remain cheap.
    if built.len() > 24 {
        let e = built.remove(0);
        w.unprotect(e.bdd);
    }
    w.gc_checkpoint();
}

fn seed_entries(w: &mut SharedWorker) -> Vec<Entry> {
    let mut built = Vec::new();
    for v in 0..4u32 {
        let bdd = w.var(v);
        w.protect(bdd);
        built.push(Entry {
            bdd,
            table: (0..TABLE).map(|bits| bits >> v & 1 == 1).collect(),
        });
    }
    built
}

/// Steps per thread; `CAMPION_STRESS_STEPS` scales it up in CI.
fn steps() -> usize {
    std::env::var("CAMPION_STRESS_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 400 } else { 1500 })
}

fn run_threads(threads: usize, policy: GcPolicy, seed: u64) {
    let mgr = Arc::new(SharedManager::new(NVARS, policy));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let mgr = Arc::clone(&mgr);
            scope.spawn(move || {
                let mut w = SharedWorker::new(mgr);
                let mut rng = Rng(seed ^ (t as u64).wrapping_mul(0xD1B54A32D192ED03));
                let mut built = seed_entries(&mut w);
                for _ in 0..steps() {
                    step(&mut w, &mut rng, &mut built);
                }
                // Final exhaustive pass: every surviving root still means
                // exactly its oracle function.
                for e in &built {
                    check_entry(&w, e, "final");
                }
                for e in &built {
                    w.unprotect(e.bdd);
                }
            });
        }
    });
}

#[test]
fn concurrent_ops_match_oracle_gc_aggressive() {
    run_threads(4, GcPolicy::Aggressive, 0xA11CE);
}

#[test]
fn concurrent_ops_match_oracle_gc_auto() {
    run_threads(4, GcPolicy::automatic(), 0xB0B);
}

#[test]
fn concurrent_ops_match_oracle_gc_disabled() {
    run_threads(4, GcPolicy::Disabled, 0xCAFE);
}

#[test]
fn concurrent_ops_match_oracle_many_workers() {
    run_threads(8, GcPolicy::automatic(), 0xD00D);
}

/// Canonicity across workers: two threads building the same function from
/// different operation orders must land on the same handle (the sharded
/// unique table is one logical table).
#[test]
fn cross_worker_canonicity() {
    let mgr = Arc::new(SharedManager::new(NVARS, GcPolicy::automatic()));
    let handles: Vec<Bdd> = std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..4)
            .map(|t| {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || {
                    let mut w = SharedWorker::new(mgr);
                    // (x0 ∧ x1) ∨ (x2 ∧ x3), assembled in four different
                    // association orders.
                    let v: Vec<Bdd> = (0..4).map(|i| w.var(i)).collect();
                    let out = match t {
                        0 => {
                            let a = w.and(v[0], v[1]);
                            let b = w.and(v[2], v[3]);
                            w.or(a, b)
                        }
                        1 => {
                            let b = w.and(v[3], v[2]);
                            let a = w.and(v[1], v[0]);
                            w.or(b, a)
                        }
                        2 => {
                            let a = w.and(v[0], v[1]);
                            let b = w.and(v[2], v[3]);
                            let t1 = w.or(a, b);
                            w.or(t1, a)
                        }
                        _ => {
                            let nb = {
                                let n2 = w.not(v[2]);
                                let n3 = w.not(v[3]);
                                w.or(n2, n3)
                            };
                            let b = w.not(nb);
                            let a = w.and(v[0], v[1]);
                            w.or(a, b)
                        }
                    };
                    w.protect(out);
                    out
                })
            })
            .collect();
        tasks.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for h in &handles[1..] {
        assert_eq!(*h, handles[0], "same function, different handle");
    }
}

/// Same deterministic script on different worker counts and GC policies:
/// surviving functions (as truth tables) must be identical everywhere.
#[test]
fn script_semantics_invariant_across_schedules() {
    let tables_for = |threads: usize, policy: GcPolicy| -> Vec<Vec<Vec<bool>>> {
        let mgr = Arc::new(SharedManager::new(NVARS, policy));
        std::thread::scope(|scope| {
            let tasks: Vec<_> = (0..threads)
                .map(|t| {
                    let mgr = Arc::clone(&mgr);
                    scope.spawn(move || {
                        let mut w = SharedWorker::new(mgr);
                        // Thread t always runs script seed 1000 + t, so the
                        // union of scripts is fixed regardless of count.
                        let mut rng = Rng(1000 + t as u64);
                        let mut built = seed_entries(&mut w);
                        for _ in 0..200 {
                            step(&mut w, &mut rng, &mut built);
                        }
                        let tables: Vec<Vec<bool>> =
                            built.iter().map(|e| e.table.clone()).collect();
                        for e in &built {
                            check_entry(&w, e, "script");
                            w.unprotect(e.bdd);
                        }
                        tables
                    })
                })
                .collect();
            tasks.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    // 4 scripts on 4 threads is the baseline; the same 4 scripts must
    // produce the same surviving functions under every policy (the
    // thread count stays at 4 so each script runs identically).
    let base = tables_for(4, GcPolicy::Disabled);
    assert_eq!(base, tables_for(4, GcPolicy::automatic()));
    assert_eq!(base, tables_for(4, GcPolicy::Aggressive));
}
