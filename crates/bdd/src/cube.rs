//! Satisfying assignments and cubes.
//!
//! A *cube* is one root-to-`true` path through a BDD: each variable is
//! constrained to `false`, `true`, or left free. Campion uses cubes to pull
//! concrete examples out of difference predicates — e.g. the single community
//! example in Table 2(b) of the paper, and every Minesweeper counterexample.

use crate::manager::{Bdd, Manager};
use crate::shared::SharedManager;

/// Where an iterator reads its nodes from: a private arena or a shared one.
/// Both expose the same `(var, low, high)` triples, so iteration order is a
/// function of the BDD alone — identical across engines.
pub(crate) enum NodeSrc<'m> {
    Priv(&'m Manager),
    Shared(&'m SharedManager),
}

impl NodeSrc<'_> {
    #[inline]
    fn node(&self, f: Bdd) -> (u32, Bdd, Bdd) {
        match self {
            NodeSrc::Priv(m) => m.node(f),
            NodeSrc::Shared(s) => s.node_view(f),
        }
    }

    #[inline]
    fn num_vars(&self) -> u32 {
        match self {
            NodeSrc::Priv(m) => m.num_vars(),
            NodeSrc::Shared(s) => s.num_vars(),
        }
    }
}

/// A complete assignment of every variable to a boolean.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    /// Build from explicit values (index = variable).
    pub fn new(values: Vec<bool>) -> Self {
        Assignment { values }
    }

    /// All-false assignment over `n` variables.
    pub fn all_false(n: u32) -> Self {
        Assignment {
            values: vec![false; n as usize],
        }
    }

    /// Value of variable `var`.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn get(&self, var: u32) -> bool {
        self.values[var as usize]
    }

    /// Set variable `var` to `value`.
    pub fn set(&mut self, var: u32, value: bool) {
        self.values[var as usize] = value;
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the assignment covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the underlying values.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Decode variables `range` as a big-endian unsigned integer (first
    /// variable in the range is the most significant bit). This matches the
    /// symbolic layer's field layout.
    pub fn decode_be(&self, range: std::ops::Range<u32>) -> u64 {
        let mut v = 0u64;
        for var in range {
            v = (v << 1) | u64::from(self.get(var));
        }
        v
    }
}

/// A partial assignment: each variable is `Some(bool)` or free (`None`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    values: Vec<Option<bool>>,
}

impl Cube {
    /// Build from explicit per-variable constraints.
    pub fn new(values: Vec<Option<bool>>) -> Self {
        Cube { values }
    }

    /// Constraint on variable `var` (`None` = unconstrained).
    pub fn get(&self, var: u32) -> Option<bool> {
        self.values[var as usize]
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the cube covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the underlying constraints.
    pub fn values(&self) -> &[Option<bool>] {
        &self.values
    }

    /// Number of constrained variables.
    pub fn fixed_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Resolve free variables to `default`, producing a complete assignment.
    pub fn complete_with(&self, default: bool) -> Assignment {
        Assignment::new(self.values.iter().map(|v| v.unwrap_or(default)).collect())
    }
}

/// Deterministic iterator over the satisfying cubes of a function, in
/// lexicographic (low-branch-first) order. The yielded cubes are pairwise
/// disjoint and their union is exactly the satisfying set.
pub struct CubeIter<'m> {
    src: NodeSrc<'m>,
    /// Explicit DFS stack of (node, path-so-far). `path` holds constraints
    /// for variables above the node's level.
    stack: Vec<(Bdd, Vec<Option<bool>>)>,
}

impl<'m> CubeIter<'m> {
    pub(crate) fn new(manager: &'m Manager, f: Bdd) -> Self {
        CubeIter::new_src(NodeSrc::Priv(manager), f)
    }

    pub(crate) fn new_src(src: NodeSrc<'m>, f: Bdd) -> Self {
        let stack = if f.is_const_false() {
            Vec::new()
        } else {
            vec![(f, vec![None; src.num_vars() as usize])]
        };
        CubeIter { src, stack }
    }
}

impl Iterator for CubeIter<'_> {
    type Item = Cube;

    fn next(&mut self) -> Option<Cube> {
        while let Some((node, path)) = self.stack.pop() {
            if node.is_const_true() {
                return Some(Cube::new(path));
            }
            if node.is_const_false() {
                continue;
            }
            let (var, low, high) = self.src.node(node);
            // Push high first so low is explored first (lexicographic order:
            // false < true).
            if !high.is_const_false() {
                let mut p = path.clone();
                p[var as usize] = Some(true);
                self.stack.push((high, p));
            }
            if !low.is_const_false() {
                let mut p = path;
                p[var as usize] = Some(false);
                self.stack.push((low, p));
            }
        }
        None
    }
}

/// Lazy best-first iterator over satisfying cubes, ordered by *generality*:
/// cubes constraining fewer variables come first (ties broken by cube value
/// order, deterministically). Used by the Minesweeper baseline to emulate
/// solver-style "most general model first" enumeration without
/// materializing the full cube set.
/// A best-first frontier entry: (fixed-count, partial path, node).
type Frontier = std::collections::BinaryHeap<std::cmp::Reverse<(usize, Vec<Option<bool>>, Bdd)>>;

/// Lazy best-first iterator over satisfying cubes (see the module note
/// above): most general first, deterministic tie-breaking.
pub struct GeneralCubeIter<'m> {
    src: NodeSrc<'m>,
    /// Min-heap keyed by (fixed-count, path, node).
    heap: Frontier,
}

impl<'m> GeneralCubeIter<'m> {
    pub(crate) fn new(manager: &'m Manager, f: Bdd) -> Self {
        GeneralCubeIter::new_src(NodeSrc::Priv(manager), f)
    }

    pub(crate) fn new_src(src: NodeSrc<'m>, f: Bdd) -> Self {
        let mut heap = std::collections::BinaryHeap::new();
        if !f.is_const_false() {
            heap.push(std::cmp::Reverse((
                0,
                vec![None; src.num_vars() as usize],
                f,
            )));
        }
        GeneralCubeIter { src, heap }
    }
}

impl Iterator for GeneralCubeIter<'_> {
    type Item = Cube;

    fn next(&mut self) -> Option<Cube> {
        while let Some(std::cmp::Reverse((fixed, path, node))) = self.heap.pop() {
            if node.is_const_true() {
                return Some(Cube::new(path));
            }
            if node.is_const_false() {
                continue;
            }
            let (var, low, high) = self.src.node(node);
            if !low.is_const_false() {
                let mut p = path.clone();
                p[var as usize] = Some(false);
                self.heap.push(std::cmp::Reverse((fixed + 1, p, low)));
            }
            if !high.is_const_false() {
                let mut p = path;
                p[var as usize] = Some(true);
                self.heap.push(std::cmp::Reverse((fixed + 1, p, high)));
            }
        }
        None
    }
}
