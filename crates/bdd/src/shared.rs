//! Sylvan-style shared concurrent BDD manager.
//!
//! One [`SharedManager`] serves many worker threads at once. The design
//! follows the Sylvan decision-diagram package (van Dijk & van de Pol):
//!
//! * **Arena** — a chunked, append-only array of atomically-published node
//!   cells. Handles ([`Bdd`]) are plain indices, identical in meaning to the
//!   private [`Manager`]'s, and *stable across collections* so
//!   `Clone`-snapshot fan-out (per-difference localization) keeps working.
//! * **Sharded unique table** — 64 hash-striped shards. Lookups probe
//!   lock-free with `Acquire` loads; insertions claim empty slots with a
//!   single CAS (`Release` publishes the node cells written just before).
//!   A lost CAS re-reads the winning slot — if the winner inserted the same
//!   key the loser adopts it (canonicity), otherwise it keeps probing; every
//!   lost race increments the shard's `cas_retries` counter. Segment growth
//!   takes the shard's `RwLock` for writing (inserters hold it for reading),
//!   so a new segment is only published when no insert is in flight —
//!   cross-segment duplicates are impossible.
//! * **Per-worker computed caches** — each [`SharedWorker`] owns private
//!   direct-mapped apply/not/ite caches (shared-nothing, zero contention),
//!   invalidated wholesale when the global GC generation moves.
//! * **Stop-the-world GC at safe points** — workers *park* at
//!   `gc_checkpoint()`; when every active worker is parked, the last one in
//!   becomes the collector: it marks from the global root set, poisons dead
//!   cells, rebuilds the free list and every shard, bumps the generation and
//!   wakes the others. Workers that hold only protected handles may park;
//!   workers holding unprotected intermediates simply do not checkpoint —
//!   a pending collection then waits until they park, finish, or go idle
//!   (`with_idle` on the `AnyManager` wrapper), which preserves liveness:
//!   collection is deferred, never deadlocked.
//!
//! Report byte-identity across {shared, private} managers holds because all
//! report output is *structural* (cubes, prefix ranges, rule labels) and
//! ROBDD canonicity makes those a function of the Boolean function, never of
//! handle values.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock, TryLockError};

use crate::cube::{Assignment, Cube, CubeIter, GeneralCubeIter, NodeSrc};
use crate::manager::{
    fx_mix, node_hash, slot_of, Bdd, DirectCache, GcPolicy, ManagerStats, Op, APPLY_CACHE_BITS,
    ITE_CACHE_BITS, NOT_CACHE_BITS, POISON,
};

/// log2 of the arena chunk size (nodes per chunk).
const CHUNK_BITS: u32 = 16;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
/// Max chunks: 2^14 × 2^16 = 2^30 addressable nodes.
const MAX_CHUNKS: usize = 1 << 14;
/// log2 of the shard count.
const SHARD_BITS: u32 = 6;
const NSHARDS: usize = 1 << SHARD_BITS;
/// Minimum slots per shard segment.
const MIN_SEG: usize = 1 << 9;
/// Free-list indices taken from the global pool per refill.
const FREE_BATCH: usize = 128;
/// Empty unique-table slot marker.
const EMPTY_SLOT: u32 = u32::MAX;

/// One arena node, atomically published. `var` is the decision level
/// (`num_vars` for terminals, [`POISON`] for freed slots); `lo_hi` packs the
/// low child in the high 32 bits and the high child in the low 32 bits.
struct NodeCell {
    var: AtomicU32,
    lo_hi: AtomicU64,
}

impl NodeCell {
    fn poisoned() -> NodeCell {
        NodeCell {
            var: AtomicU32::new(POISON),
            lo_hi: AtomicU64::new(0),
        }
    }
}

/// One power-of-two open-addressing segment of a shard.
struct Seg {
    slots: Box<[AtomicU32]>,
    mask: usize,
}

impl Seg {
    fn new(capacity: usize) -> Seg {
        debug_assert!(capacity.is_power_of_two());
        Seg {
            slots: (0..capacity).map(|_| AtomicU32::new(EMPTY_SLOT)).collect(),
            mask: capacity - 1,
        }
    }
}

/// One stripe of the unique table. Inserters hold the `RwLock` for reading
/// (they still CAS individual slots); segment growth and the post-sweep
/// rebuild hold it for writing, so growth never races an in-flight insert.
struct Shard {
    segs: RwLock<Vec<Seg>>,
    /// Entries in the newest segment (drives the 3/4-load growth trigger).
    newest_fill: AtomicUsize,
    grows: AtomicU64,
    cas_retries: AtomicU64,
    lock_waits: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            segs: RwLock::new(vec![Seg::new(MIN_SEG)]),
            newest_fill: AtomicUsize::new(0),
            grows: AtomicU64::new(0),
            cas_retries: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
        }
    }
}

#[inline]
fn shard_of(hash: u64) -> usize {
    // Top bits — independent of the in-segment slot index (low bits).
    (hash >> (64 - SHARD_BITS)) as usize
}

/// GC rendezvous state, all under one mutex (paired with a condvar).
struct GcSync {
    /// Workers currently registered as active (doing or about to do work).
    active: usize,
    /// Active workers currently parked at a checkpoint.
    parked: usize,
    /// A collection has been requested and not yet run.
    pending: bool,
    /// Bumped once per completed collection; workers reset their computed
    /// caches when they observe a new generation.
    generation: u64,
    gc_runs: u64,
    gc_nodes_freed: u64,
    gc_pauses: u64,
    gc_pause_us: u64,
    gc_pause_max_us: u64,
}

/// The shared arena + unique table + GC rendezvous. Threads operate on it
/// through [`SharedWorker`] handles; the manager itself is `Sync`.
pub struct SharedManager {
    num_vars: u32,
    chunks: Box<[OnceLock<Box<[NodeCell]>>]>,
    /// Bump allocator high-water mark (next never-used index).
    next: AtomicU32,
    shards: Box<[Shard]>,
    /// Freed node indices awaiting reuse; workers take batches.
    free: Mutex<Vec<u32>>,
    /// `free.len()` mirror for lock-free in-use estimates.
    free_count: AtomicUsize,
    /// Global protect-refcounts (terminals implicit), shared by all workers.
    roots: Mutex<HashMap<u32, u32>>,
    policy: Mutex<GcPolicy>,
    gc: Mutex<GcSync>,
    gc_cv: Condvar,
    /// Lock-free mirror of `GcSync::pending` for the checkpoint fast path.
    gc_pending: AtomicBool,
    live_after_gc: AtomicUsize,
    peak_live: AtomicUsize,
}

impl std::fmt::Debug for SharedManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedManager")
            .field("num_vars", &self.num_vars)
            .field("next", &self.next.load(Ordering::Relaxed))
            .finish()
    }
}

enum Probe {
    Found(u32),
    Vacant,
    Full,
}

enum Insert {
    Found(u32),
    Inserted(u32),
    Full,
}

/// Worker-local allocation state: a small batch of free node indices.
#[derive(Default)]
struct LocalAlloc {
    buf: Vec<u32>,
}

impl SharedManager {
    /// Create a shared manager over `num_vars` variables with the given GC
    /// policy. Terminals live at indices 0 and 1, exactly as in the private
    /// [`Manager`].
    pub fn new(num_vars: u32, policy: GcPolicy) -> SharedManager {
        let chunks: Box<[OnceLock<Box<[NodeCell]>>]> =
            (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect();
        let m = SharedManager {
            num_vars,
            chunks,
            next: AtomicU32::new(2),
            shards: (0..NSHARDS).map(|_| Shard::new()).collect(),
            free: Mutex::new(Vec::new()),
            free_count: AtomicUsize::new(0),
            roots: Mutex::new(HashMap::new()),
            policy: Mutex::new(policy),
            gc: Mutex::new(GcSync {
                active: 0,
                parked: 0,
                pending: false,
                generation: 0,
                gc_runs: 0,
                gc_nodes_freed: 0,
                gc_pauses: 0,
                gc_pause_us: 0,
                gc_pause_max_us: 0,
            }),
            gc_cv: Condvar::new(),
            gc_pending: AtomicBool::new(false),
            live_after_gc: AtomicUsize::new(0),
            peak_live: AtomicUsize::new(2),
        };
        m.ensure_chunk(0);
        // Terminal cells: var = num_vars (one past every decision level);
        // terminal 1's children point at itself, mirroring the private arena.
        m.write_cell(0, num_vars, Bdd::FALSE, Bdd::FALSE);
        m.write_cell(1, num_vars, Bdd::TRUE, Bdd::TRUE);
        m
    }

    /// Number of variables in this manager's order.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    fn ensure_chunk(&self, idx: u32) {
        let c = (idx >> CHUNK_BITS) as usize;
        self.chunks[c].get_or_init(|| {
            (0..CHUNK_SIZE)
                .map(|_| NodeCell::poisoned())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
    }

    #[inline]
    fn cell(&self, i: u32) -> &NodeCell {
        let chunk = self.chunks[(i >> CHUNK_BITS) as usize]
            .get()
            .expect("BDD handle into unallocated chunk");
        &chunk[(i as usize) & (CHUNK_SIZE - 1)]
    }

    #[inline]
    fn write_cell(&self, i: u32, var: u32, low: Bdd, high: Bdd) {
        let c = self.cell(i);
        // Relaxed is enough: publication happens-before via the unique-table
        // slot CAS (Release) that makes `i` reachable.
        c.lo_hi.store(
            (u64::from(low.0) << 32) | u64::from(high.0),
            Ordering::Relaxed,
        );
        c.var.store(var, Ordering::Relaxed);
    }

    /// Read a node triple `(var, low, high)`. Callers must hold the handle
    /// via an `Acquire`-published path (unique-table slot, protected root, or
    /// a handle handed across a synchronizing edge).
    #[inline]
    pub(crate) fn node_view(&self, f: Bdd) -> (u32, Bdd, Bdd) {
        let c = self.cell(f.0);
        let var = c.var.load(Ordering::Relaxed);
        let lh = c.lo_hi.load(Ordering::Relaxed);
        (var, Bdd((lh >> 32) as u32), Bdd(lh as u32))
    }

    #[inline]
    fn var_of(&self, f: Bdd) -> u32 {
        self.cell(f.0).var.load(Ordering::Relaxed)
    }

    /// In-use node estimate (allocated high-water minus pooled free slots).
    fn in_use(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize)
            .saturating_sub(self.free_count.load(Ordering::Relaxed))
    }

    fn alloc_node(&self, alloc: &mut LocalAlloc) -> u32 {
        if let Some(i) = alloc.buf.pop() {
            return i;
        }
        {
            let mut free = self.free.lock().unwrap();
            let take = free.len().min(FREE_BATCH);
            if take > 0 {
                let at = free.len() - take;
                alloc.buf.extend(free.drain(at..));
                self.free_count.fetch_sub(take, Ordering::Relaxed);
            }
        }
        if let Some(i) = alloc.buf.pop() {
            return i;
        }
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            (idx as usize) < MAX_CHUNKS * CHUNK_SIZE && idx != u32::MAX,
            "shared BDD arena overflow"
        );
        self.ensure_chunk(idx);
        idx
    }

    fn probe_find(
        &self,
        seg: &Seg,
        hash: u64,
        var: u32,
        low: Bdd,
        high: Bdd,
        coll: &mut u64,
    ) -> Probe {
        let mut slot = slot_of(hash, seg.mask);
        for _ in 0..=seg.mask {
            let v = seg.slots[slot].load(Ordering::Acquire);
            if v == EMPTY_SLOT {
                return Probe::Vacant;
            }
            let (nv, nl, nh) = self.node_view(Bdd(v));
            if nv == var && nl == low && nh == high {
                return Probe::Found(v);
            }
            *coll += 1;
            slot = (slot + 1) & seg.mask;
        }
        Probe::Full
    }

    #[allow(clippy::too_many_arguments)]
    fn probe_insert(
        &self,
        seg: &Seg,
        shard: &Shard,
        hash: u64,
        var: u32,
        low: Bdd,
        high: Bdd,
        alloc: &mut LocalAlloc,
        coll: &mut u64,
    ) -> Insert {
        let mut slot = slot_of(hash, seg.mask);
        let mut reserved: Option<u32> = None;
        for _ in 0..=seg.mask {
            let v = seg.slots[slot].load(Ordering::Acquire);
            if v == EMPTY_SLOT {
                let idx = match reserved {
                    Some(i) => i,
                    None => {
                        let i = self.alloc_node(alloc);
                        self.write_cell(i, var, low, high);
                        reserved = Some(i);
                        i
                    }
                };
                match seg.slots[slot].compare_exchange(
                    EMPTY_SLOT,
                    idx,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Insert::Inserted(idx),
                    Err(cur) => {
                        shard.cas_retries.fetch_add(1, Ordering::Relaxed);
                        let (nv, nl, nh) = self.node_view(Bdd(cur));
                        if nv == var && nl == low && nh == high {
                            alloc.buf.push(idx);
                            return Insert::Found(cur);
                        }
                        *coll += 1;
                        slot = (slot + 1) & seg.mask;
                        continue;
                    }
                }
            }
            let (nv, nl, nh) = self.node_view(Bdd(v));
            if nv == var && nl == low && nh == high {
                if let Some(i) = reserved {
                    alloc.buf.push(i);
                }
                return Insert::Found(v);
            }
            *coll += 1;
            slot = (slot + 1) & seg.mask;
        }
        if let Some(i) = reserved {
            alloc.buf.push(i);
        }
        Insert::Full
    }

    /// Hash-cons `(var, low, high)`: return the existing index or insert a
    /// new node. Returns `(index, was_hit, probe_collisions)`.
    fn find_or_insert(
        &self,
        var: u32,
        low: Bdd,
        high: Bdd,
        alloc: &mut LocalAlloc,
    ) -> (u32, bool, u64) {
        let hash = node_hash(var, low, high);
        let shard = &self.shards[shard_of(hash)];
        let mut coll = 0u64;
        loop {
            let segs = match shard.segs.try_read() {
                Ok(g) => g,
                Err(TryLockError::WouldBlock) => {
                    shard.lock_waits.fetch_add(1, Ordering::Relaxed);
                    shard.segs.read().unwrap()
                }
                Err(TryLockError::Poisoned(e)) => panic!("poisoned shard lock: {e}"),
            };
            let nsegs = segs.len();
            // Older segments are frozen (inserts only target the newest), so
            // a plain lock-free probe suffices.
            let mut found = None;
            for seg in segs[..nsegs - 1].iter() {
                match self.probe_find(seg, hash, var, low, high, &mut coll) {
                    Probe::Found(i) => {
                        found = Some(i);
                        break;
                    }
                    Probe::Vacant | Probe::Full => {}
                }
            }
            if let Some(i) = found {
                return (i, true, coll);
            }
            match self.probe_insert(
                &segs[nsegs - 1],
                shard,
                hash,
                var,
                low,
                high,
                alloc,
                &mut coll,
            ) {
                Insert::Found(i) => return (i, true, coll),
                Insert::Inserted(i) => {
                    let cap = segs[nsegs - 1].mask + 1;
                    let fill = shard.newest_fill.fetch_add(1, Ordering::Relaxed) + 1;
                    drop(segs);
                    if fill * 4 >= cap * 3 {
                        self.grow_shard(shard);
                    }
                    return (i, false, coll);
                }
                Insert::Full => {
                    drop(segs);
                    self.grow_shard(shard);
                    // retry against the grown shard
                }
            }
        }
    }

    fn grow_shard(&self, shard: &Shard) {
        let mut segs = match shard.segs.try_write() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                shard.lock_waits.fetch_add(1, Ordering::Relaxed);
                shard.segs.write().unwrap()
            }
            Err(TryLockError::Poisoned(e)) => panic!("poisoned shard lock: {e}"),
        };
        let newest_cap = segs.last().map(|s| s.mask + 1).unwrap_or(MIN_SEG);
        // Another grower may have raced us here; only grow if the newest
        // segment is still past the load trigger.
        if shard.newest_fill.load(Ordering::Relaxed) * 4 < newest_cap * 3 {
            return;
        }
        segs.push(Seg::new(newest_cap * 2));
        shard.newest_fill.store(0, Ordering::Relaxed);
        shard.grows.fetch_add(1, Ordering::Relaxed);
    }

    /// The collector. Runs with the GC mutex held and **every active worker
    /// parked** (blocked in the checkpoint condvar), so no mutator touches
    /// the arena, table or caches concurrently.
    fn collect_locked(&self, sync: &mut GcSync) {
        let t0 = std::time::Instant::now();
        let mut span = campion_trace::span("bdd.gc");
        let next = self.next.load(Ordering::Relaxed) as usize;
        let in_use_before = self.in_use();
        self.peak_live.fetch_max(in_use_before, Ordering::Relaxed);

        // Mark from the global root set.
        let words = next.div_ceil(64);
        let mut marks = vec![0u64; words];
        marks[0] |= 0b11;
        let mut live = 2usize;
        let mut stack: Vec<u32> = {
            let roots = self.roots.lock().unwrap();
            roots.keys().copied().collect()
        };
        while let Some(i) = stack.pop() {
            let (word, bit) = (i as usize / 64, i as usize % 64);
            if marks[word] & (1 << bit) != 0 {
                continue;
            }
            marks[word] |= 1 << bit;
            live += 1;
            let (var, low, high) = self.node_view(Bdd(i));
            debug_assert!(var != POISON, "marked a dead node");
            if !low.is_const() {
                stack.push(low.0);
            }
            if !high.is_const() {
                stack.push(high.0);
            }
        }
        let marked = |i: usize| marks[i / 64] & (1 << (i % 64)) != 0;

        // Sweep: poison every unmarked slot, rebuild the free list ascending.
        {
            let mut free = self.free.lock().unwrap();
            free.clear();
            for i in 2..next {
                if !marked(i) {
                    self.cell(i as u32).var.store(POISON, Ordering::Relaxed);
                    free.push(i as u32);
                }
            }
            self.free_count.store(free.len(), Ordering::Relaxed);
        }

        // Rebuild every shard over the survivors (single-threaded; plain
        // stores are published to workers by the GC mutex hand-off).
        let mut by_shard: Vec<Vec<u32>> = (0..NSHARDS).map(|_| Vec::new()).collect();
        for i in 2..next {
            if marked(i) {
                let (var, low, high) = self.node_view(Bdd(i as u32));
                by_shard[shard_of(node_hash(var, low, high))].push(i as u32);
            }
        }
        for (shard, idxs) in self.shards.iter().zip(&by_shard) {
            let mut segs = shard.segs.write().unwrap();
            let cap = (idxs.len() * 4 / 3 + 1).next_power_of_two().max(MIN_SEG);
            segs.clear();
            segs.push(Seg::new(cap));
            let seg = &segs[0];
            for &i in idxs {
                let (var, low, high) = self.node_view(Bdd(i));
                let mut slot = slot_of(node_hash(var, low, high), seg.mask);
                while seg.slots[slot].load(Ordering::Relaxed) != EMPTY_SLOT {
                    slot = (slot + 1) & seg.mask;
                }
                seg.slots[slot].store(i, Ordering::Relaxed);
            }
            shard.newest_fill.store(idxs.len(), Ordering::Relaxed);
        }

        let garbage = in_use_before.saturating_sub(live);
        self.live_after_gc.store(live, Ordering::Relaxed);
        sync.gc_runs += 1;
        sync.gc_nodes_freed += garbage as u64;
        sync.gc_pauses += 1;
        let pause_us = t0.elapsed().as_micros() as u64;
        sync.gc_pause_us += pause_us;
        sync.gc_pause_max_us = sync.gc_pause_max_us.max(pause_us);
        sync.generation += 1;
        span.counter("freed_nodes", garbage as i64);
        span.counter("live_nodes", live as i64);
    }

    /// Global (manager-wide) counters: node/GC figures plus per-shard
    /// contention totals. Per-worker cache counters live on each
    /// [`SharedWorker::stats`]; merge both for a full picture.
    pub fn global_stats(&self) -> ManagerStats {
        let in_use = self.in_use();
        self.peak_live.fetch_max(in_use, Ordering::Relaxed);
        let sync = self.gc.lock().unwrap();
        let mut grows = 0u64;
        let mut cas = 0u64;
        let mut waits = 0u64;
        for s in self.shards.iter() {
            grows += s.grows.load(Ordering::Relaxed);
            cas += s.cas_retries.load(Ordering::Relaxed);
            waits += s.lock_waits.load(Ordering::Relaxed);
        }
        ManagerStats {
            nodes: in_use as u64,
            peak_nodes: self.peak_live.load(Ordering::Relaxed) as u64,
            post_gc_nodes: self.live_after_gc.load(Ordering::Relaxed) as u64,
            gc_runs: sync.gc_runs,
            gc_nodes_freed: sync.gc_nodes_freed,
            gc_pauses: sync.gc_pauses,
            gc_pause_us: sync.gc_pause_us,
            gc_pause_max_us: sync.gc_pause_max_us,
            unique_grows: grows,
            shard_cas_retries: cas,
            shard_lock_waits: waits,
            ..ManagerStats::default()
        }
    }

    /// Completed collections so far (the cache-invalidation generation).
    pub fn generation(&self) -> u64 {
        self.gc.lock().unwrap().generation
    }
}

/// A per-thread handle onto a [`SharedManager`]: private computed caches, a
/// private free-index batch, and the worker's slice of the GC rendezvous.
///
/// The full private-[`Manager`] operation surface is mirrored here; handles
/// are interchangeable between workers of the same manager.
///
/// `Clone` forks a new worker on the same arena with fresh caches — the
/// cheap-snapshot analogue of the private manager's deep `Clone`.
pub struct SharedWorker {
    mgr: Arc<SharedManager>,
    /// Registered in `GcSync::active`? Workers activate lazily on their
    /// first mutating operation, so pre-created fan-out states that no
    /// thread has picked up yet can never stall a pending collection.
    active: bool,
    /// Last GC generation this worker's caches were valid for.
    gen: u64,
    policy: GcPolicy,
    alloc: LocalAlloc,
    apply_cache: DirectCache<(u8, Bdd, Bdd)>,
    not_cache: DirectCache<Bdd>,
    ite_cache: DirectCache<(Bdd, Bdd, Bdd)>,
    unique_lookups: u64,
    unique_hits: u64,
    unique_collisions: u64,
}

impl std::fmt::Debug for SharedWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedWorker")
            .field("mgr", &*self.mgr)
            .field("active", &self.active)
            .finish()
    }
}

impl Clone for SharedWorker {
    fn clone(&self) -> Self {
        self.fork()
    }
}

impl Drop for SharedWorker {
    fn drop(&mut self) {
        self.deactivate();
    }
}

impl SharedWorker {
    /// Create a worker for `mgr`. The worker registers with the GC
    /// rendezvous lazily, on its first mutating operation.
    pub fn new(mgr: Arc<SharedManager>) -> SharedWorker {
        let policy = *mgr.policy.lock().unwrap();
        SharedWorker {
            mgr,
            active: false,
            gen: 0,
            policy,
            alloc: LocalAlloc::default(),
            apply_cache: DirectCache::new(APPLY_CACHE_BITS),
            not_cache: DirectCache::new(NOT_CACHE_BITS),
            ite_cache: DirectCache::new(ITE_CACHE_BITS),
            unique_lookups: 0,
            unique_hits: 0,
            unique_collisions: 0,
        }
    }

    /// Fork a sibling worker on the same arena (fresh caches, zeroed
    /// counters). Handles remain valid across workers.
    pub fn fork(&self) -> SharedWorker {
        let mut w = SharedWorker::new(self.mgr.clone());
        w.gen = self.gen;
        w.policy = self.policy;
        w
    }

    /// Arena-wide sweep generation (see [`SharedManager::generation`]).
    /// While this worker is *active* the generation cannot advance under it
    /// (collections wait for it to park), so a value read here stays
    /// current until the worker's next safe point — valid for stamping
    /// index-keyed memos.
    pub fn sweep_count(&self) -> u64 {
        self.mgr.generation()
    }

    /// The shared manager behind this worker.
    pub fn manager(&self) -> &Arc<SharedManager> {
        &self.mgr
    }

    fn reset_caches(&mut self) {
        self.apply_cache.retain(|_, _| false);
        self.not_cache.retain(|_, _| false);
        self.ite_cache.retain(|_, _| false);
        // Local free indices may have been re-derived by the sweep's free
        // list rebuild; drop them so they are not handed out twice.
        self.alloc.buf.clear();
    }

    fn ensure_active(&mut self) {
        if self.active {
            return;
        }
        let mut refresh = false;
        {
            let mut sync = self.mgr.gc.lock().unwrap();
            sync.active += 1;
            if self.gen != sync.generation {
                self.gen = sync.generation;
                refresh = true;
            }
        }
        if refresh {
            self.reset_caches();
        }
        self.active = true;
    }

    fn flush_free(&mut self) {
        if self.alloc.buf.is_empty() {
            return;
        }
        let mut free = self.mgr.free.lock().unwrap();
        self.mgr
            .free_count
            .fetch_add(self.alloc.buf.len(), Ordering::Relaxed);
        free.append(&mut self.alloc.buf);
    }

    /// Unregister from the GC rendezvous (flushing the local free batch).
    /// The next mutating operation re-registers automatically. Exposed so a
    /// parent blocked joining fanned-out sub-workers can let a pending
    /// collection proceed (`AnyManager::with_idle`).
    pub fn deactivate(&mut self) {
        if !self.active {
            return;
        }
        self.flush_free();
        let mut sync = self.mgr.gc.lock().unwrap();
        sync.active -= 1;
        if sync.pending {
            if sync.active == 0 {
                sync.pending = false;
                self.mgr.gc_pending.store(false, Ordering::Release);
            } else if sync.parked == sync.active {
                // Our departure completes the rendezvous: promote a parked
                // worker to collector.
                self.mgr.gc_cv.notify_all();
            }
        }
        self.active = false;
    }

    // === Mirrored Manager surface ==========================================

    /// Number of variables in the shared order.
    pub fn num_vars(&self) -> u32 {
        self.mgr.num_vars
    }

    /// Manager-wide in-use node count (all workers).
    pub fn node_count(&self) -> usize {
        self.mgr.in_use()
    }

    /// Worker-local counters only (cache/unique-table activity by *this*
    /// worker). Manager-wide node/GC/shard figures come from
    /// [`SharedManager::global_stats`]; the split avoids double-counting the
    /// shared arena when per-worker stats are merged.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            unique_lookups: self.unique_lookups,
            unique_hits: self.unique_hits,
            unique_collisions: self.unique_collisions,
            apply_lookups: self.apply_cache.lookups,
            apply_hits: self.apply_cache.hits,
            not_lookups: self.not_cache.lookups,
            not_hits: self.not_cache.hits,
            ite_lookups: self.ite_cache.lookups,
            ite_hits: self.ite_cache.hits,
            ..ManagerStats::default()
        }
    }

    /// The constant-false function.
    pub fn false_(&self) -> Bdd {
        Bdd::FALSE
    }

    /// The constant-true function.
    pub fn true_(&self) -> Bdd {
        Bdd::TRUE
    }

    /// Is `f` the constant true?
    pub fn is_true(&self, f: Bdd) -> bool {
        f.is_const_true()
    }

    /// Is `f` the constant false?
    pub fn is_false(&self, f: Bdd) -> bool {
        f.is_const_false()
    }

    fn mk(&mut self, var: u32, low: Bdd, high: Bdd) -> Bdd {
        debug_assert!(var < self.mgr.num_vars, "variable {var} out of range");
        debug_assert!(var < self.mgr.var_of(low) && var < self.mgr.var_of(high));
        if low == high {
            return low;
        }
        self.unique_lookups += 1;
        let (idx, hit, coll) = self.mgr.find_or_insert(var, low, high, &mut self.alloc);
        if hit {
            self.unique_hits += 1;
        }
        self.unique_collisions += coll;
        Bdd(idx)
    }

    /// The function `var = 1`.
    pub fn var(&mut self, var: u32) -> Bdd {
        self.ensure_active();
        self.mk(var, Bdd::FALSE, Bdd::TRUE)
    }

    /// The function `var = 0`.
    pub fn nvar(&mut self, var: u32) -> Bdd {
        self.ensure_active();
        self.mk(var, Bdd::TRUE, Bdd::FALSE)
    }

    /// A literal: positive if `value`, else negative.
    pub fn literal(&mut self, var: u32, value: bool) -> Bdd {
        if value {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// Boolean negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ensure_active();
        self.not_rec(f)
    }

    fn not_rec(&mut self, f: Bdd) -> Bdd {
        if f.is_const_false() {
            return Bdd::TRUE;
        }
        if f.is_const_true() {
            return Bdd::FALSE;
        }
        let hash = fx_mix(0, u64::from(f.0));
        if let Some(r) = self.not_cache.get(hash, f) {
            return r;
        }
        let (var, low, high) = self.mgr.node_view(f);
        let nl = self.not_rec(low);
        let nh = self.not_rec(high);
        let r = self.mk(var, nl, nh);
        self.not_cache.put(hash, f, r);
        let rhash = fx_mix(0, u64::from(r.0));
        self.not_cache.put(rhash, r, f);
        r
    }

    fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Bdd {
        if let Some(r) = op.terminal(f, g) {
            return r;
        }
        let (f, g) = if op.commutative() && g < f {
            (g, f)
        } else {
            (f, g)
        };
        let key = (op as u8, f, g);
        let hash = fx_mix(
            fx_mix(fx_mix(0, u64::from(op as u8)), u64::from(f.0)),
            u64::from(g.0),
        );
        if let Some(r) = self.apply_cache.get(hash, key) {
            return r;
        }
        let (vf, fl0, fh0) = self.mgr.node_view(f);
        let (vg, gl0, gh0) = self.mgr.node_view(g);
        let var = vf.min(vg);
        let (fl, fh) = if vf == var { (fl0, fh0) } else { (f, f) };
        let (gl, gh) = if vg == var { (gl0, gh0) } else { (g, g) };
        let low = self.apply(op, fl, gl);
        let high = self.apply(op, fh, gh);
        let r = self.mk(var, low, high);
        self.apply_cache.put(hash, key, r);
        r
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ensure_active();
        self.apply(Op::And, f, g)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ensure_active();
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ensure_active();
        self.apply(Op::Xor, f, g)
    }

    /// Set difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ensure_active();
        self.apply(Op::Diff, f, g)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let d = self.diff(f, g);
        self.not(d)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Conjunction over many operands (balanced-tree reduction).
    pub fn and_all(&mut self, fs: &[Bdd]) -> Bdd {
        self.ensure_active();
        self.balanced_reduce(fs, Op::And, Bdd::TRUE, Bdd::FALSE)
    }

    /// Disjunction over many operands (balanced-tree reduction).
    pub fn or_all(&mut self, fs: &[Bdd]) -> Bdd {
        self.ensure_active();
        self.balanced_reduce(fs, Op::Or, Bdd::FALSE, Bdd::TRUE)
    }

    fn balanced_reduce(&mut self, fs: &[Bdd], op: Op, identity: Bdd, absorbing: Bdd) -> Bdd {
        if fs.is_empty() {
            return identity;
        }
        let mut layer: Vec<Bdd> = fs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                let r = if chunk.len() == 2 {
                    self.apply(op, chunk[0], chunk[1])
                } else {
                    chunk[0]
                };
                if r == absorbing {
                    return absorbing;
                }
                next.push(r);
            }
            layer = next;
        }
        layer[0]
    }

    /// If-then-else `(c ∧ t) ∨ (¬c ∧ e)`.
    pub fn ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        self.ensure_active();
        self.ite_rec(c, t, e)
    }

    fn ite_rec(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        if c.is_const_true() {
            return t;
        }
        if c.is_const_false() {
            return e;
        }
        if t == e {
            return t;
        }
        if t.is_const_true() && e.is_const_false() {
            return c;
        }
        let key = (c, t, e);
        let hash = fx_mix(
            fx_mix(fx_mix(0, u64::from(c.0)), u64::from(t.0)),
            u64::from(e.0),
        );
        if let Some(r) = self.ite_cache.get(hash, key) {
            return r;
        }
        let (vc, cl0, ch0) = self.mgr.node_view(c);
        let (vt, tl0, th0) = self.mgr.node_view(t);
        let (ve, el0, eh0) = self.mgr.node_view(e);
        let var = vc.min(vt).min(ve);
        let (cl, ch) = if vc == var { (cl0, ch0) } else { (c, c) };
        let (tl, th) = if vt == var { (tl0, th0) } else { (t, t) };
        let (el, eh) = if ve == var { (el0, eh0) } else { (e, e) };
        let low = self.ite_rec(cl, tl, el);
        let high = self.ite_rec(ch, th, eh);
        let r = self.mk(var, low, high);
        self.ite_cache.put(hash, key, r);
        r
    }

    /// Are `f` and `g` the same function? (Handle equality is canonical.)
    pub fn equivalent(&self, f: Bdd, g: Bdd) -> bool {
        f == g
    }

    /// Cofactor of `f` with `var` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, var: u32, value: bool) -> Bdd {
        self.ensure_active();
        self.restrict_rec(f, var, value)
    }

    fn restrict_rec(&mut self, f: Bdd, var: u32, value: bool) -> Bdd {
        if f.is_const() {
            return f;
        }
        let (v, low, high) = self.mgr.node_view(f);
        if v > var {
            return f;
        }
        if v == var {
            return if value { high } else { low };
        }
        let l = self.restrict_rec(low, var, value);
        let h = self.restrict_rec(high, var, value);
        self.mk(v, l, h)
    }

    /// Existential quantification over sorted `vars`.
    pub fn exists(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
        self.ensure_active();
        let mut memo = HashMap::new();
        self.exists_rec(f, vars, &mut memo)
    }

    fn exists_rec(&mut self, f: Bdd, vars: &[u32], memo: &mut HashMap<Bdd, Bdd>) -> Bdd {
        if f.is_const() || vars.is_empty() {
            return f;
        }
        let (v, low, high) = self.mgr.node_view(f);
        let mut rest = vars;
        while let Some((&first, tail)) = rest.split_first() {
            if first < v {
                rest = tail;
            } else {
                break;
            }
        }
        if rest.is_empty() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let r = if rest[0] == v {
            let l = self.exists_rec(low, &rest[1..], memo);
            let h = self.exists_rec(high, &rest[1..], memo);
            self.apply(Op::Or, l, h)
        } else {
            let l = self.exists_rec(low, rest, memo);
            let h = self.exists_rec(high, rest, memo);
            self.mk(v, l, h)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification `∀ vars . f`.
    pub fn forall(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// Number of satisfying assignments over the full variable set.
    ///
    /// # Panics
    /// Panics if `num_vars > 127`.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        assert!(
            self.mgr.num_vars <= 127,
            "sat_count supports at most 127 variables"
        );
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        let below = self.sat_count_rec(f, &mut memo);
        below << self.mgr.var_of(f)
    }

    fn sat_count_rec(&self, f: Bdd, memo: &mut HashMap<Bdd, u128>) -> u128 {
        if f.is_const_false() {
            return 0;
        }
        if f.is_const_true() {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let (var, low, high) = self.mgr.node_view(f);
        let cl = self.sat_count_rec(low, memo) << (self.mgr.var_of(low) - var - 1);
        let ch = self.sat_count_rec(high, memo) << (self.mgr.var_of(high) - var - 1);
        let total = cl + ch;
        memo.insert(f, total);
        total
    }

    /// Evaluate `f` under a complete assignment.
    pub fn eval(&self, f: Bdd, assignment: &Assignment) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let (var, low, high) = self.mgr.node_view(cur);
            cur = if assignment.get(var) { high } else { low };
        }
        cur.is_const_true()
    }

    /// Is `f` satisfiable? (Constant time.)
    pub fn is_sat(&self, f: Bdd) -> bool {
        !f.is_const_false()
    }

    /// Lexicographically-first satisfying cube (low-branch-first).
    pub fn first_sat(&self, f: Bdd) -> Option<Cube> {
        if f.is_const_false() {
            return None;
        }
        let mut values: Vec<Option<bool>> = vec![None; self.mgr.num_vars as usize];
        let mut cur = f;
        while !cur.is_const() {
            let (var, low, high) = self.mgr.node_view(cur);
            if !low.is_const_false() {
                values[var as usize] = Some(false);
                cur = low;
            } else {
                values[var as usize] = Some(true);
                cur = high;
            }
        }
        Some(Cube::new(values))
    }

    /// First complete satisfying assignment (free variables → false).
    pub fn first_sat_assignment(&self, f: Bdd) -> Option<Assignment> {
        self.first_sat(f).map(|c| c.complete_with(false))
    }

    /// Like [`SharedWorker::first_sat`], preferring the high branch.
    pub fn first_sat_preferring_true(&self, f: Bdd) -> Option<Cube> {
        if f.is_const_false() {
            return None;
        }
        let mut values: Vec<Option<bool>> = vec![None; self.mgr.num_vars as usize];
        let mut cur = f;
        while !cur.is_const() {
            let (var, low, high) = self.mgr.node_view(cur);
            if !high.is_const_false() {
                values[var as usize] = Some(true);
                cur = high;
            } else {
                values[var as usize] = Some(false);
                cur = low;
            }
        }
        Some(Cube::new(values))
    }

    /// Deterministic lexicographic cube iterator (same order as the private
    /// manager's — the order depends only on the function).
    pub fn sat_cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter::new_src(NodeSrc::Shared(&self.mgr), f)
    }

    /// Most-general-first cube iterator.
    pub fn sat_cubes_general(&self, f: Bdd) -> GeneralCubeIter<'_> {
        GeneralCubeIter::new_src(NodeSrc::Shared(&self.mgr), f)
    }

    /// Variables `f` depends on, ascending.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            let (var, low, high) = self.mgr.node_view(n);
            vars.insert(var);
            stack.push(low);
            stack.push(high);
        }
        vars.into_iter().collect()
    }

    /// Nodes reachable from `f`.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            count += 1;
            let (_, low, high) = self.mgr.node_view(n);
            stack.push(low);
            stack.push(high);
        }
        count
    }

    // === GC ================================================================

    /// Add `f` to the *global* root set (refcounted, shared by all workers
    /// of this manager). Activates the worker: a protect must not race a
    /// concurrent mark, and activation blocks collections from starting.
    pub fn protect(&mut self, f: Bdd) {
        if f.is_const() {
            return;
        }
        self.ensure_active();
        debug_assert!(self.mgr.var_of(f) != POISON, "protecting a dead handle");
        let mut roots = self.mgr.roots.lock().unwrap();
        *roots.entry(f.0).or_insert(0) += 1;
    }

    /// Drop one protection reference from `f`. Safe from any worker; only
    /// shrinks the root set (a concurrent mark is at worst conservative).
    pub fn unprotect(&mut self, f: Bdd) {
        if f.is_const() {
            return;
        }
        let mut roots = self.mgr.roots.lock().unwrap();
        match roots.get_mut(&f.0) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                roots.remove(&f.0);
            }
            None => debug_assert!(false, "unprotect without matching protect"),
        }
    }

    /// Number of distinct protected handles (manager-wide).
    pub fn root_count(&self) -> usize {
        self.mgr.roots.lock().unwrap().len()
    }

    /// Install a trigger policy (updates the manager-wide default used by
    /// new workers too).
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        *self.mgr.policy.lock().unwrap() = policy;
        self.policy = policy;
    }

    /// This worker's trigger policy.
    pub fn gc_policy(&self) -> GcPolicy {
        self.policy
    }

    /// Request and wait for a full collection (stop-the-world: it runs once
    /// every other active worker has parked or gone idle). Returns nodes
    /// freed when this worker ran the sweep, 0 when another worker did.
    pub fn gc(&mut self) -> usize {
        self.ensure_active();
        self.park_and_collect(true)
    }

    /// Safe point: parks if a collection is pending or this worker's policy
    /// wants one. Everything the caller still needs must be protected.
    /// Returns whether a collection completed at this checkpoint.
    pub fn gc_checkpoint(&mut self) -> bool {
        if !self.active {
            // Nothing allocated since activation; nothing to park for.
            return false;
        }
        let pending = self.mgr.gc_pending.load(Ordering::Acquire);
        let want = match self.policy {
            GcPolicy::Disabled => false,
            GcPolicy::Aggressive => true,
            GcPolicy::Automatic {
                growth_factor,
                min_nodes,
            } => {
                let in_use = self.mgr.in_use();
                let floor = self
                    .mgr
                    .live_after_gc
                    .load(Ordering::Relaxed)
                    .max(min_nodes);
                in_use >= floor.saturating_mul(growth_factor.max(1))
            }
        };
        if !pending && !want {
            return false;
        }
        // Once we park under a pending request, a collection completes
        // (ours or another worker's) before park_and_collect returns.
        self.park_and_collect(want);
        true
    }

    /// Park at the rendezvous; the last active worker to park collects.
    /// Returns nodes freed if *this* worker was the collector, else 0.
    fn park_and_collect(&mut self, want: bool) -> usize {
        self.flush_free();
        let mut freed = 0usize;
        let gen_after;
        {
            let mut sync = self.mgr.gc.lock().unwrap();
            if want && !sync.pending {
                sync.pending = true;
                self.mgr.gc_pending.store(true, Ordering::Release);
            }
            if sync.pending {
                sync.parked += 1;
                let my_gen = sync.generation;
                loop {
                    if sync.generation != my_gen {
                        // Another worker collected while we were parked.
                        sync.parked -= 1;
                        break;
                    }
                    if sync.parked == sync.active {
                        let before = sync.gc_nodes_freed;
                        self.mgr.collect_locked(&mut sync);
                        freed = (sync.gc_nodes_freed - before) as usize;
                        sync.pending = false;
                        self.mgr.gc_pending.store(false, Ordering::Release);
                        sync.parked -= 1;
                        self.mgr.gc_cv.notify_all();
                        break;
                    }
                    sync = self.mgr.gc_cv.wait(sync).unwrap();
                }
            }
            gen_after = sync.generation;
        }
        if self.gen != gen_after {
            self.gen = gen_after;
            self.reset_caches();
        }
        freed
    }
}

/// A process-wide pool of [`SharedManager`]s keyed by variable count.
///
/// Route-advertisement layouts vary per pair (atom/tag/metric counts), so
/// pairs can only share an arena when their variable orders coincide; the
/// pool hands every requester of the same `num_vars` the same manager.
/// Scope one pool per compare run (or per fleet recompute batch) so the
/// root-set leakage of per-space caches stays bounded.
pub struct SharedPool {
    policy: GcPolicy,
    managers: Mutex<HashMap<u32, Arc<SharedManager>>>,
}

impl std::fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPool").finish()
    }
}

impl SharedPool {
    /// Create an empty pool; every manager it creates starts with `policy`.
    pub fn new(policy: GcPolicy) -> SharedPool {
        SharedPool {
            policy,
            managers: Mutex::new(HashMap::new()),
        }
    }

    /// A worker on the pool's manager for `num_vars` (created on first use).
    pub fn worker(&self, num_vars: u32) -> SharedWorker {
        let mgr = {
            let mut managers = self.managers.lock().unwrap();
            managers
                .entry(num_vars)
                .or_insert_with(|| Arc::new(SharedManager::new(num_vars, self.policy)))
                .clone()
        };
        SharedWorker::new(mgr)
    }

    /// Merged [`SharedManager::global_stats`] over every pooled manager.
    pub fn stats(&self) -> ManagerStats {
        let managers = self.managers.lock().unwrap();
        let mut out = ManagerStats::default();
        for mgr in managers.values() {
            out.merge(&mgr.global_stats());
        }
        out
    }
}
