//! The BDD manager: node arena, unique table, and memoized operations.
//!
//! ## Hot-path design (the CUDD/Sylvan table layout)
//!
//! The two structures every BDD operation funnels through are hand-rolled
//! for speed rather than borrowed from `std::collections`:
//!
//! * **Unique table** — an open-addressing, linear-probing hash table of
//!   node indices keyed by `(var, low, high)` with an FxHash-style
//!   multiply-xor hash. Power-of-two capacity, amortized doubling at 3/4
//!   load. Compared with a SipHash `HashMap<Node, Bdd>`, a lookup is one
//!   multiply-mix plus a short probe over a flat `u32` array.
//! * **Computed tables** — the apply, negation, and if-then-else caches are
//!   direct-mapped arrays with lossy overwrite (CUDD's "computed table").
//!   A colliding insert simply replaces the previous entry; correctness is
//!   unaffected because results are only reused on an exact key match and
//!   every sweep scrubs out cache entries that reference a freed slot, so
//!   entries can never dangle onto a recycled arena slot.
//!
//! ## Garbage collection (reachable-mark, CUDD-style safe points)
//!
//! Long-lived managers reclaim dead nodes with a reachable-mark collector:
//!
//! * **Root set** — callers declare the BDDs they keep alive across
//!   operations with [`Manager::protect`] / [`Manager::unprotect`]
//!   (refcounted, so the same handle may be protected from several
//!   owners). The two terminals are implicitly always rooted.
//! * **Mark** — a DFS from the protected roots over the arena.
//! * **Sweep** — unmarked slots are poisoned and pushed on a free list
//!   (recycled by `mk`, so *live node indices never move* and outstanding
//!   rooted handles stay valid), the open-addressing unique table is
//!   rebuilt in place over the survivors, and the computed caches are
//!   scrubbed: entries naming only surviving nodes stay warm (indices
//!   are stable), entries naming a freed slot are dropped (they could
//!   otherwise alias a recycled slot).
//! * **Trigger policy** — [`Manager::gc`] collects immediately;
//!   [`Manager::gc_checkpoint`] consults the configured [`GcPolicy`]:
//!   automatic mode collects at safe points once the in-use arena has
//!   outgrown the live set of the previous collection, and skips the
//!   sweep (keeping the caches warm) when marking finds little garbage.
//!
//! Checkpoints are **safe points**: callers may only invoke
//! `gc_checkpoint` when every BDD they need afterwards is protected.
//! Operations never collect on their own, so intermediate handles held
//! across plain operation calls are always safe.
//!
//! On top of GC the computed caches are **adaptive**: after each sweep
//! they are re-sized as a function of the live node count (instead of the
//! former fixed 2^14/2^12/2^12), so a manager hosting millions of live
//! nodes gets a working-set-sized cache while small managers stay lean.
//!
//! Every table keeps hit/probe counters, surfaced through
//! [`Manager::stats`] so benchmarks (the `scalability` bin) can report
//! cache behavior, GC activity and peak/post-GC node counts alongside
//! wall-clock numbers.

use std::collections::HashMap;

use crate::cube::{Assignment, Cube, CubeIter};

/// A handle to a BDD node owned by a [`Manager`].
///
/// Handles are cheap to copy and compare; two handles from the same manager
/// are equal if and only if they denote the same boolean function (the arena
/// is hash-consed, so ROBDD canonicity gives structural equality for free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false handle. Valid in every manager.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true handle. Valid in every manager.
    pub const TRUE: Bdd = Bdd(1);

    /// Returns true if this handle is the constant `false`.
    pub fn is_const_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Returns true if this handle is the constant `true`.
    pub fn is_const_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// Returns true if this handle is either constant.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

/// One decision node. `var` is the decision level; `low` is the cofactor for
/// `var = 0`, `high` for `var = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    var: u32,
    low: Bdd,
    high: Bdd,
}

/// Binary operations memoized in the apply cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
    Diff,
}

impl Op {
    /// Evaluate the operation on constants (returns None when not yet decided).
    pub(crate) fn terminal(self, f: Bdd, g: Bdd) -> Option<Bdd> {
        match self {
            Op::And => {
                if f.is_const_false() || g.is_const_false() {
                    Some(Bdd::FALSE)
                } else if f.is_const_true() {
                    Some(g)
                } else if g.is_const_true() || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Or => {
                if f.is_const_true() || g.is_const_true() {
                    Some(Bdd::TRUE)
                } else if f.is_const_false() {
                    Some(g)
                } else if g.is_const_false() || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Xor => {
                if f == g {
                    Some(Bdd::FALSE)
                } else if f.is_const_false() {
                    Some(g)
                } else if g.is_const_false() {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Diff => {
                // f & !g
                if f.is_const_false() || g.is_const_true() || f == g {
                    Some(Bdd::FALSE)
                } else if g.is_const_false() {
                    Some(f)
                } else {
                    None
                }
            }
        }
    }

    /// Whether the operation is commutative (lets us normalize cache keys).
    pub(crate) fn commutative(self) -> bool {
        matches!(self, Op::And | Op::Or | Op::Xor)
    }
}

/// FxHash-style word mixer: rotate, xor, multiply by a large odd constant.
#[inline]
pub(crate) fn fx_mix(hash: u64, word: u64) -> u64 {
    const K: u64 = 0x517C_C1B7_2722_0A95;
    (hash.rotate_left(5) ^ word).wrapping_mul(K)
}

/// Hash of a node key `(var, low, high)`.
#[inline]
pub(crate) fn node_hash(var: u32, low: Bdd, high: Bdd) -> u64 {
    let h = fx_mix(0, u64::from(var));
    let h = fx_mix(h, u64::from(low.0));
    fx_mix(h, u64::from(high.0))
}

/// Fold a 64-bit hash down to a table index with `mask = len - 1`.
#[inline]
pub(crate) fn slot_of(hash: u64, mask: usize) -> usize {
    // The multiply pushes entropy toward the high bits; fold them back in
    // before masking.
    ((hash ^ (hash >> 32)) as usize) & mask
}

/// Marker for an empty unique-table slot.
const EMPTY: u32 = u32::MAX;

/// `var` value poisoning a freed arena slot. Distinct from every decision
/// level and from the terminals' `var == num_vars`, so table rebuilds can
/// skip dead slots and debug traversals of dangling handles fail loudly.
pub(crate) const POISON: u32 = u32::MAX;

/// The node written into a freed arena slot.
const POISON_NODE: Node = Node {
    var: POISON,
    low: Bdd::FALSE,
    high: Bdd::FALSE,
};

/// Open-addressing unique table: node indices keyed by the node's
/// `(var, low, high)` triple, resolved against the arena.
#[derive(Clone)]
struct UniqueTable {
    /// Node index per slot, or [`EMPTY`]. Length is a power of two.
    slots: Vec<u32>,
    /// `slots.len() - 1`.
    mask: usize,
    /// Occupied slot count.
    len: usize,
    /// Lookups that found an existing node.
    hits: u64,
    /// Total lookups.
    lookups: u64,
    /// Probe steps beyond the home slot (collision walk length).
    collisions: u64,
    /// Number of times the table doubled.
    grows: u64,
}

impl UniqueTable {
    fn with_capacity_pow2(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(64);
        UniqueTable {
            slots: vec![EMPTY; capacity],
            mask: capacity - 1,
            len: 0,
            hits: 0,
            lookups: 0,
            collisions: 0,
            grows: 0,
        }
    }

    /// Find the node equal to `(var, low, high)` or the empty slot where it
    /// belongs. Returns `Ok(existing_index)` or `Err(slot)`.
    #[inline]
    fn find(&mut self, nodes: &[Node], var: u32, low: Bdd, high: Bdd) -> Result<u32, usize> {
        self.lookups += 1;
        let mut slot = slot_of(node_hash(var, low, high), self.mask);
        loop {
            let s = self.slots[slot];
            if s == EMPTY {
                return Err(slot);
            }
            let n = nodes[s as usize];
            if n.var == var && n.low == low && n.high == high {
                self.hits += 1;
                return Ok(s);
            }
            self.collisions += 1;
            slot = (slot + 1) & self.mask;
        }
    }

    /// Fill a slot previously returned by [`UniqueTable::find`] and grow at
    /// 3/4 load so probe chains stay short.
    #[inline]
    fn insert(&mut self, slot: usize, index: u32, nodes: &[Node]) {
        self.slots[slot] = index;
        self.len += 1;
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow(nodes);
        }
    }

    /// Double the table and rehash every live non-terminal node.
    fn grow(&mut self, nodes: &[Node]) {
        self.grows += 1;
        self.rehash(nodes, self.slots.len() * 2);
    }

    /// Rebuild the table at `new_cap` slots (a power of two) from the live
    /// (non-poisoned) nodes of the arena — used by both growth and the
    /// post-sweep rebuild, which may also *shrink* the table.
    fn rehash(&mut self, nodes: &[Node], new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        self.mask = new_cap - 1;
        self.slots.clear();
        self.slots.resize(new_cap, EMPTY);
        self.len = 0;
        for (i, n) in nodes.iter().enumerate().skip(2) {
            if n.var == POISON {
                continue;
            }
            let mut slot = slot_of(node_hash(n.var, n.low, n.high), self.mask);
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = u32::try_from(i).expect("BDD arena overflow");
            self.len += 1;
        }
    }
}

/// A direct-mapped computed table (lossy overwrite on collision). The slot
/// count is fixed between collections; the collector may resize it.
#[derive(Clone)]
pub(crate) struct DirectCache<K: Copy + PartialEq> {
    entries: Vec<Option<(K, Bdd)>>,
    mask: usize,
    bits: u32,
    pub(crate) lookups: u64,
    pub(crate) hits: u64,
}

impl<K: Copy + PartialEq> DirectCache<K> {
    pub(crate) fn new(bits: u32) -> Self {
        let capacity = 1usize << bits;
        DirectCache {
            entries: vec![None; capacity],
            mask: capacity - 1,
            bits,
            lookups: 0,
            hits: 0,
        }
    }

    /// Drop every entry for which `keep` returns false. The sweep uses
    /// this to scrub out entries naming freed slots while leaving results
    /// over surviving nodes warm (live indices never move).
    pub(crate) fn retain(&mut self, keep: impl Fn(&K, Bdd) -> bool) {
        for e in &mut self.entries {
            if let Some((k, v)) = e {
                if !keep(k, *v) {
                    *e = None;
                }
            }
        }
    }

    /// Change the slot count, dropping every entry. Returns true when the
    /// size actually changed; on false the cache is left untouched (the
    /// caller scrubs it instead).
    pub(crate) fn reshape(&mut self, bits: u32) -> bool {
        if bits == self.bits {
            return false;
        }
        let capacity = 1usize << bits;
        self.entries.clear();
        self.entries.resize(capacity, None);
        self.mask = capacity - 1;
        self.bits = bits;
        true
    }

    #[inline]
    pub(crate) fn get(&mut self, hash: u64, key: K) -> Option<Bdd> {
        self.lookups += 1;
        match self.entries[slot_of(hash, self.mask)] {
            Some((k, v)) if k == key => {
                self.hits += 1;
                Some(v)
            }
            _ => None,
        }
    }

    #[inline]
    pub(crate) fn put(&mut self, hash: u64, key: K, value: Bdd) {
        self.entries[slot_of(hash, self.mask)] = Some((key, value));
    }
}

/// Initial slot-count exponents for the computed tables. Sized so that a
/// fresh manager costs well under a megabyte; the collector re-sizes them
/// adaptively (see [`adaptive_cache_bits`]) once the live set is known.
pub(crate) const APPLY_CACHE_BITS: u32 = 14;
pub(crate) const NOT_CACHE_BITS: u32 = 12;
pub(crate) const ITE_CACHE_BITS: u32 = 12;

/// Adaptive slot-count exponents `(apply, not, ite)` for a given live node
/// count, applied after each sweep: the apply cache tracks `live` rounded
/// up to a power of two, clamped to `[2^12, 2^14]`; the not/ite caches stay
/// two exponents smaller (their key spaces are far sparser), clamped to
/// `[2^10, 2^12]`. The upper clamp matches the measured optimum on the
/// reference container (see ROADMAP): these tables are direct-mapped and
/// touched on every operation, so growing them past the last-level cache
/// turns each lookup into a DRAM miss — measurably slower than the extra
/// evictions it avoids. Adaptivity therefore *shrinks* the caches for
/// small live sets rather than growing them for large ones.
pub(crate) fn adaptive_cache_bits(live: usize) -> (u32, u32, u32) {
    let lg = usize::BITS - live.max(2).saturating_sub(1).leading_zeros();
    let apply = lg.clamp(12, 14);
    let small = apply.saturating_sub(2).clamp(10, 12);
    (apply, small, small)
}

/// When (if ever) [`Manager::gc_checkpoint`] actually collects.
///
/// Checkpoints are placed by callers at *safe points* — moments when every
/// BDD needed later is protected — so the policy only decides frequency,
/// never safety.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcPolicy {
    /// Never collect automatically (a manual [`Manager::gc`] still works).
    /// The default: short-lived managers are cheapest when dropped whole.
    #[default]
    Disabled,
    /// Collect at a checkpoint once the in-use arena has grown past
    /// `growth_factor ×` the live set left by the previous collection
    /// (with `min_nodes` as the absolute floor, so small managers never
    /// pay for marking). If the mark pass then finds under ~12.5% garbage
    /// the sweep is skipped and the trigger backs off instead.
    Automatic {
        /// Arena-growth multiple that arms the trigger (≥ 2 recommended).
        growth_factor: usize,
        /// Never collect below this many in-use nodes.
        min_nodes: usize,
    },
    /// Collect (mark *and* sweep) at every checkpoint. For differential
    /// tests that must prove GC transparency; ruinous for throughput.
    Aggressive,
}

impl GcPolicy {
    /// The recommended automatic policy: collect when the arena doubles
    /// past the previous live set, never under 64k in-use nodes. Doubling
    /// bounds peak memory at ~2× the live set (plus within-item growth
    /// between checkpoints) while cache scrubbing keeps the sweeps cheap
    /// (measured in EXPERIMENTS.md §5.4).
    pub fn automatic() -> GcPolicy {
        GcPolicy::Automatic {
            growth_factor: 2,
            min_nodes: 1 << 16,
        }
    }
}

/// A point-in-time snapshot of a manager's internal counters, for
/// benchmarks and scalability reporting. Obtain via [`Manager::stats`];
/// merge across managers with [`ManagerStats::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Live (in-use) nodes, including the two terminals. Equals
    /// allocated-ever only when the manager has never swept.
    pub nodes: u64,
    /// High-water mark of live nodes over the manager's lifetime.
    pub peak_nodes: u64,
    /// Live nodes right after the most recent sweep (0 if never swept).
    pub post_gc_nodes: u64,
    /// Completed collections (sweeps; skipped-sweep checkpoints excluded).
    pub gc_runs: u64,
    /// Nodes freed across all collections.
    pub gc_nodes_freed: u64,
    /// Times a computed cache changed size after a collection.
    pub cache_resizes: u64,
    /// GC pauses: entries into the collector, including mark-only passes
    /// that skipped the sweep (a superset of `gc_runs`).
    pub gc_pauses: u64,
    /// Total wall-clock time spent paused in the collector, microseconds.
    pub gc_pause_us: u64,
    /// Longest single collector pause, microseconds (tail latency: one bad
    /// pause hides inside `gc_pause_us / gc_pauses`).
    pub gc_pause_max_us: u64,
    /// Unique-table lookups (one per `mk` after the reduction rule).
    pub unique_lookups: u64,
    /// Unique-table lookups that found an existing node.
    pub unique_hits: u64,
    /// Probe steps beyond the home slot across all unique-table lookups.
    pub unique_collisions: u64,
    /// Times the unique table doubled.
    pub unique_grows: u64,
    /// Apply-cache lookups.
    pub apply_lookups: u64,
    /// Apply-cache hits.
    pub apply_hits: u64,
    /// Negation-cache lookups.
    pub not_lookups: u64,
    /// Negation-cache hits.
    pub not_hits: u64,
    /// If-then-else-cache lookups.
    pub ite_lookups: u64,
    /// If-then-else-cache hits.
    pub ite_hits: u64,
    /// Canonical rule-BDD cache lookups (the symbolic layer's per-space
    /// memo for ACL rule conditions / prefix-matcher folds; filled in by
    /// the driver, zero when read straight off a [`Manager`]).
    pub rule_cache_lookups: u64,
    /// Canonical rule-BDD cache hits.
    pub rule_cache_hits: u64,
    /// Semantic-diff path pairs actually visited (driver-filled; see
    /// `campion-core`'s `DiffPruneStats`).
    pub pairs_examined: u64,
    /// Semantic-diff path pairs skipped by disagreement-set pruning.
    pub pairs_pruned: u64,
    /// Semantic-diff inner loops cut short by the remainder early exit.
    pub early_exits: u64,
    /// Shared-manager unique-table CAS insertions that lost the race and
    /// retried (zero on a private [`Manager`] — it has no shards).
    pub shard_cas_retries: u64,
    /// Shared-manager shard accesses that blocked on the shard lock
    /// (insert contention or a concurrent segment growth; zero on a
    /// private [`Manager`]).
    pub shard_lock_waits: u64,
}

impl ManagerStats {
    /// Apply-cache hit rate in `[0, 1]` (0 when no lookups).
    pub fn apply_hit_rate(&self) -> f64 {
        rate(self.apply_hits, self.apply_lookups)
    }

    /// Rule-BDD cache hit rate in `[0, 1]` (0 when no lookups).
    pub fn rule_cache_hit_rate(&self) -> f64 {
        rate(self.rule_cache_hits, self.rule_cache_lookups)
    }

    /// Unique-table hit rate in `[0, 1]` (share of `mk` calls answered by
    /// an existing node).
    pub fn unique_hit_rate(&self) -> f64 {
        rate(self.unique_hits, self.unique_lookups)
    }

    /// Mean probe steps beyond the home slot per unique-table lookup.
    pub fn unique_collisions_per_lookup(&self) -> f64 {
        if self.unique_lookups == 0 {
            0.0
        } else {
            self.unique_collisions as f64 / self.unique_lookups as f64
        }
    }

    /// Accumulate another manager's counters into this one. (Counters sum;
    /// for per-pair managers the summed `peak_nodes` is the aggregate
    /// allocation high-water mark across disjoint arenas.)
    pub fn merge(&mut self, other: &ManagerStats) {
        self.nodes += other.nodes;
        self.peak_nodes += other.peak_nodes;
        self.post_gc_nodes += other.post_gc_nodes;
        self.gc_runs += other.gc_runs;
        self.gc_nodes_freed += other.gc_nodes_freed;
        self.cache_resizes += other.cache_resizes;
        self.gc_pauses += other.gc_pauses;
        self.gc_pause_us += other.gc_pause_us;
        self.gc_pause_max_us = self.gc_pause_max_us.max(other.gc_pause_max_us);
        self.unique_lookups += other.unique_lookups;
        self.unique_hits += other.unique_hits;
        self.unique_collisions += other.unique_collisions;
        self.unique_grows += other.unique_grows;
        self.apply_lookups += other.apply_lookups;
        self.apply_hits += other.apply_hits;
        self.not_lookups += other.not_lookups;
        self.not_hits += other.not_hits;
        self.ite_lookups += other.ite_lookups;
        self.ite_hits += other.ite_hits;
        self.rule_cache_lookups += other.rule_cache_lookups;
        self.rule_cache_hits += other.rule_cache_hits;
        self.pairs_examined += other.pairs_examined;
        self.pairs_pruned += other.pairs_pruned;
        self.early_exits += other.early_exits;
        self.shard_cas_retries += other.shard_cas_retries;
        self.shard_lock_waits += other.shard_lock_waits;
    }
}

fn rate(hits: u64, lookups: u64) -> f64 {
    if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    }
}

/// The BDD manager: owns all nodes and provides every operation.
///
/// The variable order is fixed at construction: variable `0` is the topmost
/// decision level. Campion's symbolic layer chooses an order that keeps
/// related header bits adjacent (most-significant destination-IP bit first),
/// which keeps prefix constraints linear-sized.
///
/// `Clone` snapshots the whole arena. Node indices are preserved, so every
/// [`Bdd`] handle (and protect refcount) valid in the original is valid in
/// the clone and denotes the same function — clones can fan read-mostly
/// work out across threads and be dropped wholesale afterwards.
#[derive(Clone)]
pub struct Manager {
    num_vars: u32,
    nodes: Vec<Node>,
    unique: UniqueTable,
    apply_cache: DirectCache<(u8, Bdd, Bdd)>,
    not_cache: DirectCache<Bdd>,
    ite_cache: DirectCache<(Bdd, Bdd, Bdd)>,
    /// Freed arena slots awaiting reuse, ascending (pop recycles the
    /// highest index first — deterministic for a fixed operation/GC
    /// sequence).
    free: Vec<u32>,
    /// Protect-refcounts per rooted node index (terminals are implicit).
    roots: HashMap<u32, u32>,
    gc_policy: GcPolicy,
    /// Live count right after the last sweep (or mark-only back-off).
    live_after_gc: usize,
    /// High-water mark of live nodes.
    peak_live: usize,
    gc_runs: u64,
    gc_nodes_freed: u64,
    cache_resizes: u64,
    gc_pauses: u64,
    gc_pause_us: u64,
    gc_pause_max_us: u64,
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("num_vars", &self.num_vars)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Manager {
    /// Create a manager over `num_vars` boolean variables, ordered `0..num_vars`.
    pub fn new(num_vars: u32) -> Self {
        Manager::with_capacity(num_vars, 0)
    }

    /// Like [`Manager::new`], pre-sizing the unique table for roughly
    /// `expected_nodes` nodes so large workloads skip the doubling ladder.
    pub fn with_capacity(num_vars: u32, expected_nodes: usize) -> Self {
        // Index 0 and 1 are reserved for the terminals. Their stored `var` is
        // `num_vars` (one past the last real level) so that terminal `var`
        // compares greater than every decision level.
        let terminal = Node {
            var: num_vars,
            low: Bdd::FALSE,
            high: Bdd::FALSE,
        };
        Manager {
            num_vars,
            nodes: vec![
                terminal,
                Node {
                    var: num_vars,
                    low: Bdd::TRUE,
                    high: Bdd::TRUE,
                },
            ],
            // Aim for ≤ 3/4 load once `expected_nodes` nodes exist.
            unique: UniqueTable::with_capacity_pow2(expected_nodes.saturating_mul(4) / 3),
            apply_cache: DirectCache::new(APPLY_CACHE_BITS),
            not_cache: DirectCache::new(NOT_CACHE_BITS),
            ite_cache: DirectCache::new(ITE_CACHE_BITS),
            free: Vec::new(),
            roots: HashMap::new(),
            gc_policy: GcPolicy::Disabled,
            live_after_gc: 0,
            peak_live: 2,
            gc_runs: 0,
            gc_nodes_freed: 0,
            cache_resizes: 0,
            gc_pauses: 0,
            gc_pause_us: 0,
            gc_pause_max_us: 0,
        }
    }

    /// Number of variables in this manager's order.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of live (in-use) nodes, including the two terminals —
    /// allocated minus freed-and-not-yet-recycled. Useful for benchmarks
    /// and scalability reporting.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Snapshot of the internal hot-path counters.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            nodes: self.node_count() as u64,
            peak_nodes: self.peak_live as u64,
            post_gc_nodes: self.live_after_gc as u64,
            gc_runs: self.gc_runs,
            gc_nodes_freed: self.gc_nodes_freed,
            cache_resizes: self.cache_resizes,
            gc_pauses: self.gc_pauses,
            gc_pause_us: self.gc_pause_us,
            gc_pause_max_us: self.gc_pause_max_us,
            unique_lookups: self.unique.lookups,
            unique_hits: self.unique.hits,
            unique_collisions: self.unique.collisions,
            unique_grows: self.unique.grows,
            apply_lookups: self.apply_cache.lookups,
            apply_hits: self.apply_cache.hits,
            not_lookups: self.not_cache.lookups,
            not_hits: self.not_cache.hits,
            ite_lookups: self.ite_cache.lookups,
            ite_hits: self.ite_cache.hits,
            // Filled in by the driver layer; the manager itself has no view
            // of the symbolic rule caches or the diff pruning counters.
            rule_cache_lookups: 0,
            rule_cache_hits: 0,
            pairs_examined: 0,
            pairs_pruned: 0,
            early_exits: 0,
            shard_cas_retries: 0,
            shard_lock_waits: 0,
        }
    }

    /// The constant-false function.
    pub fn false_(&self) -> Bdd {
        Bdd::FALSE
    }

    /// The constant-true function.
    pub fn true_(&self) -> Bdd {
        Bdd::TRUE
    }

    /// Is `f` the constant true?
    pub fn is_true(&self, f: Bdd) -> bool {
        f.is_const_true()
    }

    /// Is `f` the constant false?
    pub fn is_false(&self, f: Bdd) -> bool {
        f.is_const_false()
    }

    fn var_of(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn low_of(&self, f: Bdd) -> Bdd {
        self.nodes[f.0 as usize].low
    }

    fn high_of(&self, f: Bdd) -> Bdd {
        self.nodes[f.0 as usize].high
    }

    /// Get-or-create the node `(var, low, high)`, applying the ROBDD
    /// reduction rule (`low == high` collapses to the child).
    fn mk(&mut self, var: u32, low: Bdd, high: Bdd) -> Bdd {
        debug_assert!(var < self.num_vars, "variable {var} out of range");
        debug_assert!(var < self.var_of(low) && var < self.var_of(high));
        if low == high {
            return low;
        }
        match self.unique.find(&self.nodes, var, low, high) {
            Ok(existing) => Bdd(existing),
            Err(slot) => {
                let node = Node { var, low, high };
                // Recycle a swept slot when one is available so handles stay
                // dense; otherwise extend the arena. The free list is rebuilt
                // in ascending index order by every sweep, so `pop` hands out
                // the highest free index first — deterministic across runs.
                let idx = match self.free.pop() {
                    Some(i) => {
                        self.nodes[i as usize] = node;
                        i
                    }
                    None => {
                        let idx = u32::try_from(self.nodes.len()).expect("BDD arena overflow");
                        assert!(idx != EMPTY, "BDD arena overflow");
                        self.nodes.push(node);
                        idx
                    }
                };
                self.unique.insert(slot, idx, &self.nodes);
                let live = self.nodes.len() - self.free.len();
                if live > self.peak_live {
                    self.peak_live = live;
                }
                Bdd(idx)
            }
        }
    }

    /// The function `var = 1` (a single positive literal).
    pub fn var(&mut self, var: u32) -> Bdd {
        self.mk(var, Bdd::FALSE, Bdd::TRUE)
    }

    /// The function `var = 0` (a single negative literal).
    pub fn nvar(&mut self, var: u32) -> Bdd {
        self.mk(var, Bdd::TRUE, Bdd::FALSE)
    }

    /// A literal: positive if `value`, else negative.
    pub fn literal(&mut self, var: u32, value: bool) -> Bdd {
        if value {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// Boolean negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        if f.is_const_false() {
            return Bdd::TRUE;
        }
        if f.is_const_true() {
            return Bdd::FALSE;
        }
        let hash = fx_mix(0, u64::from(f.0));
        if let Some(r) = self.not_cache.get(hash, f) {
            return r;
        }
        let (var, low, high) = (self.var_of(f), self.low_of(f), self.high_of(f));
        let nl = self.not(low);
        let nh = self.not(high);
        let r = self.mk(var, nl, nh);
        self.not_cache.put(hash, f, r);
        let rhash = fx_mix(0, u64::from(r.0));
        self.not_cache.put(rhash, r, f);
        r
    }

    fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Bdd {
        if let Some(r) = op.terminal(f, g) {
            return r;
        }
        let (f, g) = if op.commutative() && g < f {
            (g, f)
        } else {
            (f, g)
        };
        let key = (op as u8, f, g);
        let hash = fx_mix(
            fx_mix(fx_mix(0, u64::from(op as u8)), u64::from(f.0)),
            u64::from(g.0),
        );
        if let Some(r) = self.apply_cache.get(hash, key) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let var = vf.min(vg);
        let (fl, fh) = if vf == var {
            (self.low_of(f), self.high_of(f))
        } else {
            (f, f)
        };
        let (gl, gh) = if vg == var {
            (self.low_of(g), self.high_of(g))
        } else {
            (g, g)
        };
        let low = self.apply(op, fl, gl);
        let high = self.apply(op, fh, gh);
        let r = self.mk(var, low, high);
        self.apply_cache.put(hash, key, r);
        r
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::And, f, g)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Xor, f, g)
    }

    /// Set difference `f ∧ ¬g` — the workhorse of `SemanticDiff` and
    /// `HeaderLocalize` (remainder sets, excluded prefixes).
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Diff, f, g)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let d = self.diff(f, g);
        self.not(d)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Conjunction over many operands (true for the empty list).
    ///
    /// Reduces pairwise as a balanced tree rather than a linear fold:
    /// combining operands of similar size keeps intermediate BDDs small,
    /// the classic multi-operand strategy in mature packages.
    pub fn and_all(&mut self, fs: &[Bdd]) -> Bdd {
        self.balanced_reduce(fs, Op::And, Bdd::TRUE, Bdd::FALSE)
    }

    /// Disjunction over many operands (false for the empty list).
    ///
    /// Balanced-tree reduction; see [`Manager::and_all`].
    pub fn or_all(&mut self, fs: &[Bdd]) -> Bdd {
        self.balanced_reduce(fs, Op::Or, Bdd::FALSE, Bdd::TRUE)
    }

    /// Pairwise balanced reduction with early exit on the absorbing
    /// element (`false` for AND, `true` for OR).
    fn balanced_reduce(&mut self, fs: &[Bdd], op: Op, identity: Bdd, absorbing: Bdd) -> Bdd {
        if fs.is_empty() {
            return identity;
        }
        let mut layer: Vec<Bdd> = fs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                let r = if chunk.len() == 2 {
                    self.apply(op, chunk[0], chunk[1])
                } else {
                    chunk[0]
                };
                if r == absorbing {
                    return absorbing;
                }
                next.push(r);
            }
            layer = next;
        }
        layer[0]
    }

    /// If-then-else: `(c ∧ t) ∨ (¬c ∧ e)`. This is how the symbolic layer
    /// folds a route map's clause chain into per-path predicates.
    pub fn ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        if c.is_const_true() {
            return t;
        }
        if c.is_const_false() {
            return e;
        }
        if t == e {
            return t;
        }
        if t.is_const_true() && e.is_const_false() {
            return c;
        }
        let key = (c, t, e);
        let hash = fx_mix(
            fx_mix(fx_mix(0, u64::from(c.0)), u64::from(t.0)),
            u64::from(e.0),
        );
        if let Some(r) = self.ite_cache.get(hash, key) {
            return r;
        }
        let var = self.var_of(c).min(self.var_of(t)).min(self.var_of(e));
        let cof = |m: &Manager, f: Bdd, hi: bool| -> Bdd {
            if m.var_of(f) == var {
                if hi {
                    m.high_of(f)
                } else {
                    m.low_of(f)
                }
            } else {
                f
            }
        };
        let (cl, tl, el) = (
            cof(self, c, false),
            cof(self, t, false),
            cof(self, e, false),
        );
        let (ch, th, eh) = (cof(self, c, true), cof(self, t, true), cof(self, e, true));
        let low = self.ite(cl, tl, el);
        let high = self.ite(ch, th, eh);
        let r = self.mk(var, low, high);
        self.ite_cache.put(hash, key, r);
        r
    }

    /// Are `f` and `g` the same function? (Constant time: hash-consing makes
    /// handle equality canonical.)
    pub fn equivalent(&self, f: Bdd, g: Bdd) -> bool {
        f == g
    }

    /// Cofactor of `f` with variable `var` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, var: u32, value: bool) -> Bdd {
        if f.is_const() {
            return f;
        }
        let v = self.var_of(f);
        if v > var {
            // `var` does not appear in `f` (it is below the restricted level).
            return f;
        }
        if v == var {
            return if value {
                self.high_of(f)
            } else {
                self.low_of(f)
            };
        }
        // v < var: rebuild. Memoization via the ite cache keyed on a literal
        // would be possible; restriction is rare in Campion so keep it simple.
        let (low, high) = (self.low_of(f), self.high_of(f));
        let l = self.restrict(low, var, value);
        let h = self.restrict(high, var, value);
        self.mk(v, l, h)
    }

    /// Existential quantification of a set of variables:
    /// `∃ vars . f = f[var↦0] ∨ f[var↦1]` for each var, applied bottom-up.
    ///
    /// `vars` must be sorted ascending. Memoized per call — quantification
    /// over shared subgraphs is linear in the BDD size.
    pub fn exists(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
        let mut memo = HashMap::new();
        self.exists_rec(f, vars, &mut memo)
    }

    fn exists_rec(&mut self, f: Bdd, vars: &[u32], memo: &mut HashMap<Bdd, Bdd>) -> Bdd {
        if f.is_const() || vars.is_empty() {
            return f;
        }
        let v = self.var_of(f);
        // Drop quantified variables above f's top level: they are free in f.
        // (Memo entries stay valid: a node's result only depends on the
        // variables at or below its own level.)
        let mut rest = vars;
        while let Some((&first, tail)) = rest.split_first() {
            if first < v {
                rest = tail;
            } else {
                break;
            }
        }
        if rest.is_empty() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (low, high) = (self.low_of(f), self.high_of(f));
        let r = if rest[0] == v {
            let l = self.exists_rec(low, &rest[1..], memo);
            let h = self.exists_rec(high, &rest[1..], memo);
            self.or(l, h)
        } else {
            let l = self.exists_rec(low, rest, memo);
            let h = self.exists_rec(high, rest, memo);
            self.mk(v, l, h)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification `∀ vars . f`.
    pub fn forall(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// Number of satisfying assignments over the full variable set.
    ///
    /// Uses `u128` counts, sufficient for the ≤ 120-variable layouts the
    /// symbolic layer uses (the route-advertisement layout is < 80 variables).
    ///
    /// # Panics
    /// Panics if `num_vars > 127` and the count would overflow `u128`.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        assert!(
            self.num_vars <= 127,
            "sat_count supports at most 127 variables"
        );
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        // sat_count_rec(f) counts assignments to the variables strictly below
        // f's level (i.e. levels var_of(f)..num_vars exclusive of var_of(f)
        // itself for non-terminals). Scale up for the levels above the root.
        let below = self.sat_count_rec(f, &mut memo);
        below << self.var_of(f)
    }

    /// Counts satisfying assignments of `f` over variable levels
    /// `var_of(f) .. num_vars`.
    fn sat_count_rec(&self, f: Bdd, memo: &mut HashMap<Bdd, u128>) -> u128 {
        if f.is_const_false() {
            return 0;
        }
        if f.is_const_true() {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let node = self.nodes[f.0 as usize];
        let cl = self.sat_count_rec(node.low, memo) << (self.var_of(node.low) - node.var - 1);
        let ch = self.sat_count_rec(node.high, memo) << (self.var_of(node.high) - node.var - 1);
        let total = cl + ch;
        memo.insert(f, total);
        total
    }

    /// Evaluate `f` under a complete assignment.
    pub fn eval(&self, f: Bdd, assignment: &Assignment) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let node = self.nodes[cur.0 as usize];
            cur = if assignment.get(node.var) {
                node.high
            } else {
                node.low
            };
        }
        cur.is_const_true()
    }

    /// Is `f` satisfiable? (Constant time.)
    pub fn is_sat(&self, f: Bdd) -> bool {
        !f.is_const_false()
    }

    /// The lexicographically-first satisfying cube: at each node prefer the
    /// `low` (false) branch when it can still reach `true`. Variables skipped
    /// on the path are unconstrained (`None` in the cube).
    ///
    /// Returns `None` when `f` is unsatisfiable.
    pub fn first_sat(&self, f: Bdd) -> Option<Cube> {
        if f.is_const_false() {
            return None;
        }
        let mut values: Vec<Option<bool>> = vec![None; self.num_vars as usize];
        let mut cur = f;
        while !cur.is_const() {
            let node = self.nodes[cur.0 as usize];
            if !node.low.is_const_false() {
                values[node.var as usize] = Some(false);
                cur = node.low;
            } else {
                values[node.var as usize] = Some(true);
                cur = node.high;
            }
        }
        Some(Cube::new(values))
    }

    /// The lexicographically-first *complete* satisfying assignment
    /// (unconstrained variables resolved to `false`).
    pub fn first_sat_assignment(&self, f: Bdd) -> Option<Assignment> {
        self.first_sat(f).map(|c| c.complete_with(false))
    }

    /// Like [`Manager::first_sat`], but preferring the `high` (true) branch
    /// at each node. Campion's example extraction uses this so the first
    /// listed atom appears in the example (matching the paper's Table 2(b),
    /// which shows `10:10` rather than `10:11`).
    pub fn first_sat_preferring_true(&self, f: Bdd) -> Option<Cube> {
        if f.is_const_false() {
            return None;
        }
        let mut values: Vec<Option<bool>> = vec![None; self.num_vars as usize];
        let mut cur = f;
        while !cur.is_const() {
            let node = self.nodes[cur.0 as usize];
            if !node.high.is_const_false() {
                values[node.var as usize] = Some(true);
                cur = node.high;
            } else {
                values[node.var as usize] = Some(false);
                cur = node.low;
            }
        }
        Some(Cube::new(values))
    }

    /// Iterate over all satisfying cubes of `f` in deterministic
    /// (lexicographic, low-first) order. Each yielded [`Cube`] is a disjoint
    /// path to `true`; the cubes partition the satisfying set.
    pub fn sat_cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter::new(self, f)
    }

    /// Iterate over satisfying cubes ordered most-general-first (fewest
    /// constrained variables), lazily — no full cube materialization.
    pub fn sat_cubes_general(&self, f: Bdd) -> crate::cube::GeneralCubeIter<'_> {
        crate::cube::GeneralCubeIter::new(self, f)
    }

    /// The set of variables on which `f` actually depends, ascending.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.0 as usize];
            vars.insert(node.var);
            stack.push(node.low);
            stack.push(node.high);
        }
        vars.into_iter().collect()
    }

    /// Number of nodes reachable from `f` (a size measure for reports).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.nodes[n.0 as usize];
            stack.push(node.low);
            stack.push(node.high);
        }
        count
    }

    pub(crate) fn node(&self, f: Bdd) -> (u32, Bdd, Bdd) {
        let n = self.nodes[f.0 as usize];
        (n.var, n.low, n.high)
    }

    // === Garbage collection =================================================

    /// Add `f` to the root set. Roots (and everything reachable from them)
    /// survive collection; every other node is swept. Protecting the same
    /// handle more than once is reference-counted, so nested callers can
    /// protect/unprotect independently. Terminals are always live and need
    /// no protection.
    pub fn protect(&mut self, f: Bdd) {
        if f.is_const() {
            return;
        }
        debug_assert!((f.0 as usize) < self.nodes.len());
        debug_assert!(
            self.nodes[f.0 as usize].var != POISON,
            "protecting a dead handle"
        );
        *self.roots.entry(f.0).or_insert(0) += 1;
    }

    /// Drop one protection reference from `f` (the inverse of
    /// [`Manager::protect`]). The node only becomes collectable once every
    /// protect call has been balanced by an unprotect.
    pub fn unprotect(&mut self, f: Bdd) {
        if f.is_const() {
            return;
        }
        match self.roots.get_mut(&f.0) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.roots.remove(&f.0);
            }
            None => debug_assert!(false, "unprotect without matching protect"),
        }
    }

    /// Number of distinct protected handles (for tests and diagnostics).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Install a collection trigger policy. The default is
    /// [`GcPolicy::Disabled`]; see the policy docs for the trigger math.
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.gc_policy = policy;
    }

    /// The currently-installed trigger policy.
    pub fn gc_policy(&self) -> GcPolicy {
        self.gc_policy
    }

    /// Force a full mark/sweep collection now, regardless of policy.
    /// Returns the number of nodes freed. Every `Bdd` handle not reachable
    /// from the root set is invalid afterwards — see the module docs for
    /// the safe-point contract.
    pub fn gc(&mut self) -> usize {
        self.collect(true)
    }

    /// A safe point: run a collection here if (and only if) the installed
    /// [`GcPolicy`] asks for one. Returns whether a sweep ran. Callers place
    /// this between logical work items, after protecting everything they
    /// hold across the call.
    pub fn gc_checkpoint(&mut self) -> bool {
        match self.gc_policy {
            GcPolicy::Disabled => false,
            GcPolicy::Aggressive => {
                self.collect(true);
                true
            }
            GcPolicy::Automatic {
                growth_factor,
                min_nodes,
            } => {
                let in_use = self.nodes.len() - self.free.len();
                let floor = self.live_after_gc.max(min_nodes);
                if in_use >= floor.saturating_mul(growth_factor.max(1)) {
                    self.collect(false) > 0
                } else {
                    false
                }
            }
        }
    }

    /// Mark every node reachable from the root set. Returns the mark bitmap
    /// (bit per arena index, terminals always set) and the live count.
    fn mark_reachable(&self) -> (Vec<u64>, usize) {
        let words = self.nodes.len().div_ceil(64);
        let mut marks = vec![0u64; words];
        marks[0] |= 0b11; // terminals are always live
        let mut live = 2usize;
        let mut stack: Vec<u32> = self.roots.keys().copied().collect();
        while let Some(i) = stack.pop() {
            let (word, bit) = (i as usize / 64, i as usize % 64);
            if marks[word] & (1 << bit) != 0 {
                continue;
            }
            marks[word] |= 1 << bit;
            live += 1;
            let node = &self.nodes[i as usize];
            debug_assert!(node.var != POISON, "marked a dead node");
            if !node.low.is_const() {
                stack.push(node.low.0);
            }
            if !node.high.is_const() {
                stack.push(node.high.0);
            }
        }
        (marks, live)
    }

    /// Pause-accounting wrapper around [`Manager::collect_inner`]: every
    /// collector entry (sweeps *and* mark-only back-offs) counts as one GC
    /// pause, its wall time accumulates into `gc_pause_us`, and — when the
    /// trace collector is on — the pause shows up as a `bdd.gc` span on the
    /// worker's track with the freed-node count attached.
    fn collect(&mut self, force: bool) -> usize {
        let t0 = std::time::Instant::now();
        let mut span = campion_trace::span("bdd.gc");
        let freed = self.collect_inner(force);
        self.gc_pauses += 1;
        let pause_us = t0.elapsed().as_micros() as u64;
        self.gc_pause_us += pause_us;
        self.gc_pause_max_us = self.gc_pause_max_us.max(pause_us);
        span.counter("freed_nodes", freed as i64);
        span.counter("live_nodes", self.node_count() as i64);
        freed
    }

    /// The mark/sweep engine behind [`Manager::gc`] and
    /// [`Manager::gc_checkpoint`]. When `force` is false (automatic trigger)
    /// and less than 1/8 of the in-use nodes are garbage, the sweep is
    /// skipped — marking already paid the traversal, so we just raise the
    /// trigger floor and return. Returns the number of nodes freed.
    fn collect_inner(&mut self, force: bool) -> usize {
        let in_use = self.nodes.len() - self.free.len();
        let (marks, live) = self.mark_reachable();
        let garbage = in_use - live;
        if !force && garbage * 8 < in_use {
            // Not enough garbage to be worth rebuilding the unique table.
            // Remember the live count so the automatic trigger backs off
            // instead of re-marking at every checkpoint.
            self.live_after_gc = live;
            return 0;
        }

        // Sweep: poison every unmarked slot and rebuild the free list in
        // ascending index order (deterministic reuse; see `mk`).
        self.free.clear();
        for i in 2..self.nodes.len() {
            let (word, bit) = (i / 64, i % 64);
            if marks[word] & (1 << bit) == 0 {
                self.nodes[i] = POISON_NODE;
                self.free.push(i as u32);
            }
        }

        // Rebuild the unique table over the survivors, shrinking it when the
        // live set no longer justifies the grown capacity (keep ≤ 3/4 load).
        let live_nonterminal = live - 2;
        let target = live_nonterminal
            .saturating_mul(4)
            .div_ceil(3)
            .next_power_of_two()
            .max(1 << 6);
        self.unique.rehash(&self.nodes, target);

        // Resize the computed caches to fit the live set. When the size is
        // unchanged, scrub instead of dropping wholesale: an entry whose
        // operands and result all survived is still exact (indices never
        // move), and keeping it warm avoids recomputing shared subresults
        // after every collection. Entries naming a freed slot must go —
        // they would alias whatever `mk` later recycles into that slot.
        let alive =
            |b: Bdd| b.is_const() || marks[b.0 as usize / 64] & (1 << (b.0 as usize % 64)) != 0;
        let (apply_bits, not_bits, ite_bits) = adaptive_cache_bits(live);
        if self.apply_cache.reshape(apply_bits) {
            self.cache_resizes += 1;
        } else {
            self.apply_cache
                .retain(|&(_, f, g), r| alive(f) && alive(g) && alive(r));
        }
        if self.not_cache.reshape(not_bits) {
            self.cache_resizes += 1;
        } else {
            self.not_cache.retain(|&f, r| alive(f) && alive(r));
        }
        if self.ite_cache.reshape(ite_bits) {
            self.cache_resizes += 1;
        } else {
            self.ite_cache
                .retain(|&(f, g, h), r| alive(f) && alive(g) && alive(h) && alive(r));
        }

        self.gc_runs += 1;
        self.gc_nodes_freed += garbage as u64;
        self.live_after_gc = live;
        garbage
    }

    /// Check the structural invariants that must hold immediately after a
    /// collection: the unique table indexes exactly the reachable
    /// non-terminal nodes, dead slots are poisoned and on the free list, and
    /// canonicity (each live node findable at its own index) is intact.
    /// Intended for tests; panics on violation.
    pub fn assert_gc_invariants(&mut self) {
        let (marks, live) = self.mark_reachable();
        let marked = |i: usize| marks[i / 64] & (1 << (i % 64)) != 0;

        assert_eq!(self.node_count(), live, "live count out of sync");
        assert_eq!(
            self.unique.len,
            live - 2,
            "unique table population != reachable non-terminals"
        );

        let mut free_set: Vec<bool> = vec![false; self.nodes.len()];
        for &i in &self.free {
            assert!(!marked(i as usize), "reachable node on the free list");
            assert!(
                self.nodes[i as usize].var == POISON,
                "free-list node not poisoned"
            );
            assert!(!free_set[i as usize], "duplicate free-list entry");
            free_set[i as usize] = true;
        }

        let mut seen = HashMap::new();
        #[allow(clippy::needless_range_loop)] // indexes nodes, marks and free_set alike
        for i in 2..self.nodes.len() {
            let node = self.nodes[i];
            if !marked(i) {
                assert!(
                    node.var == POISON && free_set[i],
                    "dead node {i} neither poisoned nor freed"
                );
                continue;
            }
            assert!(node.var != POISON, "reachable node is poisoned");
            // Canonicity: the triple must be unique among live nodes and the
            // table must resolve it back to this exact index.
            let prev = seen.insert((node.var, node.low, node.high), i);
            assert!(prev.is_none(), "duplicate live node for {node:?}");
            match self.unique.find(&self.nodes, node.var, node.low, node.high) {
                Ok(found) => assert_eq!(found as usize, i, "unique table aliases node {i}"),
                Err(_) => panic!("live node {i} missing from unique table"),
            }
        }
    }
}
