//! # campion-bdd — reduced ordered binary decision diagrams
//!
//! A from-scratch ROBDD engine serving the same role JavaBDD plays in the
//! original Campion implementation: the symbolic substrate under
//! `SemanticDiff` (equivalence-class predicates over packet headers and route
//! advertisements) and `HeaderLocalize` (prefix-range set algebra).
//!
//! Design goals follow the session's networking guides (smoltcp style):
//! simplicity and robustness over cleverness — no unsafe, no macro tricks,
//! plain hash-consed nodes with memoized operations.
//!
//! ## Model
//!
//! A [`Manager`] owns an arena of nodes over a fixed variable order
//! `0 .. num_vars`. A [`Bdd`] is a copyable handle (index) into that arena;
//! all operations go through the manager:
//!
//! ```
//! use campion_bdd::Manager;
//! let mut m = Manager::new(4);
//! let x0 = m.var(0);
//! let x1 = m.var(1);
//! let f = m.and(x0, x1);
//! assert_eq!(m.sat_count(f), 4); // x0 & x1 over 4 variables: 2^2 models
//! let g = m.not(f);
//! let h = m.or(f, g);
//! assert!(m.is_true(h));
//! ```
//!
//! ## Determinism
//!
//! Node indices, cube iteration order and `first_sat` are fully deterministic
//! for a fixed sequence of operations. The Minesweeper baseline relies on this
//! to make its counterexample-enumeration experiment (§2.1 of the paper)
//! reproducible.

#![warn(missing_docs)]

mod any;
mod cube;
mod manager;
mod shared;

pub use any::AnyManager;
pub use cube::{Assignment, Cube, CubeIter, GeneralCubeIter};
pub use manager::{Bdd, GcPolicy, Manager, ManagerStats};
pub use shared::{SharedManager, SharedPool, SharedWorker};

#[cfg(test)]
mod tests;
