//! Unit and property tests for the BDD engine.

use crate::{Assignment, Bdd, Manager};

#[test]
fn terminals_are_distinct() {
    let m = Manager::new(3);
    assert!(m.is_true(Bdd::TRUE));
    assert!(m.is_false(Bdd::FALSE));
    assert_ne!(Bdd::TRUE, Bdd::FALSE);
}

#[test]
fn var_and_nvar_are_complements() {
    let mut m = Manager::new(3);
    let x = m.var(1);
    let nx = m.nvar(1);
    assert_eq!(m.not(x), nx);
    assert_eq!(m.not(nx), x);
    let both = m.and(x, nx);
    assert!(m.is_false(both));
    let either = m.or(x, nx);
    assert!(m.is_true(either));
}

#[test]
fn hash_consing_canonicalizes() {
    let mut m = Manager::new(4);
    let a = m.var(0);
    let b = m.var(1);
    let f1 = m.and(a, b);
    let f2 = m.and(b, a);
    assert_eq!(f1, f2, "commutativity should yield identical handles");
    let g1 = m.or(a, b);
    let na = m.not(a);
    let nb = m.not(b);
    let ng = m.and(na, nb);
    let g2 = m.not(ng);
    assert_eq!(g1, g2, "De Morgan should yield identical handles");
}

#[test]
fn reduction_rule_collapses_redundant_nodes() {
    let mut m = Manager::new(2);
    let x = m.var(0);
    // (x ∧ true) ∨ (¬x ∧ true) = true; no node should survive reduction.
    let nx = m.not(x);
    let f = m.or(x, nx);
    assert!(m.is_true(f));
    assert_eq!(m.size(f), 0);
}

#[test]
fn ite_matches_definition() {
    let mut m = Manager::new(3);
    let c = m.var(0);
    let t = m.var(1);
    let e = m.var(2);
    let via_ite = m.ite(c, t, e);
    let ct = m.and(c, t);
    let nc = m.not(c);
    let nce = m.and(nc, e);
    let manual = m.or(ct, nce);
    assert_eq!(via_ite, manual);
}

#[test]
fn diff_is_and_not() {
    let mut m = Manager::new(3);
    let a = m.var(0);
    let b = m.var(1);
    let d = m.diff(a, b);
    let nb = m.not(b);
    let manual = m.and(a, nb);
    assert_eq!(d, manual);
}

#[test]
fn sat_count_simple() {
    let mut m = Manager::new(4);
    assert_eq!(m.sat_count(Bdd::TRUE), 16);
    assert_eq!(m.sat_count(Bdd::FALSE), 0);
    let x = m.var(0);
    assert_eq!(m.sat_count(x), 8);
    let y = m.var(3);
    assert_eq!(m.sat_count(y), 8);
    let xy = m.and(x, y);
    assert_eq!(m.sat_count(xy), 4);
    let xoy = m.or(x, y);
    assert_eq!(m.sat_count(xoy), 12);
}

#[test]
fn restrict_cofactors() {
    let mut m = Manager::new(3);
    let x = m.var(0);
    let y = m.var(1);
    let f = m.and(x, y);
    let f_x1 = m.restrict(f, 0, true);
    assert_eq!(f_x1, y);
    let f_x0 = m.restrict(f, 0, false);
    assert!(m.is_false(f_x0));
    // Restricting a variable not in the support is the identity.
    let f_z = m.restrict(f, 2, true);
    assert_eq!(f_z, f);
}

#[test]
fn exists_removes_support() {
    let mut m = Manager::new(3);
    let x = m.var(0);
    let y = m.var(1);
    let f = m.and(x, y);
    let ex = m.exists(f, &[0]);
    assert_eq!(ex, y);
    let exy = m.exists(f, &[0, 1]);
    assert!(m.is_true(exy));
    // forall x . (x ∧ y) = false
    let fa = m.forall(f, &[0]);
    assert!(m.is_false(fa));
    // forall x . (x ∨ ¬x) = true
    let nx = m.not(x);
    let taut = m.or(x, nx);
    let fa2 = m.forall(taut, &[0]);
    assert!(m.is_true(fa2));
}

#[test]
fn support_reports_dependencies() {
    let mut m = Manager::new(5);
    let a = m.var(1);
    let b = m.var(3);
    let f = m.xor(a, b);
    assert_eq!(m.support(f), vec![1, 3]);
    assert_eq!(m.support(Bdd::TRUE), Vec::<u32>::new());
}

#[test]
fn first_sat_prefers_low_branch() {
    let mut m = Manager::new(3);
    let x = m.var(0);
    let y = m.var(1);
    let f = m.or(x, y);
    // Lexicographically first model: x=0, y=1.
    let cube = m.first_sat(f).unwrap();
    assert_eq!(cube.get(0), Some(false));
    assert_eq!(cube.get(1), Some(true));
    assert_eq!(cube.get(2), None);
    assert!(m.first_sat(Bdd::FALSE).is_none());
}

#[test]
fn eval_follows_assignment() {
    let mut m = Manager::new(3);
    let x = m.var(0);
    let z = m.var(2);
    let f = m.and(x, z);
    let mut a = Assignment::all_false(3);
    assert!(!m.eval(f, &a));
    a.set(0, true);
    a.set(2, true);
    assert!(m.eval(f, &a));
    a.set(2, false);
    assert!(!m.eval(f, &a));
}

#[test]
fn sat_cubes_partition_the_onset() {
    let mut m = Manager::new(3);
    let x = m.var(0);
    let y = m.var(1);
    let z = m.var(2);
    let xy = m.and(x, y);
    let f = m.or(xy, z);
    let cubes: Vec<_> = m.sat_cubes(f).collect();
    assert!(!cubes.is_empty());
    // Disjoint cubes whose total weight equals the sat count.
    let total: u128 = cubes.iter().map(|c| 1u128 << (3 - c.fixed_count())).sum();
    assert_eq!(total, m.sat_count(f));
    // Every cube's completion satisfies f.
    for c in &cubes {
        assert!(m.eval(f, &c.complete_with(false)));
        assert!(m.eval(f, &c.complete_with(true)));
    }
}

#[test]
fn sat_cubes_deterministic_order() {
    let mut m = Manager::new(2);
    let x = m.var(0);
    let y = m.var(1);
    let f = m.or(x, y);
    let firsts: Vec<_> = m.sat_cubes(f).map(|c| c.complete_with(false)).collect();
    // Expect (0,1) then (1,·) — low branch first.
    assert_eq!(firsts[0].values(), &[false, true]);
    assert!(firsts[1].get(0));
}

#[test]
fn decode_be_reads_msb_first() {
    let mut a = Assignment::all_false(8);
    a.set(0, true); // msb of 0..4
    a.set(3, true); // lsb of 0..4
    assert_eq!(a.decode_be(0..4), 0b1001);
    assert_eq!(a.decode_be(4..8), 0);
}

#[test]
fn and_all_or_all_match_linear_fold() {
    // The balanced-tree reduction must agree with the naive left fold on
    // every operand mix (hash-consing makes agreement exact handle
    // equality, not just semantic equivalence).
    let mut m = Manager::new(8);
    let lits: Vec<Bdd> = (0..8).map(|v| m.var(v)).collect();
    let mut operand_sets: Vec<Vec<Bdd>> = vec![
        vec![],
        vec![lits[3]],
        lits.clone(),
        vec![lits[0], lits[0], lits[0]],
    ];
    // A mixed set with negations and intermediate conjunctions.
    let n4 = m.not(lits[4]);
    let c01 = m.and(lits[0], lits[1]);
    operand_sets.push(vec![c01, n4, lits[7], lits[2], c01]);
    // A set containing the absorbing element.
    operand_sets.push(vec![lits[1], Bdd::FALSE, lits[2]]);
    for fs in &operand_sets {
        let fold_and = fs.iter().fold(Bdd::TRUE, |acc, &f| m.and(acc, f));
        let fold_or = fs.iter().fold(Bdd::FALSE, |acc, &f| m.or(acc, f));
        assert_eq!(m.and_all(fs), fold_and, "and_all mismatch on {fs:?}");
        assert_eq!(m.or_all(fs), fold_or, "or_all mismatch on {fs:?}");
    }
}

#[test]
fn stats_counters_track_table_activity() {
    let mut m = Manager::new(16);
    let base = m.stats();
    assert_eq!(base.nodes, 2, "fresh manager holds only the terminals");
    let mut fs = Vec::new();
    for v in 0..16 {
        fs.push(m.var(v));
    }
    let conj = m.and_all(&fs);
    assert!(!conj.is_const_false());
    let s = m.stats();
    assert_eq!(s.nodes as usize, m.node_count());
    assert!(s.unique_lookups > 0, "mk must consult the unique table");
    assert!(s.apply_lookups > 0, "and_all must consult the apply cache");
    // Re-running the same conjunction is answered by caches and terminal
    // rules without allocating nodes.
    let before = m.stats();
    let again = m.and_all(&fs);
    assert_eq!(again, conj);
    let after = m.stats();
    assert_eq!(before.nodes, after.nodes, "cached rerun must not allocate");
    assert!(after.apply_hits >= before.apply_hits);
    // Hit-rate helpers stay within [0, 1].
    assert!((0.0..=1.0).contains(&after.apply_hit_rate()));
    assert!((0.0..=1.0).contains(&after.unique_hit_rate()));
    assert!(after.unique_collisions_per_lookup() >= 0.0);
}

#[test]
fn unique_table_growth_preserves_canonicity() {
    // Allocate well past the initial 64-slot table so the open-addressing
    // table rehashes several times, then verify hash-consing still
    // canonicalizes: rebuilding any function yields the same handle.
    let mut m = Manager::new(20);
    let mut funcs = Vec::new();
    for a in 0..20u32 {
        for b in 0..20u32 {
            let x = m.var(a);
            let y = m.var(b);
            let f = m.xor(x, y);
            let g = m.and(x, f);
            funcs.push((a, b, g));
        }
    }
    let s = m.stats();
    assert!(s.unique_grows > 0, "expected at least one table doubling");
    assert!(s.nodes > 64, "workload must outgrow the initial table");
    for (a, b, g) in funcs {
        let x = m.var(a);
        let y = m.var(b);
        let f = m.xor(x, y);
        let g2 = m.and(x, f);
        assert_eq!(g2, g, "rebuild of x{a} & (x{a} ^ x{b}) changed handle");
    }
}

#[test]
fn with_capacity_presizes_without_behavior_change() {
    let mut small = Manager::new(10);
    let mut big = Manager::with_capacity(10, 1 << 14);
    let mut fs = Vec::new();
    let mut gs = Vec::new();
    for v in 0..10 {
        let a = small.var(v);
        let b = big.var(v);
        fs.push(a);
        gs.push(b);
    }
    let fa = small.and_all(&fs);
    let ga = big.and_all(&gs);
    assert_eq!(small.sat_count(fa), big.sat_count(ga));
    assert_eq!(big.stats().unique_grows, 0, "pre-sized table must not grow");
}

mod properties {
    //! Property tests compare every BDD operation against a brute-force
    //! truth-table evaluator on a small random formula language.
    use super::*;
    use proptest::prelude::*;

    /// A tiny boolean expression tree for differential testing.
    #[derive(Debug, Clone)]
    enum Expr {
        Var(u32),
        Not(Box<Expr>),
        And(Box<Expr>, Box<Expr>),
        Or(Box<Expr>, Box<Expr>),
        Xor(Box<Expr>, Box<Expr>),
        Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    }

    const NVARS: u32 = 6;

    fn expr_strategy() -> impl Strategy<Value = Expr> {
        let leaf = (0..NVARS).prop_map(Expr::Var);
        leaf.prop_recursive(4, 32, 3, |inner| {
            prop_oneof![
                inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                    Box::new(a),
                    Box::new(b),
                    Box::new(c)
                )),
            ]
        })
    }

    fn eval_expr(e: &Expr, a: &Assignment) -> bool {
        match e {
            Expr::Var(v) => a.get(*v),
            Expr::Not(x) => !eval_expr(x, a),
            Expr::And(x, y) => eval_expr(x, a) && eval_expr(y, a),
            Expr::Or(x, y) => eval_expr(x, a) || eval_expr(y, a),
            Expr::Xor(x, y) => eval_expr(x, a) != eval_expr(y, a),
            Expr::Ite(c, t, f) => {
                if eval_expr(c, a) {
                    eval_expr(t, a)
                } else {
                    eval_expr(f, a)
                }
            }
        }
    }

    fn build(m: &mut Manager, e: &Expr) -> Bdd {
        match e {
            Expr::Var(v) => m.var(*v),
            Expr::Not(x) => {
                let b = build(m, x);
                m.not(b)
            }
            Expr::And(x, y) => {
                let (a, b) = (build(m, x), build(m, y));
                m.and(a, b)
            }
            Expr::Or(x, y) => {
                let (a, b) = (build(m, x), build(m, y));
                m.or(a, b)
            }
            Expr::Xor(x, y) => {
                let (a, b) = (build(m, x), build(m, y));
                m.xor(a, b)
            }
            Expr::Ite(c, t, f) => {
                let (c, t, f) = (build(m, c), build(m, t), build(m, f));
                m.ite(c, t, f)
            }
        }
    }

    fn assignments() -> impl Iterator<Item = Assignment> {
        (0u32..(1 << NVARS))
            .map(|bits| Assignment::new((0..NVARS).map(|v| (bits >> v) & 1 == 1).collect()))
    }

    proptest! {
        #[test]
        fn bdd_matches_truth_table(e in expr_strategy()) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            for a in assignments() {
                prop_assert_eq!(m.eval(f, &a), eval_expr(&e, &a));
            }
        }

        #[test]
        fn sat_count_matches_truth_table(e in expr_strategy()) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            let expected = assignments().filter(|a| eval_expr(&e, a)).count() as u128;
            prop_assert_eq!(m.sat_count(f), expected);
        }

        #[test]
        fn cubes_cover_exactly_the_onset(e in expr_strategy()) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            let cubes: Vec<_> = m.sat_cubes(f).collect();
            for a in assignments() {
                let covered = cubes.iter().any(|c| {
                    (0..NVARS).all(|v| c.get(v).is_none_or(|b| b == a.get(v)))
                });
                prop_assert_eq!(covered, eval_expr(&e, &a));
            }
        }

        #[test]
        fn exists_is_disjunction_of_cofactors(e in expr_strategy(), var in 0..NVARS) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            let ex = m.exists(f, &[var]);
            let c0 = m.restrict(f, var, false);
            let c1 = m.restrict(f, var, true);
            let manual = m.or(c0, c1);
            prop_assert_eq!(ex, manual);
        }

        #[test]
        fn double_negation_is_identity(e in expr_strategy()) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            let nn = m.not(f);
            let nn = m.not(nn);
            prop_assert_eq!(nn, f);
        }

        #[test]
        fn first_sat_satisfies(e in expr_strategy()) {
            let mut m = Manager::new(NVARS);
            let f = build(&mut m, &e);
            if let Some(a) = m.first_sat_assignment(f) {
                prop_assert!(m.eval(f, &a));
            } else {
                prop_assert!(m.is_false(f));
            }
        }
    }
}

mod wide_properties {
    //! Wider differential tests (12 variables) sized to push the
    //! open-addressing unique table through several growth/rehash cycles
    //! and to cycle the direct-mapped computed tables, while staying
    //! brute-forceable (2^12 assignments).
    use super::*;
    use proptest::prelude::*;

    const NVARS: u32 = 12;

    /// A flat random formula: a disjunction of random cubes. Wide enough
    /// to allocate thousands of nodes, cheap to evaluate concretely.
    #[derive(Debug, Clone)]
    struct Dnf {
        /// Each cube: (mask of constrained vars, polarity bits).
        cubes: Vec<(u16, u16)>,
    }

    fn dnf_strategy() -> impl Strategy<Value = Dnf> {
        proptest::collection::vec((any::<u16>(), any::<u16>()), 1..24).prop_map(|cubes| Dnf {
            cubes: cubes
                .into_iter()
                .map(|(m, p)| (m & 0x0FFF, p & 0x0FFF))
                .collect(),
        })
    }

    fn eval_dnf(d: &Dnf, bits: u16) -> bool {
        d.cubes.iter().any(|&(mask, pol)| (bits ^ pol) & mask == 0)
    }

    fn build_dnf(m: &mut Manager, d: &Dnf) -> Bdd {
        let mut cube_bdds = Vec::with_capacity(d.cubes.len());
        for &(mask, pol) in &d.cubes {
            let mut lits = Vec::new();
            for v in 0..NVARS {
                if mask >> v & 1 == 1 {
                    lits.push(if pol >> v & 1 == 1 {
                        m.var(v)
                    } else {
                        m.nvar(v)
                    });
                }
            }
            let c = m.and_all(&lits);
            cube_bdds.push(c);
        }
        m.or_all(&cube_bdds)
    }

    proptest! {
        #[test]
        fn wide_bdd_matches_truth_table(d in dnf_strategy()) {
            let mut m = Manager::new(NVARS);
            let f = build_dnf(&mut m, &d);
            for bits in 0u16..(1 << NVARS) {
                let a = Assignment::new(
                    (0..NVARS).map(|v| bits >> v & 1 == 1).collect(),
                );
                prop_assert_eq!(m.eval(f, &a), eval_dnf(&d, bits));
            }
            // The counters must be coherent regardless of workload shape.
            let s = m.stats();
            prop_assert!(s.unique_hits <= s.unique_lookups);
            prop_assert!(s.apply_hits <= s.apply_lookups);
            prop_assert_eq!(s.nodes as usize, m.node_count());
        }

        #[test]
        fn wide_ops_consistent_after_growth(d1 in dnf_strategy(), d2 in dnf_strategy()) {
            let mut m = Manager::new(NVARS);
            let f = build_dnf(&mut m, &d1);
            let g = build_dnf(&mut m, &d2);
            let and = m.and(f, g);
            let or = m.or(f, g);
            let xor = m.xor(f, g);
            let diff = m.diff(f, g);
            for bits in 0u16..(1 << NVARS) {
                let a = Assignment::new(
                    (0..NVARS).map(|v| bits >> v & 1 == 1).collect(),
                );
                let (vf, vg) = (eval_dnf(&d1, bits), eval_dnf(&d2, bits));
                prop_assert_eq!(m.eval(and, &a), vf && vg);
                prop_assert_eq!(m.eval(or, &a), vf || vg);
                prop_assert_eq!(m.eval(xor, &a), vf != vg);
                prop_assert_eq!(m.eval(diff, &a), vf && !vg);
            }
            prop_assert_eq!(
                m.sat_count(and),
                (0u16..(1 << NVARS))
                    .filter(|&b| eval_dnf(&d1, b) && eval_dnf(&d2, b))
                    .count() as u128
            );
        }
    }
}

mod gc {
    use crate::manager::{adaptive_cache_bits, GcPolicy};
    use crate::{Assignment, Manager};

    /// A small ACL-rule-shaped conjunction over a window of variables.
    fn rule(m: &mut Manager, seed: u64) -> crate::Bdd {
        let mut acc = m.true_();
        for v in 0..8u32 {
            let lit = m.literal(v, seed >> v & 1 == 1);
            acc = m.and(acc, lit);
        }
        acc
    }

    #[test]
    fn gc_frees_unreachable_nodes() {
        let mut m = Manager::new(16);
        let keep = rule(&mut m, 0b1010_1010);
        m.protect(keep);
        for seed in 0..64 {
            let _ = rule(&mut m, seed);
        }
        let before = m.node_count();
        let freed = m.gc();
        assert!(freed > 0, "expected garbage to be freed");
        assert!(m.node_count() < before);
        m.assert_gc_invariants();
        // The protected function must still evaluate correctly.
        let a = Assignment::new((0..16).map(|v| 0b1010_1010u32 >> v & 1 == 1).collect());
        assert!(m.eval(keep, &a));
        assert_eq!(m.sat_count(keep), 1 << 8);
    }

    #[test]
    fn gc_preserves_canonicity_and_recycles_slots() {
        let mut m = Manager::new(16);
        let keep = rule(&mut m, 3);
        m.protect(keep);
        for seed in 4..40 {
            let _ = rule(&mut m, seed);
        }
        let allocated = {
            m.gc();
            m.node_count()
        };
        // Rebuilding the same functions after collection must hash-cons to
        // identical handles (canonicity) and reuse freed arena slots rather
        // than growing the arena.
        let again = rule(&mut m, 3);
        assert_eq!(again, keep, "canonicity broken after gc");
        for seed in 4..40 {
            let _ = rule(&mut m, seed);
        }
        let _ = allocated;
        let peak = m.stats().peak_nodes;
        for _ in 0..8 {
            m.gc();
            for seed in 4..40 {
                let _ = rule(&mut m, seed);
            }
        }
        assert_eq!(
            m.stats().peak_nodes,
            peak,
            "arena kept growing across gc cycles"
        );
    }

    #[test]
    fn protect_is_refcounted() {
        let mut m = Manager::new(8);
        let f = rule(&mut m, 7);
        m.protect(f);
        m.protect(f);
        assert_eq!(m.root_count(), 1);
        m.unprotect(f);
        m.gc();
        m.assert_gc_invariants();
        // Still protected by the second reference.
        assert_eq!(rule(&mut m, 7), f);
        m.unprotect(f);
        assert_eq!(m.root_count(), 0);
        let freed = m.gc();
        assert!(freed > 0);
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn checkpoint_honours_policy() {
        let mut m = Manager::new(16);
        // Disabled: never collects.
        for seed in 0..32 {
            let _ = rule(&mut m, seed);
        }
        assert!(!m.gc_checkpoint());
        assert_eq!(m.stats().gc_runs, 0);

        // Aggressive: collects at every checkpoint.
        m.set_gc_policy(GcPolicy::Aggressive);
        assert!(m.gc_checkpoint());
        assert_eq!(m.stats().gc_runs, 1);
        assert_eq!(m.node_count(), 2);

        // Automatic with a tiny floor: collects once in-use doubles.
        m.set_gc_policy(GcPolicy::Automatic {
            growth_factor: 2,
            min_nodes: 4,
        });
        for seed in 0..32 {
            let _ = rule(&mut m, seed);
        }
        assert!(m.gc_checkpoint());
        let runs = m.stats().gc_runs;
        // Immediately after a collection the trigger must not re-fire.
        assert!(!m.gc_checkpoint());
        assert_eq!(m.stats().gc_runs, runs);
    }

    #[test]
    fn stats_track_gc_counters() {
        let mut m = Manager::new(16);
        let keep = rule(&mut m, 1);
        m.protect(keep);
        for seed in 2..20 {
            let _ = rule(&mut m, seed);
        }
        let peak_before = m.stats().peak_nodes;
        let freed = m.gc();
        let s = m.stats();
        assert_eq!(s.gc_runs, 1);
        assert_eq!(s.gc_nodes_freed, freed as u64);
        assert_eq!(s.post_gc_nodes, s.nodes);
        assert_eq!(s.peak_nodes, peak_before);
        assert_eq!(s.nodes as usize, m.node_count());
    }

    #[test]
    fn adaptive_bits_are_clamped_and_monotone() {
        let (a_min, s_min, _) = adaptive_cache_bits(0);
        assert_eq!((a_min, s_min), (12, 10));
        let (a_mid, s_mid, i_mid) = adaptive_cache_bits(1 << 13);
        assert_eq!((a_mid, s_mid, i_mid), (13, 11, 11));
        // Large live sets saturate at the measured LLC-friendly optimum
        // rather than growing without bound.
        let (a_max, s_max, _) = adaptive_cache_bits(usize::MAX);
        assert_eq!((a_max, s_max), (14, 12));
        let mut prev = 0;
        for lg in 0..30 {
            let (a, _, _) = adaptive_cache_bits(1usize << lg);
            assert!(a >= prev, "apply bits must be monotone in live count");
            prev = a;
        }
    }

    #[test]
    fn ops_work_after_many_collections() {
        let mut m = Manager::new(16);
        m.set_gc_policy(GcPolicy::Aggressive);
        let mut acc = m.false_();
        for seed in 0..32 {
            let r = rule(&mut m, seed * 37 % 256);
            let next = m.or(acc, r);
            m.unprotect(acc); // no-op on the first (constant) accumulator
            m.protect(next);
            acc = next;
            m.gc_checkpoint();
            m.assert_gc_invariants();
        }
        // Spot-check the accumulated union against direct reconstruction.
        let mut fresh = Manager::new(16);
        let mut want = fresh.false_();
        for seed in 0..32 {
            let r = rule(&mut fresh, seed * 37 % 256);
            want = fresh.or(want, r);
        }
        assert_eq!(m.sat_count(acc), fresh.sat_count(want));
    }
}
