//! [`AnyManager`] — one handle type over both BDD engines.
//!
//! The symbolic and driver layers hold an `AnyManager` and never care which
//! engine is behind it:
//!
//! * [`AnyManager::Private`] wraps the single-threaded [`Manager`] — the
//!   default: zero atomics on the hot path, deep-`Clone` snapshots.
//! * [`AnyManager::Shared`] wraps a [`SharedWorker`] on a process-wide
//!   [`SharedManager`](crate::SharedManager) arena — chosen per run via
//!   `--shared-manager`: cross-pair node sharing, cheap worker forks, and
//!   intra-pair fan-out through [`AnyManager::try_split`].
//!
//! Every method mirrors the private [`Manager`] API name-for-name, so code
//! written against `space.manager` compiles unchanged against either engine.

use crate::cube::{Assignment, Cube, CubeIter, GeneralCubeIter};
use crate::manager::{Bdd, GcPolicy, Manager, ManagerStats};
use crate::shared::SharedWorker;

/// A BDD manager handle: a private single-threaded engine or a per-thread
/// worker on a shared concurrent one. See the module docs.
///
/// `Clone` snapshots: a private manager deep-copies its arena (indices
/// preserved), a shared worker forks a sibling on the same arena (handles
/// remain valid, caches start fresh) — both uphold the same contract that
/// every handle valid in the original is valid, and means the same function,
/// in the clone.
#[derive(Debug, Clone)]
pub enum AnyManager {
    /// A private single-threaded [`Manager`].
    Private(Manager),
    /// A per-thread [`SharedWorker`] on a shared concurrent arena.
    Shared(SharedWorker),
}

macro_rules! delegate {
    ($self:ident, $m:ident => $e:expr) => {
        match $self {
            AnyManager::Private($m) => $e,
            AnyManager::Shared($m) => $e,
        }
    };
}

impl AnyManager {
    /// A fresh private manager over `num_vars` variables.
    pub fn new_private(num_vars: u32) -> AnyManager {
        AnyManager::Private(Manager::new(num_vars))
    }

    /// A fresh private manager pre-sized for `expected_nodes`.
    pub fn private_with_capacity(num_vars: u32, expected_nodes: usize) -> AnyManager {
        AnyManager::Private(Manager::with_capacity(num_vars, expected_nodes))
    }

    /// Is this handle backed by the shared concurrent engine?
    pub fn is_shared(&self) -> bool {
        matches!(self, AnyManager::Shared(_))
    }

    /// Fork `n` sibling workers for intra-pair fan-out. `Some` only for the
    /// shared engine (private arenas cannot share new nodes across threads);
    /// callers fall back to their sequential path on `None`.
    pub fn try_split(&self, n: usize) -> Option<Vec<AnyManager>> {
        match self {
            AnyManager::Private(_) => None,
            AnyManager::Shared(w) => Some((0..n).map(|_| AnyManager::Shared(w.fork())).collect()),
        }
    }

    /// Run `f` with this worker unregistered from the shared GC rendezvous,
    /// so sub-workers fanned out inside `f` can collect while the caller
    /// blocks joining them. Everything the caller still needs across `f`
    /// must be protected. No-op wrapper for the private engine.
    pub fn with_idle<R>(&mut self, f: impl FnOnce() -> R) -> R {
        if let AnyManager::Shared(w) = self {
            w.deactivate();
        }
        f()
    }

    /// Number of variables in this manager's order.
    pub fn num_vars(&self) -> u32 {
        delegate!(self, m => m.num_vars())
    }

    /// Live node count (private: this arena; shared: the whole shared arena).
    pub fn node_count(&self) -> usize {
        delegate!(self, m => m.node_count())
    }

    /// Counter snapshot. For the shared engine this is the *worker-local*
    /// slice (see [`SharedWorker::stats`]); manager-wide node/GC/shard
    /// figures come from the pool once per run.
    pub fn stats(&self) -> ManagerStats {
        delegate!(self, m => m.stats())
    }

    /// The constant-false function.
    pub fn false_(&self) -> Bdd {
        Bdd::FALSE
    }

    /// The constant-true function.
    pub fn true_(&self) -> Bdd {
        Bdd::TRUE
    }

    /// Is `f` the constant true?
    pub fn is_true(&self, f: Bdd) -> bool {
        f.is_const_true()
    }

    /// Is `f` the constant false?
    pub fn is_false(&self, f: Bdd) -> bool {
        f.is_const_false()
    }

    /// The function `var = 1`.
    pub fn var(&mut self, var: u32) -> Bdd {
        delegate!(self, m => m.var(var))
    }

    /// The function `var = 0`.
    pub fn nvar(&mut self, var: u32) -> Bdd {
        delegate!(self, m => m.nvar(var))
    }

    /// A literal: positive if `value`, else negative.
    pub fn literal(&mut self, var: u32, value: bool) -> Bdd {
        delegate!(self, m => m.literal(var, value))
    }

    /// Boolean negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        delegate!(self, m => m.not(f))
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        delegate!(self, m => m.and(f, g))
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        delegate!(self, m => m.or(f, g))
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        delegate!(self, m => m.xor(f, g))
    }

    /// Set difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        delegate!(self, m => m.diff(f, g))
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        delegate!(self, m => m.implies(f, g))
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        delegate!(self, m => m.iff(f, g))
    }

    /// Conjunction over many operands.
    pub fn and_all(&mut self, fs: &[Bdd]) -> Bdd {
        delegate!(self, m => m.and_all(fs))
    }

    /// Disjunction over many operands.
    pub fn or_all(&mut self, fs: &[Bdd]) -> Bdd {
        delegate!(self, m => m.or_all(fs))
    }

    /// If-then-else `(c ∧ t) ∨ (¬c ∧ e)`.
    pub fn ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        delegate!(self, m => m.ite(c, t, e))
    }

    /// Are `f` and `g` the same function? (Handle equality is canonical —
    /// in the shared engine, across every worker of the arena.)
    pub fn equivalent(&self, f: Bdd, g: Bdd) -> bool {
        f == g
    }

    /// Cofactor of `f` with `var` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, var: u32, value: bool) -> Bdd {
        delegate!(self, m => m.restrict(f, var, value))
    }

    /// Existential quantification over sorted `vars`.
    pub fn exists(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        delegate!(self, m => m.exists(f, vars))
    }

    /// Universal quantification `∀ vars . f`.
    pub fn forall(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        delegate!(self, m => m.forall(f, vars))
    }

    /// Number of satisfying assignments over the full variable set.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        delegate!(self, m => m.sat_count(f))
    }

    /// Evaluate `f` under a complete assignment.
    pub fn eval(&self, f: Bdd, assignment: &Assignment) -> bool {
        delegate!(self, m => m.eval(f, assignment))
    }

    /// Is `f` satisfiable?
    pub fn is_sat(&self, f: Bdd) -> bool {
        !f.is_const_false()
    }

    /// Lexicographically-first satisfying cube.
    pub fn first_sat(&self, f: Bdd) -> Option<Cube> {
        delegate!(self, m => m.first_sat(f))
    }

    /// First complete satisfying assignment.
    pub fn first_sat_assignment(&self, f: Bdd) -> Option<Assignment> {
        delegate!(self, m => m.first_sat_assignment(f))
    }

    /// First satisfying cube preferring the high branch.
    pub fn first_sat_preferring_true(&self, f: Bdd) -> Option<Cube> {
        delegate!(self, m => m.first_sat_preferring_true(f))
    }

    /// Deterministic lexicographic cube iterator.
    pub fn sat_cubes(&self, f: Bdd) -> CubeIter<'_> {
        delegate!(self, m => m.sat_cubes(f))
    }

    /// Most-general-first cube iterator.
    pub fn sat_cubes_general(&self, f: Bdd) -> GeneralCubeIter<'_> {
        delegate!(self, m => m.sat_cubes_general(f))
    }

    /// Variables `f` depends on, ascending.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        delegate!(self, m => m.support(f))
    }

    /// Nodes reachable from `f`.
    pub fn size(&self, f: Bdd) -> usize {
        delegate!(self, m => m.size(f))
    }

    /// Root the handle across collections (refcounted).
    pub fn protect(&mut self, f: Bdd) {
        delegate!(self, m => m.protect(f))
    }

    /// Drop one protection reference.
    pub fn unprotect(&mut self, f: Bdd) {
        delegate!(self, m => m.unprotect(f))
    }

    /// Number of distinct protected handles.
    pub fn root_count(&self) -> usize {
        delegate!(self, m => m.root_count())
    }

    /// Install a collection trigger policy.
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        delegate!(self, m => m.set_gc_policy(policy))
    }

    /// The installed trigger policy.
    pub fn gc_policy(&self) -> GcPolicy {
        delegate!(self, m => m.gc_policy())
    }

    /// Force a collection (shared: stop-the-world rendezvous). Returns
    /// nodes freed by a sweep this caller ran.
    pub fn gc(&mut self) -> usize {
        delegate!(self, m => m.gc())
    }

    /// Safe point: collect here if the policy (or a pending shared-manager
    /// request) asks for one. Returns whether a collection completed.
    pub fn gc_checkpoint(&mut self) -> bool {
        delegate!(self, m => m.gc_checkpoint())
    }

    /// Monotone sweep counter: bumps exactly when a collection may have
    /// recycled node indices (private: this arena's GC runs; shared: the
    /// arena-wide GC generation, which workers can't observe mid-bump while
    /// active). Stamp caches of *indices* with this, not [`Self::stats`]'s
    /// worker-local counters.
    pub fn sweep_count(&self) -> u64 {
        match self {
            AnyManager::Private(m) => m.stats().gc_runs,
            AnyManager::Shared(w) => w.sweep_count(),
        }
    }
}

impl From<Manager> for AnyManager {
    fn from(m: Manager) -> AnyManager {
        AnyManager::Private(m)
    }
}

impl From<SharedWorker> for AnyManager {
    fn from(w: SharedWorker) -> AnyManager {
        AnyManager::Shared(w)
    }
}
