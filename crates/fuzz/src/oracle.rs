//! The three oracles: detection, localization coverage, and simulation
//! agreement against `campion-srp`.
//!
//! Each case renders its scenario pair, runs the real parse → lower →
//! compare pipeline, and checks the report against the injector's ground
//! truth *and* against behavioral simulation:
//!
//! 1. **Detection** — a divergence-free pair must come back equivalent;
//!    a pair with a (witness-verified) injected divergence must not.
//! 2. **Localization** — for the injected witness, some reported
//!    difference must quote lines covering the deciding rule/clause on
//!    *each* side, carry matching accept/reject actions, and include the
//!    witness in its header-localized prefix set.
//! 3. **Simulation agreement** — for a targeted probe set, packet
//!    forwarding through an `campion-srp` network (ingress ACL + FIB) and
//!    BGP export through the per-edge transfer function must agree with
//!    the abstract interpreters on each side, and disagree across sides
//!    exactly when Campion reports a difference of that kind.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use campion_cfg::parse_config;
use campion_core::{compare_routers, CampionOptions, CampionReport, PolicyDiffReport};
use campion_ir::{lower, BgpIr, BgpNeighborIr, IfaceIr, NextHopIr, RouterIr, StaticRouteIr};
use campion_net::{Community, Flow, Prefix};
use campion_srp::bgp::BgpRoute;
use campion_srp::Network;
use rand::rngs::StdRng;

use crate::case::FuzzCase;
use crate::inject::Witness;
use crate::scenario::{
    acl_decide, render_cisco, render_juniper, rmap_decide, Rendered, Scenario, ACL_NAME,
    POLICY_NAME,
};

/// Which oracle a failure came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// The rendered pair failed to parse/lower — a generator or parser bug.
    Pipeline,
    /// Missed divergence or spurious difference.
    Detection,
    /// Reported lines do not cover the injected edit site.
    Localization,
    /// Campion's verdict disagrees with behavioral simulation.
    SrpAgreement,
}

impl OracleKind {
    /// Stable kebab-case name (corpus metadata / CLI output).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Pipeline => "pipeline",
            OracleKind::Detection => "detection",
            OracleKind::Localization => "localization",
            OracleKind::SrpAgreement => "srp-agreement",
        }
    }
}

/// One oracle failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The violated oracle.
    pub oracle: OracleKind,
    /// Human-readable detail.
    pub detail: String,
}

/// Config-line coverage counters (arXiv 2209.12870 framing: which config
/// lines the reported differences actually exercised).
#[derive(Debug, Clone, Copy, Default)]
pub struct Coverage {
    /// Total rendered lines, first side.
    pub total1: u64,
    /// Lines quoted by some reported difference, first side.
    pub hit1: u64,
    /// Total rendered lines, second side.
    pub total2: u64,
    /// Lines quoted by some reported difference, second side.
    pub hit2: u64,
}

impl Coverage {
    /// Accumulate another case's counters.
    pub fn merge(&mut self, o: &Coverage) {
        self.total1 += o.total1;
        self.hit1 += o.hit1;
        self.total2 += o.total2;
        self.hit2 += o.hit2;
    }
}

/// The outcome of one case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Oracle failures (empty = pass).
    pub failures: Vec<Failure>,
    /// Line coverage of the reported differences.
    pub coverage: Coverage,
    /// Number of reported differences.
    pub differences: usize,
}

fn spans_intersect(spans: &[campion_cfg::Span], range: (u32, u32)) -> bool {
    spans.iter().any(|s| s.start <= range.1 && s.end >= range.0)
}

fn accepts(action: &str) -> bool {
    action.ends_with("ACCEPT")
}

/// The per-diff localization checks for one witness: spans cover the
/// deciding sites, actions agree with the concrete interpreters, and the
/// witness is a member of the diff's header-localized included set.
fn diff_covers_flow(
    d: &PolicyDiffReport,
    expect1: ((u32, u32), bool),
    expect2: ((u32, u32), bool),
    dst: u32,
) -> bool {
    !d.default1
        && !d.default2
        && spans_intersect(&d.spans1, expect1.0)
        && spans_intersect(&d.spans2, expect2.0)
        && accepts(&d.action1) == expect1.1
        && accepts(&d.action2) == expect2.1
        && d.included
            .iter()
            .any(|r| r.prefix.contains_addr(Ipv4Addr::from(dst)))
}

fn diff_covers_route(
    d: &PolicyDiffReport,
    expect1: ((u32, u32), bool),
    expect2: ((u32, u32), bool),
    prefix: &Prefix,
) -> bool {
    !d.default1
        && !d.default2
        && spans_intersect(&d.spans1, expect1.0)
        && spans_intersect(&d.spans2, expect2.0)
        && accepts(&d.action1) == expect1.1
        && accepts(&d.action2) == expect2.1
        && d.included.iter().any(|r| r.member(prefix))
}

/// Augment a lowered router for simulation: an addressed ingress interface
/// bound to the generated ACL, a discard default route so every packet has
/// a FIB entry, and an iBGP neighbor whose export policy is the generated
/// route map (iBGP so LOCAL_PREF survives the edge; `send_community` on
/// both sides so community differences survive it too).
fn augment_for_srp(mut r: RouterIr, name: &str) -> RouterIr {
    r.name = name.to_string();
    r.interfaces.insert(
        "eth0".to_string(),
        IfaceIr {
            name: "eth0".to_string(),
            address: Some((
                Ipv4Addr::new(10, 255, 0, 1),
                Prefix::new(Ipv4Addr::new(10, 255, 0, 0), 24),
            )),
            acl_in: Some(ACL_NAME.to_string()),
            acl_out: None,
            shutdown: false,
            description: None,
            span: campion_cfg::Span::line(1),
        },
    );
    r.static_routes.push(StaticRouteIr {
        prefix: Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0),
        next_hop: NextHopIr::Discard,
        admin_distance: 1,
        tag: None,
        span: campion_cfg::Span::line(1),
    });
    let collector = Ipv4Addr::new(10, 255, 255, 2);
    let mut neighbors = std::collections::BTreeMap::new();
    neighbors.insert(
        collector,
        BgpNeighborIr {
            addr: collector,
            remote_as: Some(65000),
            import_policy: None,
            export_policy: Some(POLICY_NAME.to_string()),
            send_community: true,
            route_reflector_client: false,
            next_hop_self: false,
            span: campion_cfg::Span::line(1),
        },
    );
    r.bgp = Some(BgpIr {
        asn: 65000,
        router_id: None,
        neighbors,
        redistribute: Vec::new(),
        networks: Vec::new(),
        distance: None,
        span: campion_cfg::Span::line(1),
    });
    r
}

/// Address of the iBGP collector neighbor installed by [`augment_for_srp`].
const COLLECTOR: Ipv4Addr = Ipv4Addr::new(10, 255, 255, 2);

fn export_route(
    router: &RouterIr,
    w: &crate::scenario::RouteWitness,
) -> Option<campion_ir::RouteAdvert> {
    let prefix = Prefix::new(Ipv4Addr::from(w.addr), w.len);
    let advert = campion_ir::RouteAdvert::bgp(prefix)
        .with_communities(w.comms.iter().map(|&(a, v)| Community::new(a, v)));
    let route = BgpRoute {
        advert,
        as_path_len: 1,
        ebgp: true,
        learned_from: Ipv4Addr::new(10, 255, 255, 1),
    };
    campion_srp::bgp::export(router, COLLECTOR, &route).map(|r| r.advert)
}

/// Render, run the pipeline, and evaluate all three oracles for `case`.
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    let _span = campion_trace::span("fuzz.case");
    let mutated = case.mutated();
    let (rend1, rend2) = {
        campion_trace::span!("fuzz.render");
        (render_cisco(&case.base), render_juniper(&mutated))
    };

    let lowered = {
        campion_trace::span!("fuzz.parse");
        let p = |text: &str| -> Result<RouterIr, String> {
            let cfg = parse_config(text).map_err(|e| e.to_string())?;
            lower(&cfg).map_err(|e| e.to_string())
        };
        (p(&rend1.text), p(&rend2.text))
    };
    let (ir1, ir2) = match lowered {
        (Ok(a), Ok(b)) => (a, b),
        (r1, r2) => {
            let detail = [r1.err(), r2.err()]
                .into_iter()
                .flatten()
                .collect::<Vec<_>>()
                .join("; ");
            return CaseOutcome {
                failures: vec![Failure {
                    oracle: OracleKind::Pipeline,
                    detail: format!("rendered pair failed to parse/lower: {detail}"),
                }],
                coverage: Coverage::default(),
                differences: 0,
            };
        }
    };

    let report = {
        campion_trace::span!("fuzz.compare");
        let opts = CampionOptions {
            jobs: 1,
            ..CampionOptions::default()
        };
        compare_routers(&ir1, &ir2, &opts)
    };

    let mut failures = Vec::new();
    {
        campion_trace::span!("fuzz.oracle");
        check_detection(case, &report, &mut failures);
        check_localization(case, &mutated, &rend1, &rend2, &report, &mut failures);
        check_srp_agreement(case, &mutated, &ir1, &ir2, &report, &mut failures);
    }

    CaseOutcome {
        failures,
        coverage: coverage_of(&report, &rend1, &rend2),
        differences: report.total_differences(),
    }
}

fn check_detection(case: &FuzzCase, report: &CampionReport, failures: &mut Vec<Failure>) {
    if case.divs.is_empty() {
        if !report.is_equivalent() {
            let first = report
                .route_map_diffs
                .first()
                .or(report.acl_diffs.first())
                .map(|d| d.context.clone())
                .or_else(|| report.structural.first().map(|s| s.description.clone()))
                .or_else(|| report.unmatched.first().cloned())
                .unwrap_or_default();
            failures.push(Failure {
                oracle: OracleKind::Detection,
                detail: format!(
                    "spurious difference on divergence-free pair ({} total; first: {first})",
                    report.total_differences()
                ),
            });
        }
    } else if report.is_equivalent() {
        let classes: Vec<&str> = case.divs.iter().map(|d| d.class().name()).collect();
        failures.push(Failure {
            oracle: OracleKind::Detection,
            detail: format!(
                "injected divergence not reported (classes: {})",
                classes.join(",")
            ),
        });
    }
}

fn check_localization(
    case: &FuzzCase,
    mutated: &Scenario,
    rend1: &Rendered,
    rend2: &Rendered,
    report: &CampionReport,
    failures: &mut Vec<Failure>,
) {
    for div in &case.divs {
        if !div.verified {
            continue; // unchecked mode: no trustworthy ground truth
        }
        let covered = match &div.witness {
            Witness::Flow(f) => {
                let (p1, i1) = acl_decide(&case.base.acl, f);
                let (p2, i2) = acl_decide(&mutated.acl, f);
                report.acl_diffs.iter().any(|d| {
                    diff_covers_flow(
                        d,
                        (rend1.acl_lines[i1], p1),
                        (rend2.acl_lines[i2], p2),
                        f.dst,
                    )
                })
            }
            Witness::Route(r) => {
                let v1 = rmap_decide(&case.base, r);
                let v2 = rmap_decide(mutated, r);
                let prefix = Prefix::new(Ipv4Addr::from(r.addr), r.len);
                report.route_map_diffs.iter().any(|d| {
                    diff_covers_route(
                        d,
                        (rend1.clause_lines[v1.clause], v1.accept),
                        (rend2.clause_lines[v2.clause], v2.accept),
                        &prefix,
                    )
                })
            }
        };
        if !covered {
            failures.push(Failure {
                oracle: OracleKind::Localization,
                detail: format!(
                    "no reported difference covers the injected edit site ({}: {})",
                    div.class().name(),
                    div.edit.describe()
                ),
            });
        }
    }
}

fn check_srp_agreement(
    case: &FuzzCase,
    mutated: &Scenario,
    ir1: &RouterIr,
    ir2: &RouterIr,
    report: &CampionReport,
    failures: &mut Vec<Failure>,
) {
    // Probe rng: a distinct deterministic stream of the same (seed, case).
    let mut rng = StdRng::for_stream(case.seed ^ 0x5250_AC5E_5250_AC5E, case.case);

    let sim1 = augment_for_srp(ir1.clone(), "dut1");
    let sim2 = augment_for_srp(ir2.clone(), "dut2");
    let (mut net1, mut net2) = (Network::default(), Network::default());
    net1.add_router(sim1.clone());
    net2.add_router(sim2.clone());
    let (ribs1, ribs2) = (net1.solve(), net2.solve());

    // Packet plane: forwarding through the ingress ACL + FIB. Witnesses
    // lead so the cap can never drop them.
    let mut flows: Vec<_> = case
        .divs
        .iter()
        .filter_map(|d| match &d.witness {
            Witness::Flow(f) => Some(*f),
            Witness::Route(_) => None,
        })
        .collect();
    flows.extend(crate::inject::flow_probes(&case.base, mutated, &mut rng));
    flows.truncate(512);
    let mut flow_disagreements = 0usize;
    for f in &flows {
        let flow = Flow {
            src_ip: Ipv4Addr::from(f.src),
            dst_ip: Ipv4Addr::from(f.dst),
            protocol: f.proto,
            src_port: 0,
            dst_port: f.dst_port,
        };
        let s1 = net1.forwards(&ribs1, "dut1", Some("eth0"), &flow);
        let s2 = net2.forwards(&ribs2, "dut2", Some("eth0"), &flow);
        let a1 = acl_decide(&case.base.acl, f).0;
        let a2 = acl_decide(&mutated.acl, f).0;
        if s1 != a1 || s2 != a2 {
            failures.push(Failure {
                oracle: OracleKind::SrpAgreement,
                detail: format!(
                    "simulation vs model mismatch for flow {}:{} -> {}:{} proto {} \
                     (sim {s1}/{s2}, model {a1}/{a2})",
                    Ipv4Addr::from(f.src),
                    0,
                    Ipv4Addr::from(f.dst),
                    f.dst_port,
                    f.proto
                ),
            });
            return; // one detailed failure is enough per case
        }
        if s1 != s2 {
            flow_disagreements += 1;
        }
    }
    if flow_disagreements > 0 && report.acl_diffs.is_empty() {
        failures.push(Failure {
            oracle: OracleKind::SrpAgreement,
            detail: format!(
                "simulation forwards {flow_disagreements}/{} probe flows differently but \
                 Campion reports no ACL difference",
                flows.len()
            ),
        });
    }
    if report.is_equivalent() && flow_disagreements > 0 {
        failures.push(Failure {
            oracle: OracleKind::SrpAgreement,
            detail: "report claims equivalence but simulated forwarding differs".to_string(),
        });
    }

    // Control plane: BGP export through the per-edge transfer function.
    let mut routes: Vec<_> = case
        .divs
        .iter()
        .filter_map(|d| match &d.witness {
            Witness::Route(r) => Some(r.clone()),
            Witness::Flow(_) => None,
        })
        .collect();
    routes.extend(crate::inject::route_probes(&case.base, mutated, &mut rng));
    routes.truncate(512);
    let mut route_disagreements = 0usize;
    for w in &routes {
        let e1 = export_route(&sim1, w);
        let e2 = export_route(&sim2, w);
        let v1 = rmap_decide(&case.base, w);
        let v2 = rmap_decide(mutated, w);
        let ok1 =
            e1.is_some() == v1.accept && e1.as_ref().is_none_or(|a| a.local_pref == v1.local_pref);
        let ok2 =
            e2.is_some() == v2.accept && e2.as_ref().is_none_or(|a| a.local_pref == v2.local_pref);
        if !ok1 || !ok2 {
            failures.push(Failure {
                oracle: OracleKind::SrpAgreement,
                detail: format!(
                    "BGP export vs model mismatch for {}/{} comms {:?} \
                     (export accept {}/{}, model accept {}/{})",
                    Ipv4Addr::from(w.addr),
                    w.len,
                    w.comms,
                    e1.is_some(),
                    e2.is_some(),
                    v1.accept,
                    v2.accept
                ),
            });
            return;
        }
        if e1 != e2 {
            route_disagreements += 1;
        }
    }
    if route_disagreements > 0 && report.route_map_diffs.is_empty() {
        failures.push(Failure {
            oracle: OracleKind::SrpAgreement,
            detail: format!(
                "BGP export differs for {route_disagreements}/{} probe routes but Campion \
                 reports no route-map difference",
                routes.len()
            ),
        });
    }
    if report.is_equivalent() && route_disagreements > 0 {
        failures.push(Failure {
            oracle: OracleKind::SrpAgreement,
            detail: "report claims equivalence but simulated BGP export differs".to_string(),
        });
    }
}

fn coverage_of(report: &CampionReport, rend1: &Rendered, rend2: &Rendered) -> Coverage {
    let mut hit1: BTreeSet<u32> = BTreeSet::new();
    let mut hit2: BTreeSet<u32> = BTreeSet::new();
    let add = |set: &mut BTreeSet<u32>, spans: &[campion_cfg::Span], total: u32| {
        for s in spans {
            for l in s.start..=s.end.min(total) {
                set.insert(l);
            }
        }
    };
    let (t1, t2) = (rend1.line_count(), rend2.line_count());
    for d in report.route_map_diffs.iter().chain(report.acl_diffs.iter()) {
        add(&mut hit1, &d.spans1, t1);
        add(&mut hit2, &d.spans2, t2);
    }
    for s in &report.structural {
        if let Some(sp) = s.span1 {
            add(&mut hit1, &[sp], t1);
        }
        if let Some(sp) = s.span2 {
            add(&mut hit2, &[sp], t2);
        }
    }
    Coverage {
        total1: u64::from(t1),
        hit1: hit1.len() as u64,
        total2: u64::from(t2),
        hit2: hit2.len() as u64,
    }
}
