//! Harness self-tests: determinism, oracle soundness on checked cases,
//! shrinker behavior, and corpus round-trips.

use std::path::PathBuf;

use crate::case::{build_case, FuzzOptions};
use crate::corpus;
use crate::inject::ALL_CLASSES;
use crate::oracle::run_case;
use crate::runner;
use crate::scenario::{acl_decide, render_cisco, render_juniper, FlowWitness, SizeProfile};
use crate::shrink::shrink;

fn small_opts(seed: u64) -> FuzzOptions {
    FuzzOptions {
        seed,
        size: SizeProfile::small(),
        ..FuzzOptions::default()
    }
}

/// A scratch directory under the system temp dir, cleared on entry.
fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("campion-fuzz-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn build_case_is_deterministic() {
    let opts = small_opts(7);
    for i in 0..8 {
        let a = build_case(7, i, &opts);
        let b = build_case(7, i, &opts);
        assert_eq!(render_cisco(&a.base).text, render_cisco(&b.base).text);
        assert_eq!(
            render_juniper(&a.mutated()).text,
            render_juniper(&b.mutated()).text
        );
        assert_eq!(a.divs.len(), b.divs.len());
        for (x, y) in a.divs.iter().zip(&b.divs) {
            assert_eq!(x.edit.describe(), y.edit.describe());
        }
    }
}

#[test]
fn case_streams_are_independent_of_index_order() {
    // Building case 5 never depends on cases 0..4 having been built.
    let opts = small_opts(3);
    let early = build_case(3, 5, &opts);
    for i in 0..5 {
        let _ = build_case(3, i, &opts);
    }
    let late = build_case(3, 5, &opts);
    assert_eq!(
        render_cisco(&early.base).text,
        render_cisco(&late.base).text
    );
}

#[test]
fn checked_cases_pass_all_oracles() {
    let opts = small_opts(42);
    for i in 0..24 {
        let case = build_case(42, i, &opts);
        let out = run_case(&case);
        assert!(
            out.failures.is_empty(),
            "case {i} ({:?}): {:?}",
            case.divs
                .iter()
                .map(|d| d.edit.describe())
                .collect::<Vec<_>>(),
            out.failures
        );
    }
}

#[test]
fn run_summary_is_independent_of_worker_count() {
    let mk = |jobs| FuzzOptions {
        cases: 16,
        jobs,
        corpus_dir: test_dir("jobs"),
        ..small_opts(11)
    };
    let a = runner::run(&mk(1));
    let b = runner::run(&mk(4));
    assert_eq!(a.clean, b.clean);
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.differences, b.differences);
    assert!(a.failures.is_empty(), "{:?}", a.failures);
    assert!(b.failures.is_empty());
}

#[test]
fn catch_all_terminates_every_acl_decision() {
    let opts = small_opts(99);
    for i in 0..8 {
        let case = build_case(99, i, &opts);
        let f = FlowWitness {
            src: 0xC0A8_0101,
            dst: 0x0808_0808,
            proto: 6,
            dst_port: 443,
        };
        // The decision always lands on some rule — the trailing catch-all
        // guarantees first-match never falls off the end.
        let (_, idx) = acl_decide(&case.base.acl, &f);
        assert!(idx < case.base.acl.len());
    }
}

#[test]
fn unchecked_injection_fails_detection_and_shrinks() {
    // With verification off, an edit landing on shadowed structure records
    // false ground truth; the detection oracle must catch it, and the
    // shrinker must keep the same failure kind while reducing the case.
    let opts = FuzzOptions {
        unchecked_injection: true,
        ..small_opts(1234)
    };
    let mut found = None;
    for i in 0..300 {
        let case = build_case(1234, i, &opts);
        if case.divs.iter().any(|d| !d.verified) {
            let out = run_case(&case);
            if let Some(f) = out.failures.first() {
                found = Some((case, f.clone()));
                break;
            }
        }
    }
    let (case, failure) = found.expect("no shadowed unchecked edit in 300 cases");
    let min = shrink(&case, failure.oracle, 150);
    assert!(
        run_case(&min)
            .failures
            .iter()
            .any(|f| f.oracle == failure.oracle),
        "minimized case no longer fails the {} oracle",
        failure.oracle.name()
    );
    let shrunk = min.base.acl.len() <= case.base.acl.len()
        && min.base.clauses.len() <= case.base.clauses.len()
        && min.base.plists.len() <= case.base.plists.len();
    assert!(shrunk, "shrink grew the case");
}

#[test]
fn runner_persists_minimized_reproducers() {
    let dir = test_dir("repro");
    let opts = FuzzOptions {
        cases: 48,
        jobs: 1,
        unchecked_injection: true,
        corpus_dir: dir.clone(),
        max_reproducers: 2,
        ..small_opts(1234)
    };
    let summary = runner::run(&opts);
    assert!(
        !summary.failures.is_empty(),
        "expected unchecked injection to trip an oracle within 48 cases"
    );
    let written: Vec<_> = summary
        .failures
        .iter()
        .filter_map(|f| f.reproducer.as_ref())
        .collect();
    assert!(!written.is_empty(), "no reproducer written");
    for p in written {
        assert!(p.join("cisco.cfg").is_file());
        assert!(p.join("juniper.cfg").is_file());
        let meta = corpus::read_meta(&p.join("case.meta")).unwrap();
        assert_eq!(meta.get("kind").map(String::as_str), Some("reproducer"));
        assert!(meta.contains_key("seed"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn golden_meta_regenerates_identical_bytes() {
    let opts = FuzzOptions {
        seed: 9100,
        classes: vec![ALL_CLASSES[0]],
        ..small_opts(9100)
    };
    let case = (0..200)
        .map(|i| build_case(9100, i, &opts))
        .find(|c| !c.divs.is_empty())
        .expect("no injected case in 200 tries");
    let dir = test_dir("roundtrip");
    let entry = corpus::write_entry(&dir, "golden-test", &case, "small", &opts.classes, None, "")
        .expect("write_entry");
    let meta = corpus::read_meta(&entry.join("case.meta")).unwrap();
    assert_eq!(meta.get("kind").map(String::as_str), Some("golden"));
    let regen = corpus::regenerate(&meta).expect("regenerate");
    let cisco = std::fs::read_to_string(entry.join("cisco.cfg")).unwrap();
    let juniper = std::fs::read_to_string(entry.join("juniper.cfg")).unwrap();
    assert_eq!(render_cisco(&regen.base).text, cisco);
    assert_eq!(render_juniper(&regen.mutated()).text, juniper);
    let _ = std::fs::remove_dir_all(&dir);
}
