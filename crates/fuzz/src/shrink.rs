//! ddmin-lite failure minimization: greedily remove scenario structure
//! while the original oracle failure persists.
//!
//! A candidate reduction re-runs the *full* pipeline (`run_case`) and is
//! kept only when a failure of the same [`OracleKind`] survives, so the
//! minimized reproducer fails for the same reason the original did. The
//! stored witness and edit are part of the case spec — reductions that
//! would invalidate the edit's target are never proposed, and index
//! remapping keeps the edit pointing at the same logical rule.

use crate::case::FuzzCase;
use crate::inject::Edit;
use crate::oracle::{run_case, OracleKind};

/// Remap an edit after removing base ACL rule `i`. `None` = the edit's
/// target was touched, so the reduction is invalid.
fn remap_acl(edit: &Edit, i: usize) -> Option<Edit> {
    let adj = |r: usize| if r > i { Some(r - 1) } else { Some(r) };
    match edit {
        Edit::AclFlip { rule } if *rule != i => Some(Edit::AclFlip { rule: adj(*rule)? }),
        Edit::AclDstTweak { rule, new } if *rule != i => Some(Edit::AclDstTweak {
            rule: adj(*rule)?,
            new: *new,
        }),
        Edit::AclDelete { rule } if *rule != i => Some(Edit::AclDelete { rule: adj(*rule)? }),
        Edit::AclSwap { rule } if *rule != i && *rule + 1 != i => {
            Some(Edit::AclSwap { rule: adj(*rule)? })
        }
        Edit::AclFlip { .. }
        | Edit::AclDstTweak { .. }
        | Edit::AclDelete { .. }
        | Edit::AclSwap { .. } => None,
        other => Some(other.clone()),
    }
}

/// Every structurally-smaller candidate, one reduction at a time.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let sc = &case.base;

    // Remove one non-catch-all ACL rule.
    for i in 0..sc.acl.len().saturating_sub(1) {
        let remapped: Option<Vec<_>> = case
            .divs
            .iter()
            .map(|d| {
                remap_acl(&d.edit, i).map(|edit| crate::inject::Divergence {
                    edit,
                    witness: d.witness.clone(),
                    verified: d.verified,
                })
            })
            .collect();
        if let Some(divs) = remapped {
            let mut c = case.clone();
            c.base.acl.remove(i);
            c.divs = divs;
            out.push(c);
        }
    }

    // Simplify one ACL rule: drop src, then port, then proto.
    for i in 0..sc.acl.len() {
        let r = &sc.acl[i];
        if r.src.is_some() {
            let mut c = case.clone();
            c.base.acl[i].src = None;
            out.push(c);
        }
        if r.dst_port.is_some() {
            let mut c = case.clone();
            c.base.acl[i].dst_port = None;
            out.push(c);
        }
        if r.proto.is_some() && r.dst_port.is_none() {
            let mut c = case.clone();
            c.base.acl[i].proto = None;
            out.push(c);
        }
    }

    // Remove one non-catch-all clause.
    for i in 0..sc.clauses.len().saturating_sub(1) {
        let remapped: Option<Vec<_>> = case
            .divs
            .iter()
            .map(|d| match &d.edit {
                Edit::ClauseFlip { clause } if *clause == i => None,
                Edit::ClauseFlip { clause } => Some(crate::inject::Divergence {
                    edit: Edit::ClauseFlip {
                        clause: if *clause > i { clause - 1 } else { *clause },
                    },
                    witness: d.witness.clone(),
                    verified: d.verified,
                }),
                _ => Some(d.clone()),
            })
            .collect();
        if let Some(divs) = remapped {
            let mut c = case.clone();
            c.base.clauses.remove(i);
            c.divs = divs;
            out.push(c);
        }
    }

    // Drop one clause's community or prefix match.
    for i in 0..sc.clauses.len() {
        if sc.clauses[i].comm.is_some() {
            let mut c = case.clone();
            c.base.clauses[i].comm = None;
            out.push(c);
        }
        if sc.clauses[i].plist.is_some() {
            let mut c = case.clone();
            c.base.clauses[i].plist = None;
            out.push(c);
        }
        if sc.clauses[i].local_pref.is_some() {
            let mut c = case.clone();
            c.base.clauses[i].local_pref = None;
            out.push(c);
        }
    }

    // Remove one prefix-list entry (lists keep at least one entry).
    for p in 0..sc.plists.len() {
        if sc.plists[p].entries.len() < 2 {
            continue;
        }
        for e in 0..sc.plists[p].entries.len() {
            let remapped: Option<Vec<_>> = case
                .divs
                .iter()
                .map(|d| match &d.edit {
                    Edit::PlistBound { plist, entry, .. } if *plist == p && *entry == e => None,
                    Edit::PlistBound {
                        plist,
                        entry,
                        new_le,
                    } if *plist == p && *entry > e => Some(crate::inject::Divergence {
                        edit: Edit::PlistBound {
                            plist: *plist,
                            entry: entry - 1,
                            new_le: *new_le,
                        },
                        witness: d.witness.clone(),
                        verified: d.verified,
                    }),
                    _ => Some(d.clone()),
                })
                .collect();
            if let Some(divs) = remapped {
                let mut c = case.clone();
                c.base.plists[p].entries.remove(e);
                c.divs = divs;
                out.push(c);
            }
        }
    }

    // Remove one unreferenced prefix list / community definition.
    for p in 0..sc.plists.len() {
        let referenced = sc.clauses.iter().any(|c| c.plist == Some(p))
            || case
                .divs
                .iter()
                .any(|d| matches!(&d.edit, Edit::PlistBound { plist, .. } if *plist == p));
        if referenced {
            continue;
        }
        let mut c = case.clone();
        c.base.plists.remove(p);
        for cl in &mut c.base.clauses {
            if let Some(q) = cl.plist {
                if q > p {
                    cl.plist = Some(q - 1);
                }
            }
        }
        for d in &mut c.divs {
            if let Edit::PlistBound { plist, .. } = &mut d.edit {
                if *plist > p {
                    *plist -= 1;
                }
            }
        }
        out.push(c);
    }
    for cm in 0..sc.comms.len() {
        let referenced = sc.clauses.iter().any(|c| c.comm == Some(cm))
            || case
                .divs
                .iter()
                .any(|d| matches!(&d.edit, Edit::CommEdit { comm, .. } if *comm == cm));
        if referenced {
            continue;
        }
        let mut c = case.clone();
        c.base.comms.remove(cm);
        for cl in &mut c.base.clauses {
            if let Some(q) = cl.comm {
                if q > cm {
                    cl.comm = Some(q - 1);
                }
            }
        }
        for d in &mut c.divs {
            if let Edit::CommEdit { comm, .. } = &mut d.edit {
                if *comm > cm {
                    *comm -= 1;
                }
            }
        }
        out.push(c);
    }

    out
}

/// Shrink `case` while a failure of kind `oracle` persists. Greedy
/// first-improvement to a fixpoint, bounded by `budget` pipeline re-runs.
pub fn shrink(case: &FuzzCase, oracle: OracleKind, mut budget: usize) -> FuzzCase {
    let _span = campion_trace::span("fuzz.shrink");
    let mut current = case.clone();
    loop {
        let mut improved = false;
        for cand in candidates(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            if run_case(&cand).failures.iter().any(|f| f.oracle == oracle) {
                current = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}
