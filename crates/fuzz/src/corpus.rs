//! Corpus entries: minimized reproducers and golden replay cases under
//! `testdata/fuzz-corpus/`.
//!
//! An entry is a directory holding the rendered pair (`cisco.cfg`,
//! `juniper.cfg`) and a `case.meta` key-value file. Golden entries record
//! the exact `(seed, case, classes, profile)` they were generated from, so
//! the replay test regenerates them through the library and asserts the
//! committed bytes come back — the cross-machine reproducibility contract
//! of `StdRng::for_stream`. Reproducer entries are written by the shrinker
//! when an oracle fails; they are diagnostic artifacts, replayed only as a
//! does-not-crash smoke check (their recorded failure is a *bug*, expected
//! to disappear once fixed).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::case::{build_case, FuzzCase, FuzzOptions};
use crate::inject::{DivClass, ALL_CLASSES};
use crate::oracle::{run_case, OracleKind};
use crate::scenario::{render_cisco, render_juniper, SizeProfile};

/// Parsed `case.meta` contents.
pub type Meta = BTreeMap<String, String>;

/// Read a `case.meta` file.
pub fn read_meta(path: &Path) -> io::Result<Meta> {
    let text = std::fs::read_to_string(path)?;
    let mut meta = Meta::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            meta.insert(k.trim().to_string(), v.trim().to_string());
        }
    }
    Ok(meta)
}

/// The size profile named in an entry's metadata.
pub fn profile_by_name(name: &str) -> SizeProfile {
    match name {
        "small" => SizeProfile::small(),
        _ => SizeProfile::default(),
    }
}

/// Rebuild the [`FuzzOptions`] a golden entry was generated with.
pub fn options_from_meta(meta: &Meta) -> Option<FuzzOptions> {
    let seed = meta.get("seed")?.parse().ok()?;
    let classes: Vec<DivClass> = match meta.get("classes").map(String::as_str) {
        None | Some("") => ALL_CLASSES.to_vec(),
        Some(s) => s.split(',').filter_map(DivClass::parse).collect(),
    };
    Some(FuzzOptions {
        seed,
        classes: if classes.is_empty() {
            ALL_CLASSES.to_vec()
        } else {
            classes
        },
        size: profile_by_name(meta.get("profile").map_or("default", String::as_str)),
        unchecked_injection: meta.get("unchecked").map(String::as_str) == Some("true"),
        ..FuzzOptions::default()
    })
}

/// Regenerate a golden entry's case from its metadata.
pub fn regenerate(meta: &Meta) -> Option<FuzzCase> {
    let opts = options_from_meta(meta)?;
    let case = meta.get("case")?.parse().ok()?;
    Some(build_case(opts.seed, case, &opts))
}

fn render_meta(
    kind: &str,
    case: &FuzzCase,
    profile: &str,
    classes: &[DivClass],
    oracle: Option<OracleKind>,
    detail: &str,
) -> String {
    let mut out = String::from("# campion-fuzz case metadata\n");
    let mut kv = |k: &str, v: String| out.push_str(&format!("{k} = {v}\n"));
    kv("kind", kind.to_string());
    kv("seed", case.seed.to_string());
    kv("case", case.case.to_string());
    kv("profile", profile.to_string());
    kv(
        "classes",
        classes
            .iter()
            .map(|c| c.name().to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    kv("unchecked", case.unchecked.to_string());
    kv(
        "oracle",
        oracle.map_or("pass".to_string(), |o| o.name().to_string()),
    );
    if !detail.is_empty() {
        kv("detail", detail.replace('\n', " "));
    }
    kv("divergences", case.divs.len().to_string());
    for (i, d) in case.divs.iter().enumerate() {
        kv(
            &format!("div{i}"),
            format!("{}: {}", d.class().name(), d.edit.describe()),
        );
    }
    out
}

/// Write one corpus entry; returns its directory.
pub fn write_entry(
    corpus_dir: &Path,
    name: &str,
    case: &FuzzCase,
    profile: &str,
    classes: &[DivClass],
    oracle: Option<OracleKind>,
    detail: &str,
) -> io::Result<PathBuf> {
    let dir = corpus_dir.join(name);
    std::fs::create_dir_all(&dir)?;
    let mutated = case.mutated();
    std::fs::write(dir.join("cisco.cfg"), render_cisco(&case.base).text)?;
    std::fs::write(dir.join("juniper.cfg"), render_juniper(&mutated).text)?;
    let kind = if oracle.is_some() {
        "reproducer"
    } else {
        "golden"
    };
    std::fs::write(
        dir.join("case.meta"),
        render_meta(kind, case, profile, classes, oracle, detail),
    )?;
    Ok(dir)
}

/// Generate the golden corpus: one small passing case per divergence class
/// plus one divergence-free case, each found by scanning case indices of a
/// fixed per-class seed until the injector lands the wanted class *and*
/// all three oracles pass. Deterministic — committed entries regenerate
/// byte-identically on any machine.
pub fn golden_cases() -> Vec<(String, FuzzCase, Vec<DivClass>)> {
    let mut out = Vec::new();
    for (k, class) in ALL_CLASSES.into_iter().enumerate() {
        let opts = FuzzOptions {
            seed: 9000 + k as u64,
            classes: vec![class],
            size: SizeProfile::small(),
            ..FuzzOptions::default()
        };
        let found = (0..500).find_map(|i| {
            let case = build_case(opts.seed, i, &opts);
            let ok = case.divs.len() == 1
                && case.divs[0].class() == class
                && run_case(&case).failures.is_empty();
            ok.then_some(case)
        });
        if let Some(case) = found {
            out.push((format!("golden-{}", class.name()), case, vec![class]));
        }
    }
    // The divergence-free golden: the false-positive replay check.
    let opts = FuzzOptions {
        seed: 8999,
        size: SizeProfile::small(),
        ..FuzzOptions::default()
    };
    let found = (0..500).find_map(|i| {
        let case = build_case(opts.seed, i, &opts);
        (case.divs.is_empty() && run_case(&case).failures.is_empty()).then_some(case)
    });
    if let Some(case) = found {
        out.push(("golden-clean".to_string(), case, ALL_CLASSES.to_vec()));
    }
    out
}
