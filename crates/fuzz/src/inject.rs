//! Divergence injection: mutate a base scenario in a known way and find a
//! concrete **witness** input that the injected edit actually flips.
//!
//! Every injected edit is witness-verified by the concrete interpreters
//! before it counts as a divergence: an edit to a shadowed rule changes no
//! behavior and must not make the detection oracle expect a difference.
//! Passing `checked = false` (the CLI's `--unchecked-injection`) disables
//! exactly that verification — the deliberate way to hand the harness a
//! false ground truth and watch the shrinker produce a reproducer.

use rand::rngs::StdRng;
use rand::Rng;

use crate::scenario::{
    acl_decide, mask, rmap_decide, AclRule, FlowWitness, RouteWitness, Scenario,
};

/// The divergence classes the injector knows how to plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivClass {
    /// ACL rule edit: action flip or address-bound tweak.
    AclEdit,
    /// Adjacent ACL rule swap.
    AclReorder,
    /// ACL rule deletion.
    AclDelete,
    /// Prefix-list upper-bound (`le` / `upto`) tweak.
    PlistBound,
    /// Route-map clause action flip.
    RmapFlip,
    /// Community value edit in a matcher.
    CommEdit,
}

/// All classes, in stable order.
pub const ALL_CLASSES: [DivClass; 6] = [
    DivClass::AclEdit,
    DivClass::AclReorder,
    DivClass::AclDelete,
    DivClass::PlistBound,
    DivClass::RmapFlip,
    DivClass::CommEdit,
];

impl DivClass {
    /// Stable kebab-case name (corpus metadata key).
    pub fn name(self) -> &'static str {
        match self {
            DivClass::AclEdit => "acl-edit",
            DivClass::AclReorder => "acl-reorder",
            DivClass::AclDelete => "acl-delete",
            DivClass::PlistBound => "plist-bound",
            DivClass::RmapFlip => "rmap-flip",
            DivClass::CommEdit => "comm-edit",
        }
    }

    /// Parse a name produced by [`DivClass::name`].
    pub fn parse(s: &str) -> Option<Self> {
        ALL_CLASSES.into_iter().find(|c| c.name() == s)
    }
}

/// One structural edit applied to the base scenario to derive the mutated
/// (second-router) scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Flip the action of ACL rule `rule`.
    AclFlip {
        /// Target rule index.
        rule: usize,
    },
    /// Replace the destination matcher of ACL rule `rule`.
    AclDstTweak {
        /// Target rule index.
        rule: usize,
        /// New destination prefix (or any).
        new: Option<(u32, u8)>,
    },
    /// Delete ACL rule `rule` (never the catch-all).
    AclDelete {
        /// Target rule index.
        rule: usize,
    },
    /// Swap ACL rules `rule` and `rule + 1`.
    AclSwap {
        /// First of the two swapped rules.
        rule: usize,
    },
    /// Change the `le` bound of a prefix-list entry.
    PlistBound {
        /// Target prefix list.
        plist: usize,
        /// Target entry.
        entry: usize,
        /// New upper bound (`None` = exact).
        new_le: Option<u8>,
    },
    /// Flip the action of route-map clause `clause`.
    ClauseFlip {
        /// Target clause index.
        clause: usize,
    },
    /// Replace community definition `comm` with a new value.
    CommEdit {
        /// Target community index.
        comm: usize,
        /// New (asn, value).
        new: (u16, u16),
    },
}

impl Edit {
    /// The divergence class this edit belongs to.
    pub fn class(&self) -> DivClass {
        match self {
            Edit::AclFlip { .. } | Edit::AclDstTweak { .. } => DivClass::AclEdit,
            Edit::AclDelete { .. } => DivClass::AclDelete,
            Edit::AclSwap { .. } => DivClass::AclReorder,
            Edit::PlistBound { .. } => DivClass::PlistBound,
            Edit::ClauseFlip { .. } => DivClass::RmapFlip,
            Edit::CommEdit { .. } => DivClass::CommEdit,
        }
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            Edit::AclFlip { rule } => format!("flip action of ACL rule {rule}"),
            Edit::AclDstTweak { rule, new } => match new {
                Some((a, l)) => format!(
                    "retarget ACL rule {rule} dst to {}/{l}",
                    std::net::Ipv4Addr::from(*a)
                ),
                None => format!("widen ACL rule {rule} dst to any"),
            },
            Edit::AclDelete { rule } => format!("delete ACL rule {rule}"),
            Edit::AclSwap { rule } => format!("swap ACL rules {rule} and {}", rule + 1),
            Edit::PlistBound {
                plist,
                entry,
                new_le,
            } => format!("set PL{plist} entry {entry} le bound to {new_le:?}"),
            Edit::ClauseFlip { clause } => format!("flip action of route-map clause {clause}"),
            Edit::CommEdit { comm, new } => {
                format!("change community C{comm} to {}:{}", new.0, new.1)
            }
        }
    }

    /// Apply the edit to `sc` (the mutated-side scenario).
    pub fn apply(&self, sc: &mut Scenario) {
        match self {
            Edit::AclFlip { rule } => sc.acl[*rule].permit = !sc.acl[*rule].permit,
            Edit::AclDstTweak { rule, new } => sc.acl[*rule].dst = *new,
            Edit::AclDelete { rule } => {
                sc.acl.remove(*rule);
            }
            Edit::AclSwap { rule } => sc.acl.swap(*rule, *rule + 1),
            Edit::PlistBound {
                plist,
                entry,
                new_le,
            } => sc.plists[*plist].entries[*entry].le = *new_le,
            Edit::ClauseFlip { clause } => {
                let c = &mut sc.clauses[*clause];
                c.permit = !c.permit;
                if !c.permit {
                    // Sets on deny clauses are dead on both vendors; keep
                    // the rendering symmetric.
                    c.local_pref = None;
                }
            }
            Edit::CommEdit { comm, new } => sc.comms[*comm] = *new,
        }
    }

    /// Does the edit concern the ACL (flow witnesses) rather than the
    /// route map (route witnesses)?
    pub fn is_acl(&self) -> bool {
        matches!(
            self,
            Edit::AclFlip { .. }
                | Edit::AclDstTweak { .. }
                | Edit::AclDelete { .. }
                | Edit::AclSwap { .. }
        )
    }
}

/// A concrete input separating (or, in unchecked mode, merely aimed at)
/// the two sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// A packet, for ACL divergences.
    Flow(FlowWitness),
    /// A route advertisement, for route-map divergences.
    Route(RouteWitness),
}

/// One injected divergence with its ground truth.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The structural edit.
    pub edit: Edit,
    /// The separating input (verified when the injector ran checked).
    pub witness: Witness,
    /// Whether the witness was verified to separate the two sides.
    pub verified: bool,
}

impl Divergence {
    /// The divergence class.
    pub fn class(&self) -> DivClass {
        self.edit.class()
    }
}

/// Draw one random edit of `class` against `base`. Returns `None` when the
/// scenario has no viable target (e.g. reorder with a single rule).
pub fn draw_edit(base: &Scenario, class: DivClass, rng: &mut StdRng) -> Option<Edit> {
    let n_rules = base.acl.len();
    match class {
        DivClass::AclEdit => {
            let rule = rng.gen_range(0..n_rules);
            if rng.gen_bool(0.5) || base.acl[rule].is_catch_all() {
                Some(Edit::AclFlip { rule })
            } else {
                // Boundary-biased retarget: /0, /31, /32 show up often.
                let new = rng.gen_bool(0.2).then(|| {
                    let len: u8 = match rng.gen_range(0u8..6) {
                        0 => 0,
                        1 => 31,
                        2 => 32,
                        _ => rng.gen_range(8u8..=28),
                    };
                    (rng.gen::<u32>() & mask(len), len)
                });
                Some(Edit::AclDstTweak { rule, new })
            }
        }
        DivClass::AclReorder => {
            // Never move the catch-all off the end.
            if n_rules < 3 {
                return None;
            }
            Some(Edit::AclSwap {
                rule: rng.gen_range(0..n_rules - 2),
            })
        }
        DivClass::AclDelete => {
            if n_rules < 2 {
                return None;
            }
            Some(Edit::AclDelete {
                rule: rng.gen_range(0..n_rules - 1),
            })
        }
        DivClass::PlistBound => {
            if base.plists.is_empty() {
                return None;
            }
            let plist = rng.gen_range(0..base.plists.len());
            let entry = rng.gen_range(0..base.plists[plist].entries.len());
            let e = base.plists[plist].entries[entry];
            let new_le = match e.le {
                // Tighten to exact, or nudge the bound.
                Some(le) if rng.gen_bool(0.5) || le == e.len + 1 => None,
                Some(le) => Some(rng.gen_range(e.len + 1..le)),
                None if e.len < 32 => Some(rng.gen_range(e.len + 1..=32)),
                None => return None,
            };
            Some(Edit::PlistBound {
                plist,
                entry,
                new_le,
            })
        }
        DivClass::RmapFlip => Some(Edit::ClauseFlip {
            clause: rng.gen_range(0..base.clauses.len()),
        }),
        DivClass::CommEdit => {
            if base.comms.is_empty() {
                return None;
            }
            let comm = rng.gen_range(0..base.comms.len());
            let mut new = (rng.gen_range(1u16..=65000), rng.gen_range(1u16..=65000));
            if new == base.comms[comm] {
                new.1 = new.1.wrapping_add(1).max(1);
            }
            Some(Edit::CommEdit { comm, new })
        }
    }
}

/// Targeted flow probes: for each rule of both sides, candidates that sit
/// on the rule's matcher boundaries (inside, last address, one past the
/// end, port off-by-one, sibling protocol).
pub fn flow_probes(base: &Scenario, mutated: &Scenario, rng: &mut StdRng) -> Vec<FlowWitness> {
    let mut out = Vec::new();
    let mut push_rule_probes = |r: &AclRule| {
        let srcs: Vec<u32> = match r.src {
            Some((a, l)) => vec![a, a | !mask(l)],
            None => vec![0x0a090807],
        };
        let dsts: Vec<u32> = match r.dst {
            Some((a, l)) => {
                let mut v = vec![a, a | !mask(l)];
                if l > 0 {
                    v.push(a.wrapping_add(!mask(l)).wrapping_add(1)); // one past
                }
                v
            }
            None => vec![0x0a0a0a0a, 0, u32::MAX],
        };
        let protos: Vec<u8> = match r.proto {
            Some(p) => vec![p],
            None => vec![6, 17],
        };
        let ports: Vec<u16> = match r.dst_port {
            Some(p) => vec![p, p.wrapping_add(1)],
            None => vec![80],
        };
        for &src in &srcs {
            for &dst in &dsts {
                for &proto in &protos {
                    for &dst_port in &ports {
                        out.push(FlowWitness {
                            src,
                            dst,
                            proto,
                            dst_port,
                        });
                    }
                }
            }
        }
    };
    for r in base.acl.iter().chain(mutated.acl.iter()) {
        push_rule_probes(r);
    }
    for _ in 0..64 {
        out.push(FlowWitness {
            src: rng.gen(),
            dst: rng.gen(),
            proto: *[1u8, 6, 17]
                .get(rng.gen_range(0usize..3))
                .expect("index in range"),
            dst_port: rng.gen_range(0u16..=1024),
        });
    }
    out
}

/// Targeted route probes: members at every prefix-list bound of both
/// sides, crossed with the community subsets that matter (empty, each
/// single atom from either side's universe).
pub fn route_probes(base: &Scenario, mutated: &Scenario, rng: &mut StdRng) -> Vec<RouteWitness> {
    let mut comm_sets: Vec<Vec<(u16, u16)>> = vec![Vec::new()];
    for &c in base.comms.iter().chain(mutated.comms.iter()) {
        if !comm_sets.iter().any(|s| s.as_slice() == [c]) {
            comm_sets.push(vec![c]);
        }
    }
    let mut shapes: Vec<(u32, u8)> = Vec::new();
    for sc in [base, mutated] {
        for pl in &sc.plists {
            for e in &pl.entries {
                let hi = e.le.unwrap_or(e.len);
                let mut lens = vec![e.len, hi, 32];
                if hi < 32 {
                    lens.push(hi + 1);
                }
                if e.len < 32 {
                    lens.push(e.len + 1);
                }
                for l in lens {
                    shapes.push((e.addr & mask(l.min(32)), l.min(32)));
                    // A sibling member inside the entry, when one exists.
                    if l > e.len {
                        let bit = 1u32 << (32 - u32::from(l));
                        shapes.push(((e.addr | bit) & mask(l), l));
                    }
                }
            }
        }
    }
    for _ in 0..16 {
        let len = rng.gen_range(0u8..=32);
        shapes.push((rng.gen::<u32>() & mask(len), len));
    }
    shapes.sort_unstable();
    shapes.dedup();
    let mut out = Vec::new();
    for &(addr, len) in &shapes {
        for cs in &comm_sets {
            out.push(RouteWitness {
                addr,
                len,
                comms: cs.clone(),
            });
        }
    }
    out
}

/// Search the probe sets for an input the two sides disagree on. Returns
/// the first (in probe order) separating witness.
pub fn find_witness(
    base: &Scenario,
    mutated: &Scenario,
    rng: &mut StdRng,
    edit: &Edit,
) -> Option<Witness> {
    if edit.is_acl() {
        flow_probes(base, mutated, rng)
            .into_iter()
            .find(|f| acl_decide(&base.acl, f).0 != acl_decide(&mutated.acl, f).0)
            .map(Witness::Flow)
    } else {
        route_probes(base, mutated, rng)
            .into_iter()
            .find(|r| {
                let v1 = rmap_decide(base, r);
                let v2 = rmap_decide(mutated, r);
                v1.accept != v2.accept || (v1.accept && v2.accept && v1.local_pref != v2.local_pref)
            })
            .map(Witness::Route)
    }
}

/// A fallback witness for unchecked mode: an input aimed at the edit site
/// with no guarantee it separates the sides.
pub fn unchecked_witness(
    base: &Scenario,
    mutated: &Scenario,
    rng: &mut StdRng,
    edit: &Edit,
) -> Witness {
    if edit.is_acl() {
        Witness::Flow(
            flow_probes(base, mutated, rng)
                .into_iter()
                .next()
                .expect("probe set is never empty"),
        )
    } else {
        Witness::Route(
            route_probes(base, mutated, rng)
                .into_iter()
                .next()
                .expect("probe set is never empty"),
        )
    }
}
