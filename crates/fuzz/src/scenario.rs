//! Abstract fuzz scenarios and their matched vendor renderers.
//!
//! A [`Scenario`] is a vendor-neutral model of one ACL and one route map:
//! plain Rust data with its own tiny concrete interpreters
//! ([`acl_decide`], [`rmap_decide`]). The interpreters share **no code**
//! with the parse → lower → BDD pipeline under test, so agreement between
//! the two is a genuine differential check, not a tautology.
//!
//! [`render_cisco`] / [`render_juniper`] emit semantically equivalent IOS
//! and JunOS text for the same scenario and record, per rule and per
//! clause, the 1-based line ranges they landed on — the injector's ground
//! truth for the localization oracle. The renderers deliberately steer
//! around the cross-vendor default gaps Campion is designed to *find*
//! (IOS implicit deny vs JunOS default-accept, `send-community` defaults,
//! community-list any-of vs members all-of): every component ends in an
//! explicit catch-all and community matchers carry a single atom, so a
//! divergence-free pair really is behaviorally equivalent.

use rand::rngs::StdRng;
use rand::Rng;

/// Name of the generated ACL / firewall filter on both sides.
pub const ACL_NAME: &str = "FUZZ-ACL";
/// Name of the generated route map / policy statement on both sides.
pub const POLICY_NAME: &str = "FUZZ-POL";

/// The network-address mask for a prefix length (`len == 0` → 0).
pub fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

/// One abstract ACL rule. `proto == None` means any IP protocol;
/// `dst_port` is only populated for TCP/UDP rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclRule {
    /// Permit or deny.
    pub permit: bool,
    /// IP protocol (6 = tcp, 17 = udp), or any.
    pub proto: Option<u8>,
    /// Source prefix (network address, length), or any.
    pub src: Option<(u32, u8)>,
    /// Destination prefix, or any.
    pub dst: Option<(u32, u8)>,
    /// Exact destination port, when `proto` is TCP/UDP.
    pub dst_port: Option<u16>,
}

impl AclRule {
    /// The catch-all rule every generated ACL ends with.
    pub fn catch_all(permit: bool) -> Self {
        AclRule {
            permit,
            proto: None,
            src: None,
            dst: None,
            dst_port: None,
        }
    }

    /// Does the rule have no matchers (i.e. is it a catch-all)?
    pub fn is_catch_all(&self) -> bool {
        self.proto.is_none() && self.src.is_none() && self.dst.is_none()
    }
}

/// One prefix-list entry: `addr/len`, optionally extended to longer
/// members up to `le` (Cisco `le N` / JunOS `upto /N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlEntry {
    /// Network address (masked to `len`).
    pub addr: u32,
    /// Prefix length.
    pub len: u8,
    /// Upper member-length bound; `None` = exact match.
    pub le: Option<u8>,
}

/// A named prefix list (`PL<i>` on the Cisco side; rendered as
/// route-filter disjunctions on the JunOS side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixList {
    /// Disjunctive entries.
    pub entries: Vec<PlEntry>,
}

/// One route-map clause. Match conditions are conjunctive across kinds
/// (prefix AND community), like both vendors' semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Accept or reject matched routes.
    pub permit: bool,
    /// Index into [`Scenario::plists`], when the clause matches on prefix.
    pub plist: Option<usize>,
    /// Index into [`Scenario::comms`], when the clause matches on community.
    pub comm: Option<usize>,
    /// `set local-preference`, only meaningful on permit clauses.
    pub local_pref: Option<u32>,
}

impl Clause {
    /// The final clause every generated route map ends with.
    pub fn catch_all(permit: bool) -> Self {
        Clause {
            permit,
            plist: None,
            comm: None,
            local_pref: None,
        }
    }

    /// Does the clause match everything?
    pub fn is_catch_all(&self) -> bool {
        self.plist.is_none() && self.comm.is_none()
    }
}

/// A complete abstract scenario: one ACL, one route map, and the prefix
/// lists / single-atom communities the route map references. The last ACL
/// rule and the last clause are always explicit catch-alls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// ACL rules, first-match. Never empty; last rule is a catch-all.
    pub acl: Vec<AclRule>,
    /// Prefix lists referenced by clauses.
    pub plists: Vec<PrefixList>,
    /// Community values (asn, value) referenced by clauses.
    pub comms: Vec<(u16, u16)>,
    /// Route-map clauses, first-match. Never empty; last is a catch-all.
    pub clauses: Vec<Clause>,
}

/// Size knobs for [`generate`]. The defaults give mid-size cases; the
/// golden corpus uses the `small()` profile.
#[derive(Debug, Clone, Copy)]
pub struct SizeProfile {
    /// Max non-catch-all ACL rules.
    pub acl_rules: usize,
    /// Max prefix lists.
    pub plists: usize,
    /// Max entries per prefix list.
    pub pl_entries: usize,
    /// Max community definitions.
    pub comms: usize,
    /// Max non-catch-all route-map clauses.
    pub clauses: usize,
}

impl Default for SizeProfile {
    fn default() -> Self {
        SizeProfile {
            acl_rules: 8,
            plists: 3,
            pl_entries: 3,
            comms: 3,
            clauses: 5,
        }
    }
}

impl SizeProfile {
    /// The minimal profile used for golden corpus entries.
    pub fn small() -> Self {
        SizeProfile {
            acl_rules: 3,
            plists: 2,
            pl_entries: 2,
            comms: 2,
            clauses: 2,
        }
    }
}

/// Draw a random prefix, biased toward boundary lengths (0, 31, 32) so the
/// PrefixTrie fast path sees adversarial inputs routinely.
fn random_prefix(rng: &mut StdRng) -> (u32, u8) {
    let len: u8 = match rng.gen_range(0u8..10) {
        0 => 0,
        1 => 31,
        2 => 32,
        _ => rng.gen_range(8u8..=28),
    };
    let addr = rng.gen::<u32>() & mask(len);
    (addr, len)
}

/// Generate a base scenario from `rng`, honoring `size`.
pub fn generate(rng: &mut StdRng, size: &SizeProfile) -> Scenario {
    // ACL.
    let n_rules = rng.gen_range(1..=size.acl_rules.max(1));
    let mut acl = Vec::with_capacity(n_rules + 1);
    for _ in 0..n_rules {
        let proto = match rng.gen_range(0u8..4) {
            0 => None,
            1 => Some(17),
            _ => Some(6),
        };
        let dst_port = match proto {
            Some(_) if rng.gen_bool(0.5) => Some(rng.gen_range(1u16..=1024)),
            _ => None,
        };
        acl.push(AclRule {
            permit: rng.gen_bool(0.5),
            proto,
            src: rng.gen_bool(0.4).then(|| random_prefix(rng)),
            dst: rng.gen_bool(0.8).then(|| random_prefix(rng)),
            dst_port,
        });
    }
    acl.push(AclRule::catch_all(rng.gen_bool(0.3)));

    // Prefix lists.
    let n_pl = rng.gen_range(1..=size.plists.max(1));
    let mut plists = Vec::with_capacity(n_pl);
    for _ in 0..n_pl {
        let n_e = rng.gen_range(1..=size.pl_entries.max(1));
        let mut entries = Vec::with_capacity(n_e);
        for _ in 0..n_e {
            let (addr, len) = random_prefix(rng);
            let le = if len < 32 && rng.gen_bool(0.5) {
                Some(rng.gen_range(len + 1..=32))
            } else {
                None
            };
            entries.push(PlEntry { addr, len, le });
        }
        plists.push(PrefixList { entries });
    }

    // Communities.
    let n_c = rng.gen_range(1..=size.comms.max(1));
    let comms: Vec<(u16, u16)> = (0..n_c)
        .map(|_| (rng.gen_range(1u16..=65000), rng.gen_range(1u16..=65000)))
        .collect();

    // Route map.
    let n_cl = rng.gen_range(1..=size.clauses.max(1));
    let mut clauses = Vec::with_capacity(n_cl + 1);
    for _ in 0..n_cl {
        let plist = rng.gen_bool(0.7).then(|| rng.gen_range(0..plists.len()));
        let comm = rng.gen_bool(0.4).then(|| rng.gen_range(0..comms.len()));
        let permit = rng.gen_bool(0.6);
        clauses.push(Clause {
            permit,
            plist,
            comm,
            local_pref: (permit && rng.gen_bool(0.5)).then(|| rng.gen_range(50u32..=400)),
        });
    }
    clauses.push(Clause::catch_all(rng.gen_bool(0.5)));

    Scenario {
        acl,
        plists,
        comms,
        clauses,
    }
}

// ---------------------------------------------------------------------------
// Concrete interpreters (independent of campion-ir).
// ---------------------------------------------------------------------------

/// A concrete packet for the ACL interpreters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowWitness {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// IP protocol.
    pub proto: u8,
    /// Destination port.
    pub dst_port: u16,
}

/// A concrete route advertisement for the route-map interpreters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteWitness {
    /// Announced network address (masked to `len`).
    pub addr: u32,
    /// Announced prefix length.
    pub len: u8,
    /// Attached communities.
    pub comms: Vec<(u16, u16)>,
}

fn rule_matches(r: &AclRule, f: &FlowWitness) -> bool {
    if let Some(p) = r.proto {
        if f.proto != p {
            return false;
        }
    }
    if let Some((a, l)) = r.src {
        if f.src & mask(l) != a {
            return false;
        }
    }
    if let Some((a, l)) = r.dst {
        if f.dst & mask(l) != a {
            return false;
        }
    }
    if let Some(p) = r.dst_port {
        if f.dst_port != p {
            return false;
        }
    }
    true
}

/// First-match ACL decision: `(permit, deciding rule index)`. Total,
/// because the last rule is a catch-all.
pub fn acl_decide(rules: &[AclRule], f: &FlowWitness) -> (bool, usize) {
    for (i, r) in rules.iter().enumerate() {
        if rule_matches(r, f) {
            return (r.permit, i);
        }
    }
    unreachable!("generated ACLs end in an explicit catch-all")
}

fn plist_matches(pl: &PrefixList, r: &RouteWitness) -> bool {
    pl.entries.iter().any(|e| {
        let hi = e.le.unwrap_or(e.len);
        r.len >= e.len && r.len <= hi && r.addr & mask(e.len) == e.addr
    })
}

/// The route-map verdict of the concrete interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmapVerdict {
    /// Accepted?
    pub accept: bool,
    /// Effective LOCAL_PREF (default 100).
    pub local_pref: u32,
    /// Deciding clause index.
    pub clause: usize,
}

/// First-match route-map decision. Total, because the last clause is a
/// catch-all.
pub fn rmap_decide(sc: &Scenario, r: &RouteWitness) -> RmapVerdict {
    for (i, c) in sc.clauses.iter().enumerate() {
        let pl_ok = c.plist.is_none_or(|p| plist_matches(&sc.plists[p], r));
        let cm_ok = c.comm.is_none_or(|ci| r.comms.contains(&sc.comms[ci]));
        if pl_ok && cm_ok {
            return RmapVerdict {
                accept: c.permit,
                local_pref: if c.permit {
                    c.local_pref.unwrap_or(100)
                } else {
                    100
                },
                clause: i,
            };
        }
    }
    unreachable!("generated route maps end in an explicit catch-all")
}

// ---------------------------------------------------------------------------
// Renderers.
// ---------------------------------------------------------------------------

/// A rendered configuration plus the ground-truth line map: 1-based
/// inclusive line ranges for every ACL rule and every clause, in scenario
/// order (including the catch-alls).
#[derive(Debug, Clone)]
pub struct Rendered {
    /// Full configuration text.
    pub text: String,
    /// Per-ACL-rule line range.
    pub acl_lines: Vec<(u32, u32)>,
    /// Per-clause line range.
    pub clause_lines: Vec<(u32, u32)>,
}

impl Rendered {
    /// Total line count of the rendered configuration.
    pub fn line_count(&self) -> u32 {
        self.text.lines().count() as u32
    }
}

fn ip(a: u32) -> String {
    std::net::Ipv4Addr::from(a).to_string()
}

fn cisco_addr(p: Option<(u32, u8)>) -> String {
    match p {
        None => "any".to_string(),
        Some((a, 32)) => format!("host {}", ip(a)),
        Some((a, l)) => format!("{} {}", ip(a), ip(!mask(l))),
    }
}

struct LineWriter {
    text: String,
    line: u32,
}

impl LineWriter {
    fn new() -> Self {
        LineWriter {
            text: String::new(),
            line: 0,
        }
    }

    /// Append one line; returns its 1-based number.
    fn push(&mut self, s: &str) -> u32 {
        self.text.push_str(s);
        self.text.push('\n');
        self.line += 1;
        self.line
    }
}

/// Render the IOS side of a scenario.
pub fn render_cisco(sc: &Scenario) -> Rendered {
    let mut w = LineWriter::new();
    w.push("hostname fuzz-cisco");
    w.push("!");
    let mut acl_lines = Vec::with_capacity(sc.acl.len());
    w.push(&format!("ip access-list extended {ACL_NAME}"));
    for r in &sc.acl {
        let action = if r.permit { "permit" } else { "deny" };
        let proto = match r.proto {
            None => "ip",
            Some(6) => "tcp",
            Some(17) => "udp",
            Some(_) => unreachable!("generator only emits ip/tcp/udp"),
        };
        let mut line = format!(
            " {action} {proto} {} {}",
            cisco_addr(r.src),
            cisco_addr(r.dst)
        );
        if let Some(p) = r.dst_port {
            line.push_str(&format!(" eq {p}"));
        }
        let n = w.push(&line);
        acl_lines.push((n, n));
    }
    w.push("!");
    for (i, pl) in sc.plists.iter().enumerate() {
        for e in &pl.entries {
            let mut line = format!("ip prefix-list PL{i} permit {}/{}", ip(e.addr), e.len);
            if let Some(le) = e.le {
                line.push_str(&format!(" le {le}"));
            }
            w.push(&line);
        }
    }
    for (i, (asn, val)) in sc.comms.iter().enumerate() {
        w.push(&format!(
            "ip community-list standard C{i} permit {asn}:{val}"
        ));
    }
    w.push("!");
    let mut clause_lines = Vec::with_capacity(sc.clauses.len());
    for (i, c) in sc.clauses.iter().enumerate() {
        let action = if c.permit { "permit" } else { "deny" };
        let start = w.push(&format!(
            "route-map {POLICY_NAME} {action} {}",
            (i + 1) * 10
        ));
        let mut end = start;
        if let Some(p) = c.plist {
            end = w.push(&format!(" match ip address prefix-list PL{p}"));
        }
        if let Some(ci) = c.comm {
            end = w.push(&format!(" match community C{ci}"));
        }
        if let Some(lp) = c.local_pref.filter(|_| c.permit) {
            end = w.push(&format!(" set local-preference {lp}"));
        }
        clause_lines.push((start, end));
    }
    Rendered {
        text: w.text,
        acl_lines,
        clause_lines,
    }
}

/// Render the JunOS side of a scenario.
pub fn render_juniper(sc: &Scenario) -> Rendered {
    let mut w = LineWriter::new();
    w.push("system {");
    w.push("    host-name fuzz-juniper;");
    w.push("}");
    w.push("firewall {");
    w.push("    family inet {");
    w.push(&format!("        filter {ACL_NAME} {{"));
    let mut acl_lines = Vec::with_capacity(sc.acl.len());
    for (i, r) in sc.acl.iter().enumerate() {
        let start = w.push(&format!("            term t{i} {{"));
        if !r.is_catch_all() {
            w.push("                from {");
            if let Some(p) = r.proto {
                let name = match p {
                    6 => "tcp",
                    17 => "udp",
                    _ => unreachable!("generator only emits tcp/udp protocols"),
                };
                w.push(&format!("                    protocol {name};"));
            }
            if let Some((a, l)) = r.src {
                w.push(&format!(
                    "                    source-address {}/{l};",
                    ip(a)
                ));
            }
            if let Some((a, l)) = r.dst {
                w.push(&format!(
                    "                    destination-address {}/{l};",
                    ip(a)
                ));
            }
            if let Some(p) = r.dst_port {
                w.push(&format!("                    destination-port {p};"));
            }
            w.push("                }");
        }
        let action = if r.permit { "accept" } else { "discard" };
        w.push(&format!("                then {action};"));
        let end = w.push("            }");
        acl_lines.push((start, end));
    }
    w.push("        }");
    w.push("    }");
    w.push("}");
    w.push("policy-options {");
    for (i, (asn, val)) in sc.comms.iter().enumerate() {
        w.push(&format!("    community C{i} members {asn}:{val};"));
    }
    let mut clause_lines = Vec::with_capacity(sc.clauses.len());
    w.push(&format!("    policy-statement {POLICY_NAME} {{"));
    for (i, c) in sc.clauses.iter().enumerate() {
        let start = w.push(&format!("        term c{i} {{"));
        if !c.is_catch_all() {
            w.push("            from {");
            if let Some(p) = c.plist {
                for e in &sc.plists[p].entries {
                    let modifier = match e.le {
                        None => "exact".to_string(),
                        Some(le) => format!("upto /{le}"),
                    };
                    w.push(&format!(
                        "                route-filter {}/{} {modifier};",
                        ip(e.addr),
                        e.len
                    ));
                }
            }
            if let Some(ci) = c.comm {
                w.push(&format!("                community C{ci};"));
            }
            w.push("            }");
        }
        w.push("            then {");
        if let Some(lp) = c.local_pref.filter(|_| c.permit) {
            w.push(&format!("                local-preference {lp};"));
        }
        let action = if c.permit { "accept" } else { "reject" };
        w.push(&format!("                {action};"));
        w.push("            }");
        let end = w.push("        }");
        clause_lines.push((start, end));
    }
    w.push("    }");
    w.push("}");
    Rendered {
        text: w.text,
        acl_lines,
        clause_lines,
    }
}
