//! `campion-fuzz` — the differential config-fuzzing CLI.
//!
//! ```text
//! campion-fuzz [--seed N] [--cases M] [--jobs J] [--corpus DIR]
//!              [--class NAME[,NAME..]] [--small] [--unchecked-injection]
//!              [--emit-golden DIR] [--metrics] [--trace FILE]
//! ```
//!
//! Exit status: 0 when every oracle passed, 1 when any case failed (a
//! minimized reproducer is written under the corpus directory and the
//! seed is printed), 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use campion_fuzz::{corpus, runner, DivClass, FuzzOptions};

fn usage() -> ExitCode {
    eprintln!(
        "usage: campion-fuzz [--seed N] [--cases M] [--jobs J] [--corpus DIR]\n\
         \x20                   [--class NAME[,NAME..]] [--small]\n\
         \x20                   [--unchecked-injection] [--emit-golden DIR]\n\
         \x20                   [--metrics] [--trace FILE]\n\
         \n\
         Generates matched Cisco/Juniper config pairs with injected semantic\n\
         divergences, runs the full ConfigDiff pipeline on each, and checks\n\
         the detection, localization, and simulation-agreement oracles.\n\
         Failures are ddmin-shrunk and written to the corpus directory.\n\
         \n\
         classes: {}",
        campion_fuzz::ALL_CLASSES
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = FuzzOptions::default();
    let mut show_metrics = false;
    let mut trace_path: Option<String> = None;
    let mut emit_golden: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return usage(),
            },
            "--cases" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.cases = v,
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.jobs = v,
                None => return usage(),
            },
            "--corpus" => match it.next() {
                Some(p) => opts.corpus_dir = PathBuf::from(p),
                None => return usage(),
            },
            "--class" => match it.next() {
                Some(s) => {
                    let classes: Vec<DivClass> = s.split(',').filter_map(DivClass::parse).collect();
                    if classes.is_empty() {
                        eprintln!("campion-fuzz: unknown divergence class in `{s}`");
                        return usage();
                    }
                    opts.classes = classes;
                }
                None => return usage(),
            },
            "--small" => opts.size = campion_fuzz::SizeProfile::small(),
            "--unchecked-injection" => opts.unchecked_injection = true,
            "--emit-golden" => match it.next() {
                Some(p) => emit_golden = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--metrics" => show_metrics = true,
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("campion-fuzz: unknown argument `{other}`");
                return usage();
            }
        }
    }

    let tracing = show_metrics || trace_path.is_some();
    if tracing {
        campion_trace::enable();
    }

    let status = if let Some(dir) = emit_golden {
        emit_golden_corpus(&dir)
    } else {
        fuzz_run(&opts)
    };

    if tracing {
        campion_trace::disable();
        let report = campion_trace::drain();
        if let Some(p) = &trace_path {
            match std::fs::write(p, report.chrome_json()) {
                Ok(()) => eprintln!("trace written to {p}"),
                Err(e) => eprintln!("campion-fuzz: cannot write trace {p}: {e}"),
            }
        }
        if show_metrics {
            eprint!("{}", report.render_table());
        }
    }
    status
}

/// Run the fuzzer and report; nonzero exit when any oracle failed.
fn fuzz_run(opts: &FuzzOptions) -> ExitCode {
    let summary = runner::run(opts);
    print!("{}", summary.render());
    if summary.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        // The seed is the whole reproducer: print it on every failure.
        eprintln!(
            "campion-fuzz: {} oracle failure(s); reproduce with --seed {}",
            summary.failures.len(),
            opts.seed
        );
        ExitCode::FAILURE
    }
}

/// Regenerate the golden corpus entries into `dir`.
fn emit_golden_corpus(dir: &std::path::Path) -> ExitCode {
    let cases = corpus::golden_cases();
    if cases.len() < campion_fuzz::ALL_CLASSES.len() + 1 {
        eprintln!(
            "campion-fuzz: only {} of {} golden cases found",
            cases.len(),
            campion_fuzz::ALL_CLASSES.len() + 1
        );
        return ExitCode::FAILURE;
    }
    for (name, case, classes) in &cases {
        match corpus::write_entry(dir, name, case, "small", classes, None, "") {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => {
                eprintln!("campion-fuzz: cannot write {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
