//! Deterministic case construction: seed + index → one complete fuzz case.

use rand::rngs::StdRng;
use rand::Rng;

use crate::inject::{draw_edit, find_witness, unchecked_witness, DivClass, Divergence};
use crate::scenario::{generate, Scenario, SizeProfile};

/// Knobs shared by the runner and the case builder.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Run seed; every case derives its RNG from `(seed, case index)`.
    pub seed: u64,
    /// Number of cases.
    pub cases: u64,
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
    /// Directory minimized reproducers are written to.
    pub corpus_dir: std::path::PathBuf,
    /// Skip witness verification of injected edits (the deliberate way to
    /// break the injector's ground truth and exercise the shrinker).
    pub unchecked_injection: bool,
    /// Divergence classes to inject.
    pub classes: Vec<DivClass>,
    /// Scenario size profile.
    pub size: SizeProfile,
    /// Cap on minimized reproducers written per run.
    pub max_reproducers: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 42,
            cases: 256,
            jobs: 0,
            corpus_dir: std::path::PathBuf::from("testdata/fuzz-corpus"),
            unchecked_injection: false,
            classes: crate::inject::ALL_CLASSES.to_vec(),
            size: SizeProfile::default(),
            max_reproducers: 5,
        }
    }
}

/// One fully-specified fuzz case: the base (first-router) scenario plus
/// the injected divergence, if any. The mutated (second-router) scenario
/// is derived, never stored.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Run seed the case was derived from.
    pub seed: u64,
    /// Case index within the run.
    pub case: u64,
    /// Whether the injector ran unchecked.
    pub unchecked: bool,
    /// First-router scenario.
    pub base: Scenario,
    /// Injected divergences (empty = divergence-free pair). At most one
    /// today: a single edit keeps the ground truth exact.
    pub divs: Vec<Divergence>,
}

impl FuzzCase {
    /// The second-router scenario: base with every edit applied.
    pub fn mutated(&self) -> Scenario {
        let mut m = self.base.clone();
        for d in &self.divs {
            d.edit.apply(&mut m);
        }
        m
    }
}

/// Build case `case` of run `seed` — a pure function of `(seed, case,
/// opts)`, byte-reproducible across machines and thread schedules (each
/// case owns an RNG stream derived via `StdRng::for_stream`).
pub fn build_case(seed: u64, case: u64, opts: &FuzzOptions) -> FuzzCase {
    let mut rng = StdRng::for_stream(seed, case);
    let base = generate(&mut rng, &opts.size);
    // ~1 in 4 cases stay divergence-free: the false-positive check.
    if rng.gen_bool(0.25) {
        return FuzzCase {
            seed,
            case,
            unchecked: opts.unchecked_injection,
            base,
            divs: Vec::new(),
        };
    }
    let mut divs = Vec::new();
    for attempt in 0..24 {
        let class = opts.classes[rng.gen_range(0..opts.classes.len())];
        let Some(edit) = draw_edit(&base, class, &mut rng) else {
            continue;
        };
        let mut mutated = base.clone();
        edit.apply(&mut mutated);
        if opts.unchecked_injection {
            // Accept the edit blind: when it lands on a shadowed rule the
            // recorded ground truth is wrong — by design.
            let witness = unchecked_witness(&base, &mutated, &mut rng, &edit);
            divs.push(Divergence {
                edit,
                witness,
                verified: false,
            });
            break;
        }
        if let Some(witness) = find_witness(&base, &mutated, &mut rng, &edit) {
            divs.push(Divergence {
                edit,
                witness,
                verified: true,
            });
            break;
        }
        // Shadowed edit: redraw. Late attempts fall back to a clean case.
        let _ = attempt;
    }
    FuzzCase {
        seed,
        case,
        unchecked: opts.unchecked_injection,
        base,
        divs,
    }
}
