//! The batch runner: deterministic parallel fan-out over case indices,
//! failure shrinking, and corpus writing.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::case::{build_case, FuzzCase, FuzzOptions};
use crate::corpus;
use crate::oracle::{run_case, Coverage, Failure};
use crate::shrink::shrink;

/// One failed case, after minimization.
#[derive(Debug)]
pub struct CaseFailure {
    /// Case index within the run.
    pub case: u64,
    /// The first oracle failure observed.
    pub failure: Failure,
    /// The minimized case.
    pub minimized: FuzzCase,
    /// Where the reproducer was written, when it was.
    pub reproducer: Option<PathBuf>,
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Default)]
pub struct RunSummary {
    /// Cases executed.
    pub cases: u64,
    /// Divergence-free cases (false-positive checks).
    pub clean: u64,
    /// Injected divergences per class name.
    pub injected: BTreeMap<&'static str, u64>,
    /// Total reported differences across all cases.
    pub differences: u64,
    /// Aggregate config-line coverage of the reported differences.
    pub coverage: Coverage,
    /// Failed cases (empty = all oracles green).
    pub failures: Vec<CaseFailure>,
}

impl RunSummary {
    /// Render the human-readable run summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campion-fuzz: {} cases ({} divergence-free, {} injected)\n",
            self.cases,
            self.clean,
            self.cases - self.clean
        ));
        for (class, n) in &self.injected {
            out.push_str(&format!("  {class:<12} {n}\n"));
        }
        out.push_str(&format!("differences reported: {}\n", self.differences));
        let pct = |hit: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * hit as f64 / total as f64
            }
        };
        out.push_str(&format!(
            "config-line coverage: cisco {}/{} ({:.1}%), juniper {}/{} ({:.1}%)\n",
            self.coverage.hit1,
            self.coverage.total1,
            pct(self.coverage.hit1, self.coverage.total1),
            self.coverage.hit2,
            self.coverage.total2,
            pct(self.coverage.hit2, self.coverage.total2),
        ));
        if self.failures.is_empty() {
            out.push_str("all oracles passed\n");
        } else {
            out.push_str(&format!("ORACLE FAILURES: {}\n", self.failures.len()));
            for f in &self.failures {
                out.push_str(&format!(
                    "  case {} [{}]: {}\n",
                    f.case,
                    f.failure.oracle.name(),
                    f.failure.detail
                ));
                if let Some(p) = &f.reproducer {
                    out.push_str(&format!("    reproducer: {}\n", p.display()));
                }
            }
        }
        out
    }
}

/// Execute a fuzz run: build and check every case across the driver's
/// work-stealing pool, then shrink and persist the first failures.
/// Deterministic from `opts.seed` — per-case RNG streams are derived from
/// `(seed, index)`, so neither worker count nor claim order changes any
/// case.
pub fn run(opts: &FuzzOptions) -> RunSummary {
    let _span = campion_trace::span("fuzz.run");
    let n = opts.cases as usize;
    let jobs = if opts.jobs != 0 {
        opts.jobs
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
    .min(n.max(1));

    struct PerCase {
        case: FuzzCase,
        outcome: crate::oracle::CaseOutcome,
    }
    let results: Vec<PerCase> = if jobs <= 1 {
        (0..n)
            .map(|i| {
                let case = build_case(opts.seed, i as u64, opts);
                let outcome = run_case(&case);
                PerCase { case, outcome }
            })
            .collect()
    } else {
        campion_core::steal_indexed(
            vec![(); jobs],
            n,
            |w| campion_trace::set_track(w as u32 + 1),
            |(), i| {
                let case = build_case(opts.seed, i as u64, opts);
                let outcome = run_case(&case);
                PerCase { case, outcome }
            },
        )
    };

    let mut summary = RunSummary {
        cases: opts.cases,
        ..RunSummary::default()
    };
    let mut failing: Vec<(FuzzCase, Failure)> = Vec::new();
    for r in &results {
        if r.case.divs.is_empty() {
            summary.clean += 1;
        }
        for d in &r.case.divs {
            *summary.injected.entry(d.class().name()).or_default() += 1;
        }
        summary.differences += r.outcome.differences as u64;
        summary.coverage.merge(&r.outcome.coverage);
        if let Some(f) = r.outcome.failures.first() {
            failing.push((r.case.clone(), f.clone()));
        }
    }

    for (case, failure) in failing {
        let write = summary.failures.len() < opts.max_reproducers;
        let minimized = if write {
            shrink(&case, failure.oracle, 300)
        } else {
            case.clone()
        };
        let reproducer = if write {
            let name = format!(
                "repro-s{}-c{}-{}",
                case.seed,
                case.case,
                failure.oracle.name()
            );
            corpus::write_entry(
                &opts.corpus_dir,
                &name,
                &minimized,
                "default",
                &opts.classes,
                Some(failure.oracle),
                &failure.detail,
            )
            .ok()
        } else {
            None
        };
        summary.failures.push(CaseFailure {
            case: case.case,
            failure,
            minimized,
            reproducer,
        });
    }
    summary
}
