//! # campion-fuzz — the differential config-fuzzing harness
//!
//! A standing correctness subsystem for the whole ConfigDiff pipeline:
//! generate matched Cisco/Juniper configuration pairs, inject a known
//! semantic divergence, run parse → lower → compare, and hold the report
//! to three oracles:
//!
//! 1. **Detection** ([`oracle`]) — every injected divergence is reported;
//!    divergence-free pairs come back equivalent.
//! 2. **Localization** — the reported text spans cover the injected edit
//!    site on each side, with the right accept/reject actions, and the
//!    witness input is a member of the header-localized prefix set.
//! 3. **Simulation agreement** — `campion-srp` packet forwarding and BGP
//!    export agree with the verdict on a targeted probe set.
//!
//! On failure the case is ddmin-shrunk ([`shrink`]) and written to
//! `testdata/fuzz-corpus/` with its seed ([`corpus`]); the run exits
//! nonzero. Everything is a pure function of `--seed`: per-case RNG
//! streams come from `rand`'s documented `StdRng::for_stream` entry
//! point, so runs and reproducers are byte-identical across machines,
//! worker counts, and thread schedules.

#![warn(missing_docs)]

pub mod case;
pub mod corpus;
pub mod inject;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use case::{build_case, FuzzCase, FuzzOptions};
pub use inject::{DivClass, Divergence, Edit, Witness, ALL_CLASSES};
pub use oracle::{run_case, CaseOutcome, Coverage, Failure, OracleKind};
pub use runner::{run, CaseFailure, RunSummary};
pub use scenario::{
    acl_decide, generate, render_cisco, render_juniper, rmap_decide, FlowWitness, Rendered,
    RouteWitness, Scenario, SizeProfile,
};

#[cfg(test)]
mod tests;
