//! Property tests for header localization on IPv4 boundary edits.
//!
//! Self-contained Cisco-vs-Cisco ACL pairs whose destination matchers sit
//! on the awkward edges of the IPv4 lattice — `0.0.0.0/0`, `/31`, `/32`,
//! and non-contiguous wildcard masks — with one rule's action flipped on
//! the second side. A test-local first-match interpreter (`dst & !wild ==
//! base & !wild`) provides ground truth: when it finds a separating
//! destination, Campion must report a difference whose text spans cover
//! the edited rule on *both* sides, whose actions agree with the
//! interpreter, and whose header-localized included set contains the
//! witness; when the flip is shadowed, the pair must come back equivalent.

use std::net::Ipv4Addr;

use campion_cfg::parse_config;
use campion_core::{compare_routers, CampionOptions, CampionReport};
use campion_ir::{lower, RouterIr};
use proptest::prelude::*;

/// A destination matcher: base address plus Cisco wildcard bits.
#[derive(Clone, Copy, Debug)]
struct Matcher {
    base: u32,
    wild: u32,
}

impl Matcher {
    fn covers(&self, dst: u32) -> bool {
        dst & !self.wild == self.base & !self.wild
    }
}

/// The boundary shapes under test, selected by `kind`.
fn matcher(kind: usize, addr: u32) -> Matcher {
    match kind {
        0 => Matcher {
            base: 0,
            wild: u32::MAX, // 0.0.0.0/0
        },
        1 => Matcher {
            base: addr,
            wild: 0, // /32
        },
        2 => Matcher {
            base: addr & !1,
            wild: 1, // /31
        },
        3 => Matcher {
            base: addr,
            wild: 0x0000_00FF, // /24-equivalent contiguous wildcard
        },
        4 => Matcher {
            base: addr,
            wild: 0x00FF_00FF, // non-contiguous wildcard
        },
        _ => Matcher {
            base: addr,
            wild: 0x8000_0001, // non-contiguous: both edge bits wild
        },
    }
}

/// One rule: matcher plus permit/deny.
type Rule = (Matcher, bool);

/// First-match decision over `rules` (which always end in a catch-all).
fn decide(rules: &[Rule], dst: u32) -> (bool, usize) {
    for (i, (m, permit)) in rules.iter().enumerate() {
        if m.covers(dst) {
            return (*permit, i);
        }
    }
    unreachable!("catch-all rule always matches");
}

/// Render the pair's config text; rule `i` lives on 1-based line `i + 4`
/// (after `hostname`, `!`, and the `ip access-list` header).
fn render(host: &str, rules: &[Rule]) -> String {
    let mut out = format!("hostname {host}\n!\nip access-list extended BOUND\n");
    for (m, permit) in rules {
        let action = if *permit { "permit" } else { "deny" };
        out.push_str(&format!(
            " {action} ip any {} {}\n",
            Ipv4Addr::from(m.base),
            Ipv4Addr::from(m.wild)
        ));
    }
    out.push_str("!\n");
    out
}

fn rule_line(i: usize) -> u32 {
    i as u32 + 4
}

fn pipeline(text: &str) -> RouterIr {
    let cfg = parse_config(text).expect("boundary config parses");
    lower(&cfg).expect("boundary config lowers")
}

fn compare(rules1: &[Rule], rules2: &[Rule]) -> CampionReport {
    let ir1 = pipeline(&render("r1", rules1));
    let ir2 = pipeline(&render("r2", rules2));
    let opts = CampionOptions {
        jobs: 1,
        ..CampionOptions::default()
    };
    compare_routers(&ir1, &ir2, &opts)
}

/// Search the boundary addresses of every rule for a destination the two
/// rule lists decide differently.
fn find_witness(rules1: &[Rule], rules2: &[Rule]) -> Option<u32> {
    let mut probes = vec![0u32, u32::MAX];
    for (m, _) in rules1 {
        let lo = m.base & !m.wild;
        let hi = lo | m.wild;
        for p in [lo, hi, lo.wrapping_sub(1), hi.wrapping_add(1)] {
            probes.push(p);
        }
    }
    probes
        .into_iter()
        .find(|&dst| decide(rules1, dst).0 != decide(rules2, dst).0)
}

fn accepts(action: &str) -> bool {
    action.ends_with("ACCEPT")
}

/// The full oracle for one flipped-rule pair. `edit` indexes the flipped
/// rule (never the catch-all).
fn check_flip(rules1: &[Rule], edit: usize) {
    let mut rules2 = rules1.to_vec();
    rules2[edit].1 = !rules2[edit].1;
    let report = compare(rules1, &rules2);
    let Some(dst) = find_witness(rules1, &rules2) else {
        // The flipped rule is shadowed: behaviorally identical lists must
        // come back equivalent — the false-positive half of the property.
        assert!(
            report.is_equivalent(),
            "shadowed flip of rule {edit} reported differences:\n{report}"
        );
        return;
    };
    assert!(
        !report.is_equivalent(),
        "separating dst {} found but pair reported equivalent",
        Ipv4Addr::from(dst)
    );
    let (p1, i1) = decide(rules1, dst);
    let (p2, i2) = decide(&rules2, dst);
    let covered = report.acl_diffs.iter().any(|d| {
        let on1 = d
            .spans1
            .iter()
            .any(|s| s.start <= rule_line(i1) && s.end >= rule_line(i1));
        let on2 = d
            .spans2
            .iter()
            .any(|s| s.start <= rule_line(i2) && s.end >= rule_line(i2));
        on1 && on2
            && accepts(&d.action1) == p1
            && accepts(&d.action2) == p2
            && d.included
                .iter()
                .any(|r| r.prefix.contains_addr(Ipv4Addr::from(dst)))
    });
    assert!(
        covered,
        "no reported ACL difference localizes the flip of rule {edit} \
         (witness {}, deciding rules {i1}/{i2}):\n{report}",
        Ipv4Addr::from(dst)
    );
}

const CATCH_ALL: Rule = (
    Matcher {
        base: 0,
        wild: u32::MAX,
    },
    false,
);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flipped_boundary_rule_is_localized(
        pre in proptest::collection::vec((0u32..=u32::MAX, 0usize..6, 0usize..2), 0..3),
        target in (0u32..=u32::MAX, 0usize..6, 0usize..2),
        post in proptest::collection::vec((0u32..=u32::MAX, 0usize..6, 0usize..2), 0..3),
    ) {
        let rule = |(addr, kind, act): (u32, usize, usize)| (matcher(kind, addr), act == 0);
        let mut rules: Vec<Rule> = Vec::new();
        rules.extend(pre.into_iter().map(rule));
        let edit = rules.len();
        rules.push(rule(target));
        rules.extend(post.into_iter().map(rule));
        rules.push(CATCH_ALL);
        check_flip(&rules, edit);
    }
}

/// Every boundary shape, deterministically: the edited rule leads the
/// list, so it is never shadowed and must always be detected + localized.
#[test]
fn each_boundary_kind_is_detected_unshadowed() {
    for kind in 0..6 {
        let rules = vec![
            (matcher(kind, 0x0A00_0102), true),
            (
                Matcher {
                    base: 0xC0A8_0000,
                    wild: 0x0000_FFFF,
                },
                true,
            ),
            CATCH_ALL,
        ];
        check_flip(&rules, 0);
    }
}
