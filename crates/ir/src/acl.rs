//! Vendor-independent ACLs (Cisco extended ACLs, Juniper inet firewall
//! filters) and their concrete evaluation semantics.

use campion_cfg::Span;
use campion_net::{Flow, IpProtocol, PortRange, WildcardMask};

/// One rule: a conjunction of field constraints, each field being a
/// disjunction of values (empty = unconstrained). This single shape covers
/// both a Cisco ACL line (one value per field) and a Juniper filter term
/// (several values per field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclRuleIr {
    /// Display label (`"seq 20"`, `"term permit_whitelist"`).
    pub label: String,
    /// `true` = permit/accept, `false` = deny/discard.
    pub permit: bool,
    /// Protocol alternatives (empty = any).
    pub protocols: Vec<IpProtocol>,
    /// Source-address alternatives (empty = any).
    pub src: Vec<WildcardMask>,
    /// Destination-address alternatives (empty = any).
    pub dst: Vec<WildcardMask>,
    /// Source-port alternatives (empty = any).
    pub src_ports: Vec<PortRange>,
    /// Destination-port alternatives (empty = any).
    pub dst_ports: Vec<PortRange>,
    /// Source lines.
    pub span: Span,
}

impl AclRuleIr {
    /// A rule matching every packet.
    pub fn match_all(label: impl Into<String>, permit: bool, span: Span) -> Self {
        AclRuleIr {
            label: label.into(),
            permit,
            protocols: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            src_ports: Vec::new(),
            dst_ports: Vec::new(),
            span,
        }
    }

    /// Does the rule match a concrete flow?
    pub fn matches(&self, flow: &Flow) -> bool {
        let proto_ok =
            self.protocols.is_empty() || self.protocols.iter().any(|p| p.matches(flow.protocol));
        let src_ok = self.src.is_empty() || self.src.iter().any(|w| w.matches(flow.src_ip));
        let dst_ok = self.dst.is_empty() || self.dst.iter().any(|w| w.matches(flow.dst_ip));
        // Port constraints only bind for protocols that carry ports; a rule
        // with a port constraint cannot match a portless protocol.
        let has_ports = flow.protocol == 6 || flow.protocol == 17;
        let sport_ok = self.src_ports.is_empty()
            || (has_ports && self.src_ports.iter().any(|r| r.contains(flow.src_port)));
        let dport_ok = self.dst_ports.is_empty()
            || (has_ports && self.dst_ports.iter().any(|r| r.contains(flow.dst_port)));
        proto_ok && src_ok && dst_ok && sport_ok && dport_ok
    }
}

/// A vendor-independent ACL: ordered rules, first match wins, implicit
/// trailing deny (both vendors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclIr {
    /// ACL / filter name.
    pub name: String,
    /// Rules in order.
    pub rules: Vec<AclRuleIr>,
    /// Span of the whole definition.
    pub span: Span,
}

impl AclIr {
    /// Evaluate on a concrete flow: `(permitted, index of deciding rule)`.
    /// `None` index means the implicit trailing deny decided.
    pub fn evaluate(&self, flow: &Flow) -> (bool, Option<usize>) {
        for (i, r) in self.rules.iter().enumerate() {
            if r.matches(flow) {
                return (r.permit, Some(i));
            }
        }
        (false, None)
    }

    /// Shorthand: is the flow permitted?
    pub fn permits(&self, flow: &Flow) -> bool {
        self.evaluate(flow).0
    }
}
