//! Tests for the VI model and vendor lowering — anchored on the concrete
//! behavioral gaps the paper's Figure 1 exposes.

use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
use campion_cfg::{parse_config, Vendor};
use campion_net::{Community, Flow, Prefix};

use crate::*;

fn cisco_fig1() -> RouterIr {
    lower(&parse_config(FIGURE1_CISCO).unwrap()).unwrap()
}

fn juniper_fig1() -> RouterIr {
    lower(&parse_config(FIGURE1_JUNIPER).unwrap()).unwrap()
}

fn advert(p: &str) -> RouteAdvert {
    RouteAdvert::bgp(p.parse::<Prefix>().unwrap())
}

#[test]
fn figure1_lowering_shapes() {
    let c = cisco_fig1();
    assert_eq!(c.vendor, Vendor::CiscoIos);
    let pol = &c.policies["POL"];
    assert_eq!(pol.clauses.len(), 3);
    assert_eq!(pol.default_terminal, Terminal::Reject);
    assert_eq!(pol.clauses[0].label, "deny 10");
    assert_eq!(pol.clauses[2].sets, vec![SetAction::LocalPref(30)]);

    let j = juniper_fig1();
    assert_eq!(j.vendor, Vendor::JuniperJunos);
    let pol = &j.policies["POL"];
    assert_eq!(pol.clauses.len(), 3);
    assert_eq!(pol.default_terminal, Terminal::Accept);
    assert_eq!(pol.clauses[0].label, "term rule1");
}

/// The paper's Difference 1: `10.9.1.0/24` falls in Cisco NETS (le 32) but
/// not in Juniper NETS (exact), so Cisco rejects and Juniper accepts.
#[test]
fn figure1_difference_1_prefix_lengths() {
    let c = cisco_fig1();
    let j = juniper_fig1();
    let a = advert("10.9.1.0/24");
    let vc = c.policies["POL"].evaluate(&a);
    let vj = j.policies["POL"].evaluate(&a);
    assert!(!vc.accept, "Cisco: matched by NETS, denied by clause 10");
    assert_eq!(vc.fired, vec![0]);
    assert!(
        vj.accept,
        "Juniper: NETS matches only /16 exactly; falls to rule3"
    );
    assert_eq!(vj.route.local_pref, 30);
    // The /16 itself is treated identically (both reject).
    let a16 = advert("10.9.0.0/16");
    assert!(!c.policies["POL"].evaluate(&a16).accept);
    assert!(!j.policies["POL"].evaluate(&a16).accept);
}

/// The paper's Difference 2: a route tagged only `10:10` matches Cisco COMM
/// (any line) but not Juniper COMM (requires both members).
#[test]
fn figure1_difference_2_community_semantics() {
    let c = cisco_fig1();
    let j = juniper_fig1();
    let a = advert("99.0.0.0/8").with_communities([Community::new(10, 10)]);
    let vc = c.policies["POL"].evaluate(&a);
    let vj = j.policies["POL"].evaluate(&a);
    assert!(!vc.accept, "Cisco: COMM line '10:10' matches → deny 20");
    assert_eq!(vc.fired, vec![1]);
    assert!(vj.accept, "Juniper: members [10:10 10:11] needs both");
    // With both communities the routers agree (reject).
    let both =
        advert("99.0.0.0/8").with_communities([Community::new(10, 10), Community::new(10, 11)]);
    assert!(!c.policies["POL"].evaluate(&both).accept);
    assert!(!j.policies["POL"].evaluate(&both).accept);
}

/// Fall-through asymmetry: Cisco's implicit deny versus JunOS
/// default-accept, visible once the catch-all clause is removed.
#[test]
fn default_terminal_asymmetry() {
    let c = lower(&parse_config("route-map ONLY deny 10\n match tag 7\n").unwrap()).unwrap();
    let j = lower(
        &parse_config(
            "policy-options {
                policy-statement ONLY {
                    term t { from tag 7; then reject; }
                }
            }",
        )
        .unwrap(),
    )
    .unwrap();
    let a = advert("1.2.3.0/24");
    assert!(
        !c.policies["ONLY"].evaluate(&a).accept,
        "Cisco implicit deny"
    );
    assert!(
        j.policies["ONLY"].evaluate(&a).accept,
        "JunOS default accept"
    );
}

#[test]
fn fallthrough_accumulates_sets() {
    let j = lower(
        &parse_config(
            "policy-options {
                policy-statement CHAIN {
                    term set_pref { then local-preference 250; }
                    term accept_all { then accept; }
                }
            }",
        )
        .unwrap(),
    )
    .unwrap();
    let v = j.policies["CHAIN"].evaluate(&advert("5.5.0.0/16"));
    assert!(v.accept);
    assert_eq!(v.route.local_pref, 250, "set survives the fallthrough");
    assert_eq!(v.fired, vec![0, 1]);
}

#[test]
fn community_set_add_delete() {
    let c = lower(
        &parse_config(
            "ip community-list standard STRIP permit 65000:1\n\
             route-map M permit 10\n\
             \x20set community 1:1 2:2\n\
             route-map M2 permit 10\n\
             \x20set community 3:3 additive\n\
             route-map M3 permit 10\n\
             \x20set comm-list STRIP delete\n",
        )
        .unwrap(),
    )
    .unwrap();
    let base =
        advert("9.9.0.0/16").with_communities([Community::new(65000, 1), Community::new(7, 7)]);
    let v1 = c.policies["M"].evaluate(&base);
    assert_eq!(
        v1.route.communities.into_iter().collect::<Vec<_>>(),
        vec![Community::new(1, 1), Community::new(2, 2)],
        "set replaces"
    );
    let v2 = c.policies["M2"].evaluate(&base);
    assert!(v2.route.communities.contains(&Community::new(3, 3)));
    assert!(
        v2.route.communities.contains(&Community::new(7, 7)),
        "additive keeps"
    );
    let v3 = c.policies["M3"].evaluate(&base);
    assert!(!v3.route.communities.contains(&Community::new(65000, 1)));
    assert!(v3.route.communities.contains(&Community::new(7, 7)));
}

#[test]
fn regex_community_matching() {
    let c = lower(
        &parse_config(
            "ip community-list expanded PEERS permit _65000:.*_\n\
             route-map M deny 10\n\
             \x20match community PEERS\n\
             route-map M permit 20\n",
        )
        .unwrap(),
    )
    .unwrap();
    let hit = advert("1.0.0.0/8").with_communities([Community::new(65000, 42)]);
    let miss = advert("1.0.0.0/8").with_communities([Community::new(64000, 42)]);
    assert!(!c.policies["M"].evaluate(&hit).accept);
    assert!(c.policies["M"].evaluate(&miss).accept);
}

#[test]
fn juniper_route_filter_modifiers_behave() {
    let j = lower(
        &parse_config(
            "policy-options {
                policy-statement P {
                    term t {
                        from {
                            route-filter 10.0.0.0/8 upto /16;
                        }
                        then reject;
                    }
                    term u { then accept; }
                }
            }",
        )
        .unwrap(),
    )
    .unwrap();
    let p = &j.policies["P"];
    assert!(!p.evaluate(&advert("10.0.0.0/8")).accept);
    assert!(!p.evaluate(&advert("10.5.0.0/16")).accept);
    assert!(
        p.evaluate(&advert("10.5.5.0/24")).accept,
        "/24 beyond upto /16"
    );
    assert!(p.evaluate(&advert("11.0.0.0/8")).accept);
}

#[test]
fn undefined_references_error() {
    let err = lower(
        &parse_config("route-map M permit 10\n match ip address prefix-list NOPE\n").unwrap(),
    )
    .unwrap_err();
    assert!(err.message.contains("NOPE"));
    let err = lower(
        &parse_config(
            "policy-options {
                policy-statement P { term t { from community NOPE; then accept; } }
            }",
        )
        .unwrap(),
    )
    .unwrap_err();
    assert!(err.message.contains("NOPE"));
}

#[test]
fn static_route_lowering_and_null0() {
    let c = lower(
        &parse_config(
            "ip route 10.1.1.2 255.255.255.254 10.2.2.2\n\
             ip route 192.0.2.0 255.255.255.0 Null0\n",
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(c.static_routes[0].admin_distance, 1);
    assert_eq!(
        c.static_routes[0].next_hop,
        NextHopIr::Ip("10.2.2.2".parse().unwrap())
    );
    assert_eq!(c.static_routes[1].next_hop, NextHopIr::Discard);

    let j = lower(
        &parse_config(
            "routing-options {
                static {
                    route 10.1.1.2/31 next-hop 10.2.2.2;
                    route 192.0.2.0/24 discard;
                }
            }",
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(
        j.static_routes[0].admin_distance, 5,
        "JunOS default preference"
    );
    assert_eq!(j.static_routes[1].next_hop, NextHopIr::Discard);
}

#[test]
fn acl_lowering_cross_vendor_equivalence() {
    // Equivalent ACLs in both dialects must agree on sample flows.
    let c = lower(
        &parse_config(
            "ip access-list extended F\n\
             \x20permit tcp 10.0.0.0 0.0.255.255 any eq 443\n\
             \x20deny ip any any\n",
        )
        .unwrap(),
    )
    .unwrap();
    let j = lower(
        &parse_config(
            "firewall {
                family inet {
                    filter F {
                        term t1 {
                            from {
                                source-address 10.0.0.0/16;
                                protocol tcp;
                                destination-port 443;
                            }
                            then accept;
                        }
                        term t2 { then discard; }
                    }
                }
            }",
        )
        .unwrap(),
    )
    .unwrap();
    let inside = Flow::tcp(
        "10.0.9.9".parse().unwrap(),
        5000,
        "8.8.8.8".parse().unwrap(),
        443,
    );
    let outside = Flow::tcp(
        "10.1.0.1".parse().unwrap(),
        5000,
        "8.8.8.8".parse().unwrap(),
        443,
    );
    let wrong_port = Flow::tcp(
        "10.0.9.9".parse().unwrap(),
        5000,
        "8.8.8.8".parse().unwrap(),
        80,
    );
    let udp = Flow::udp(
        "10.0.9.9".parse().unwrap(),
        5000,
        "8.8.8.8".parse().unwrap(),
        443,
    );
    for flow in [inside, outside, wrong_port, udp] {
        assert_eq!(
            c.acls["F"].permits(&flow),
            j.acls["F"].permits(&flow),
            "disagreement on {flow}"
        );
    }
    assert!(c.acls["F"].permits(&inside));
    assert!(!c.acls["F"].permits(&outside));
}

#[test]
fn acl_port_rule_cannot_match_portless_protocol() {
    let c = lower(
        &parse_config(
            "ip access-list extended F\n\
             \x20permit tcp any any eq 443\n",
        )
        .unwrap(),
    )
    .unwrap();
    let icmp = Flow::icmp("1.1.1.1".parse().unwrap(), "2.2.2.2".parse().unwrap());
    assert!(!c.acls["F"].permits(&icmp));
}

#[test]
fn bgp_neighbor_lowering_defaults() {
    let c = lower(
        &parse_config(
            "router bgp 65001\n\
             \x20neighbor 10.0.0.2 remote-as 65002\n\
             \x20neighbor 10.0.0.2 route-map POL out\n\
             route-map POL permit 10\n",
        )
        .unwrap(),
    )
    .unwrap();
    let n = &c.bgp.as_ref().unwrap().neighbors[&"10.0.0.2".parse().unwrap()];
    assert!(!n.send_community, "IOS: off by default");
    assert_eq!(n.export_policy.as_deref(), Some("POL"));

    let j = lower(
        &parse_config(
            "routing-options { autonomous-system 65001; }
            policy-options {
                policy-statement A { term t { then accept; } }
                policy-statement B { term t { then reject; } }
            }
            protocols {
                bgp {
                    group peers {
                        type internal;
                        cluster 192.0.2.1;
                        export [ A B ];
                        neighbor 10.0.0.2;
                    }
                }
            }",
        )
        .unwrap(),
    )
    .unwrap();
    let bgp = j.bgp.as_ref().unwrap();
    assert_eq!(bgp.asn, 65001);
    let n = &bgp.neighbors[&"10.0.0.2".parse().unwrap()];
    assert!(n.send_community, "JunOS: on by default");
    assert!(
        n.route_reflector_client,
        "cluster makes neighbors RR clients"
    );
    assert_eq!(n.remote_as, Some(65001), "internal group peers at local AS");
    assert_eq!(n.export_policy.as_deref(), Some("A+B"));
    assert!(j.policies.contains_key("A+B"), "chain materialized");
    assert_eq!(j.policies["A+B"].clauses.len(), 2);
}

#[test]
fn connected_routes_from_interfaces() {
    let c = lower(
        &parse_config(
            "interface GigabitEthernet0/0\n\
             \x20ip address 10.0.12.1 255.255.255.0\n\
             interface GigabitEthernet0/1\n\
             \x20ip address 10.0.13.1 255.255.255.0\n\
             \x20shutdown\n",
        )
        .unwrap(),
    )
    .unwrap();
    let routes = c.connected_routes();
    assert!(routes.contains(&"10.0.12.0/24".parse().unwrap()));
    assert!(
        !routes.contains(&"10.0.13.0/24".parse().unwrap()),
        "shutdown interfaces contribute nothing"
    );
}

#[test]
fn ospf_interface_lowering_cisco_network_statements() {
    let c = lower(
        &parse_config(
            "interface GigabitEthernet0/0\n\
             \x20ip address 10.0.12.1 255.255.255.0\n\
             \x20ip ospf cost 250\n\
             interface GigabitEthernet0/1\n\
             \x20ip address 172.16.0.1 255.255.255.0\n\
             router ospf 1\n\
             \x20network 10.0.0.0 0.255.255.255 area 0\n\
             \x20passive-interface GigabitEthernet0/0\n",
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(c.ospf_interfaces.len(), 1, "only the matched interface");
    let oi = &c.ospf_interfaces[0];
    assert_eq!(oi.iface, "GigabitEthernet0/0");
    assert_eq!(oi.area, 0);
    assert_eq!(oi.cost, Some(250));
    assert!(oi.passive);
    assert_eq!(oi.subnet.unwrap().to_string(), "10.0.12.0/24");
}

#[test]
fn ospf_interface_lowering_juniper() {
    let j = lower(
        &parse_config(
            "interfaces {
                ge-0/0/0 {
                    unit 0 { family inet { address 10.0.12.2/24; } }
                }
            }
            protocols {
                ospf {
                    area 0.0.0.0 {
                        interface ge-0/0/0.0 { metric 250; }
                    }
                }
            }",
        )
        .unwrap(),
    )
    .unwrap();
    let oi = &j.ospf_interfaces[0];
    assert_eq!(oi.iface, "ge-0/0/0.0");
    assert_eq!(oi.cost, Some(250));
    assert_eq!(oi.subnet.unwrap().to_string(), "10.0.12.0/24");
}

#[test]
fn juniper_ospf_export_becomes_redistribution() {
    let j = lower(
        &parse_config(
            "policy-options {
                policy-statement STATIC_TO_OSPF {
                    term t { from protocol static; then accept; }
                }
            }
            protocols {
                ospf {
                    export STATIC_TO_OSPF;
                    area 0.0.0.0 { interface ge-0/0/0.0; }
                }
            }",
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(j.ospf_redistribute.len(), 1);
    assert_eq!(j.ospf_redistribute[0].from_protocol, RouteProtocol::Static);
    assert_eq!(
        j.ospf_redistribute[0].policy.as_deref(),
        Some("STATIC_TO_OSPF")
    );
}

#[test]
fn policy_or_permit_for_missing_hook() {
    let c = lower(&parse_config("hostname r1\n").unwrap()).unwrap();
    let p = c.policy_or_permit("NOT_THERE");
    assert!(p.evaluate(&advert("1.2.3.0/24")).accept);
}

#[test]
fn prefix_ranges_and_atoms_extraction() {
    let c = cisco_fig1();
    let pol = &c.policies["POL"];
    let ranges = pol.prefix_ranges();
    assert_eq!(ranges.len(), 2);
    assert!(ranges
        .iter()
        .any(|r| r.to_string() == "10.9.0.0/16 : 16-32"));
    let atoms = pol.community_atoms();
    assert!(atoms.contains(&CommAtom::Literal(Community::new(10, 10))));
    assert!(atoms.contains(&CommAtom::Literal(Community::new(10, 11))));

    let j = juniper_fig1();
    let ranges = j.policies["POL"].prefix_ranges();
    assert!(
        ranges
            .iter()
            .any(|r| r.to_string() == "10.9.0.0/16 : 16-16"),
        "exact semantics"
    );
}

mod properties {
    //! Differential property tests: random route maps evaluated clause by
    //! clause against an oracle interpreter written independently here.
    use super::*;
    use proptest::prelude::*;

    fn arb_community() -> impl Strategy<Value = Community> {
        (0u16..4, 0u16..4).prop_map(|(a, b)| Community::new(a * 10, b))
    }

    prop_compose! {
        fn arb_advert()(
            bits in any::<u32>(),
            len in 0u8..=32,
            comms in proptest::collection::btree_set(arb_community(), 0..4),
            tag in 0u32..3,
        ) -> RouteAdvert {
            let mut a = RouteAdvert::bgp(Prefix::new(std::net::Ipv4Addr::from(bits), len));
            a.communities = comms;
            a.tag = tag;
            a
        }
    }

    proptest! {
        /// Accepted verdicts from a policy with only Accept/Reject terminals
        /// fire exactly one clause, and that clause matches the input.
        #[test]
        fn fired_clause_matches(a in arb_advert()) {
            let c = cisco_fig1();
            let pol = &c.policies["POL"];
            let v = pol.evaluate(&a);
            if !v.default_fired {
                prop_assert_eq!(v.fired.len(), 1);
                prop_assert!(pol.clauses[v.fired[0]].matches_advert(&a));
                // No earlier clause matches.
                for i in 0..v.fired[0] {
                    prop_assert!(!pol.clauses[i].matches_advert(&a));
                }
            } else {
                for cl in &pol.clauses {
                    prop_assert!(!cl.matches_advert(&a));
                }
            }
        }

        /// The Figure 1 pair disagrees exactly on the two documented
        /// difference regions — everywhere else they agree.
        #[test]
        fn figure1_disagreement_is_exactly_the_two_bugs(a in arb_advert()) {
            let c = cisco_fig1();
            let j = juniper_fig1();
            let vc = c.policies["POL"].evaluate(&a);
            let vj = j.policies["POL"].evaluate(&a);
            // Region 1: in Cisco NETS but not Juniper NETS (length 17-32 of
            // the two /16s).
            let nets16: [Prefix; 2] =
                ["10.9.0.0/16".parse().unwrap(), "10.100.0.0/16".parse().unwrap()];
            let in_cisco_nets = nets16.iter().any(|n| {
                n.contains(&a.prefix) && a.prefix.len() >= 16
            });
            let in_juniper_nets = nets16.contains(&a.prefix);
            let region1 = in_cisco_nets && !in_juniper_nets;
            // Region 2: outside Cisco NETS, matches Cisco COMM (any of
            // 10:10, 10:11) but not Juniper COMM (both).
            let has1010 = a.has_community(Community::new(10, 10));
            let has1011 = a.has_community(Community::new(10, 11));
            let region2 = !in_cisco_nets && (has1010 ^ has1011);
            let expect_disagree = region1 || region2;
            prop_assert_eq!(
                vc.accept != vj.accept,
                expect_disagree,
                "advert {} (cisco={}, juniper={})", a, vc.accept, vj.accept
            );
        }
    }
}
