//! Vendor-independent route policies (route maps / policy statements) and
//! their concrete evaluation semantics.
//!
//! A [`RoutePolicy`] is an ordered list of [`Clause`]s: each clause is a
//! conjunction of [`Match`] conditions guarding a list of [`SetAction`]s and
//! a [`Terminal`] disposition. Evaluation walks clauses in order; the first
//! clause whose matches all hold fires. A firing clause applies its sets and
//! then either terminates (`Accept`/`Reject`) or falls through to the next
//! clause (`Fallthrough`, covering JunOS non-terminating terms, `next term`,
//! and Cisco `continue`). When no clause terminates, the policy's
//! `default_terminal` applies — implicit deny on Cisco, default-accept for
//! BGP routes on Juniper.

use std::fmt;

use campion_cfg::Span;
use campion_net::regex::Regex;
use campion_net::{Community, Prefix, PrefixRange};

use crate::route::{RouteAdvert, RouteProtocol};

/// One entry of a prefix matcher: an action applied to a prefix range.
/// First-match-wins over the entry list, implicit deny at the end — the
/// shared shape of Cisco prefix lists and JunOS route-filter groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixMatcherEntry {
    /// `true` = permit, `false` = deny.
    pub permit: bool,
    /// The matched range.
    pub range: PrefixRange,
    /// The vendor line this entry came from.
    pub span: Span,
}

/// A prefix-set matcher: ordered permit/deny ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrefixMatcher {
    /// Entries in match order.
    pub entries: Vec<PrefixMatcherEntry>,
    /// Name of the originating list, for reports (empty for inline filters).
    pub name: String,
}

impl PrefixMatcher {
    /// Does the matcher accept `p`?
    pub fn matches(&self, p: &Prefix) -> bool {
        for e in &self.entries {
            if e.range.member(p) {
                return e.permit;
            }
        }
        false
    }

    /// Every range mentioned (for `HeaderLocalize`'s range universe).
    pub fn ranges(&self) -> impl Iterator<Item = PrefixRange> + '_ {
        self.entries.iter().map(|e| e.range)
    }
}

/// One community atom: a literal community or a regex over community
/// strings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommAtom {
    /// An exact community value.
    Literal(Community),
    /// A regex pattern (validated at lowering time).
    Regex(String),
}

impl CommAtom {
    /// Does the atom hold for an advertisement carrying `communities`?
    /// Literals require presence; regexes require *some* community to match.
    pub fn holds(&self, advert: &RouteAdvert) -> bool {
        match self {
            CommAtom::Literal(c) => advert.has_community(*c),
            CommAtom::Regex(pat) => {
                let re = Regex::new(pat).expect("validated at lowering");
                advert
                    .communities
                    .iter()
                    .any(|c| re.is_match(&c.to_string()))
            }
        }
    }
}

impl fmt::Display for CommAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommAtom::Literal(c) => write!(f, "{c}"),
            CommAtom::Regex(r) => write!(f, "/{r}/"),
        }
    }
}

/// Which vendor matching discipline a community matcher uses — the
/// "any of the lines" versus "all of the members" split at the heart of
/// Figure 1's second bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommunityDialect {
    /// Cisco community-list: ordered `(permit, conjunction-of-atoms)`
    /// entries, first match wins, implicit deny. With the common
    /// one-community-per-line style this is an *any* semantics.
    CiscoList(Vec<(bool, Vec<CommAtom>, Span)>),
    /// Juniper `community NAME members [...]`: a single conjunction — the
    /// route must satisfy **all** atoms.
    JunosMembers(Vec<CommAtom>),
}

/// A named community matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityMatcher {
    /// Name of the community list / definition.
    pub name: String,
    /// Matching discipline.
    pub dialect: CommunityDialect,
    /// Definition site.
    pub span: Span,
}

impl CommunityMatcher {
    /// Does the matcher accept the advertisement?
    pub fn matches(&self, advert: &RouteAdvert) -> bool {
        match &self.dialect {
            CommunityDialect::CiscoList(entries) => {
                for (permit, atoms, _) in entries {
                    if atoms.iter().all(|a| a.holds(advert)) {
                        return *permit;
                    }
                }
                false
            }
            CommunityDialect::JunosMembers(atoms) => atoms.iter().all(|a| a.holds(advert)),
        }
    }

    /// All atoms mentioned (for the symbolic layer's atom universe).
    pub fn atoms(&self) -> Vec<&CommAtom> {
        match &self.dialect {
            CommunityDialect::CiscoList(entries) => {
                entries.iter().flat_map(|(_, a, _)| a.iter()).collect()
            }
            CommunityDialect::JunosMembers(atoms) => atoms.iter().collect(),
        }
    }
}

/// One match condition of a clause. Conditions are conjunctive within a
/// clause; the `Vec` payloads are disjunctive (vendor semantics for
/// multiple names/values on one line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Match {
    /// Prefix must be accepted by at least one matcher.
    Prefix(Vec<PrefixMatcher>),
    /// At least one community matcher must accept.
    Community(Vec<CommunityMatcher>),
    /// Route tag equals.
    Tag(u32),
    /// Metric equals.
    Metric(u32),
    /// Source protocol is one of.
    Protocol(Vec<RouteProtocol>),
}

impl Match {
    /// Does the condition hold for the advertisement?
    pub fn holds(&self, advert: &RouteAdvert) -> bool {
        match self {
            Match::Prefix(ms) => ms.iter().any(|m| m.matches(&advert.prefix)),
            Match::Community(ms) => ms.iter().any(|m| m.matches(advert)),
            Match::Tag(t) => advert.tag == *t,
            Match::Metric(m) => advert.metric == *m,
            Match::Protocol(ps) => ps.contains(&advert.protocol),
        }
    }
}

/// An attribute rewrite applied by a firing clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetAction {
    /// Set LOCAL_PREF.
    LocalPref(u32),
    /// Set MED/metric.
    Metric(u32),
    /// Replace the community set.
    CommunitySet(Vec<Community>),
    /// Add communities.
    CommunityAdd(Vec<Community>),
    /// Delete communities matching any atom.
    CommunityDelete(Vec<CommAtom>),
    /// Set the next hop (`None` = self).
    NextHop(Option<std::net::Ipv4Addr>),
    /// Set the tag.
    Tag(u32),
    /// Set Cisco weight.
    Weight(u32),
}

impl SetAction {
    /// Apply the rewrite to an advertisement.
    pub fn apply(&self, advert: &mut RouteAdvert) {
        match self {
            SetAction::LocalPref(v) => advert.local_pref = *v,
            SetAction::Metric(v) => advert.metric = *v,
            SetAction::CommunitySet(cs) => {
                advert.communities = cs.iter().copied().collect();
            }
            SetAction::CommunityAdd(cs) => {
                advert.communities.extend(cs.iter().copied());
            }
            SetAction::CommunityDelete(atoms) => {
                let res: Vec<Regex> = atoms
                    .iter()
                    .filter_map(|a| match a {
                        CommAtom::Regex(p) => Some(Regex::new(p).expect("validated")),
                        CommAtom::Literal(_) => None,
                    })
                    .collect();
                advert.communities.retain(|c| {
                    let s = c.to_string();
                    let lit = atoms.contains(&CommAtom::Literal(*c));
                    let rex = res.iter().any(|r| r.is_match(&s));
                    !(lit || rex)
                });
            }
            SetAction::NextHop(nh) => advert.next_hop = *nh,
            SetAction::Tag(v) => advert.tag = *v,
            SetAction::Weight(v) => advert.weight = *v,
        }
    }
}

impl fmt::Display for SetAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetAction::LocalPref(v) => write!(f, "SET LOCAL PREF {v}"),
            SetAction::Metric(v) => write!(f, "SET METRIC {v}"),
            SetAction::CommunitySet(cs) => {
                let s: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                write!(f, "SET COMMUNITY {}", s.join(" "))
            }
            SetAction::CommunityAdd(cs) => {
                let s: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                write!(f, "ADD COMMUNITY {}", s.join(" "))
            }
            SetAction::CommunityDelete(atoms) => {
                let s: Vec<String> = atoms.iter().map(|a| a.to_string()).collect();
                write!(f, "DELETE COMMUNITY {}", s.join(" "))
            }
            SetAction::NextHop(Some(ip)) => write!(f, "SET NEXT-HOP {ip}"),
            SetAction::NextHop(None) => write!(f, "SET NEXT-HOP SELF"),
            SetAction::Tag(v) => write!(f, "SET TAG {v}"),
            SetAction::Weight(v) => write!(f, "SET WEIGHT {v}"),
        }
    }
}

/// How a firing clause disposes of the route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// Accept the route (with all accumulated sets applied).
    Accept,
    /// Reject the route.
    Reject,
    /// Fall through to the next clause, keeping accumulated sets.
    Fallthrough,
}

/// One clause of a route policy (a Cisco route-map entry or Juniper term).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Display label: `"deny 10"`, `"term rule1"`, ...
    pub label: String,
    /// Conjunction of conditions (empty = match all).
    pub matches: Vec<Match>,
    /// Rewrites applied when the clause fires.
    pub sets: Vec<SetAction>,
    /// Disposition when the clause fires.
    pub terminal: Terminal,
    /// Source lines of the clause.
    pub span: Span,
}

impl Clause {
    /// Do all conditions hold?
    pub fn matches_advert(&self, advert: &RouteAdvert) -> bool {
        self.matches.iter().all(|m| m.holds(advert))
    }
}

/// The result of evaluating a policy on a concrete advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyVerdict {
    /// Whether the route was accepted.
    pub accept: bool,
    /// The transformed advertisement (meaningful when accepted).
    pub route: RouteAdvert,
    /// Indices of clauses that fired, in order; `None` entries never appear —
    /// the final implicit default is represented by `default_fired`.
    pub fired: Vec<usize>,
    /// Whether the policy's default terminal decided the verdict.
    pub default_fired: bool,
}

/// A vendor-independent route policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePolicy {
    /// Policy name.
    pub name: String,
    /// Clauses in evaluation order.
    pub clauses: Vec<Clause>,
    /// Disposition when no clause terminates (never `Fallthrough`).
    pub default_terminal: Terminal,
    /// Span of the whole definition.
    pub span: Span,
}

impl RoutePolicy {
    /// A policy that accepts everything unchanged (used for unset
    /// import/export hooks).
    pub fn permit_all(name: impl Into<String>) -> Self {
        RoutePolicy {
            name: name.into(),
            clauses: Vec::new(),
            default_terminal: Terminal::Accept,
            span: Span::default(),
        }
    }

    /// Evaluate the policy on an advertisement.
    pub fn evaluate(&self, advert: &RouteAdvert) -> PolicyVerdict {
        let mut route = advert.clone();
        let mut fired = Vec::new();
        for (i, clause) in self.clauses.iter().enumerate() {
            if clause.matches_advert(&route) {
                fired.push(i);
                for s in &clause.sets {
                    s.apply(&mut route);
                }
                match clause.terminal {
                    Terminal::Accept => {
                        return PolicyVerdict {
                            accept: true,
                            route,
                            fired,
                            default_fired: false,
                        }
                    }
                    Terminal::Reject => {
                        return PolicyVerdict {
                            accept: false,
                            route,
                            fired,
                            default_fired: false,
                        }
                    }
                    Terminal::Fallthrough => {}
                }
            }
        }
        PolicyVerdict {
            accept: self.default_terminal == Terminal::Accept,
            route,
            fired,
            default_fired: true,
        }
    }

    /// Concatenate a chain of policies (JunOS `import [A B]` semantics):
    /// clauses run in order across policies; the last policy's default
    /// terminal is the chain's default.
    pub fn chain(name: impl Into<String>, policies: &[&RoutePolicy]) -> Self {
        let mut clauses = Vec::new();
        let mut span: Option<Span> = None;
        for p in policies {
            clauses.extend(p.clauses.iter().cloned());
            span = Some(match span {
                Some(s) => s.merge(p.span),
                None => p.span,
            });
        }
        RoutePolicy {
            name: name.into(),
            clauses,
            default_terminal: policies
                .last()
                .map(|p| p.default_terminal)
                .unwrap_or(Terminal::Accept),
            span: span.unwrap_or_default(),
        }
    }

    /// Every prefix range mentioned anywhere in the policy.
    pub fn prefix_ranges(&self) -> Vec<PrefixRange> {
        let mut out = Vec::new();
        for c in &self.clauses {
            for m in &c.matches {
                if let Match::Prefix(ms) = m {
                    for pm in ms {
                        out.extend(pm.ranges());
                    }
                }
            }
        }
        out
    }

    /// Every community atom mentioned anywhere in the policy (matches and
    /// set/delete actions).
    pub fn community_atoms(&self) -> Vec<CommAtom> {
        let mut out = Vec::new();
        for c in &self.clauses {
            for m in &c.matches {
                if let Match::Community(ms) = m {
                    for cm in ms {
                        out.extend(cm.atoms().into_iter().cloned());
                    }
                }
            }
            for s in &c.sets {
                match s {
                    SetAction::CommunitySet(cs) | SetAction::CommunityAdd(cs) => {
                        out.extend(cs.iter().map(|c| CommAtom::Literal(*c)));
                    }
                    SetAction::CommunityDelete(atoms) => out.extend(atoms.iter().cloned()),
                    _ => {}
                }
            }
        }
        out
    }
}
