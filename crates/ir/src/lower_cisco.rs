//! Lowering Cisco IOS ASTs into the VI model.

use std::collections::BTreeMap;

use campion_cfg::cisco::{
    self, AclAddr, CiscoConfig, CommunityList, LineAction, PrefixList, RouteMapMatch, RouteMapSet,
};
use campion_cfg::{Span, Vendor};
use campion_net::regex::Regex;
use campion_net::PrefixRange;

use crate::acl::{AclIr, AclRuleIr};
use crate::error::LowerError;
use crate::policy::{
    Clause, CommAtom, CommunityDialect, CommunityMatcher, Match, PrefixMatcher, PrefixMatcherEntry,
    RoutePolicy, SetAction, Terminal,
};
use crate::route::RouteProtocol;
use crate::router::RouterIr;
use crate::routing::{
    BgpIr, BgpNeighborIr, IfaceIr, NextHopIr, OspfIfaceIr, RedistIr, StaticRouteIr,
};

/// Lower a Cisco configuration.
pub fn lower_cisco(cfg: &CiscoConfig) -> Result<RouterIr, LowerError> {
    let mut policies = BTreeMap::new();
    for (name, rm) in &cfg.route_maps {
        policies.insert(name.clone(), lower_route_map(cfg, name, rm)?);
    }

    let mut acls = BTreeMap::new();
    for (name, acl) in &cfg.acls {
        acls.insert(name.clone(), lower_acl(name, acl));
    }

    let static_routes = cfg
        .static_routes
        .iter()
        .map(|r| StaticRouteIr {
            prefix: r.prefix,
            next_hop: match (&r.next_hop, &r.interface) {
                (Some(ip), _) => NextHopIr::Ip(*ip),
                // Null0 is IOS's discard interface; normalize for
                // cross-vendor comparison with JunOS `discard`.
                (None, Some(i)) if i.eq_ignore_ascii_case("null0") => NextHopIr::Discard,
                (None, Some(i)) => NextHopIr::Interface(i.clone()),
                (None, None) => unreachable!("parser requires one"),
            },
            admin_distance: r.admin_distance,
            tag: r.tag,
            span: r.span,
        })
        .collect();

    let interfaces: BTreeMap<String, IfaceIr> = cfg
        .interfaces
        .iter()
        .map(|(name, i)| {
            (
                name.clone(),
                IfaceIr {
                    name: name.clone(),
                    address: i.address,
                    acl_in: i.acl_in.clone(),
                    acl_out: i.acl_out.clone(),
                    shutdown: i.shutdown,
                    description: i.description.clone(),
                    span: i.span,
                },
            )
        })
        .collect();

    let (ospf_interfaces, ospf_redistribute, ospf_distance) = lower_ospf(cfg, &interfaces);

    let bgp = match &cfg.bgp {
        Some(b) => Some(lower_bgp(b)?),
        None => None,
    };

    Ok(RouterIr {
        name: if cfg.hostname.is_empty() {
            "cisco_router".to_string()
        } else {
            cfg.hostname.clone()
        },
        vendor: Vendor::CiscoIos,
        policies,
        acls,
        static_routes,
        interfaces,
        ospf_interfaces,
        ospf_redistribute,
        ospf_distance,
        bgp,
        source: cfg.source.clone(),
    })
}

/// A Cisco prefix list → ordered permit/deny range matcher.
fn lower_prefix_list(name: &str, pl: &PrefixList) -> PrefixMatcher {
    PrefixMatcher {
        name: name.to_string(),
        entries: pl
            .entries
            .iter()
            .map(|e| PrefixMatcherEntry {
                permit: e.action.permits(),
                range: PrefixRange::new(e.prefix, e.ge, e.le),
                span: e.span,
            })
            .collect(),
    }
}

/// A Cisco standard/extended ACL used as a *route* matcher (`match ip
/// address ACL`): the route's network address is tested against the ACL's
/// source field, with any prefix length.
fn lower_acl_as_prefix_matcher(name: &str, acl: &cisco::Acl) -> Result<PrefixMatcher, LowerError> {
    let mut entries = Vec::new();
    for rule in &acl.rules {
        let wc = match rule.src {
            AclAddr::Any => campion_net::WildcardMask::ANY,
            AclAddr::Host(h) => campion_net::WildcardMask::host(h),
            AclAddr::Wildcard(w) => w,
        };
        let prefix = wc.as_prefix().ok_or_else(|| {
            LowerError::at(
                rule.span,
                format!("ACL {name} uses a non-contiguous wildcard as a route matcher"),
            )
        })?;
        entries.push(PrefixMatcherEntry {
            permit: rule.action.permits(),
            range: PrefixRange::new(prefix, 0, 32),
            span: rule.span,
        });
    }
    Ok(PrefixMatcher {
        name: name.to_string(),
        entries,
    })
}

/// A Cisco community list → first-match permit/deny matcher. Regexes are
/// validated here so later evaluation can unwrap.
fn lower_community_list(name: &str, cl: &CommunityList) -> Result<CommunityMatcher, LowerError> {
    let mut entries = Vec::new();
    let mut span: Option<Span> = None;
    for e in &cl.entries {
        span = Some(match span {
            Some(s) => s.merge(e.span),
            None => e.span,
        });
        let atoms = if let Some(rx) = &e.regex {
            Regex::new(rx).map_err(|err| LowerError::at(e.span, err.message))?;
            vec![CommAtom::Regex(rx.clone())]
        } else {
            e.communities
                .iter()
                .map(|c| CommAtom::Literal(*c))
                .collect()
        };
        entries.push((e.action.permits(), atoms, e.span));
    }
    Ok(CommunityMatcher {
        name: name.to_string(),
        dialect: CommunityDialect::CiscoList(entries),
        span: span.unwrap_or_default(),
    })
}

fn lower_route_map(
    cfg: &CiscoConfig,
    name: &str,
    rm: &cisco::RouteMap,
) -> Result<RoutePolicy, LowerError> {
    let mut clauses = Vec::new();
    let mut span: Option<Span> = None;
    for entry in &rm.entries {
        span = Some(match span {
            Some(s) => s.merge(entry.span),
            None => entry.span,
        });
        let mut matches = Vec::new();
        for m in &entry.matches {
            match m {
                RouteMapMatch::IpAddressPrefixList(names) => {
                    let mut ms = Vec::new();
                    for n in names {
                        let pl = cfg.prefix_lists.get(n).ok_or_else(|| {
                            LowerError::at(
                                entry.span,
                                format!("route-map {name} references undefined prefix-list {n}"),
                            )
                        })?;
                        ms.push(lower_prefix_list(n, pl));
                    }
                    matches.push(Match::Prefix(ms));
                }
                RouteMapMatch::IpAddress(names) => {
                    let mut ms = Vec::new();
                    for n in names {
                        let acl = cfg.acls.get(n).ok_or_else(|| {
                            LowerError::at(
                                entry.span,
                                format!("route-map {name} references undefined ACL {n}"),
                            )
                        })?;
                        ms.push(lower_acl_as_prefix_matcher(n, acl)?);
                    }
                    matches.push(Match::Prefix(ms));
                }
                RouteMapMatch::Community(names) => {
                    let mut ms = Vec::new();
                    for n in names {
                        let cl = cfg.community_lists.get(n).ok_or_else(|| {
                            LowerError::at(
                                entry.span,
                                format!("route-map {name} references undefined community-list {n}"),
                            )
                        })?;
                        ms.push(lower_community_list(n, cl)?);
                    }
                    matches.push(Match::Community(ms));
                }
                RouteMapMatch::Tag(t) => matches.push(Match::Tag(*t)),
                RouteMapMatch::Metric(m) => matches.push(Match::Metric(*m)),
            }
        }
        let mut sets = Vec::new();
        for s in &entry.sets {
            sets.push(match s {
                RouteMapSet::LocalPreference(v) => SetAction::LocalPref(*v),
                RouteMapSet::Metric(v) => SetAction::Metric(*v),
                RouteMapSet::Community {
                    communities,
                    additive,
                } => {
                    if *additive {
                        SetAction::CommunityAdd(communities.clone())
                    } else {
                        SetAction::CommunitySet(communities.clone())
                    }
                }
                RouteMapSet::CommListDelete(list_name) => {
                    let cl = cfg.community_lists.get(list_name).ok_or_else(|| {
                        LowerError::at(
                            entry.span,
                            format!(
                                "route-map {name} deletes via undefined community-list {list_name}"
                            ),
                        )
                    })?;
                    // IOS deletes communities matched by *permit* entries.
                    let mut atoms = Vec::new();
                    for e in &cl.entries {
                        if e.action == LineAction::Permit {
                            if let Some(rx) = &e.regex {
                                Regex::new(rx)
                                    .map_err(|err| LowerError::at(e.span, err.message))?;
                                atoms.push(CommAtom::Regex(rx.clone()));
                            } else {
                                atoms.extend(e.communities.iter().map(|c| CommAtom::Literal(*c)));
                            }
                        }
                    }
                    SetAction::CommunityDelete(atoms)
                }
                RouteMapSet::NextHop(ip) => SetAction::NextHop(Some(*ip)),
                RouteMapSet::Weight(v) => SetAction::Weight(*v),
                RouteMapSet::Tag(v) => SetAction::Tag(*v),
            });
        }
        // `continue` (rare) falls through to the next clause; a permit entry
        // without continue accepts, a deny entry rejects.
        let terminal = if entry.continue_seq.is_some() {
            Terminal::Fallthrough
        } else if entry.action.permits() {
            Terminal::Accept
        } else {
            Terminal::Reject
        };
        clauses.push(Clause {
            label: format!("{} {}", entry.action, entry.seq),
            matches,
            sets,
            terminal,
            span: entry.span,
        });
    }
    Ok(RoutePolicy {
        name: name.to_string(),
        clauses,
        // Cisco route maps end with an implicit deny.
        default_terminal: Terminal::Reject,
        span: span.unwrap_or_default(),
    })
}

fn lower_acl(name: &str, acl: &cisco::Acl) -> AclIr {
    let mut span: Option<Span> = None;
    let rules = acl
        .rules
        .iter()
        .map(|r| {
            span = Some(match span {
                Some(s) => s.merge(r.span),
                None => r.span,
            });
            AclRuleIr {
                label: format!("seq {}", r.seq),
                permit: r.action.permits(),
                protocols: match r.protocol {
                    campion_net::IpProtocol::Any => Vec::new(),
                    p => vec![p],
                },
                src: match r.src {
                    AclAddr::Any => Vec::new(),
                    a => vec![a.as_wildcard()],
                },
                dst: match r.dst {
                    AclAddr::Any => Vec::new(),
                    a => vec![a.as_wildcard()],
                },
                src_ports: if r.src_ports.is_any() {
                    Vec::new()
                } else {
                    vec![r.src_ports]
                },
                dst_ports: if r.dst_ports.is_any() {
                    Vec::new()
                } else {
                    vec![r.dst_ports]
                },
                span: r.span,
            }
        })
        .collect();
    AclIr {
        name: name.to_string(),
        rules,
        span: span.unwrap_or_default(),
    }
}

/// Derive the set of OSPF-enabled interfaces from `router ospf` network
/// statements and per-interface `ip ospf` commands.
fn lower_ospf(
    cfg: &CiscoConfig,
    interfaces: &BTreeMap<String, IfaceIr>,
) -> (Vec<OspfIfaceIr>, Vec<RedistIr>, Option<u8>) {
    let Some(ospf) = &cfg.ospf else {
        // Interface-mode OSPF (ip ospf N area A) can exist without the
        // router stanza in our model only alongside it; without the stanza
        // we still honor interface-mode areas.
        let mut out = Vec::new();
        for (name, iface) in &cfg.interfaces {
            if let (Some(area), Some((_, subnet))) = (iface.ospf_area, iface.address) {
                out.push(OspfIfaceIr {
                    iface: name.clone(),
                    subnet: Some(subnet),
                    area,
                    cost: iface.ospf_cost,
                    passive: false,
                    span: iface.span,
                });
            }
        }
        return (out, Vec::new(), None);
    };
    let mut out = Vec::new();
    for (name, iface) in interfaces {
        let Some((addr, subnet)) = iface.address else {
            continue;
        };
        let src = &cfg.interfaces[name];
        // Interface-mode area wins; otherwise the first matching network
        // statement enables OSPF (IOS most-specific-first is approximated by
        // definition order, which is how operators write them).
        let area = src.ospf_area.or_else(|| {
            ospf.networks
                .iter()
                .find(|(wc, _, _)| wc.matches(addr))
                .map(|(_, area, _)| *area)
        });
        let Some(area) = area else { continue };
        let passive = ospf.passive_interfaces.iter().any(|p| p == name);
        let span = src.span.merge(
            ospf.networks
                .iter()
                .find(|(wc, _, _)| wc.matches(addr))
                .map(|(_, _, s)| *s)
                .unwrap_or(src.span),
        );
        out.push(OspfIfaceIr {
            iface: name.clone(),
            subnet: Some(subnet),
            area,
            cost: src.ospf_cost,
            passive,
            span,
        });
    }
    let redist = ospf
        .redistribute
        .iter()
        .filter_map(|r| {
            RouteProtocol::from_keyword(&r.protocol).map(|p| RedistIr {
                from_protocol: p,
                policy: r.route_map.clone(),
                metric: r.metric,
                span: r.span,
            })
        })
        .collect();
    (out, redist, ospf.distance)
}

fn lower_bgp(b: &cisco::BgpConfig) -> Result<BgpIr, LowerError> {
    let neighbors = b
        .neighbors
        .iter()
        .map(|(addr, n)| {
            (
                *addr,
                BgpNeighborIr {
                    addr: *addr,
                    remote_as: n.remote_as,
                    import_policy: n.route_map_in.clone(),
                    export_policy: n.route_map_out.clone(),
                    send_community: n.send_community,
                    route_reflector_client: n.route_reflector_client,
                    next_hop_self: n.next_hop_self,
                    span: n.span,
                },
            )
        })
        .collect();
    let redistribute = b
        .redistribute
        .iter()
        .filter_map(|r| {
            RouteProtocol::from_keyword(&r.protocol).map(|p| RedistIr {
                from_protocol: p,
                policy: r.route_map.clone(),
                metric: r.metric,
                span: r.span,
            })
        })
        .collect();
    Ok(BgpIr {
        asn: b.asn,
        router_id: b.router_id,
        neighbors,
        redistribute,
        networks: b.networks.clone(),
        distance: b.distance,
        span: b.span,
    })
}
