//! Vendor-independent routing components compared with `StructuralDiff`:
//! static routes, connected routes, BGP neighbor properties, OSPF interface
//! properties, administrative distances.

use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

use campion_cfg::Span;
use campion_net::Prefix;

use crate::route::RouteProtocol;

/// Where a static route sends traffic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum NextHopIr {
    /// A next-hop IP address.
    Ip(Ipv4Addr),
    /// An egress interface (includes `Null0`).
    Interface(String),
    /// Juniper `discard`/`reject`.
    Discard,
}

impl fmt::Display for NextHopIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NextHopIr::Ip(ip) => write!(f, "{ip}"),
            NextHopIr::Interface(name) => write!(f, "{name}"),
            NextHopIr::Discard => write!(f, "discard"),
        }
    }
}

/// A static route in the VI model. The paper compares these as tuples
/// (§3.3): a difference is a route present in only one router, or present
/// in both with different attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticRouteIr {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next hop.
    pub next_hop: NextHopIr,
    /// Administrative distance / preference (vendor default already
    /// resolved: 1 on IOS, 5 on JunOS).
    pub admin_distance: u8,
    /// Tag, if configured.
    pub tag: Option<u32>,
    /// Source line(s).
    pub span: Span,
}

/// Per-neighbor BGP properties compared structurally (Table 1: "Other BGP
/// Properties"). Policy references are compared semantically elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpNeighborIr {
    /// Neighbor address — the pairing key between routers.
    pub addr: Ipv4Addr,
    /// Remote AS.
    pub remote_as: Option<u32>,
    /// Name of the effective import policy (chain joined with `+`).
    pub import_policy: Option<String>,
    /// Name of the effective export policy.
    pub export_policy: Option<String>,
    /// Whether communities are propagated to this neighbor. IOS: off unless
    /// `send-community`; JunOS: always on — a default gap the paper's
    /// university study surfaced.
    pub send_community: bool,
    /// Is the neighbor a route-reflector client?
    pub route_reflector_client: bool,
    /// `next-hop-self` behavior.
    pub next_hop_self: bool,
    /// Source lines for this neighbor's configuration.
    pub span: Span,
}

/// A route redistribution edge (protocol → this process) with its filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedistIr {
    /// Source protocol.
    pub from_protocol: RouteProtocol,
    /// Filter policy name (resolved into `RouterIr::policies`).
    pub policy: Option<String>,
    /// Fixed metric override.
    pub metric: Option<u32>,
    /// Source line.
    pub span: Span,
}

/// The BGP process in the VI model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpIr {
    /// Local AS.
    pub asn: u32,
    /// Router id, when configured.
    pub router_id: Option<Ipv4Addr>,
    /// Neighbors by address.
    pub neighbors: BTreeMap<Ipv4Addr, BgpNeighborIr>,
    /// Redistribution into BGP.
    pub redistribute: Vec<RedistIr>,
    /// Originated networks.
    pub networks: Vec<(Prefix, Option<String>, Span)>,
    /// Configured admin distances (external, internal, local), if any.
    pub distance: Option<(u8, u8, u8)>,
    /// Span of the BGP stanza.
    pub span: Span,
}

/// One OSPF-enabled interface with the attributes the paper compares
/// structurally (cost, area, passive status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OspfIfaceIr {
    /// Interface name (vendor-local; pairing uses subnets too).
    pub iface: String,
    /// The interface subnet (pairing key across vendors, since backup
    /// routers use different addresses in the same role).
    pub subnet: Option<Prefix>,
    /// OSPF area.
    pub area: u32,
    /// Configured cost/metric (`None` = vendor default from bandwidth).
    pub cost: Option<u32>,
    /// Passive interface.
    pub passive: bool,
    /// Source lines.
    pub span: Span,
}

/// A (possibly routed) interface in the VI model; the source of connected
/// routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfaceIr {
    /// Interface name.
    pub name: String,
    /// Address and subnet, when configured.
    pub address: Option<(Ipv4Addr, Prefix)>,
    /// Inbound ACL binding.
    pub acl_in: Option<String>,
    /// Outbound ACL binding.
    pub acl_out: Option<String>,
    /// Administratively down.
    pub shutdown: bool,
    /// Description (used by pairing heuristics).
    pub description: Option<String>,
    /// Source lines.
    pub span: Span,
}

impl IfaceIr {
    /// The connected route this interface contributes, if up and addressed.
    pub fn connected_route(&self) -> Option<Prefix> {
        if self.shutdown {
            return None;
        }
        self.address.map(|(_, p)| p)
    }
}
