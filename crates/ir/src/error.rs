//! Lowering errors.

use std::fmt;

use campion_cfg::Span;

/// An error raised while lowering a vendor AST into the VI model — e.g. a
/// route map referencing an undefined prefix list, or an invalid community
/// regex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// What went wrong.
    pub message: String,
    /// Where in the source, when known.
    pub span: Option<Span>,
}

impl LowerError {
    /// An error tied to a source location.
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        LowerError {
            message: message.into(),
            span: Some(span),
        }
    }

    /// A config-level error.
    pub fn new(message: impl Into<String>) -> Self {
        LowerError {
            message: message.into(),
            span: None,
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(f, "lowering error at {s}: {}", self.message),
            None => write!(f, "lowering error: {}", self.message),
        }
    }
}

impl std::error::Error for LowerError {}
