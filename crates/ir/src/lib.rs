//! # campion-ir — the vendor-independent router model
//!
//! This crate plays the role of Batfish's vendor-independent (VI) model in
//! the original Campion: both vendor ASTs from [`campion_cfg`] lower into
//! one set of types that the diffing, symbolic and simulation layers
//! consume. Vendor *semantics* are resolved here — this is where the subtle
//! cross-vendor gaps that the paper's Figure 1 exploits become explicit:
//!
//! * Cisco `ip prefix-list ... le 32` (a length **range**) versus Juniper
//!   `prefix-list` references, which match **exact** lengths unless
//!   qualified with `orlonger`/`upto` at the use site;
//! * Cisco standard community lists, where each line usually carries one
//!   community and the list matches **any** line, versus Juniper
//!   `members [a b]`, which requires **all** members;
//! * Cisco route maps' implicit trailing **deny** versus JunOS's
//!   default-accept for BGP routes;
//! * Cisco `send-community` being opt-in versus Juniper sending communities
//!   by default;
//! * Cisco static-route administrative distance defaulting to 1 versus
//!   JunOS static preference defaulting to 5.
//!
//! All IR elements keep the [`Span`](campion_cfg::Span) of the vendor lines
//! they came from, so text localization survives lowering.

#![warn(missing_docs)]

mod acl;
mod error;
pub mod hash;
mod lower_cisco;
mod lower_juniper;
mod policy;
mod route;
mod router;
mod routing;
pub mod translate;

pub use acl::{AclIr, AclRuleIr};
pub use error::LowerError;
pub use policy::{
    Clause, CommAtom, CommunityDialect, CommunityMatcher, Match, PolicyVerdict, PrefixMatcher,
    PrefixMatcherEntry, RoutePolicy, SetAction, Terminal,
};
pub use route::{RouteAdvert, RouteProtocol};
pub use router::{lower, lower_cisco, lower_juniper, RouterIr};
pub use routing::{BgpIr, BgpNeighborIr, IfaceIr, NextHopIr, OspfIfaceIr, RedistIr, StaticRouteIr};
pub use translate::{to_junos, TranslateError};

#[cfg(test)]
mod tests;
