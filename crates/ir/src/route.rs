//! Concrete route advertisements — the inputs route policies transform.

use std::collections::BTreeSet;
use std::fmt;

use campion_net::{Community, Prefix};

/// The protocol a route was learned from (used by `from protocol` matches
/// and by the RIB's admin-distance comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RouteProtocol {
    /// Locally connected subnet.
    Connected,
    /// Static route.
    Static,
    /// OSPF-internal route.
    Ospf,
    /// BGP route (external or internal).
    Bgp,
    /// Aggregate/generated route.
    Aggregate,
}

impl RouteProtocol {
    /// Parse a vendor protocol keyword (`direct` is JunOS for connected).
    pub fn from_keyword(kw: &str) -> Option<Self> {
        match kw {
            "connected" | "direct" => Some(RouteProtocol::Connected),
            "static" => Some(RouteProtocol::Static),
            "ospf" => Some(RouteProtocol::Ospf),
            "bgp" => Some(RouteProtocol::Bgp),
            "aggregate" => Some(RouteProtocol::Aggregate),
            _ => None,
        }
    }
}

impl fmt::Display for RouteProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteProtocol::Connected => "connected",
            RouteProtocol::Static => "static",
            RouteProtocol::Ospf => "ospf",
            RouteProtocol::Bgp => "bgp",
            RouteProtocol::Aggregate => "aggregate",
        };
        write!(f, "{s}")
    }
}

/// A concrete BGP route advertisement, carrying the attributes the analyzed
/// policies can match on or rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteAdvert {
    /// The advertised prefix.
    pub prefix: Prefix,
    /// Attached communities.
    pub communities: BTreeSet<Community>,
    /// LOCAL_PREF (default 100).
    pub local_pref: u32,
    /// MED / metric.
    pub metric: u32,
    /// Route tag.
    pub tag: u32,
    /// Where the route came from.
    pub protocol: RouteProtocol,
    /// Next hop, when set by policy.
    pub next_hop: Option<std::net::Ipv4Addr>,
    /// Cisco-only weight.
    pub weight: u32,
}

impl RouteAdvert {
    /// A BGP advertisement for `prefix` with default attributes.
    pub fn bgp(prefix: Prefix) -> Self {
        RouteAdvert {
            prefix,
            communities: BTreeSet::new(),
            local_pref: 100,
            metric: 0,
            tag: 0,
            protocol: RouteProtocol::Bgp,
            next_hop: None,
            weight: 0,
        }
    }

    /// Builder: attach communities.
    pub fn with_communities<I: IntoIterator<Item = Community>>(mut self, cs: I) -> Self {
        self.communities.extend(cs);
        self
    }

    /// Builder: set the source protocol.
    pub fn with_protocol(mut self, p: RouteProtocol) -> Self {
        self.protocol = p;
        self
    }

    /// Builder: set the tag.
    pub fn with_tag(mut self, tag: u32) -> Self {
        self.tag = tag;
        self
    }

    /// Does the advertisement carry community `c`?
    pub fn has_community(&self, c: Community) -> bool {
        self.communities.contains(&c)
    }
}

impl fmt::Display for RouteAdvert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.prefix, self.protocol)?;
        if !self.communities.is_empty() {
            let cs: Vec<String> = self.communities.iter().map(|c| c.to_string()).collect();
            write!(f, " comms={}", cs.join(","))?;
        }
        write!(
            f,
            " lp={} med={} tag={}",
            self.local_pref, self.metric, self.tag
        )
    }
}
