//! Stable per-component content hashing of the VI model — the foundation
//! of `campion-fleetd`'s incremental recompute (DESIGN.md §2h).
//!
//! A pair comparison is a pure function of the two routers' *compared
//! components* (policies, ACLs, the structural families) **and** of the
//! configuration text those components quote: `Present` renders source
//! snippets via spans, and structural findings print the span line numbers
//! themselves. A component's hash therefore covers both its lowered IR
//! (including every embedded [`Span`]) and the dedented snippet of its
//! overall span — if either moves, the hash moves, and the fleet daemon
//! recomputes exactly the pairs that read the changed component.
//!
//! The hash is FNV-1a over the component's `Debug` rendering plus its
//! quoted text. `Debug` output is stable for a given crate version; the
//! snapshot store pins its own format version (and re-derives hashes on
//! decode-version bumps), so cross-version drift degrades to a recompute,
//! never to a stale report.

use std::collections::BTreeMap;

use crate::RouterIr;

/// 64-bit FNV-1a (offset basis 0xcbf29ce484222325, prime 0x100000001b3):
/// tiny, dependency-free, and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Fold another already-computed hash into `acc` (order-sensitive).
pub fn fnv1a64_combine(acc: u64, h: u64) -> u64 {
    fnv1a64_with(acc, &h.to_le_bytes())
}

fn fnv1a64_with(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Hash of a raw configuration text (the parse-skip fast path: when a
/// router's text hash is unchanged between snapshots, its component hashes
/// are reused verbatim and the file is never re-parsed).
pub fn text_hash(text: &str) -> u64 {
    fnv1a64(text.as_bytes())
}

/// The per-component content hashes of one lowered router.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ComponentHashes {
    /// One hash per route policy, by name.
    pub policies: BTreeMap<String, u64>,
    /// One hash per ACL / firewall filter, by name.
    pub acls: BTreeMap<String, u64>,
    /// One hash over everything `StructuralDiff` reads: static routes,
    /// interfaces (connected routes), BGP process and OSPF attributes.
    pub structural: u64,
}

impl ComponentHashes {
    /// A single order-sensitive digest of every component hash — the
    /// router's contribution to a pair key.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a64(b"components.v1");
        for (name, ph) in &self.policies {
            h = fnv1a64_with(h, name.as_bytes());
            h = fnv1a64_with(h, &ph.to_le_bytes());
        }
        for (name, ah) in &self.acls {
            h = fnv1a64_with(h, name.as_bytes());
            h = fnv1a64_with(h, &ah.to_le_bytes());
        }
        fnv1a64_with(h, &self.structural.to_le_bytes())
    }

    /// The component names whose hashes differ from `other`'s (added,
    /// removed, or changed) — the provenance the fleet API reports for a
    /// recompute.
    pub fn changed_components(&self, other: &ComponentHashes) -> Vec<String> {
        let mut out = Vec::new();
        let keys = |a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>| {
            let mut k: Vec<String> = a.keys().chain(b.keys()).cloned().collect();
            k.sort();
            k.dedup();
            k
        };
        for name in keys(&self.policies, &other.policies) {
            if self.policies.get(&name) != other.policies.get(&name) {
                out.push(format!("policy {name}"));
            }
        }
        for name in keys(&self.acls, &other.acls) {
            if self.acls.get(&name) != other.acls.get(&name) {
                out.push(format!("acl {name}"));
            }
        }
        if self.structural != other.structural {
            out.push("structural".to_string());
        }
        out
    }
}

/// Hash one component: its `Debug` rendering (covers the full lowered IR,
/// spans included) plus the quoted source text of the given spans.
fn component_hash(debug: &str, router: &RouterIr, spans: &[campion_cfg::Span]) -> u64 {
    let mut h = fnv1a64(debug.as_bytes());
    for s in spans {
        h = fnv1a64_with(h, router.snippet(*s).as_bytes());
        h = fnv1a64_with(h, b"\x00");
    }
    h
}

/// Compute the per-component content hashes of a lowered router.
pub fn hash_router(r: &RouterIr) -> ComponentHashes {
    let mut out = ComponentHashes::default();
    for (name, p) in &r.policies {
        out.policies.insert(
            name.clone(),
            component_hash(&format!("{p:?}"), r, &[p.span]),
        );
    }
    for (name, a) in &r.acls {
        out.acls.insert(
            name.clone(),
            component_hash(&format!("{a:?}"), r, &[a.span]),
        );
    }
    // Everything StructuralDiff (and MatchPolicies) reads outside the two
    // maps above, hashed as one unit with each element's quoted text.
    let mut spans: Vec<campion_cfg::Span> = Vec::new();
    spans.extend(r.static_routes.iter().map(|s| s.span));
    spans.extend(r.interfaces.values().map(|i| i.span));
    spans.extend(r.ospf_interfaces.iter().map(|o| o.span));
    spans.extend(r.ospf_redistribute.iter().map(|x| x.span));
    if let Some(bgp) = &r.bgp {
        spans.push(bgp.span);
        spans.extend(bgp.neighbors.values().map(|n| n.span));
    }
    let debug = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.name,
        r.vendor,
        r.static_routes,
        r.interfaces,
        r.ospf_interfaces,
        r.ospf_redistribute,
        r.ospf_distance,
        r.bgp,
    );
    out.structural = component_hash(&debug, r, &spans);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use campion_cfg::parse_config;
    use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};

    fn load(text: &str) -> RouterIr {
        crate::lower(&parse_config(text).expect("parse")).expect("lower")
    }

    #[test]
    fn hashing_is_deterministic() {
        let r = load(FIGURE1_CISCO);
        assert_eq!(hash_router(&r), hash_router(&r));
        assert_eq!(hash_router(&r).digest(), hash_router(&r).digest());
    }

    #[test]
    fn different_routers_hash_differently() {
        let c = hash_router(&load(FIGURE1_CISCO));
        let j = hash_router(&load(FIGURE1_JUNIPER));
        assert_ne!(c.digest(), j.digest());
    }

    #[test]
    fn editing_one_component_moves_only_that_component() {
        let base = "route-map A permit 10\nroute-map B deny 10\n";
        let edited = "route-map A permit 10\nroute-map B deny 20\n";
        let h1 = hash_router(&load(base));
        let h2 = hash_router(&load(edited));
        assert_eq!(h1.policies["A"], h2.policies["A"]);
        assert_ne!(h1.policies["B"], h2.policies["B"]);
        assert_eq!(h1.structural, h2.structural);
        assert_eq!(h2.changed_components(&h1), vec!["policy B".to_string()]);
    }

    #[test]
    fn structural_edit_moves_structural_hash() {
        let base = "hostname r1\n";
        let edited = "hostname r1\nip route 10.0.0.0 255.0.0.0 192.168.0.1\n";
        let h1 = hash_router(&load(base));
        let h2 = hash_router(&load(edited));
        assert_ne!(h1.structural, h2.structural);
        assert_eq!(h2.changed_components(&h1), vec!["structural".to_string()]);
    }

    #[test]
    fn span_shift_is_conservative() {
        // Inserting a line above a component shifts its spans: the quoted
        // line numbers (which structural findings print) change, so the
        // hash must change even though the semantics are identical.
        let base = "ip route 10.0.0.0 255.0.0.0 192.168.0.1\n";
        let shifted = "hostname r1\nip route 10.0.0.0 255.0.0.0 192.168.0.1\n";
        let h1 = hash_router(&load(base));
        let h2 = hash_router(&load(shifted));
        assert_ne!(h1.structural, h2.structural);
    }

    #[test]
    fn text_hash_tracks_bytes() {
        assert_eq!(text_hash("abc"), text_hash("abc"));
        assert_ne!(text_hash("abc"), text_hash("abd"));
    }
}
