//! Lowering Juniper JunOS ASTs into the VI model.

use std::collections::BTreeMap;

use campion_cfg::juniper::{
    FilterAction, FromClause, JuniperConfig, PolicyStatement, RouteFilterModifier, ThenClause,
};
use campion_cfg::{Span, Vendor};
use campion_net::regex::Regex;
use campion_net::{Prefix, PrefixRange, WildcardMask};

use crate::acl::{AclIr, AclRuleIr};
use crate::error::LowerError;
use crate::policy::{
    Clause, CommAtom, CommunityDialect, CommunityMatcher, Match, PrefixMatcher, PrefixMatcherEntry,
    RoutePolicy, SetAction, Terminal,
};
use crate::route::RouteProtocol;
use crate::router::RouterIr;
use crate::routing::{
    BgpIr, BgpNeighborIr, IfaceIr, NextHopIr, OspfIfaceIr, RedistIr, StaticRouteIr,
};

/// Lower a Juniper configuration.
pub fn lower_juniper(cfg: &JuniperConfig) -> Result<RouterIr, LowerError> {
    let mut policies = BTreeMap::new();
    for (name, ps) in &cfg.policies {
        policies.insert(name.clone(), lower_policy(cfg, name, ps)?);
    }

    let mut acls = BTreeMap::new();
    for (name, f) in &cfg.filters {
        acls.insert(name.clone(), lower_filter(name, f));
    }

    let static_routes = cfg
        .static_routes
        .iter()
        .map(|r| StaticRouteIr {
            prefix: r.prefix,
            next_hop: match r.next_hop {
                Some(ip) => NextHopIr::Ip(ip),
                None => NextHopIr::Discard,
            },
            admin_distance: r.preference,
            tag: r.tag,
            span: r.span,
        })
        .collect();

    // Flatten interface units into `name.unit` (the form OSPF references).
    let mut interfaces = BTreeMap::new();
    for (name, iface) in &cfg.interfaces {
        for (unit_no, unit) in &iface.units {
            let flat = format!("{name}.{unit_no}");
            interfaces.insert(
                flat.clone(),
                IfaceIr {
                    name: flat,
                    address: unit.address,
                    acl_in: unit.filter_in.clone(),
                    acl_out: unit.filter_out.clone(),
                    shutdown: iface.disabled,
                    description: iface.description.clone(),
                    span: iface.span.merge(unit.span),
                },
            );
        }
    }

    let mut ospf_interfaces = Vec::new();
    let mut ospf_redistribute = Vec::new();
    if let Some(ospf) = &cfg.ospf {
        for (area, ifaces) in &ospf.areas {
            for oi in ifaces {
                let subnet = interfaces
                    .get(&oi.name)
                    .and_then(|i| i.address.map(|(_, p)| p));
                ospf_interfaces.push(OspfIfaceIr {
                    iface: oi.name.clone(),
                    subnet,
                    area: *area,
                    cost: oi.metric,
                    passive: oi.passive,
                    span: oi.span,
                });
            }
        }
        // JunOS redistributes via OSPF export policies; surface one redist
        // edge per `from protocol` mentioned in the referenced policies.
        for pol_name in &ospf.export {
            if let Some(ps) = cfg.policies.get(pol_name) {
                let mut protos = Vec::new();
                for term in &ps.terms {
                    for f in &term.from {
                        if let FromClause::Protocol(kws) = f {
                            for kw in kws {
                                if let Some(p) = RouteProtocol::from_keyword(kw) {
                                    if !protos.contains(&p) {
                                        protos.push(p);
                                    }
                                }
                            }
                        }
                    }
                }
                let span = ps.span;
                if protos.is_empty() {
                    protos.push(RouteProtocol::Bgp);
                }
                for p in protos {
                    ospf_redistribute.push(RedistIr {
                        from_protocol: p,
                        policy: Some(pol_name.clone()),
                        metric: None,
                        span,
                    });
                }
            }
        }
    }

    let bgp = match &cfg.bgp {
        Some(b) => Some(lower_bgp(cfg, b, &mut policies)?),
        None => None,
    };

    Ok(RouterIr {
        name: if cfg.hostname.is_empty() {
            "juniper_router".to_string()
        } else {
            cfg.hostname.clone()
        },
        vendor: Vendor::JuniperJunos,
        policies,
        acls,
        static_routes,
        interfaces,
        ospf_interfaces,
        ospf_redistribute,
        // JunOS expresses protocol preference via per-route `preference`;
        // there is no single OSPF distance knob in our modeled subset.
        ospf_distance: None,
        bgp,
        source: cfg.source.clone(),
    })
}

/// Translate a route-filter modifier into a length range for `prefix`.
/// Returns `None` when the modifier matches nothing (e.g. `longer` on /32).
fn modifier_range(prefix: Prefix, m: RouteFilterModifier) -> Option<PrefixRange> {
    let len = prefix.len();
    match m {
        RouteFilterModifier::Exact => Some(PrefixRange::new(prefix, len, len)),
        RouteFilterModifier::OrLonger => Some(PrefixRange::new(prefix, len, 32)),
        RouteFilterModifier::Longer => {
            if len >= 32 {
                None
            } else {
                Some(PrefixRange::new(prefix, len + 1, 32))
            }
        }
        RouteFilterModifier::Upto(hi) => {
            if hi < len {
                None
            } else {
                Some(PrefixRange::new(prefix, len, hi))
            }
        }
        RouteFilterModifier::PrefixLengthRange(lo, hi) => {
            if lo > hi || hi > 32 {
                None
            } else {
                Some(PrefixRange::new(prefix, lo, hi))
            }
        }
    }
}

/// Resolve a community definition into a JunOS all-members matcher.
fn lower_community(
    cfg: &JuniperConfig,
    name: &str,
    at: Span,
) -> Result<CommunityMatcher, LowerError> {
    let def = cfg
        .communities
        .get(name)
        .ok_or_else(|| LowerError::at(at, format!("reference to undefined community {name}")))?;
    let mut atoms: Vec<CommAtom> = def.members.iter().map(|c| CommAtom::Literal(*c)).collect();
    for rx in &def.regexes {
        Regex::new(rx).map_err(|e| LowerError::at(def.span, e.message))?;
        atoms.push(CommAtom::Regex(rx.clone()));
    }
    Ok(CommunityMatcher {
        name: name.to_string(),
        dialect: CommunityDialect::JunosMembers(atoms),
        span: def.span,
    })
}

/// Literal members of a community definition, for `then community add/set`
/// (which cannot add patterns).
fn community_literals(
    cfg: &JuniperConfig,
    name: &str,
    at: Span,
) -> Result<Vec<campion_net::Community>, LowerError> {
    let def = cfg
        .communities
        .get(name)
        .ok_or_else(|| LowerError::at(at, format!("reference to undefined community {name}")))?;
    if !def.regexes.is_empty() {
        return Err(LowerError::at(
            def.span,
            format!("community {name} has regex members and cannot be added/set"),
        ));
    }
    Ok(def.members.clone())
}

fn lower_policy(
    cfg: &JuniperConfig,
    name: &str,
    ps: &PolicyStatement,
) -> Result<RoutePolicy, LowerError> {
    let mut clauses = Vec::new();
    for term in &ps.terms {
        let mut prefix_entries: Vec<PrefixMatcherEntry> = Vec::new();
        let mut community_matchers = Vec::new();
        let mut protocols = Vec::new();
        let mut other_matches = Vec::new();
        for f in &term.from {
            match f {
                FromClause::PrefixList(pl_name) => {
                    let pl = cfg.prefix_lists.get(pl_name).ok_or_else(|| {
                        LowerError::at(
                            term.span,
                            format!(
                                "term {} references undefined prefix-list {pl_name}",
                                term.name
                            ),
                        )
                    })?;
                    // Bare prefix-list reference: EXACT match only — the
                    // crux of Figure 1's first bug.
                    for (p, span) in &pl.prefixes {
                        prefix_entries.push(PrefixMatcherEntry {
                            permit: true,
                            range: PrefixRange::exact(*p),
                            span: *span,
                        });
                    }
                }
                FromClause::PrefixListFilter(pl_name, m) => {
                    let pl = cfg.prefix_lists.get(pl_name).ok_or_else(|| {
                        LowerError::at(
                            term.span,
                            format!(
                                "term {} references undefined prefix-list {pl_name}",
                                term.name
                            ),
                        )
                    })?;
                    for (p, span) in &pl.prefixes {
                        if let Some(range) = modifier_range(*p, *m) {
                            prefix_entries.push(PrefixMatcherEntry {
                                permit: true,
                                range,
                                span: *span,
                            });
                        }
                    }
                }
                FromClause::RouteFilter(p, m) => {
                    if let Some(range) = modifier_range(*p, *m) {
                        prefix_entries.push(PrefixMatcherEntry {
                            permit: true,
                            range,
                            span: term.span,
                        });
                    }
                }
                FromClause::Community(names) => {
                    for n in names {
                        community_matchers.push(lower_community(cfg, n, term.span)?);
                    }
                }
                FromClause::Protocol(kws) => {
                    for kw in kws {
                        if let Some(p) = RouteProtocol::from_keyword(kw) {
                            protocols.push(p);
                        }
                    }
                }
                FromClause::Tag(t) => other_matches.push(Match::Tag(*t)),
                FromClause::Metric(m) => other_matches.push(Match::Metric(*m)),
            }
        }
        let mut matches = Vec::new();
        if !prefix_entries.is_empty() {
            matches.push(Match::Prefix(vec![PrefixMatcher {
                name: String::new(),
                entries: prefix_entries,
            }]));
        }
        if !community_matchers.is_empty() {
            matches.push(Match::Community(community_matchers));
        }
        if !protocols.is_empty() {
            matches.push(Match::Protocol(protocols));
        }
        matches.extend(other_matches);

        let mut sets = Vec::new();
        let mut terminal = Terminal::Fallthrough;
        for t in &term.then {
            match t {
                ThenClause::Accept => terminal = Terminal::Accept,
                ThenClause::Reject => terminal = Terminal::Reject,
                ThenClause::NextTerm | ThenClause::NextPolicy => terminal = Terminal::Fallthrough,
                ThenClause::LocalPreference(v) => sets.push(SetAction::LocalPref(*v)),
                ThenClause::Metric(v) => sets.push(SetAction::Metric(*v)),
                ThenClause::CommunityAdd(n) => sets.push(SetAction::CommunityAdd(
                    community_literals(cfg, n, term.span)?,
                )),
                ThenClause::CommunitySet(n) => sets.push(SetAction::CommunitySet(
                    community_literals(cfg, n, term.span)?,
                )),
                ThenClause::CommunityDelete(n) => {
                    let m = lower_community(cfg, n, term.span)?;
                    sets.push(SetAction::CommunityDelete(
                        m.atoms().into_iter().cloned().collect(),
                    ));
                }
                ThenClause::NextHop(nh) => sets.push(SetAction::NextHop(*nh)),
                ThenClause::Tag(v) => sets.push(SetAction::Tag(*v)),
            }
        }
        clauses.push(Clause {
            label: format!("term {}", term.name),
            matches,
            sets,
            terminal,
            span: term.span,
        });
    }
    Ok(RoutePolicy {
        name: name.to_string(),
        clauses,
        // JunOS default policy for BGP routes is accept — the fall-through
        // asymmetry the paper's university study surfaced.
        default_terminal: Terminal::Accept,
        span: ps.span,
    })
}

fn lower_filter(name: &str, f: &campion_cfg::juniper::FirewallFilter) -> AclIr {
    let rules = f
        .terms
        .iter()
        .map(|t| AclRuleIr {
            label: format!("term {}", t.name),
            permit: t.action == FilterAction::Accept,
            protocols: t.from.protocols.clone(),
            src: t
                .from
                .src_addrs
                .iter()
                .map(WildcardMask::from_prefix)
                .collect(),
            dst: t
                .from
                .dst_addrs
                .iter()
                .map(WildcardMask::from_prefix)
                .collect(),
            src_ports: t.from.src_ports.clone(),
            dst_ports: t.from.dst_ports.clone(),
            span: t.span,
        })
        .collect();
    AclIr {
        name: name.to_string(),
        rules,
        span: f.span,
    }
}

fn lower_bgp(
    cfg: &JuniperConfig,
    b: &campion_cfg::juniper::JuniperBgp,
    policies: &mut BTreeMap<String, RoutePolicy>,
) -> Result<BgpIr, LowerError> {
    // Materialize a policy chain under its joined name and return that name.
    let mut resolve_chain = |chain: &[String], span: Span| -> Result<Option<String>, LowerError> {
        match chain.len() {
            0 => Ok(None),
            1 => {
                if !policies.contains_key(&chain[0]) {
                    return Err(LowerError::at(
                        span,
                        format!("reference to undefined policy {}", chain[0]),
                    ));
                }
                Ok(Some(chain[0].clone()))
            }
            _ => {
                let joined = chain.join("+");
                if !policies.contains_key(&joined) {
                    let parts: Vec<RoutePolicy> = chain
                        .iter()
                        .map(|n| {
                            policies.get(n).cloned().ok_or_else(|| {
                                LowerError::at(span, format!("reference to undefined policy {n}"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    let refs: Vec<&RoutePolicy> = parts.iter().collect();
                    policies.insert(joined.clone(), RoutePolicy::chain(joined.clone(), &refs));
                }
                Ok(Some(joined))
            }
        }
    };

    let mut neighbors = BTreeMap::new();
    for (gname, g) in &b.groups {
        let _ = gname;
        for (addr, n) in &g.neighbors {
            let import_chain = if n.import.is_empty() {
                &g.import
            } else {
                &n.import
            };
            let export_chain = if n.export.is_empty() {
                &g.export
            } else {
                &n.export
            };
            let import_policy = resolve_chain(import_chain, n.span)?;
            let export_policy = resolve_chain(export_chain, n.span)?;
            neighbors.insert(
                *addr,
                BgpNeighborIr {
                    addr: *addr,
                    remote_as: n.peer_as.or(g.peer_as).or(if g.internal {
                        b.local_as
                    } else {
                        None
                    }),
                    import_policy,
                    export_policy,
                    // JunOS always sends communities.
                    send_community: true,
                    route_reflector_client: g.cluster.is_some(),
                    next_hop_self: false,
                    span: n.span.merge(g.span),
                },
            );
        }
    }
    Ok(BgpIr {
        asn: b.local_as.unwrap_or(0),
        router_id: cfg.router_id,
        neighbors,
        redistribute: Vec::new(),
        networks: Vec::new(),
        distance: None,
        span: b.span,
    })
}
