//! Configuration translation: emit a vendor configuration from the VI
//! model.
//!
//! The paper's Scenario 2 (§5.1) — router replacement — requires operators
//! to *manually* rewrite a Cisco configuration in JunOS (or vice versa),
//! "one of the riskiest update operations", and Campion then checks the
//! hand-translation. This module automates the rewrite: lower the source
//! configuration to the VI model, emit the target dialect, and let Campion
//! verify the round trip (the integration tests do exactly that).
//!
//! Translation is *semantics-first*: the emitted text reproduces the VI
//! behavior, not the source file's layout. Constructs the target dialect
//! cannot express (e.g. suppressing community propagation on JunOS,
//! non-contiguous wildcards in JunOS filters) are reported as
//! [`TranslateError`]s rather than silently dropped.

use std::fmt::Write as _;

use crate::acl::AclIr;
use crate::policy::{
    Clause, CommAtom, CommunityDialect, Match, PrefixMatcher, RoutePolicy, SetAction, Terminal,
};
use crate::router::RouterIr;
use crate::routing::NextHopIr;

/// A construct the target dialect cannot express.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// What could not be translated and why.
    pub message: String,
}

impl TranslateError {
    fn new(msg: impl Into<String>) -> Self {
        TranslateError {
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "translation error: {}", self.message)
    }
}

impl std::error::Error for TranslateError {}

/// Translate a router into Juniper JunOS text.
///
/// The output parses with [`campion_cfg::juniper`] and lowers to a
/// behaviorally equivalent [`RouterIr`] (Campion itself is the validator —
/// see `tests/translate.rs`).
pub fn to_junos(r: &RouterIr) -> Result<String, TranslateError> {
    let mut o = String::new();
    let w = &mut o;
    if !r.name.is_empty() {
        let _ = writeln!(w, "system {{ host-name {}; }}", r.name);
    }

    // Interfaces.
    if !r.interfaces.is_empty() {
        let _ = writeln!(w, "interfaces {{");
        for iface in r.interfaces.values() {
            // JunOS interface names are `name.unit`; reuse the base name
            // with unit 0 when the source was flat.
            let (base, unit) = match iface.name.rsplit_once('.') {
                Some((b, u)) if u.parse::<u32>().is_ok() => (b.to_string(), u.to_string()),
                _ => (iface.name.clone(), "0".to_string()),
            };
            let _ = writeln!(w, "    {base} {{");
            if iface.shutdown {
                let _ = writeln!(w, "        disable;");
            }
            if let Some(d) = &iface.description {
                let _ = writeln!(w, "        description \"{d}\";");
            }
            let _ = writeln!(w, "        unit {unit} {{");
            let _ = writeln!(w, "            family inet {{");
            if let Some((addr, subnet)) = iface.address {
                let _ = writeln!(w, "                address {addr}/{};", subnet.len());
            }
            if iface.acl_in.is_some() || iface.acl_out.is_some() {
                let _ = writeln!(w, "                filter {{");
                if let Some(a) = &iface.acl_in {
                    let _ = writeln!(w, "                    input {a};");
                }
                if let Some(a) = &iface.acl_out {
                    let _ = writeln!(w, "                    output {a};");
                }
                let _ = writeln!(w, "                }}");
            }
            let _ = writeln!(w, "            }}");
            let _ = writeln!(w, "        }}");
            let _ = writeln!(w, "    }}");
        }
        let _ = writeln!(w, "}}");
    }

    // Policy options: communities then policy statements.
    let mut policy_body = String::new();
    let mut community_defs: Vec<(String, String)> = Vec::new();
    for (name, p) in &r.policies {
        if name.contains('+') {
            continue; // materialized chains; the parts are translated
        }
        policy_body.push_str(&junos_policy(p, &mut community_defs)?);
    }
    if !policy_body.is_empty() || !community_defs.is_empty() {
        let _ = writeln!(w, "policy-options {{");
        community_defs.sort();
        community_defs.dedup();
        for (name, members) in &community_defs {
            let _ = writeln!(w, "    community {name} members {members};");
        }
        w.push_str(&policy_body);
        let _ = writeln!(w, "}}");
    }

    // Firewall filters.
    if !r.acls.is_empty() {
        let _ = writeln!(w, "firewall {{");
        let _ = writeln!(w, "    family inet {{");
        for acl in r.acls.values() {
            w.push_str(&junos_filter(acl)?);
        }
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w, "}}");
    }

    // Routing options.
    let has_statics = !r.static_routes.is_empty();
    let asn = r.bgp.as_ref().map(|b| b.asn);
    if has_statics || asn.is_some() {
        let _ = writeln!(w, "routing-options {{");
        if let Some(asn) = asn {
            let _ = writeln!(w, "    autonomous-system {asn};");
        }
        if let Some(rid) = r.bgp.as_ref().and_then(|b| b.router_id) {
            let _ = writeln!(w, "    router-id {rid};");
        }
        if has_statics {
            let _ = writeln!(w, "    static {{");
            for s in &r.static_routes {
                let _ = writeln!(w, "        route {} {{", s.prefix);
                match &s.next_hop {
                    NextHopIr::Ip(ip) => {
                        let _ = writeln!(w, "            next-hop {ip};");
                    }
                    NextHopIr::Discard => {
                        let _ = writeln!(w, "            discard;");
                    }
                    NextHopIr::Interface(i) => {
                        return Err(TranslateError::new(format!(
                            "static route {} via interface {i} has no JunOS equivalent in \
                             the modeled subset",
                            s.prefix
                        )));
                    }
                }
                let _ = writeln!(w, "            preference {};", s.admin_distance);
                if let Some(t) = s.tag {
                    let _ = writeln!(w, "            tag {t};");
                }
                let _ = writeln!(w, "        }}");
            }
            let _ = writeln!(w, "    }}");
        }
        let _ = writeln!(w, "}}");
    }

    // BGP.
    if let Some(bgp) = &r.bgp {
        if !bgp.networks.is_empty() {
            return Err(TranslateError::new(
                "Cisco `network` origination has no direct JunOS equivalent in the modeled \
                 subset (JunOS originates via export policies); originate explicitly instead",
            ));
        }
        let _ = writeln!(w, "protocols {{");
        let _ = writeln!(w, "    bgp {{");
        for (i, n) in bgp.neighbors.values().enumerate() {
            if !n.send_community {
                return Err(TranslateError::new(format!(
                    "neighbor {}: JunOS always sends communities; a config without \
                     send-community cannot be translated faithfully",
                    n.addr
                )));
            }
            let internal = n.remote_as == Some(bgp.asn);
            let _ = writeln!(w, "        group peer{i} {{");
            if internal {
                let _ = writeln!(w, "            type internal;");
                if n.route_reflector_client {
                    let cluster = bgp
                        .router_id
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "0.0.0.1".to_string());
                    let _ = writeln!(w, "            cluster {cluster};");
                }
            } else {
                let _ = writeln!(w, "            type external;");
                if let Some(asn) = n.remote_as {
                    let _ = writeln!(w, "            peer-as {asn};");
                }
            }
            let _ = writeln!(w, "            neighbor {} {{", n.addr);
            if let Some(p) = &n.import_policy {
                let _ = writeln!(w, "                import {};", junos_chain(p));
            }
            if let Some(p) = &n.export_policy {
                let _ = writeln!(w, "                export {};", junos_chain(p));
            }
            let _ = writeln!(w, "            }}");
            let _ = writeln!(w, "        }}");
        }
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w, "}}");
    }
    Ok(o)
}

/// A materialized chain name `A+B` is emitted as the JunOS chain `[ A B ]`.
fn junos_chain(name: &str) -> String {
    if name.contains('+') {
        format!("[ {} ]", name.split('+').collect::<Vec<_>>().join(" "))
    } else {
        name.to_string()
    }
}

fn junos_policy(
    p: &RoutePolicy,
    community_defs: &mut Vec<(String, String)>,
) -> Result<String, TranslateError> {
    let mut o = String::new();
    let _ = writeln!(o, "    policy-statement {} {{", p.name);
    for (i, clause) in p.clauses.iter().enumerate() {
        let _ = writeln!(o, "        term t{i} {{");
        let from = junos_from(p, i, clause, community_defs)?;
        if !from.is_empty() {
            let _ = writeln!(o, "            from {{");
            o.push_str(&from);
            let _ = writeln!(o, "            }}");
        }
        let _ = writeln!(o, "            then {{");
        for s in &clause.sets {
            o.push_str(&junos_set(p, i, s, community_defs)?);
        }
        match clause.terminal {
            Terminal::Accept => {
                let _ = writeln!(o, "                accept;");
            }
            Terminal::Reject => {
                let _ = writeln!(o, "                reject;");
            }
            Terminal::Fallthrough => {
                let _ = writeln!(o, "                next term;");
            }
        }
        let _ = writeln!(o, "            }}");
        let _ = writeln!(o, "        }}");
    }
    // The VI default terminal is made explicit so the translation never
    // depends on JunOS's protocol-sensitive default policy.
    let action = match p.default_terminal {
        Terminal::Accept => "accept",
        _ => "reject",
    };
    let _ = writeln!(o, "        term default {{");
    let _ = writeln!(o, "            then {action};");
    let _ = writeln!(o, "        }}");
    let _ = writeln!(o, "    }}");
    Ok(o)
}

fn junos_from(
    p: &RoutePolicy,
    clause_idx: usize,
    clause: &Clause,
    community_defs: &mut Vec<(String, String)>,
) -> Result<String, TranslateError> {
    let mut o = String::new();
    for m in &clause.matches {
        match m {
            Match::Prefix(pms) => {
                for pm in pms {
                    o.push_str(&junos_prefix_matcher(p, pm)?);
                }
            }
            Match::Community(cms) => {
                let mut names = Vec::new();
                for (k, cm) in cms.iter().enumerate() {
                    match &cm.dialect {
                        CommunityDialect::JunosMembers(atoms) => {
                            let name = format!("{}_t{clause_idx}_c{k}", p.name);
                            community_defs.push((name.clone(), junos_members(atoms)?));
                            names.push(name);
                        }
                        CommunityDialect::CiscoList(entries) => {
                            // Each permit line (a conjunction) becomes its
                            // own community; the disjunction across lines
                            // becomes `from community [ ... ]` — the exact
                            // correction of Figure 1's any-vs-all bug.
                            for (e, (permit, atoms, _)) in entries.iter().enumerate() {
                                if !permit {
                                    return Err(TranslateError::new(format!(
                                        "community list {} has deny lines; not expressible \
                                         as JunOS community definitions",
                                        cm.name
                                    )));
                                }
                                let name = format!("{}_t{clause_idx}_c{k}_{e}", p.name);
                                community_defs.push((name.clone(), junos_members(atoms)?));
                                names.push(name);
                            }
                        }
                    }
                }
                let _ = writeln!(o, "                community [ {} ];", names.join(" "));
            }
            Match::Tag(t) => {
                let _ = writeln!(o, "                tag {t};");
            }
            Match::Metric(v) => {
                let _ = writeln!(o, "                metric {v};");
            }
            Match::Protocol(ps) => {
                let kws: Vec<&str> = ps
                    .iter()
                    .map(|p| match p {
                        crate::route::RouteProtocol::Connected => "direct",
                        crate::route::RouteProtocol::Static => "static",
                        crate::route::RouteProtocol::Ospf => "ospf",
                        crate::route::RouteProtocol::Bgp => "bgp",
                        crate::route::RouteProtocol::Aggregate => "aggregate",
                    })
                    .collect();
                let _ = writeln!(o, "                protocol [ {} ];", kws.join(" "));
            }
        }
    }
    Ok(o)
}

fn junos_prefix_matcher(p: &RoutePolicy, pm: &PrefixMatcher) -> Result<String, TranslateError> {
    let mut o = String::new();
    for e in &pm.entries {
        if !e.permit {
            return Err(TranslateError::new(format!(
                "policy {}: prefix matcher {} has deny entries; JunOS route-filter \
                 translation of shadowing denies is not supported",
                p.name,
                if pm.name.is_empty() {
                    "(inline)"
                } else {
                    &pm.name
                }
            )));
        }
        let r = &e.range;
        let modifier = if r.min_len == r.prefix.len() && r.max_len == 32 {
            "orlonger".to_string()
        } else if r.min_len == r.prefix.len() && r.max_len == r.prefix.len() {
            "exact".to_string()
        } else if r.min_len == r.prefix.len() {
            format!("upto /{}", r.max_len)
        } else {
            format!("prefix-length-range /{}-/{}", r.min_len, r.max_len)
        };
        let _ = writeln!(o, "                route-filter {} {modifier};", r.prefix);
    }
    Ok(o)
}

fn junos_members(atoms: &[CommAtom]) -> Result<String, TranslateError> {
    let members: Vec<String> = atoms
        .iter()
        .map(|a| match a {
            CommAtom::Literal(c) => c.to_string(),
            CommAtom::Regex(r) => format!("\"{r}\""),
        })
        .collect();
    if members.is_empty() {
        return Err(TranslateError::new("empty community conjunction"));
    }
    Ok(if members.len() == 1 {
        members.into_iter().next().expect("one member")
    } else {
        format!("[ {} ]", members.join(" "))
    })
}

fn junos_set(
    p: &RoutePolicy,
    clause_idx: usize,
    s: &SetAction,
    community_defs: &mut Vec<(String, String)>,
) -> Result<String, TranslateError> {
    let mut o = String::new();
    match s {
        SetAction::LocalPref(v) => {
            let _ = writeln!(o, "                local-preference {v};");
        }
        SetAction::Metric(v) => {
            let _ = writeln!(o, "                metric {v};");
        }
        SetAction::Tag(v) => {
            let _ = writeln!(o, "                tag {v};");
        }
        SetAction::NextHop(Some(ip)) => {
            let _ = writeln!(o, "                next-hop {ip};");
        }
        SetAction::NextHop(None) => {
            let _ = writeln!(o, "                next-hop self;");
        }
        SetAction::CommunitySet(cs) => {
            let name = format!("{}_t{clause_idx}_set", p.name);
            let atoms: Vec<CommAtom> = cs.iter().map(|c| CommAtom::Literal(*c)).collect();
            community_defs.push((name.clone(), junos_members(&atoms)?));
            let _ = writeln!(o, "                community set {name};");
        }
        SetAction::CommunityAdd(cs) => {
            let name = format!("{}_t{clause_idx}_add", p.name);
            let atoms: Vec<CommAtom> = cs.iter().map(|c| CommAtom::Literal(*c)).collect();
            community_defs.push((name.clone(), junos_members(&atoms)?));
            let _ = writeln!(o, "                community add {name};");
        }
        SetAction::CommunityDelete(atoms) => {
            let name = format!("{}_t{clause_idx}_del", p.name);
            community_defs.push((name.clone(), junos_members(atoms)?));
            let _ = writeln!(o, "                community delete {name};");
        }
        SetAction::Weight(_) => {
            return Err(TranslateError::new(format!(
                "policy {}: `set weight` is Cisco-local and has no JunOS equivalent",
                p.name
            )));
        }
    }
    Ok(o)
}

fn junos_filter(acl: &AclIr) -> Result<String, TranslateError> {
    let mut o = String::new();
    let _ = writeln!(o, "        filter {} {{", acl.name);
    for (i, rule) in acl.rules.iter().enumerate() {
        let _ = writeln!(o, "            term t{i} {{");
        let mut from = String::new();
        for w in &rule.src {
            let p = w.as_prefix().ok_or_else(|| {
                TranslateError::new(format!(
                    "ACL {}: non-contiguous wildcard {} is not expressible in JunOS",
                    acl.name, w
                ))
            })?;
            let _ = writeln!(from, "                    source-address {p};");
        }
        for w in &rule.dst {
            let p = w.as_prefix().ok_or_else(|| {
                TranslateError::new(format!(
                    "ACL {}: non-contiguous wildcard {} is not expressible in JunOS",
                    acl.name, w
                ))
            })?;
            let _ = writeln!(from, "                    destination-address {p};");
        }
        if !rule.protocols.is_empty() {
            let kws: Vec<String> = rule.protocols.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(from, "                    protocol [ {} ];", kws.join(" "));
        }
        if !rule.src_ports.is_empty() {
            let rs: Vec<String> = rule
                .src_ports
                .iter()
                .map(|r| {
                    if r.lo == r.hi {
                        r.lo.to_string()
                    } else {
                        format!("{}-{}", r.lo, r.hi)
                    }
                })
                .collect();
            let _ = writeln!(
                from,
                "                    source-port [ {} ];",
                rs.join(" ")
            );
        }
        if !rule.dst_ports.is_empty() {
            let rs: Vec<String> = rule
                .dst_ports
                .iter()
                .map(|r| {
                    if r.lo == r.hi {
                        r.lo.to_string()
                    } else {
                        format!("{}-{}", r.lo, r.hi)
                    }
                })
                .collect();
            let _ = writeln!(
                from,
                "                    destination-port [ {} ];",
                rs.join(" ")
            );
        }
        if !from.is_empty() {
            let _ = writeln!(o, "                from {{");
            o.push_str(&from);
            let _ = writeln!(o, "                }}");
        }
        let action = if rule.permit { "accept" } else { "discard" };
        let _ = writeln!(o, "                then {action};");
        let _ = writeln!(o, "            }}");
    }
    let _ = writeln!(o, "        }}");
    Ok(o)
}
