//! The complete per-router VI model and the lowering entry points.

use std::collections::{BTreeMap, BTreeSet};

use campion_cfg::{SourceText, Span, Vendor, VendorConfig};
use campion_net::Prefix;

use crate::acl::AclIr;
use crate::error::LowerError;
use crate::policy::RoutePolicy;
use crate::routing::{BgpIr, IfaceIr, OspfIfaceIr, RedistIr, StaticRouteIr};

/// A router configuration lowered into the vendor-independent model — the
/// unit Campion compares.
#[derive(Debug, Clone)]
pub struct RouterIr {
    /// Router hostname (or a caller-provided label).
    pub name: String,
    /// The configuration language the router was written in.
    pub vendor: Vendor,
    /// All route policies (route maps / policy statements), by name.
    /// Juniper policy *chains* used by a neighbor are materialized here
    /// under their joined name (`"A+B"`).
    pub policies: BTreeMap<String, RoutePolicy>,
    /// All ACLs / firewall filters, by name.
    pub acls: BTreeMap<String, AclIr>,
    /// Static routes.
    pub static_routes: Vec<StaticRouteIr>,
    /// Interfaces by name (Juniper units flattened to `name.unit`).
    pub interfaces: BTreeMap<String, IfaceIr>,
    /// OSPF-enabled interfaces with their compared attributes.
    pub ospf_interfaces: Vec<OspfIfaceIr>,
    /// Redistribution into OSPF.
    pub ospf_redistribute: Vec<RedistIr>,
    /// Configured OSPF admin distance, if any.
    pub ospf_distance: Option<u8>,
    /// The BGP process, if configured.
    pub bgp: Option<BgpIr>,
    /// Original configuration text, for text localization.
    pub source: SourceText,
}

impl RouterIr {
    /// The connected routes contributed by up, addressed interfaces.
    pub fn connected_routes(&self) -> BTreeSet<Prefix> {
        self.interfaces
            .values()
            .filter_map(IfaceIr::connected_route)
            .collect()
    }

    /// Quote the original configuration for a span (text localization).
    pub fn snippet(&self, span: Span) -> String {
        self.source.snippet_dedented(span)
    }

    /// Look up a policy, treating an absent reference as the permissive
    /// identity policy (routers apply no filter when none is configured).
    pub fn policy_or_permit(&self, name: &str) -> RoutePolicy {
        self.policies
            .get(name)
            .cloned()
            .unwrap_or_else(|| RoutePolicy::permit_all(name))
    }
}

/// Lower a parsed vendor configuration into the VI model.
pub fn lower(cfg: &VendorConfig) -> Result<RouterIr, LowerError> {
    campion_trace::span!("ir.lower");
    match cfg {
        VendorConfig::Cisco(c) => lower_cisco(c),
        VendorConfig::Juniper(j) => lower_juniper(j),
    }
}

pub use crate::lower_cisco::lower_cisco;
pub use crate::lower_juniper::lower_juniper;
