//! Source locations: the foundation of text localization.

use std::fmt;

/// Which configuration language a piece of text was written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Cisco IOS, line-oriented.
    CiscoIos,
    /// Juniper JunOS, hierarchical braces.
    JuniperJunos,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::CiscoIos => write!(f, "Cisco IOS"),
            Vendor::JuniperJunos => write!(f, "Juniper JunOS"),
        }
    }
}

/// An inclusive range of 1-based line numbers in the original configuration.
///
/// Every parsed element keeps its span so Campion's `Present` step can quote
/// the exact configuration text responsible for a difference — the paper's
/// *text localization*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// First line, 1-based, inclusive.
    pub start: u32,
    /// Last line, 1-based, inclusive.
    pub end: u32,
}

impl Default for Span {
    /// A placeholder span pointing at the first line; used by containers
    /// that are populated incrementally.
    fn default() -> Self {
        Span { start: 1, end: 1 }
    }
}

impl Span {
    /// A single-line span.
    pub fn line(n: u32) -> Self {
        Span { start: n, end: n }
    }

    /// A multi-line span.
    ///
    /// # Panics
    /// Panics when `start > end` or `start == 0`.
    pub fn lines(start: u32, end: u32) -> Self {
        assert!(start >= 1 && start <= end, "invalid span {start}..{end}");
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Number of lines covered.
    pub fn line_count(self) -> u32 {
        self.end - self.start + 1
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "line {}", self.start)
        } else {
            write!(f, "lines {}-{}", self.start, self.end)
        }
    }
}

/// The original configuration text, retained for snippet extraction.
///
/// Campion "unparses" IR elements back to configuration text by simply
/// slicing the original source with the element's span — guaranteed to match
/// what the operator wrote, whitespace and all.
#[derive(Debug, Clone)]
pub struct SourceText {
    lines: Vec<String>,
}

impl SourceText {
    /// Capture the configuration text.
    pub fn new(text: &str) -> Self {
        SourceText {
            lines: text.lines().map(str::to_owned).collect(),
        }
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// A single line by 1-based number (`None` when out of range).
    pub fn line(&self, n: u32) -> Option<&str> {
        self.lines
            .get((n as usize).checked_sub(1)?)
            .map(String::as_str)
    }

    /// The text covered by `span`, joined with newlines. Lines outside the
    /// file are silently dropped (spans are trusted but not load-bearing).
    pub fn snippet(&self, span: Span) -> String {
        (span.start..=span.end)
            .filter_map(|n| self.line(n))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Like [`SourceText::snippet`], but with leading indentation trimmed
    /// uniformly (for display in reports).
    pub fn snippet_dedented(&self, span: Span) -> String {
        let raw = self.snippet(span);
        let min_indent = raw
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.len() - l.trim_start().len())
            .min()
            .unwrap_or(0);
        raw.lines()
            .map(|l| {
                if l.len() >= min_indent {
                    &l[min_indent..]
                } else {
                    l
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}
