//! Configuration excerpts from the paper, shared by tests, examples and the
//! benchmark harness.

/// The Cisco route-map excerpt of the paper's Figure 1(a), verbatim modulo
/// the paper's line wrap.
pub const FIGURE1_CISCO: &str = "\
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map POL deny 10
 match ip address prefix-list NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
";

/// The Juniper policy excerpt of the paper's Figure 1(b), formatted as real
/// JunOS (the paper's listing is line-wrapped; semantically identical).
pub const FIGURE1_JUNIPER: &str = "\
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
";

/// The static-route example of §2.2 (Table 4): present in the Cisco router.
pub const STATIC_CISCO: &str = "\
hostname cisco_router
ip route 10.1.1.2 255.255.255.254 10.2.2.2
";

/// The static-route example of §2.2: absent from the Juniper router.
pub const STATIC_JUNIPER: &str = "\
system { host-name juniper_router; }
routing-options {
    static {
        route 192.0.2.0/24 next-hop 10.2.2.2;
    }
}
";
