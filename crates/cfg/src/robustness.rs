//! Robustness property tests: the parsers must return `Ok` or a positioned
//! `ParseError` on *any* input — never panic — because Campion's first step
//! in production is parsing configs it has never seen.

use proptest::prelude::*;

use crate::cisco::parse_cisco;
use crate::juniper::parse_juniper;
use crate::{detect_vendor, parse_config, samples};

/// Fragments that steer random inputs toward the interesting grammar.
const CISCO_WORDS: &[&str] = &[
    "ip",
    "route",
    "prefix-list",
    "permit",
    "deny",
    "route-map",
    "match",
    "set",
    "community",
    "access-list",
    "extended",
    "neighbor",
    "router",
    "bgp",
    "ospf",
    "interface",
    "le",
    "ge",
    "10.0.0.0",
    "255.255.0.0",
    "0.0.0.255",
    "any",
    "host",
    "eq",
    "range",
    "tcp",
    "udp",
    "local-preference",
    "seq",
    "!",
    "\n",
    " ",
    "65000:1",
    "Gi0/0",
    "area",
    "network",
];

const JUNIPER_WORDS: &[&str] = &[
    "policy-options",
    "policy-statement",
    "term",
    "from",
    "then",
    "accept",
    "reject",
    "prefix-list",
    "route-filter",
    "orlonger",
    "exact",
    "upto",
    "community",
    "members",
    "firewall",
    "family",
    "inet",
    "filter",
    "protocols",
    "bgp",
    "group",
    "neighbor",
    "routing-options",
    "static",
    "route",
    "next-hop",
    "{",
    "}",
    ";",
    "[",
    "]",
    "\n",
    " ",
    "10.0.0.0/8",
    "10:10",
    "\"",
    "#",
    "/*",
    "*/",
    "interface",
    "unit",
    "address",
];

fn soup(words: &'static [&'static str]) -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(words), 0..120).prop_map(|ws| ws.concat())
}

/// Mutate a valid config by deleting a random byte range.
fn mutated(base: &'static str) -> impl Strategy<Value = String> {
    (0..base.len(), 0..base.len()).prop_map(move |(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut s = String::new();
        for (i, ch) in base.char_indices() {
            if i < lo || i >= hi {
                s.push(ch);
            }
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cisco_parser_never_panics_on_word_soup(input in soup(CISCO_WORDS)) {
        let _ = parse_cisco(&input);
    }

    #[test]
    fn juniper_parser_never_panics_on_word_soup(input in soup(JUNIPER_WORDS)) {
        let _ = parse_juniper(&input);
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(input in "\\PC*") {
        let _ = parse_cisco(&input);
        let _ = parse_juniper(&input);
        let _ = parse_config(&input);
        let _ = detect_vendor(&input);
    }

    #[test]
    fn cisco_parser_survives_mutations(input in mutated(samples::FIGURE1_CISCO)) {
        let _ = parse_cisco(&input);
    }

    #[test]
    fn juniper_parser_survives_mutations(input in mutated(samples::FIGURE1_JUNIPER)) {
        let _ = parse_juniper(&input);
    }

    /// Errors always carry a line number inside the file (or 0 for
    /// file-level problems).
    #[test]
    fn error_positions_are_in_range(input in soup(CISCO_WORDS)) {
        if let Err(e) = parse_cisco(&input) {
            let lines = input.lines().count() as u32;
            prop_assert!(e.line <= lines.max(1), "line {} of {lines}", e.line);
        }
    }
}
