//! Juniper JunOS configuration: brace-tree lexer, AST and extraction.
//!
//! JunOS configs are hierarchical: `keyword args { children }` or
//! `keyword args;`. Parsing happens in two stages — a generic statement-tree
//! parser ([`tree`]) that preserves spans, then typed extraction into the
//! typed AST for the subsystems Campion analyzes.

mod ast;
mod parser;
pub mod setstyle;
pub mod tree;

pub use ast::*;
pub use parser::parse_juniper;

#[cfg(test)]
mod tests;
