//! `set`-style (flattened) JunOS input.
//!
//! `show configuration | display set` prints one `set` command per line;
//! operators frequently exchange configs in this form. This module folds
//! such lines back into the statement tree the extraction layer consumes.
//!
//! Reconstruction needs to know, for each keyword, how many tokens after it
//! belong to the *statement head* (its arguments) before nesting resumes —
//! e.g. `policy-statement POL` consumes one name, `term t1` one name,
//! `from community COMM` is a leaf whose words all stay together. The
//! schema below covers the grammar subset the typed extractor understands;
//! unknown keywords terminate nesting and keep the remaining tokens as one
//! leaf statement, which matches how the extractor treats unmodeled leaves.

use crate::error::ParseError;
use crate::span::Span;

use super::tree::Stmt;

/// Containers that take `n` name arguments and then nest further.
fn container_arity(keyword: &str) -> Option<usize> {
    Some(match keyword {
        "system" | "policy-options" | "routing-options" | "protocols" | "firewall"
        | "interfaces" | "static" | "bgp" | "ospf" => 0,
        "policy-statement" | "term" | "prefix-list" | "group" | "area" | "filter" | "unit"
        | "route" | "neighbor" | "interface" => 1,
        "family" => 1, // family inet { ... }
        "from" | "then" => 0,
        _ => return None,
    })
}

/// Does this token start an interfaces stanza body (the interface name
/// itself is the container)?
fn is_leaf_keyword(keyword: &str) -> bool {
    matches!(
        keyword,
        "host-name"
            | "autonomous-system"
            | "router-id"
            | "import"
            | "export"
            | "peer-as"
            | "cluster"
            | "type"
            | "members"
            | "community"
            | "route-filter"
            | "prefix-list-filter"
            | "local-preference"
            | "metric"
            | "accept"
            | "reject"
            | "next-hop"
            | "next"
            | "tag"
            | "preference"
            | "discard"
            | "source-address"
            | "destination-address"
            | "protocol"
            | "source-port"
            | "destination-port"
            | "address"
            | "disable"
            | "description"
            | "passive"
            | "reference-bandwidth"
    )
}

/// Is this text in `set`-style form? (Every non-empty line starts with
/// `set` or `delete`.)
pub fn looks_like_set_style(text: &str) -> bool {
    let mut any = false;
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if !t.starts_with("set ") {
            return false;
        }
        any = true;
    }
    any
}

/// Convert `set`-style lines into a statement tree.
pub fn parse_set_style(text: &str) -> Result<Vec<Stmt>, ParseError> {
    let mut roots: Vec<Stmt> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i as u32 + 1;
        let t = raw.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let Some(rest) = t.strip_prefix("set ") else {
            return Err(ParseError::at(line_no, "expected a `set` command"));
        };
        let tokens = tokenize(rest, line_no)?;
        insert_path(&mut roots, &tokens, line_no)?;
    }
    Ok(roots)
}

/// Split on whitespace, honoring quoted strings and `[ ... ]` groups
/// (bracket contents flatten, like the brace parser does).
fn tokenize(rest: &str, line: u32) -> Result<Vec<String>, ParseError> {
    let mut out = Vec::new();
    let mut chars = rest.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' | '[' | ']' => {}
            '"' => {
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(ParseError::at(line, "unterminated string")),
                    }
                }
                out.push(s);
            }
            _ => {
                let mut s = String::new();
                s.push(c);
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '[' || ch == ']' || ch == '"' {
                        break;
                    }
                    s.push(ch);
                    chars.next();
                }
                out.push(s);
            }
        }
    }
    if out.is_empty() {
        return Err(ParseError::at(line, "empty set command"));
    }
    Ok(out)
}

/// Walk the token path, descending through known containers and attaching
/// the remainder as one leaf statement.
fn insert_path(roots: &mut Vec<Stmt>, tokens: &[String], line: u32) -> Result<(), ParseError> {
    let mut idx = 0;
    fn descend<'a>(level: &'a mut Vec<Stmt>, head: &[String], line: u32) -> &'a mut Vec<Stmt> {
        // Find or create a container whose words == head.
        let pos = level.iter().position(|s| s.words == head);
        let pos = match pos {
            Some(p) => p,
            None => {
                level.push(Stmt {
                    words: head.to_vec(),
                    children: Vec::new(),
                    span: Span::line(line),
                });
                level.len() - 1
            }
        };
        // Containers created by earlier lines keep their original span
        // start; extend the end to cover this line.
        level[pos].span = level[pos].span.merge(Span::line(line));
        &mut level[pos].children
    }
    let mut current: &mut Vec<Stmt> = roots;
    while idx < tokens.len() {
        let kw = tokens[idx].as_str();
        if is_leaf_keyword(kw) {
            break;
        }
        match container_arity(kw) {
            Some(arity) if idx + arity < tokens.len() => {
                let head = &tokens[idx..=idx + arity];
                current = descend(current, head, line);
                idx += arity + 1;
                // Inside `interfaces`, the next token is the interface name
                // (a container with no keyword of its own).
                if kw == "interfaces" && idx < tokens.len() {
                    let name = &tokens[idx..=idx];
                    current = descend(current, name, line);
                    idx += 1;
                }
            }
            _ => break,
        }
    }
    if idx < tokens.len() {
        current.push(Stmt {
            words: tokens[idx..].to_vec(),
            children: Vec::new(),
            span: Span::line(line),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juniper::parse_juniper;

    const SET_STYLE: &str = "\
set system host-name core-set
set policy-options prefix-list NETS 10.9.0.0/16
set policy-options prefix-list NETS 10.100.0.0/16
set policy-options community COMM members [ 10:10 10:11 ]
set policy-options policy-statement POL term rule1 from prefix-list NETS
set policy-options policy-statement POL term rule1 then reject
set policy-options policy-statement POL term rule2 from community COMM
set policy-options policy-statement POL term rule2 then reject
set policy-options policy-statement POL term rule3 then local-preference 30
set policy-options policy-statement POL term rule3 then accept
set routing-options autonomous-system 65100
set routing-options static route 10.1.1.2/31 next-hop 10.2.2.2
set protocols bgp group ibgp type internal
set protocols bgp group ibgp neighbor 10.0.101.2 export POL
set interfaces ge-0/0/0 unit 0 family inet address 10.0.1.2/24
";

    #[test]
    fn detection() {
        assert!(looks_like_set_style(SET_STYLE));
        assert!(!looks_like_set_style("policy-options { }"));
        assert!(!looks_like_set_style(""));
    }

    #[test]
    fn set_style_parses_like_braces() {
        let cfg = parse_juniper(SET_STYLE).expect("set-style parses");
        assert_eq!(cfg.hostname, "core-set");
        assert_eq!(cfg.prefix_lists["NETS"].prefixes.len(), 2);
        let comm = &cfg.communities["COMM"];
        assert_eq!(comm.members.len(), 2);
        let pol = &cfg.policies["POL"];
        assert_eq!(pol.terms.len(), 3);
        assert_eq!(pol.terms[2].then.len(), 2);
        assert_eq!(cfg.static_routes.len(), 1);
        assert_eq!(
            cfg.static_routes[0].next_hop.unwrap().to_string(),
            "10.2.2.2"
        );
        let bgp = cfg.bgp.expect("bgp parsed");
        let (_, export) = bgp
            .effective_export("10.0.101.2".parse().expect("addr"))
            .expect("neighbor");
        assert_eq!(export, vec!["POL"]);
        let iface = &cfg.interfaces["ge-0/0/0"];
        assert_eq!(
            iface.units[&0].address.expect("addr").1.to_string(),
            "10.0.1.0/24"
        );
    }

    #[test]
    fn set_style_equivalent_to_brace_style() {
        use crate::samples::FIGURE1_JUNIPER;
        let braces = parse_juniper(FIGURE1_JUNIPER).expect("braces parse");
        let set_text = "\
set policy-options prefix-list NETS 10.9.0.0/16
set policy-options prefix-list NETS 10.100.0.0/16
set policy-options community COMM members [ 10:10 10:11 ]
set policy-options policy-statement POL term rule1 from prefix-list NETS
set policy-options policy-statement POL term rule1 then reject
set policy-options policy-statement POL term rule2 from community COMM
set policy-options policy-statement POL term rule2 then reject
set policy-options policy-statement POL term rule3 then local-preference 30
set policy-options policy-statement POL term rule3 then accept
";
        let set = parse_juniper(set_text).expect("set-style parses");
        assert_eq!(
            braces.prefix_lists["NETS"].prefixes.len(),
            set.prefix_lists["NETS"].prefixes.len()
        );
        assert_eq!(
            braces.communities["COMM"].members,
            set.communities["COMM"].members
        );
        assert_eq!(
            braces.policies["POL"].terms.len(),
            set.policies["POL"].terms.len()
        );
        for (a, b) in braces.policies["POL"]
            .terms
            .iter()
            .zip(&set.policies["POL"].terms)
        {
            assert_eq!(a.from, b.from);
            assert_eq!(a.then, b.then);
        }
    }

    #[test]
    fn bad_set_lines_error() {
        assert!(parse_set_style("set \"unterminated\n").is_err());
        assert!(parse_set_style("set\n").is_err());
    }
}
