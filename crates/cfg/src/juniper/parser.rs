//! Extraction of the typed Juniper AST from the generic statement tree.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use campion_net::{Community, IpProtocol, PortRange, Prefix};

use super::ast::*;
use super::tree::{parse_tree, Stmt};
use crate::error::ParseError;
use crate::span::{SourceText, Span};

/// Parse a Juniper JunOS configuration, in either the hierarchical brace
/// form or the `set`-style flattened form (`| display set` output).
pub fn parse_juniper(text: &str) -> Result<JuniperConfig, ParseError> {
    let stmts = if super::setstyle::looks_like_set_style(text) {
        super::setstyle::parse_set_style(text)?
    } else {
        parse_tree(text)?
    };
    let mut cfg = JuniperConfig {
        hostname: String::new(),
        prefix_lists: BTreeMap::new(),
        communities: BTreeMap::new(),
        policies: BTreeMap::new(),
        filters: BTreeMap::new(),
        static_routes: Vec::new(),
        autonomous_system: None,
        router_id: None,
        bgp: None,
        ospf: None,
        interfaces: BTreeMap::new(),
        source: SourceText::new(text),
    };
    for stmt in &stmts {
        match stmt.keyword() {
            Some("system") => {
                if let Some(hn) = stmt.find("host-name") {
                    cfg.hostname = hn.args().first().cloned().unwrap_or_default();
                }
            }
            Some("policy-options") => extract_policy_options(stmt, &mut cfg)?,
            Some("firewall") => extract_firewall(stmt, &mut cfg)?,
            Some("routing-options") => extract_routing_options(stmt, &mut cfg)?,
            Some("protocols") => extract_protocols(stmt, &mut cfg)?,
            Some("interfaces") => extract_interfaces(stmt, &mut cfg)?,
            _ => {} // unmodeled top-level stanza
        }
    }
    Ok(cfg)
}

fn err(stmt: &Stmt, msg: impl Into<String>) -> ParseError {
    ParseError::at(stmt.span.start, msg.into())
}

fn parse_prefix(tok: &str, stmt: &Stmt) -> Result<Prefix, ParseError> {
    tok.parse()
        .map_err(|e: campion_net::ParseNetError| err(stmt, e.message))
}

fn parse_ip(tok: &str, stmt: &Stmt) -> Result<Ipv4Addr, ParseError> {
    tok.parse()
        .map_err(|_| err(stmt, format!("bad IPv4 address {tok:?}")))
}

fn parse_u32(tok: &str, stmt: &Stmt, what: &str) -> Result<u32, ParseError> {
    tok.parse()
        .map_err(|_| err(stmt, format!("bad {what}: {tok:?}")))
}

fn extract_policy_options(po: &Stmt, cfg: &mut JuniperConfig) -> Result<(), ParseError> {
    for child in &po.children {
        match child.keyword() {
            Some("prefix-list") => {
                let name = child
                    .args()
                    .first()
                    .ok_or_else(|| err(child, "prefix-list missing name"))?
                    .clone();
                let mut pl = JuniperPrefixList {
                    prefixes: Vec::new(),
                    span: child.span,
                };
                // Children are bare prefixes: `10.9.0.0/16;`
                for p in &child.children {
                    let tok = p
                        .keyword()
                        .ok_or_else(|| err(p, "empty prefix-list entry"))?;
                    pl.prefixes.push((parse_prefix(tok, p)?, p.span));
                }
                // Inline form: `prefix-list NETS [ 1.0.0.0/8 2.0.0.0/8 ];`
                for tok in &child.args()[1..] {
                    pl.prefixes.push((parse_prefix(tok, child)?, child.span));
                }
                cfg.prefix_lists.insert(name, pl);
            }
            Some("community") => {
                // community NAME members [ a b ];  (words flattened)
                let args = child.args();
                let name = args
                    .first()
                    .ok_or_else(|| err(child, "community missing name"))?
                    .clone();
                let mut members = Vec::new();
                let mut regexes = Vec::new();
                let mut member_toks: Vec<String> = Vec::new();
                if args.get(1).map(String::as_str) == Some("members") {
                    member_toks.extend(args[2..].iter().cloned());
                }
                for m in child.find_all("members") {
                    member_toks.extend(m.args().iter().cloned());
                }
                if member_toks.is_empty() {
                    return Err(err(child, "community missing members"));
                }
                for tok in member_toks {
                    match tok.parse::<Community>() {
                        Ok(c) => members.push(c),
                        Err(_) => regexes.push(tok),
                    }
                }
                cfg.communities.insert(
                    name,
                    JuniperCommunity {
                        members,
                        regexes,
                        span: child.span,
                    },
                );
            }
            Some("policy-statement") => {
                let name = child
                    .args()
                    .first()
                    .ok_or_else(|| err(child, "policy-statement missing name"))?
                    .clone();
                let ps = extract_policy_statement(child)?;
                cfg.policies.insert(name, ps);
            }
            _ => {}
        }
    }
    Ok(())
}

fn extract_policy_statement(ps: &Stmt) -> Result<PolicyStatement, ParseError> {
    let mut out = PolicyStatement {
        terms: Vec::new(),
        span: ps.span,
    };
    let mut anonymous = Vec::new();
    for child in &ps.children {
        match child.keyword() {
            Some("term") => {
                let name = child
                    .args()
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "__anonymous".to_string());
                out.terms.push(extract_policy_term(child, name)?);
            }
            // A policy-statement may have top-level from/then (an unnamed
            // single term).
            Some("from") | Some("then") => anonymous.push(child.clone()),
            _ => {}
        }
    }
    if !anonymous.is_empty() {
        let span = anonymous
            .iter()
            .map(|s| s.span)
            .reduce(Span::merge)
            .expect("nonempty");
        let wrapper = Stmt {
            words: vec!["term".into(), "__unnamed".into()],
            children: anonymous,
            span,
        };
        out.terms
            .push(extract_policy_term(&wrapper, "__unnamed".to_string())?);
    }
    Ok(out)
}

fn extract_policy_term(term: &Stmt, name: String) -> Result<PolicyTerm, ParseError> {
    let mut t = PolicyTerm {
        name,
        from: Vec::new(),
        then: Vec::new(),
        span: term.span,
    };
    for child in &term.children {
        match child.keyword() {
            Some("from") => {
                if child.is_leaf() {
                    // Inline: `from prefix-list NETS;`
                    t.from.push(from_clause_words(child, child.args())?);
                } else {
                    for f in &child.children {
                        t.from.push(from_clause_words(f, &f.words)?);
                    }
                }
            }
            Some("then") => {
                if child.is_leaf() {
                    t.then.push(then_clause_words(child, child.args())?);
                } else {
                    for a in &child.children {
                        t.then.push(then_clause_words(a, &a.words)?);
                    }
                }
            }
            _ => {}
        }
    }
    Ok(t)
}

fn route_filter_modifier(words: &[String], stmt: &Stmt) -> Result<RouteFilterModifier, ParseError> {
    match words.first().map(String::as_str) {
        Some("exact") | None => Ok(RouteFilterModifier::Exact),
        Some("orlonger") => Ok(RouteFilterModifier::OrLonger),
        Some("longer") => Ok(RouteFilterModifier::Longer),
        Some("upto") => {
            let len = words
                .get(1)
                .and_then(|w| w.strip_prefix('/'))
                .and_then(|w| w.parse::<u8>().ok())
                .ok_or_else(|| err(stmt, "upto missing /N"))?;
            Ok(RouteFilterModifier::Upto(len))
        }
        Some("prefix-length-range") => {
            let spec = words
                .get(1)
                .ok_or_else(|| err(stmt, "prefix-length-range missing /A-/B"))?;
            let (a, b) = spec
                .split_once('-')
                .ok_or_else(|| err(stmt, "prefix-length-range missing '-'"))?;
            let lo = a
                .strip_prefix('/')
                .and_then(|w| w.parse::<u8>().ok())
                .ok_or_else(|| err(stmt, "bad prefix-length-range low bound"))?;
            let hi = b
                .strip_prefix('/')
                .and_then(|w| w.parse::<u8>().ok())
                .ok_or_else(|| err(stmt, "bad prefix-length-range high bound"))?;
            Ok(RouteFilterModifier::PrefixLengthRange(lo, hi))
        }
        Some(other) => Err(err(
            stmt,
            format!("unknown route-filter modifier {other:?}"),
        )),
    }
}

fn from_clause_words(stmt: &Stmt, words: &[String]) -> Result<FromClause, ParseError> {
    match words.first().map(String::as_str) {
        Some("prefix-list") => {
            let name = words
                .get(1)
                .ok_or_else(|| err(stmt, "from prefix-list missing name"))?;
            Ok(FromClause::PrefixList(name.clone()))
        }
        Some("prefix-list-filter") => {
            let name = words
                .get(1)
                .ok_or_else(|| err(stmt, "prefix-list-filter missing name"))?;
            let m = route_filter_modifier(&words[2..], stmt)?;
            Ok(FromClause::PrefixListFilter(name.clone(), m))
        }
        Some("route-filter") => {
            let p = words
                .get(1)
                .ok_or_else(|| err(stmt, "route-filter missing prefix"))?;
            let prefix = parse_prefix(p, stmt)?;
            let m = route_filter_modifier(&words[2..], stmt)?;
            Ok(FromClause::RouteFilter(prefix, m))
        }
        Some("community") => {
            let names: Vec<String> = words[1..].to_vec();
            if names.is_empty() {
                return Err(err(stmt, "from community missing name"));
            }
            Ok(FromClause::Community(names))
        }
        Some("protocol") => Ok(FromClause::Protocol(words[1..].to_vec())),
        Some("tag") => Ok(FromClause::Tag(parse_u32(
            words.get(1).ok_or_else(|| err(stmt, "tag missing value"))?,
            stmt,
            "tag",
        )?)),
        Some("metric") => Ok(FromClause::Metric(parse_u32(
            words
                .get(1)
                .ok_or_else(|| err(stmt, "metric missing value"))?,
            stmt,
            "metric",
        )?)),
        Some(other) => Err(err(stmt, format!("unsupported from condition {other:?}"))),
        None => Err(err(stmt, "empty from condition")),
    }
}

fn then_clause_words(stmt: &Stmt, words: &[String]) -> Result<ThenClause, ParseError> {
    match words.first().map(String::as_str) {
        Some("accept") => Ok(ThenClause::Accept),
        Some("reject") => Ok(ThenClause::Reject),
        Some("next") => match words.get(1).map(String::as_str) {
            Some("term") => Ok(ThenClause::NextTerm),
            Some("policy") => Ok(ThenClause::NextPolicy),
            _ => Err(err(stmt, "expected 'next term' or 'next policy'")),
        },
        Some("local-preference") => Ok(ThenClause::LocalPreference(parse_u32(
            words
                .get(1)
                .ok_or_else(|| err(stmt, "local-preference missing value"))?,
            stmt,
            "local-preference",
        )?)),
        Some("metric") => Ok(ThenClause::Metric(parse_u32(
            words
                .get(1)
                .ok_or_else(|| err(stmt, "metric missing value"))?,
            stmt,
            "metric",
        )?)),
        Some("tag") => Ok(ThenClause::Tag(parse_u32(
            words.get(1).ok_or_else(|| err(stmt, "tag missing value"))?,
            stmt,
            "tag",
        )?)),
        Some("community") => {
            let op = words
                .get(1)
                .ok_or_else(|| err(stmt, "then community missing operation"))?;
            let name = words
                .get(2)
                .ok_or_else(|| err(stmt, "then community missing name"))?
                .clone();
            match op.as_str() {
                "add" => Ok(ThenClause::CommunityAdd(name)),
                "set" => Ok(ThenClause::CommunitySet(name)),
                "delete" => Ok(ThenClause::CommunityDelete(name)),
                other => Err(err(stmt, format!("unknown community operation {other:?}"))),
            }
        }
        Some("next-hop") => {
            let v = words
                .get(1)
                .ok_or_else(|| err(stmt, "next-hop missing value"))?;
            if v == "self" {
                Ok(ThenClause::NextHop(None))
            } else {
                Ok(ThenClause::NextHop(Some(parse_ip(v, stmt)?)))
            }
        }
        Some(other) => Err(err(stmt, format!("unsupported then action {other:?}"))),
        None => Err(err(stmt, "empty then action")),
    }
}

fn extract_firewall(fw: &Stmt, cfg: &mut JuniperConfig) -> Result<(), ParseError> {
    // firewall { family inet { filter NAME { term ... } } }
    // Also accept `firewall { filter NAME {...} }` (older syntax).
    let mut filters: Vec<&Stmt> = Vec::new();
    for child in &fw.children {
        match child.keyword() {
            Some("family") if child.args().first().map(String::as_str) == Some("inet") => {
                filters.extend(child.find_all("filter"));
            }
            Some("filter") => filters.push(child),
            _ => {}
        }
    }
    for f in filters {
        let name = f
            .args()
            .first()
            .ok_or_else(|| err(f, "filter missing name"))?
            .clone();
        let mut filter = FirewallFilter {
            terms: Vec::new(),
            span: f.span,
        };
        for term in f.find_all("term") {
            let tname = term
                .args()
                .first()
                .cloned()
                .unwrap_or_else(|| "__anonymous".to_string());
            filter.terms.push(extract_filter_term(term, tname)?);
        }
        cfg.filters.insert(name, filter);
    }
    Ok(())
}

fn extract_filter_term(term: &Stmt, name: String) -> Result<FilterTerm, ParseError> {
    let mut from = FilterFrom::default();
    let mut action = FilterAction::Accept;
    let mut saw_action = false;
    for child in &term.children {
        match child.keyword() {
            Some("from") => {
                for cond in &child.children {
                    filter_condition(cond, &mut from)?;
                }
                if child.is_leaf() && !child.args().is_empty() {
                    // Inline single condition.
                    let wrapper = Stmt {
                        words: child.args().to_vec(),
                        children: vec![],
                        span: child.span,
                    };
                    filter_condition(&wrapper, &mut from)?;
                }
            }
            Some("then") => {
                let words: Vec<&str> = if child.is_leaf() {
                    child.args().iter().map(String::as_str).collect()
                } else {
                    child.children.iter().filter_map(|c| c.keyword()).collect()
                };
                for w in words {
                    match w {
                        "accept" => {
                            action = FilterAction::Accept;
                            saw_action = true;
                        }
                        "discard" | "reject" => {
                            action = FilterAction::Discard;
                            saw_action = true;
                        }
                        "count" | "log" | "syslog" | "sample" => {}
                        other => {
                            return Err(err(child, format!("unsupported filter action {other:?}")))
                        }
                    }
                }
            }
            _ => {}
        }
    }
    let _ = saw_action; // terms with only counters default to accept
    Ok(FilterTerm {
        name,
        from,
        action,
        span: term.span,
    })
}

fn filter_condition(cond: &Stmt, from: &mut FilterFrom) -> Result<(), ParseError> {
    let kw = cond.keyword().ok_or_else(|| err(cond, "empty condition"))?;
    match kw {
        "source-address" => {
            for a in addr_args(cond)? {
                from.src_addrs.push(a);
            }
        }
        "destination-address" => {
            for a in addr_args(cond)? {
                from.dst_addrs.push(a);
            }
        }
        "protocol" => {
            for p in cond.args() {
                from.protocols
                    .push(p.parse::<IpProtocol>().map_err(|e| err(cond, e.message))?);
            }
        }
        "source-port" => {
            for r in cond.args() {
                from.src_ports.push(port_range(r, cond)?);
            }
        }
        "destination-port" => {
            for r in cond.args() {
                from.dst_ports.push(port_range(r, cond)?);
            }
        }
        other => return Err(err(cond, format!("unsupported filter condition {other:?}"))),
    }
    Ok(())
}

/// Addresses can be inline args or child statements (one per line).
fn addr_args(cond: &Stmt) -> Result<Vec<Prefix>, ParseError> {
    let mut out = Vec::new();
    for a in cond.args() {
        out.push(parse_prefix(a, cond)?);
    }
    for c in &cond.children {
        let tok = c.keyword().ok_or_else(|| err(c, "empty address entry"))?;
        out.push(parse_prefix(tok, c)?);
    }
    if out.is_empty() {
        return Err(err(cond, "address condition without addresses"));
    }
    Ok(out)
}

fn port_range(tok: &str, stmt: &Stmt) -> Result<PortRange, ParseError> {
    if let Some((a, b)) = tok.split_once('-') {
        let lo: u16 = a
            .parse()
            .map_err(|_| err(stmt, format!("bad port {a:?}")))?;
        let hi: u16 = b
            .parse()
            .map_err(|_| err(stmt, format!("bad port {b:?}")))?;
        if lo > hi {
            return Err(err(stmt, format!("empty port range {tok}")));
        }
        Ok(PortRange::new(lo, hi))
    } else {
        let named = match tok {
            "bgp" => Some(179),
            "ssh" => Some(22),
            "telnet" => Some(23),
            "http" => Some(80),
            "https" => Some(443),
            "domain" => Some(53),
            "ntp" => Some(123),
            _ => None,
        };
        let p: u16 = match named {
            Some(p) => p,
            None => tok
                .parse()
                .map_err(|_| err(stmt, format!("bad port {tok:?}")))?,
        };
        Ok(PortRange::exact(p))
    }
}

fn extract_routing_options(ro: &Stmt, cfg: &mut JuniperConfig) -> Result<(), ParseError> {
    if let Some(asys) = ro.find("autonomous-system") {
        if let Some(v) = asys.args().first() {
            cfg.autonomous_system = Some(parse_u32(v, asys, "autonomous-system")?);
        }
    }
    if let Some(rid) = ro.find("router-id") {
        if let Some(v) = rid.args().first() {
            cfg.router_id = Some(parse_ip(v, rid)?);
        }
    }
    if let Some(st) = ro.find("static") {
        for route in st.find_all("route") {
            cfg.static_routes.push(extract_static_route(route)?);
        }
    }
    Ok(())
}

fn extract_static_route(route: &Stmt) -> Result<JuniperStaticRoute, ParseError> {
    let args = route.args();
    let p = args
        .first()
        .ok_or_else(|| err(route, "route missing prefix"))?;
    let prefix = parse_prefix(p, route)?;
    let mut r = JuniperStaticRoute {
        prefix,
        next_hop: None,
        preference: 5,
        tag: None,
        discard: false,
        span: route.span,
    };
    // Inline form: route P next-hop X; or route P discard;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "next-hop" => {
                r.next_hop = Some(parse_ip(
                    args.get(i + 1)
                        .ok_or_else(|| err(route, "next-hop missing address"))?,
                    route,
                )?);
                i += 2;
            }
            "discard" | "reject" => {
                r.discard = true;
                i += 1;
            }
            "preference" => {
                r.preference = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(route, "bad preference"))?;
                i += 2;
            }
            "tag" => {
                r.tag = Some(parse_u32(
                    args.get(i + 1)
                        .ok_or_else(|| err(route, "tag missing value"))?,
                    route,
                    "tag",
                )?);
                i += 2;
            }
            other => return Err(err(route, format!("unsupported route option {other:?}"))),
        }
    }
    // Block form children.
    for c in &route.children {
        match c.keyword() {
            Some("next-hop") => {
                r.next_hop = Some(parse_ip(
                    c.args()
                        .first()
                        .ok_or_else(|| err(c, "next-hop missing address"))?,
                    c,
                )?);
            }
            Some("preference") => {
                r.preference = c
                    .args()
                    .first()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(c, "bad preference"))?;
            }
            Some("tag") => {
                r.tag = Some(parse_u32(
                    c.args()
                        .first()
                        .ok_or_else(|| err(c, "tag missing value"))?,
                    c,
                    "tag",
                )?);
            }
            Some("discard") | Some("reject") => r.discard = true,
            _ => {}
        }
    }
    if r.next_hop.is_none() && !r.discard {
        return Err(err(route, "static route needs next-hop or discard"));
    }
    Ok(r)
}

fn extract_protocols(protos: &Stmt, cfg: &mut JuniperConfig) -> Result<(), ParseError> {
    for child in &protos.children {
        match child.keyword() {
            Some("bgp") => {
                let mut bgp = JuniperBgp {
                    local_as: cfg.autonomous_system,
                    groups: BTreeMap::new(),
                    span: child.span,
                };
                for g in child.find_all("group") {
                    let name = g
                        .args()
                        .first()
                        .ok_or_else(|| err(g, "group missing name"))?
                        .clone();
                    bgp.groups.insert(name, extract_bgp_group(g)?);
                }
                cfg.bgp = Some(bgp);
            }
            Some("ospf") => {
                cfg.ospf = Some(extract_ospf(child)?);
            }
            _ => {}
        }
    }
    Ok(())
}

fn policy_chain(stmt: &Stmt) -> Vec<String> {
    stmt.args().to_vec()
}

fn extract_bgp_group(g: &Stmt) -> Result<JuniperBgpGroup, ParseError> {
    let mut group = JuniperBgpGroup {
        internal: false,
        cluster: None,
        import: Vec::new(),
        export: Vec::new(),
        peer_as: None,
        neighbors: BTreeMap::new(),
        span: g.span,
    };
    for c in &g.children {
        match c.keyword() {
            Some("type") => {
                group.internal = c.args().first().map(String::as_str) == Some("internal");
            }
            Some("cluster") => {
                group.cluster = Some(parse_ip(
                    c.args()
                        .first()
                        .ok_or_else(|| err(c, "cluster missing id"))?,
                    c,
                )?);
            }
            Some("import") => group.import = policy_chain(c),
            Some("export") => group.export = policy_chain(c),
            Some("peer-as") => {
                group.peer_as = Some(parse_u32(
                    c.args().first().ok_or_else(|| err(c, "peer-as missing"))?,
                    c,
                    "peer-as",
                )?);
            }
            Some("neighbor") => {
                let addr = parse_ip(
                    c.args()
                        .first()
                        .ok_or_else(|| err(c, "neighbor missing address"))?,
                    c,
                )?;
                let mut nb = JuniperBgpNeighbor {
                    addr,
                    peer_as: None,
                    import: Vec::new(),
                    export: Vec::new(),
                    span: c.span,
                };
                for nc in &c.children {
                    match nc.keyword() {
                        Some("import") => nb.import = policy_chain(nc),
                        Some("export") => nb.export = policy_chain(nc),
                        Some("peer-as") => {
                            nb.peer_as = Some(parse_u32(
                                nc.args()
                                    .first()
                                    .ok_or_else(|| err(nc, "peer-as missing"))?,
                                nc,
                                "peer-as",
                            )?);
                        }
                        _ => {}
                    }
                }
                group.neighbors.insert(addr, nb);
            }
            _ => {}
        }
    }
    Ok(group)
}

fn extract_ospf(o: &Stmt) -> Result<JuniperOspf, ParseError> {
    let mut ospf = JuniperOspf {
        reference_bandwidth: None,
        export: Vec::new(),
        areas: BTreeMap::new(),
        span: o.span,
    };
    for c in &o.children {
        match c.keyword() {
            Some("reference-bandwidth") => {
                let v = c
                    .args()
                    .first()
                    .ok_or_else(|| err(c, "reference-bandwidth missing value"))?;
                ospf.reference_bandwidth = Some(parse_bandwidth(v, c)?);
            }
            Some("export") => ospf.export = policy_chain(c),
            Some("area") => {
                let area_tok = c.args().first().ok_or_else(|| err(c, "area missing id"))?;
                let area = parse_area(area_tok, c)?;
                let mut ifaces = Vec::new();
                for i in c.find_all("interface") {
                    let name = i
                        .args()
                        .first()
                        .ok_or_else(|| err(i, "interface missing name"))?
                        .clone();
                    let mut oi = JuniperOspfInterface {
                        name,
                        metric: None,
                        passive: false,
                        span: i.span,
                    };
                    if i.args().get(1).map(String::as_str) == Some("passive") {
                        oi.passive = true;
                    }
                    for ic in &i.children {
                        match ic.keyword() {
                            Some("metric") => {
                                oi.metric = Some(parse_u32(
                                    ic.args()
                                        .first()
                                        .ok_or_else(|| err(ic, "metric missing value"))?,
                                    ic,
                                    "metric",
                                )?);
                            }
                            Some("passive") => oi.passive = true,
                            _ => {}
                        }
                    }
                    ifaces.push(oi);
                }
                ospf.areas.entry(area).or_default().extend(ifaces);
            }
            _ => {}
        }
    }
    Ok(ospf)
}

/// Areas may be integers or dotted quads.
fn parse_area(tok: &str, stmt: &Stmt) -> Result<u32, ParseError> {
    if let Ok(v) = tok.parse::<u32>() {
        return Ok(v);
    }
    if let Ok(ip) = tok.parse::<Ipv4Addr>() {
        return Ok(u32::from(ip));
    }
    Err(err(stmt, format!("bad OSPF area {tok:?}")))
}

/// Bandwidths accept `1g`, `100m`, `10k` suffixes; plain numbers are bps.
fn parse_bandwidth(tok: &str, stmt: &Stmt) -> Result<u64, ParseError> {
    let (digits, mult) = match tok.chars().last() {
        Some('g') | Some('G') => (&tok[..tok.len() - 1], 1_000_000_000),
        Some('m') | Some('M') => (&tok[..tok.len() - 1], 1_000_000),
        Some('k') | Some('K') => (&tok[..tok.len() - 1], 1_000),
        _ => (tok, 1),
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| err(stmt, format!("bad bandwidth {tok:?}")))
}

fn extract_interfaces(ifs: &Stmt, cfg: &mut JuniperConfig) -> Result<(), ParseError> {
    for i in &ifs.children {
        let Some(name) = i.keyword() else { continue };
        let mut iface = JuniperInterface {
            name: name.to_string(),
            disabled: false,
            description: None,
            units: BTreeMap::new(),
            span: i.span,
        };
        for c in &i.children {
            match c.keyword() {
                Some("disable") => iface.disabled = true,
                Some("description") => {
                    iface.description = c.args().first().cloned();
                }
                Some("unit") => {
                    let unit_no = c
                        .args()
                        .first()
                        .and_then(|v| v.parse::<u32>().ok())
                        .ok_or_else(|| err(c, "bad unit number"))?;
                    let mut unit = JuniperUnit {
                        unit: unit_no,
                        address: None,
                        filter_in: None,
                        filter_out: None,
                        span: c.span,
                    };
                    if let Some(fam) = c.find("family") {
                        if fam.args().first().map(String::as_str) == Some("inet") {
                            for fc in &fam.children {
                                match fc.keyword() {
                                    Some("address") => {
                                        let a = fc
                                            .args()
                                            .first()
                                            .ok_or_else(|| err(fc, "address missing value"))?;
                                        let (ip_s, len_s) = a.split_once('/').ok_or_else(|| {
                                            err(fc, "interface address needs /len")
                                        })?;
                                        let ip = parse_ip(ip_s, fc)?;
                                        let len: u8 = len_s
                                            .parse()
                                            .map_err(|_| err(fc, "bad address length"))?;
                                        unit.address = Some((ip, Prefix::new(ip, len)));
                                    }
                                    Some("filter") => {
                                        for f in &fc.children {
                                            match f.keyword() {
                                                Some("input") => {
                                                    unit.filter_in = f.args().first().cloned()
                                                }
                                                Some("output") => {
                                                    unit.filter_out = f.args().first().cloned()
                                                }
                                                _ => {}
                                            }
                                        }
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    iface.units.insert(unit_no, unit);
                }
                _ => {}
            }
        }
        cfg.interfaces.insert(name.to_string(), iface);
    }
    Ok(())
}
