//! The generic JunOS statement tree.
//!
//! Grammar (whitespace-separated tokens; `#` and `/* */` comments ignored):
//!
//! ```text
//! config    := statement*
//! statement := words ';'            (leaf)
//!            | words '{' config '}' (stanza)
//! words     := (WORD | '[' WORD* ']')+
//! ```
//!
//! Bracketed lists are flattened into the word sequence (the extraction
//! layer knows the arity of each keyword), so
//! `members [ 10:10 10:11 ];` yields the words `members 10:10 10:11`.

use crate::error::ParseError;
use crate::span::Span;

/// One statement in the tree: its words, its children (empty for leaves)
/// and the source span it covers (including the closing brace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The statement's tokens, with bracket groups flattened.
    pub words: Vec<String>,
    /// Child statements for `{ ... }` stanzas.
    pub children: Vec<Stmt>,
    /// Lines covered by the whole statement.
    pub span: Span,
}

impl Stmt {
    /// True when the statement has no children (ends with `;`).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// First word, if any.
    pub fn keyword(&self) -> Option<&str> {
        self.words.first().map(String::as_str)
    }

    /// Children whose first word equals `kw`.
    pub fn find_all<'a>(&'a self, kw: &'a str) -> impl Iterator<Item = &'a Stmt> + 'a {
        self.children
            .iter()
            .filter(move |c| c.keyword() == Some(kw))
    }

    /// The unique child starting with `kw`, if present.
    pub fn find(&self, kw: &str) -> Option<&Stmt> {
        self.children.iter().find(|c| c.keyword() == Some(kw))
    }

    /// Words after the keyword.
    pub fn args(&self) -> &[String] {
        if self.words.is_empty() {
            &[]
        } else {
            &self.words[1..]
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    LBrace,
    RBrace,
    Semi,
    LBracket,
    RBracket,
}

/// Tokenize JunOS text, tracking the line of every token.
fn lex(text: &str) -> Result<Vec<(u32, Tok)>, ParseError> {
    let mut toks = Vec::new();
    let mut in_block_comment = false;
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i as u32 + 1;
        let mut rest = raw_line;
        loop {
            if in_block_comment {
                match rest.find("*/") {
                    Some(p) => {
                        in_block_comment = false;
                        rest = &rest[p + 2..];
                    }
                    None => break,
                }
            }
            rest = rest.trim_start();
            if rest.is_empty() || rest.starts_with('#') {
                break;
            }
            if rest.starts_with("/*") {
                in_block_comment = true;
                rest = &rest[2..];
                continue;
            }
            let c = rest.chars().next().expect("nonempty");
            let single = match c {
                '{' => Some(Tok::LBrace),
                '}' => Some(Tok::RBrace),
                ';' => Some(Tok::Semi),
                '[' => Some(Tok::LBracket),
                ']' => Some(Tok::RBracket),
                _ => None,
            };
            if let Some(t) = single {
                toks.push((line_no, t));
                rest = &rest[1..];
                continue;
            }
            if c == '"' {
                // Quoted word (descriptions, regexes with spaces).
                match rest[1..].find('"') {
                    Some(p) => {
                        toks.push((line_no, Tok::Word(rest[1..1 + p].to_string())));
                        rest = &rest[p + 2..];
                    }
                    None => {
                        return Err(ParseError::at(line_no, "unterminated string"));
                    }
                }
                continue;
            }
            // A bare word runs to the next delimiter or whitespace.
            let end = rest
                .find(|ch: char| ch.is_whitespace() || "{};[]#\"".contains(ch))
                .unwrap_or(rest.len());
            toks.push((line_no, Tok::Word(rest[..end].to_string())));
            rest = &rest[end..];
        }
    }
    if in_block_comment {
        return Err(ParseError::file("unterminated block comment"));
    }
    Ok(toks)
}

/// Parse JunOS text into a list of top-level statements.
pub fn parse_tree(text: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = lex(text)?;
    let mut pos = 0;
    let stmts = parse_stmts(&toks, &mut pos)?;
    if pos != toks.len() {
        let (line, _) = toks[pos];
        return Err(ParseError::at(line, "unexpected '}'"));
    }
    Ok(stmts)
}

fn parse_stmts(toks: &[(u32, Tok)], pos: &mut usize) -> Result<Vec<Stmt>, ParseError> {
    let mut stmts = Vec::new();
    while let Some((line, tok)) = toks.get(*pos) {
        match tok {
            Tok::RBrace => break,
            Tok::Semi => {
                // Stray semicolon: tolerate.
                *pos += 1;
            }
            Tok::Word(_) | Tok::LBracket => {
                stmts.push(parse_stmt(toks, pos)?);
            }
            Tok::LBrace => {
                return Err(ParseError::at(*line, "'{' without a preceding keyword"));
            }
            Tok::RBracket => {
                return Err(ParseError::at(*line, "']' without matching '['"));
            }
        }
    }
    Ok(stmts)
}

fn parse_stmt(toks: &[(u32, Tok)], pos: &mut usize) -> Result<Stmt, ParseError> {
    let start_line = toks[*pos].0;
    let mut words = Vec::new();
    loop {
        match toks.get(*pos) {
            Some((_, Tok::Word(w))) => {
                words.push(w.clone());
                *pos += 1;
            }
            Some((line, Tok::LBracket)) => {
                *pos += 1;
                loop {
                    match toks.get(*pos) {
                        Some((_, Tok::Word(w))) => {
                            words.push(w.clone());
                            *pos += 1;
                        }
                        Some((_, Tok::RBracket)) => {
                            *pos += 1;
                            break;
                        }
                        Some((l, other)) => {
                            return Err(ParseError::at(
                                *l,
                                format!("unexpected {other:?} inside '[' list"),
                            ));
                        }
                        None => return Err(ParseError::at(*line, "unterminated '[' list")),
                    }
                }
            }
            Some((line, Tok::Semi)) => {
                *pos += 1;
                return Ok(Stmt {
                    words,
                    children: Vec::new(),
                    span: Span::lines(start_line, *line),
                });
            }
            Some((line, Tok::LBrace)) => {
                *pos += 1;
                let children = parse_stmts(toks, pos)?;
                match toks.get(*pos) {
                    Some((end_line, Tok::RBrace)) => {
                        let end = *end_line;
                        *pos += 1;
                        return Ok(Stmt {
                            words,
                            children,
                            span: Span::lines(start_line, end),
                        });
                    }
                    _ => return Err(ParseError::at(*line, "unterminated '{' block")),
                }
            }
            Some((line, Tok::RBrace)) => {
                return Err(ParseError::at(*line, "statement missing ';' before '}'"));
            }
            Some((line, Tok::RBracket)) => {
                return Err(ParseError::at(*line, "']' without matching '['"));
            }
            None => {
                return Err(ParseError::at(
                    start_line,
                    "statement missing ';' at end of input",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_stanza() {
        let stmts = parse_tree("system { host-name border1; }").unwrap();
        assert_eq!(stmts.len(), 1);
        assert_eq!(stmts[0].words, vec!["system"]);
        let hn = &stmts[0].children[0];
        assert_eq!(hn.words, vec!["host-name", "border1"]);
        assert!(hn.is_leaf());
    }

    #[test]
    fn bracket_lists_flatten() {
        let stmts = parse_tree("community COMM members [ 10:10 10:11 ];").unwrap();
        assert_eq!(
            stmts[0].words,
            vec!["community", "COMM", "members", "10:10", "10:11"]
        );
    }

    #[test]
    fn spans_cover_blocks() {
        let text = "policy-statement POL {\n  term rule1 {\n    then reject;\n  }\n}\n";
        let stmts = parse_tree(text).unwrap();
        assert_eq!(stmts[0].span, Span::lines(1, 5));
        let term = &stmts[0].children[0];
        assert_eq!(term.span, Span::lines(2, 4));
    }

    #[test]
    fn comments_ignored() {
        let text = "# a comment\nrouting-options {\n /* block\n comment */ static { route 0.0.0.0/0 next-hop 10.0.0.1; }\n}\n";
        let stmts = parse_tree(text).unwrap();
        assert_eq!(stmts[0].words, vec!["routing-options"]);
        let st = &stmts[0].children[0];
        assert_eq!(st.words, vec!["static"]);
    }

    #[test]
    fn quoted_words() {
        let stmts = parse_tree("description \"to core router\";").unwrap();
        assert_eq!(stmts[0].words, vec!["description", "to core router"]);
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_tree("foo {\nbar\n}").unwrap_err();
        assert_eq!(err.line, 3, "missing semicolon detected at closing brace");
        assert!(parse_tree("a b c").is_err(), "missing terminator");
        assert!(parse_tree("}").is_err());
    }

    #[test]
    fn find_helpers() {
        let stmts = parse_tree("a { b 1; b 2; c 3; }").unwrap();
        let a = &stmts[0];
        assert_eq!(a.find_all("b").count(), 2);
        assert_eq!(a.find("c").unwrap().args(), &["3".to_string()]);
        assert!(a.find("d").is_none());
    }
}
