//! The Juniper JunOS abstract syntax tree (typed view).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use campion_net::{Community, IpProtocol, PortRange, Prefix};

use crate::span::{SourceText, Span};

/// A `policy-options prefix-list NAME { ... }` definition. Juniper prefix
/// lists match **exact** prefixes unless qualified at the use site
/// (`prefix-list-filter NAME orlonger`); this exact-match default versus
/// Cisco's `le 32` style is the first bug of the paper's Figure 1.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JuniperPrefixList {
    /// The listed prefixes, in order, each with its own line.
    pub prefixes: Vec<(Prefix, Span)>,
    /// Span of the whole definition.
    pub span: Span,
}

/// A `policy-options community NAME ...` definition.
///
/// `members [ 10:10 10:11 ]` requires a route to carry **all** listed
/// communities — the "all vs any" semantics gap behind Figure 1's second
/// bug. A member containing regex metacharacters makes this a regex match
/// instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JuniperCommunity {
    /// Literal members (conjunctive), when all members are literal.
    pub members: Vec<Community>,
    /// Regex members (Juniper treats each as a pattern over the set).
    pub regexes: Vec<String>,
    /// Span of the definition.
    pub span: Span,
}

/// Match qualifier for `route-filter` and `prefix-list-filter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteFilterModifier {
    /// `exact`: only the prefix itself.
    Exact,
    /// `orlonger`: the prefix and all more-specifics.
    OrLonger,
    /// `longer`: strictly more-specific prefixes.
    Longer,
    /// `upto /N`: lengths from the prefix's own up to `N`.
    Upto(u8),
    /// `prefix-length-range /A-/B`.
    PrefixLengthRange(u8, u8),
}

/// One `from` condition inside a policy term. Conditions of different kinds
/// are conjunctive; multiple route filters are disjunctive (JunOS semantics,
/// mirroring Cisco route maps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromClause {
    /// `from prefix-list NAME;` — exact-match against the list.
    PrefixList(String),
    /// `from prefix-list-filter NAME MODIFIER;`.
    PrefixListFilter(String, RouteFilterModifier),
    /// `from route-filter P MODIFIER;`.
    RouteFilter(Prefix, RouteFilterModifier),
    /// `from community NAME;` (or `[ N1 N2 ]`, disjunctive).
    Community(Vec<String>),
    /// `from protocol NAME;` (bgp, ospf, static, direct...).
    Protocol(Vec<String>),
    /// `from tag N;`.
    Tag(u32),
    /// `from metric N;`.
    Metric(u32),
}

/// One `then` action inside a policy term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThenClause {
    /// `then accept;` — terminal.
    Accept,
    /// `then reject;` — terminal.
    Reject,
    /// `then next term;`.
    NextTerm,
    /// `then next policy;`.
    NextPolicy,
    /// `then local-preference N;`.
    LocalPreference(u32),
    /// `then metric N;`.
    Metric(u32),
    /// `then community add NAME;`.
    CommunityAdd(String),
    /// `then community set NAME;`.
    CommunitySet(String),
    /// `then community delete NAME;`.
    CommunityDelete(String),
    /// `then next-hop A.B.C.D;` (`self` is represented as `None`).
    NextHop(Option<Ipv4Addr>),
    /// `then tag N;`.
    Tag(u32),
}

/// One `term NAME { from ...; then ...; }` inside a policy statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyTerm {
    /// Term name (synthesized `__anonymous` for unnamed terms).
    pub name: String,
    /// Conjunction of from-conditions (empty = match everything).
    pub from: Vec<FromClause>,
    /// Actions in order.
    pub then: Vec<ThenClause>,
    /// Source span of the term.
    pub span: Span,
}

/// A `policy-options policy-statement NAME { term...; }`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicyStatement {
    /// Terms in order, first terminal match wins.
    pub terms: Vec<PolicyTerm>,
    /// Span of the whole statement.
    pub span: Span,
}

/// The `from` side of a firewall-filter term (conditions are conjunctive;
/// values within one condition are disjunctive).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FilterFrom {
    /// `source-address` prefixes.
    pub src_addrs: Vec<Prefix>,
    /// `destination-address` prefixes.
    pub dst_addrs: Vec<Prefix>,
    /// `protocol` selectors.
    pub protocols: Vec<IpProtocol>,
    /// `source-port` ranges.
    pub src_ports: Vec<PortRange>,
    /// `destination-port` ranges.
    pub dst_ports: Vec<PortRange>,
}

/// Terminal action of a firewall-filter term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterAction {
    /// `then accept;`
    Accept,
    /// `then discard;` / `then reject;`
    Discard,
}

/// One `term NAME { from {...} then ...; }` of a firewall filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterTerm {
    /// Term name.
    pub name: String,
    /// Match conditions.
    pub from: FilterFrom,
    /// Action (defaults to accept when only counters are configured).
    pub action: FilterAction,
    /// Source span.
    pub span: Span,
}

/// A `firewall family inet filter NAME` definition. Implicit final discard.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FirewallFilter {
    /// Terms in order.
    pub terms: Vec<FilterTerm>,
    /// Span of the filter.
    pub span: Span,
}

/// A `routing-options static route ...` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JuniperStaticRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop address (`None` for discard/reject routes).
    pub next_hop: Option<Ipv4Addr>,
    /// `preference` — JunOS's administrative distance (default 5).
    pub preference: u8,
    /// `tag`.
    pub tag: Option<u32>,
    /// Whether this is a `discard`/`reject` route.
    pub discard: bool,
    /// Source span.
    pub span: Span,
}

/// One BGP neighbor inside a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JuniperBgpNeighbor {
    /// Neighbor address.
    pub addr: Ipv4Addr,
    /// `peer-as`.
    pub peer_as: Option<u32>,
    /// Neighbor-level `import` policy chain (overrides the group's).
    pub import: Vec<String>,
    /// Neighbor-level `export` policy chain (overrides the group's).
    pub export: Vec<String>,
    /// Source span.
    pub span: Span,
}

/// A `protocols bgp group NAME { ... }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JuniperBgpGroup {
    /// `type internal|external`.
    pub internal: bool,
    /// `cluster ID` — makes neighbors route-reflector clients.
    pub cluster: Option<Ipv4Addr>,
    /// Group-level import chain.
    pub import: Vec<String>,
    /// Group-level export chain.
    pub export: Vec<String>,
    /// `peer-as` at group level.
    pub peer_as: Option<u32>,
    /// Neighbors by address.
    pub neighbors: BTreeMap<Ipv4Addr, JuniperBgpNeighbor>,
    /// Source span.
    pub span: Span,
}

/// The `protocols bgp` stanza.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JuniperBgp {
    /// Local AS (`routing-options autonomous-system`).
    pub local_as: Option<u32>,
    /// Groups by name.
    pub groups: BTreeMap<String, JuniperBgpGroup>,
    /// Span of the bgp stanza.
    pub span: Span,
}

impl JuniperBgp {
    /// Effective import chain for a neighbor (neighbor-level wins).
    pub fn effective_import(&self, addr: Ipv4Addr) -> Option<(&JuniperBgpGroup, Vec<String>)> {
        for g in self.groups.values() {
            if let Some(n) = g.neighbors.get(&addr) {
                let chain = if n.import.is_empty() {
                    g.import.clone()
                } else {
                    n.import.clone()
                };
                return Some((g, chain));
            }
        }
        None
    }

    /// Effective export chain for a neighbor (neighbor-level wins).
    pub fn effective_export(&self, addr: Ipv4Addr) -> Option<(&JuniperBgpGroup, Vec<String>)> {
        for g in self.groups.values() {
            if let Some(n) = g.neighbors.get(&addr) {
                let chain = if n.export.is_empty() {
                    g.export.clone()
                } else {
                    n.export.clone()
                };
                return Some((g, chain));
            }
        }
        None
    }

    /// All neighbors across groups.
    pub fn neighbors(
        &self,
    ) -> impl Iterator<Item = (&String, &JuniperBgpGroup, &JuniperBgpNeighbor)> {
        self.groups
            .iter()
            .flat_map(|(name, g)| g.neighbors.values().map(move |n| (name, g, n)))
    }
}

/// One OSPF interface inside an area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JuniperOspfInterface {
    /// Interface name (`ge-0/0/0.0`).
    pub name: String,
    /// `metric N`.
    pub metric: Option<u32>,
    /// `passive;`.
    pub passive: bool,
    /// Source span.
    pub span: Span,
}

/// The `protocols ospf` stanza.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JuniperOspf {
    /// `reference-bandwidth` in bps.
    pub reference_bandwidth: Option<u64>,
    /// Export policy chain (route redistribution into OSPF).
    pub export: Vec<String>,
    /// Interfaces per area id.
    pub areas: BTreeMap<u32, Vec<JuniperOspfInterface>>,
    /// Span.
    pub span: Span,
}

/// A logical interface unit with its inet configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JuniperUnit {
    /// Unit number.
    pub unit: u32,
    /// `family inet address P` (address with prefix length).
    pub address: Option<(Ipv4Addr, Prefix)>,
    /// `family inet filter input NAME`.
    pub filter_in: Option<String>,
    /// `family inet filter output NAME`.
    pub filter_out: Option<String>,
    /// Span of the unit stanza.
    pub span: Span,
}

/// A physical interface and its units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JuniperInterface {
    /// Interface name (`ge-0/0/1`).
    pub name: String,
    /// `disable;` present.
    pub disabled: bool,
    /// Description.
    pub description: Option<String>,
    /// Units by number.
    pub units: BTreeMap<u32, JuniperUnit>,
    /// Span of the whole stanza.
    pub span: Span,
}

/// A parsed Juniper JunOS configuration.
#[derive(Debug, Clone)]
pub struct JuniperConfig {
    /// `system host-name`.
    pub hostname: String,
    /// Prefix lists by name.
    pub prefix_lists: BTreeMap<String, JuniperPrefixList>,
    /// Community definitions by name.
    pub communities: BTreeMap<String, JuniperCommunity>,
    /// Policy statements by name.
    pub policies: BTreeMap<String, PolicyStatement>,
    /// Firewall filters (family inet) by name.
    pub filters: BTreeMap<String, FirewallFilter>,
    /// Static routes in order.
    pub static_routes: Vec<JuniperStaticRoute>,
    /// Local AS number.
    pub autonomous_system: Option<u32>,
    /// Router id (`routing-options router-id`).
    pub router_id: Option<Ipv4Addr>,
    /// BGP configuration.
    pub bgp: Option<JuniperBgp>,
    /// OSPF configuration.
    pub ospf: Option<JuniperOspf>,
    /// Interfaces by name.
    pub interfaces: BTreeMap<String, JuniperInterface>,
    /// The original text, for snippet extraction.
    pub source: SourceText,
}

impl JuniperConfig {
    /// Quote the configuration text for a span (text localization).
    pub fn snippet(&self, span: Span) -> String {
        self.source.snippet_dedented(span)
    }
}
