//! Tests for the Juniper JunOS extraction, anchored on the paper's Figure 1(b).

use campion_net::{Community, IpProtocol, PortRange};

use super::ast::*;
use super::parse_juniper;
use crate::span::Span;

use crate::samples::FIGURE1_JUNIPER;

#[test]
fn figure1_juniper_parses() {
    let cfg = parse_juniper(FIGURE1_JUNIPER).unwrap();

    let nets = &cfg.prefix_lists["NETS"];
    assert_eq!(nets.prefixes.len(), 2);
    assert_eq!(nets.prefixes[0].0.to_string(), "10.9.0.0/16");
    assert_eq!(nets.prefixes[0].1, Span::line(3));

    let comm = &cfg.communities["COMM"];
    assert_eq!(
        comm.members,
        vec![Community::new(10, 10), Community::new(10, 11)],
        "members [...] is a conjunction of two communities"
    );
    assert!(comm.regexes.is_empty());

    let pol = &cfg.policies["POL"];
    assert_eq!(pol.terms.len(), 3);
    assert_eq!(pol.terms[0].name, "rule1");
    assert_eq!(
        pol.terms[0].from,
        vec![FromClause::PrefixList("NETS".into())]
    );
    assert_eq!(pol.terms[0].then, vec![ThenClause::Reject]);
    assert_eq!(
        pol.terms[1].from,
        vec![FromClause::Community(vec!["COMM".into()])]
    );
    let rule3 = &pol.terms[2];
    assert!(rule3.from.is_empty());
    assert_eq!(
        rule3.then,
        vec![ThenClause::LocalPreference(30), ThenClause::Accept]
    );
    assert_eq!(rule3.span, Span::lines(16, 21));
}

#[test]
fn figure1_snippets_match_source() {
    let cfg = parse_juniper(FIGURE1_JUNIPER).unwrap();
    let rule3 = &cfg.policies["POL"].terms[2];
    let snippet = cfg.snippet(rule3.span);
    assert!(snippet.starts_with("term rule3 {"));
    assert!(snippet.contains("local-preference 30;"));
    assert!(snippet.trim_end().ends_with('}'));
}

#[test]
fn route_filters_and_modifiers() {
    let cfg = parse_juniper(
        "policy-options {
            policy-statement P {
                term t1 {
                    from {
                        route-filter 10.0.0.0/8 orlonger;
                        route-filter 10.64.0.0/16 exact;
                        route-filter 172.16.0.0/12 upto /24;
                        route-filter 192.168.0.0/16 prefix-length-range /24-/28;
                        route-filter 11.0.0.0/8 longer;
                    }
                    then accept;
                }
            }
        }",
    )
    .unwrap();
    let from = &cfg.policies["P"].terms[0].from;
    assert_eq!(from.len(), 5);
    assert!(matches!(
        from[0],
        FromClause::RouteFilter(_, RouteFilterModifier::OrLonger)
    ));
    assert!(matches!(
        from[1],
        FromClause::RouteFilter(_, RouteFilterModifier::Exact)
    ));
    assert!(matches!(
        from[2],
        FromClause::RouteFilter(_, RouteFilterModifier::Upto(24))
    ));
    assert!(matches!(
        from[3],
        FromClause::RouteFilter(_, RouteFilterModifier::PrefixLengthRange(24, 28))
    ));
    assert!(matches!(
        from[4],
        FromClause::RouteFilter(_, RouteFilterModifier::Longer)
    ));
}

#[test]
fn prefix_list_filter_modifiers() {
    let cfg = parse_juniper(
        "policy-options {
            prefix-list NETS { 10.9.0.0/16; }
            policy-statement P {
                term t {
                    from prefix-list-filter NETS orlonger;
                    then reject;
                }
            }
        }",
    )
    .unwrap();
    assert_eq!(
        cfg.policies["P"].terms[0].from,
        vec![FromClause::PrefixListFilter(
            "NETS".into(),
            RouteFilterModifier::OrLonger
        )]
    );
}

#[test]
fn policy_then_actions() {
    let cfg = parse_juniper(
        "policy-options {
            policy-statement P {
                term t {
                    then {
                        metric 120;
                        community add TAG1;
                        community set ONLY;
                        community delete OLD;
                        next-hop self;
                        next-hop 192.0.2.7;
                        tag 99;
                        next term;
                    }
                }
                term u {
                    then next policy;
                }
            }
        }",
    )
    .unwrap();
    let then = &cfg.policies["P"].terms[0].then;
    assert_eq!(then[0], ThenClause::Metric(120));
    assert_eq!(then[1], ThenClause::CommunityAdd("TAG1".into()));
    assert_eq!(then[2], ThenClause::CommunitySet("ONLY".into()));
    assert_eq!(then[3], ThenClause::CommunityDelete("OLD".into()));
    assert_eq!(then[4], ThenClause::NextHop(None));
    assert_eq!(
        then[5],
        ThenClause::NextHop(Some("192.0.2.7".parse().unwrap()))
    );
    assert_eq!(then[6], ThenClause::Tag(99));
    assert_eq!(then[7], ThenClause::NextTerm);
    assert_eq!(
        cfg.policies["P"].terms[1].then,
        vec![ThenClause::NextPolicy]
    );
}

#[test]
fn community_regex_members() {
    let cfg = parse_juniper(
        "policy-options {
            community RX members \"^65000:.*$\";
            community MIX members [ 10:10 ^100:.*$ ];
        }",
    )
    .unwrap();
    assert_eq!(cfg.communities["RX"].regexes, vec!["^65000:.*$"]);
    let mix = &cfg.communities["MIX"];
    assert_eq!(mix.members, vec![Community::new(10, 10)]);
    assert_eq!(mix.regexes, vec!["^100:.*$"]);
}

#[test]
fn firewall_filter() {
    let cfg = parse_juniper(
        "firewall {
            family inet {
                filter VM_FILTER {
                    term permit_whitelist {
                        from {
                            source-address {
                                9.140.0.0/23;
                            }
                            protocol tcp;
                            destination-port [ 443 8000-8080 ];
                        }
                        then accept;
                    }
                    term deny_rest {
                        then discard;
                    }
                }
            }
        }",
    )
    .unwrap();
    let f = &cfg.filters["VM_FILTER"];
    assert_eq!(f.terms.len(), 2);
    let t0 = &f.terms[0];
    assert_eq!(t0.name, "permit_whitelist");
    assert_eq!(t0.from.src_addrs[0].to_string(), "9.140.0.0/23");
    assert_eq!(t0.from.protocols, vec![IpProtocol::Tcp]);
    assert_eq!(
        t0.from.dst_ports,
        vec![PortRange::exact(443), PortRange::new(8000, 8080)]
    );
    assert_eq!(t0.action, FilterAction::Accept);
    assert_eq!(f.terms[1].action, FilterAction::Discard);
}

#[test]
fn static_routes_both_forms() {
    let cfg = parse_juniper(
        "routing-options {
            static {
                route 10.1.1.2/31 next-hop 10.2.2.2;
                route 10.5.0.0/16 {
                    next-hop 10.2.2.9;
                    preference 200;
                    tag 77;
                }
                route 192.0.2.0/24 discard;
            }
            autonomous-system 65001;
            router-id 192.0.2.1;
        }",
    )
    .unwrap();
    assert_eq!(cfg.static_routes.len(), 3);
    let r0 = &cfg.static_routes[0];
    assert_eq!(r0.prefix.to_string(), "10.1.1.2/31");
    assert_eq!(r0.next_hop.unwrap().to_string(), "10.2.2.2");
    assert_eq!(r0.preference, 5, "JunOS default static preference");
    let r1 = &cfg.static_routes[1];
    assert_eq!(r1.preference, 200);
    assert_eq!(r1.tag, Some(77));
    assert!(cfg.static_routes[2].discard);
    assert_eq!(cfg.autonomous_system, Some(65001));
    assert_eq!(cfg.router_id.unwrap().to_string(), "192.0.2.1");
}

#[test]
fn bgp_groups_and_neighbors() {
    let cfg = parse_juniper(
        "routing-options { autonomous-system 65001; }
        protocols {
            bgp {
                group ibgp {
                    type internal;
                    cluster 192.0.2.1;
                    export [ EXP1 EXP2 ];
                    neighbor 10.0.0.3;
                    neighbor 10.0.0.4 {
                        import CUSTOM_IN;
                        peer-as 65001;
                    }
                }
                group ebgp {
                    type external;
                    peer-as 65002;
                    import IMP;
                    export EXP;
                    neighbor 10.0.1.2;
                }
            }
        }",
    )
    .unwrap();
    let bgp = cfg.bgp.unwrap();
    assert_eq!(bgp.local_as, Some(65001));
    let ibgp = &bgp.groups["ibgp"];
    assert!(ibgp.internal);
    assert_eq!(ibgp.cluster.unwrap().to_string(), "192.0.2.1");
    assert_eq!(ibgp.export, vec!["EXP1", "EXP2"]);
    // Effective chains: neighbor-level overrides group-level.
    let (_, import) = bgp.effective_import("10.0.0.4".parse().unwrap()).unwrap();
    assert_eq!(import, vec!["CUSTOM_IN"]);
    let (_, export) = bgp.effective_export("10.0.0.4".parse().unwrap()).unwrap();
    assert_eq!(export, vec!["EXP1", "EXP2"]);
    let (g, import) = bgp.effective_import("10.0.1.2".parse().unwrap()).unwrap();
    assert!(!g.internal);
    assert_eq!(import, vec!["IMP"]);
    assert_eq!(bgp.neighbors().count(), 3);
}

#[test]
fn ospf_areas_and_interfaces() {
    let cfg = parse_juniper(
        "protocols {
            ospf {
                reference-bandwidth 100g;
                export STATIC_TO_OSPF;
                area 0.0.0.0 {
                    interface ge-0/0/0.0 {
                        metric 250;
                    }
                    interface lo0.0 passive;
                }
                area 0.0.0.1 {
                    interface ge-0/0/1.0;
                }
            }
        }",
    )
    .unwrap();
    let ospf = cfg.ospf.unwrap();
    assert_eq!(ospf.reference_bandwidth, Some(100_000_000_000));
    assert_eq!(ospf.export, vec!["STATIC_TO_OSPF"]);
    let area0 = &ospf.areas[&0];
    assert_eq!(area0.len(), 2);
    assert_eq!(area0[0].metric, Some(250));
    assert!(area0[1].passive);
    assert!(ospf.areas.contains_key(&1));
}

#[test]
fn interfaces_with_units() {
    let cfg = parse_juniper(
        "interfaces {
            ge-0/0/1 {
                description \"uplink to core\";
                unit 0 {
                    family inet {
                        address 10.0.12.2/24;
                        filter {
                            input EDGE_IN;
                            output EDGE_OUT;
                        }
                    }
                }
            }
            lo0 {
                disable;
                unit 0 {
                    family inet {
                        address 192.0.2.2/32;
                    }
                }
            }
        }",
    )
    .unwrap();
    let ge = &cfg.interfaces["ge-0/0/1"];
    assert_eq!(ge.description.as_deref(), Some("uplink to core"));
    let u0 = &ge.units[&0];
    assert_eq!(u0.address.unwrap().1.to_string(), "10.0.12.0/24");
    assert_eq!(u0.filter_in.as_deref(), Some("EDGE_IN"));
    assert_eq!(u0.filter_out.as_deref(), Some("EDGE_OUT"));
    assert!(cfg.interfaces["lo0"].disabled);
}

#[test]
fn errors_carry_line_numbers() {
    let err = parse_juniper(
        "policy-options {
            policy-statement P {
                term t {
                    from frobnicate X;
                    then accept;
                }
            }
        }",
    )
    .unwrap_err();
    assert_eq!(err.line, 4);
    assert!(err.message.contains("frobnicate"));
}

#[test]
fn hostname_extracted() {
    let cfg = parse_juniper("system { host-name border-2; }").unwrap();
    assert_eq!(cfg.hostname, "border-2");
}
