//! Vendor detection and the unified parse entry point.

use crate::cisco::{parse_cisco, CiscoConfig};
use crate::error::ParseError;
use crate::juniper::{parse_juniper, JuniperConfig};
use crate::span::Vendor;

/// A parsed configuration in either supported vendor format.
#[derive(Debug, Clone)]
pub enum VendorConfig {
    /// Cisco IOS.
    Cisco(CiscoConfig),
    /// Juniper JunOS.
    Juniper(JuniperConfig),
}

impl VendorConfig {
    /// The vendor of this configuration.
    pub fn vendor(&self) -> Vendor {
        match self {
            VendorConfig::Cisco(_) => Vendor::CiscoIos,
            VendorConfig::Juniper(_) => Vendor::JuniperJunos,
        }
    }

    /// The configured hostname (empty when absent).
    pub fn hostname(&self) -> &str {
        match self {
            VendorConfig::Cisco(c) => &c.hostname,
            VendorConfig::Juniper(j) => &j.hostname,
        }
    }
}

/// Guess the vendor of a configuration from its syntax.
///
/// JunOS configs are brace-structured; IOS configs are flat command lines.
/// The heuristic counts unambiguous markers of each style and is reliable
/// for any non-trivial config.
pub fn detect_vendor(text: &str) -> Vendor {
    let mut juniper_score = 0i32;
    let mut cisco_score = 0i32;
    for line in text.lines() {
        let t = line.trim();
        if t.ends_with('{') || t == "}" || (t.ends_with(';') && !t.starts_with('!')) {
            juniper_score += 1;
        }
        let first = t.split_whitespace().next().unwrap_or("");
        match first {
            "route-map" | "access-list" | "hostname" => cisco_score += 2,
            "ip" | "router" | "interface" => cisco_score += 1,
            "policy-options" | "policy-statement" | "routing-options" | "protocols"
            | "firewall" | "system" => juniper_score += 2,
            _ => {}
        }
    }
    if juniper_score > cisco_score {
        Vendor::JuniperJunos
    } else {
        Vendor::CiscoIos
    }
}

/// Parse a configuration, auto-detecting the vendor.
pub fn parse_config(text: &str) -> Result<VendorConfig, ParseError> {
    campion_trace::span!("cfg.parse");
    match detect_vendor(text) {
        Vendor::CiscoIos => parse_cisco(text).map(VendorConfig::Cisco),
        Vendor::JuniperJunos => parse_juniper(text).map(VendorConfig::Juniper),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_cisco() {
        let text = "hostname r1\nip route 10.0.0.0 255.0.0.0 10.1.1.1\nroute-map X permit 10\n";
        assert_eq!(detect_vendor(text), Vendor::CiscoIos);
        assert!(matches!(parse_config(text), Ok(VendorConfig::Cisco(_))));
    }

    #[test]
    fn detects_juniper() {
        let text =
            "system { host-name r2; }\npolicy-options {\n  prefix-list P { 10.0.0.0/8; }\n}\n";
        assert_eq!(detect_vendor(text), Vendor::JuniperJunos);
        let cfg = parse_config(text).unwrap();
        assert_eq!(cfg.vendor(), Vendor::JuniperJunos);
        assert_eq!(cfg.hostname(), "r2");
    }

    #[test]
    fn figure1_pair_detects_correctly() {
        assert_eq!(
            detect_vendor(crate::samples::FIGURE1_CISCO),
            Vendor::CiscoIos
        );
        assert_eq!(
            detect_vendor(crate::samples::FIGURE1_JUNIPER),
            Vendor::JuniperJunos
        );
    }
}
