//! # campion-cfg — router configuration parsers
//!
//! Hand-written parsers for the two vendor formats the paper's tool can
//! fully localize: **Cisco IOS** (line-oriented) and **Juniper JunOS**
//! (hierarchical braces). This crate plays the role Batfish's parsing
//! front-end plays for the original Campion: it turns raw configuration text
//! into vendor ASTs, and every AST element carries a [`Span`] back into the
//! original text so that *text localization* can print the exact lines
//! responsible for a behavioral difference.
//!
//! The supported feature set is the one Campion analyzes (Table 1 of the
//! paper): prefix lists, community lists, ACLs / firewall filters, route
//! maps / policy statements, static routes, BGP neighbor configuration,
//! OSPF interface configuration, and administrative distances.
//!
//! ```
//! use campion_cfg::{parse_config, VendorConfig};
//! let cfg = parse_config("\
//! hostname r1
//! ip route 10.1.1.2 255.255.255.254 10.2.2.2
//! ").unwrap();
//! match cfg {
//!     VendorConfig::Cisco(c) => assert_eq!(c.static_routes.len(), 1),
//!     VendorConfig::Juniper(_) => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

pub mod cisco;
pub mod juniper;

mod detect;
mod error;
pub mod samples;
mod span;

pub use detect::{detect_vendor, parse_config, VendorConfig};
pub use error::ParseError;
pub use span::{SourceText, Span, Vendor};

#[cfg(test)]
mod robustness;
