//! The Cisco IOS abstract syntax tree.
//!
//! Every node carries a [`Span`] into the original text; collections keep
//! definition order (which is semantically meaningful for route maps and
//! ACLs, and presentation-meaningful everywhere else).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use campion_net::{Community, IpProtocol, PortRange, Prefix, WildcardMask};

use crate::span::{SourceText, Span};

/// Permit or deny — the action vocabulary shared by prefix lists, community
/// lists, ACLs and route-map entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineAction {
    /// Accept the matched input.
    Permit,
    /// Reject the matched input.
    Deny,
}

impl LineAction {
    /// True for [`LineAction::Permit`].
    pub fn permits(self) -> bool {
        matches!(self, LineAction::Permit)
    }
}

impl std::fmt::Display for LineAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineAction::Permit => write!(f, "permit"),
            LineAction::Deny => write!(f, "deny"),
        }
    }
}

/// One `ip prefix-list NAME [seq N] permit|deny P [ge X] [le Y]` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixListEntry {
    /// Sequence number (explicit or assigned in order).
    pub seq: u32,
    /// Permit or deny.
    pub action: LineAction,
    /// The matched prefix.
    pub prefix: Prefix,
    /// `ge` bound; defaults to the prefix's own length.
    pub ge: u8,
    /// `le` bound; defaults to `ge` (exact match when neither given).
    pub le: u8,
    /// Source location.
    pub span: Span,
}

/// A named `ip prefix-list`: an ordered list of entries with first-match
/// semantics and an implicit trailing deny.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrefixList {
    /// Entries in sequence order.
    pub entries: Vec<PrefixListEntry>,
}

/// One `ip community-list standard NAME permit|deny c1 [c2 ...]` line.
///
/// A standard community-list **line** matches a route only when the route
/// carries *all* the listed communities; the *list* matches when any line
/// does. (The common single-community-per-line style therefore gives
/// "any of these" semantics — the crux of Figure 1's second bug.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityListEntry {
    /// Permit or deny.
    pub action: LineAction,
    /// Conjunction of communities this line requires (standard lists).
    pub communities: Vec<Community>,
    /// Regex over the community set (expanded lists); `None` for standard.
    pub regex: Option<String>,
    /// Source location.
    pub span: Span,
}

/// A named community list (standard or expanded).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommunityList {
    /// Entries in definition order, first match wins.
    pub entries: Vec<CommunityListEntry>,
}

/// An address matcher inside an ACL rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclAddr {
    /// `any`.
    Any,
    /// `host A.B.C.D`.
    Host(Ipv4Addr),
    /// `A.B.C.D W.W.W.W` — base plus wildcard bits.
    Wildcard(WildcardMask),
}

impl AclAddr {
    /// Does the matcher accept this address?
    pub fn matches(&self, ip: Ipv4Addr) -> bool {
        match self {
            AclAddr::Any => true,
            AclAddr::Host(h) => *h == ip,
            AclAddr::Wildcard(w) => w.matches(ip),
        }
    }

    /// Normalize into a wildcard-mask view.
    pub fn as_wildcard(&self) -> WildcardMask {
        match self {
            AclAddr::Any => WildcardMask::ANY,
            AclAddr::Host(h) => WildcardMask::host(*h),
            AclAddr::Wildcard(w) => *w,
        }
    }
}

impl std::fmt::Display for AclAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AclAddr::Any => write!(f, "any"),
            AclAddr::Host(h) => write!(f, "host {h}"),
            AclAddr::Wildcard(w) => write!(f, "{w}"),
        }
    }
}

/// One rule of an extended ACL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclRule {
    /// Sequence number (explicit, or assigned by position).
    pub seq: u32,
    /// Permit or deny.
    pub action: LineAction,
    /// Protocol selector (`ip`, `tcp`, `udp`, `icmp`, or a number).
    pub protocol: IpProtocol,
    /// Source address matcher.
    pub src: AclAddr,
    /// Source port constraint (TCP/UDP only).
    pub src_ports: PortRange,
    /// Destination address matcher.
    pub dst: AclAddr,
    /// Destination port constraint (TCP/UDP only).
    pub dst_ports: PortRange,
    /// Source location.
    pub span: Span,
}

/// A named or numbered extended ACL: ordered rules, first match wins,
/// implicit trailing deny.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Acl {
    /// Rules in order.
    pub rules: Vec<AclRule>,
}

/// A `match` clause in a route-map entry. Clauses of different kinds are
/// conjunctive; multiple values within one clause are disjunctive (standard
/// IOS semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteMapMatch {
    /// `match ip address prefix-list N1 [N2 ...]`.
    IpAddressPrefixList(Vec<String>),
    /// `match ip address ACL...` (match routes whose prefix the ACL permits).
    IpAddress(Vec<String>),
    /// `match community C1 [C2 ...]`.
    Community(Vec<String>),
    /// `match tag T`.
    Tag(u32),
    /// `match metric M`.
    Metric(u32),
}

/// A `set` clause in a route-map entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteMapSet {
    /// `set local-preference N`.
    LocalPreference(u32),
    /// `set metric N`.
    Metric(u32),
    /// `set community c1 [c2 ...] [additive]`.
    Community {
        /// Communities to attach.
        communities: Vec<Community>,
        /// Keep existing communities (`additive`) or replace them.
        additive: bool,
    },
    /// `set comm-list NAME delete`.
    CommListDelete(String),
    /// `set ip next-hop A.B.C.D`.
    NextHop(Ipv4Addr),
    /// `set weight N`.
    Weight(u32),
    /// `set tag N`.
    Tag(u32),
}

/// One `route-map NAME permit|deny SEQ` entry with its match/set body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteMapEntry {
    /// Sequence number.
    pub seq: u32,
    /// Permit (accept, after applying sets) or deny (reject).
    pub action: LineAction,
    /// Conjunction of match clauses (empty = match everything).
    pub matches: Vec<RouteMapMatch>,
    /// Set clauses applied on permit.
    pub sets: Vec<RouteMapSet>,
    /// `continue` to a later sequence (parsed, surfaced as unsupported).
    pub continue_seq: Option<u32>,
    /// Source location, covering the header and body lines.
    pub span: Span,
}

/// A named route map: entries ordered by sequence number, first match wins,
/// implicit deny when no entry matches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteMap {
    /// Entries in sequence order.
    pub entries: Vec<RouteMapEntry>,
}

/// An `ip route` static route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop address (`None` when the route points at an interface).
    pub next_hop: Option<Ipv4Addr>,
    /// Egress interface, when specified instead of / before a next hop.
    pub interface: Option<String>,
    /// Administrative distance (IOS default 1).
    pub admin_distance: u8,
    /// Route tag, if any.
    pub tag: Option<u32>,
    /// Source location.
    pub span: Span,
}

/// An `interface` stanza.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Interface name as written (`GigabitEthernet0/0`, `Loopback0`, ...).
    pub name: String,
    /// Primary address and mask, if configured.
    pub address: Option<(Ipv4Addr, Prefix)>,
    /// `ip ospf cost N`.
    pub ospf_cost: Option<u32>,
    /// `ip ospf P area A` (interface-mode OSPF enable).
    pub ospf_area: Option<u32>,
    /// `ip access-group NAME in`.
    pub acl_in: Option<String>,
    /// `ip access-group NAME out`.
    pub acl_out: Option<String>,
    /// `shutdown` present.
    pub shutdown: bool,
    /// `description ...` text.
    pub description: Option<String>,
    /// Source location of the whole stanza.
    pub span: Span,
}

/// Per-neighbor BGP configuration collected from `neighbor X ...` lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpNeighbor {
    /// Neighbor address.
    pub addr: Ipv4Addr,
    /// `remote-as`.
    pub remote_as: Option<u32>,
    /// Inbound route map name.
    pub route_map_in: Option<String>,
    /// Outbound route map name.
    pub route_map_out: Option<String>,
    /// `send-community` configured (IOS default: off).
    pub send_community: bool,
    /// `route-reflector-client` configured.
    pub route_reflector_client: bool,
    /// `next-hop-self` configured.
    pub next_hop_self: bool,
    /// `description`.
    pub description: Option<String>,
    /// Span covering this neighbor's lines.
    pub span: Span,
}

/// A `redistribute PROTO [route-map NAME]` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redistribution {
    /// Source protocol (`connected`, `static`, `ospf`, `bgp`...).
    pub protocol: String,
    /// Filter applied during redistribution.
    pub route_map: Option<String>,
    /// Fixed metric, if set.
    pub metric: Option<u32>,
    /// Source location.
    pub span: Span,
}

/// The `router bgp ASN` stanza.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpConfig {
    /// Local AS number.
    pub asn: u32,
    /// `bgp router-id`.
    pub router_id: Option<Ipv4Addr>,
    /// Neighbors keyed by address.
    pub neighbors: BTreeMap<Ipv4Addr, BgpNeighbor>,
    /// `network P mask M [route-map N]` originations.
    pub networks: Vec<(Prefix, Option<String>, Span)>,
    /// Redistributions into BGP.
    pub redistribute: Vec<Redistribution>,
    /// `distance bgp EXTERNAL INTERNAL LOCAL`.
    pub distance: Option<(u8, u8, u8)>,
    /// Whole-stanza span.
    pub span: Span,
}

/// The `router ospf N` stanza.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OspfConfig {
    /// Process id.
    pub process_id: u32,
    /// `router-id`.
    pub router_id: Option<Ipv4Addr>,
    /// `network ADDR WILDCARD area A` statements.
    pub networks: Vec<(WildcardMask, u32, Span)>,
    /// `passive-interface NAME` entries.
    pub passive_interfaces: Vec<String>,
    /// `distance N`.
    pub distance: Option<u8>,
    /// Reference bandwidth (`auto-cost reference-bandwidth N`), Mbps.
    pub reference_bandwidth: Option<u64>,
    /// Redistributions into OSPF.
    pub redistribute: Vec<Redistribution>,
    /// Whole-stanza span.
    pub span: Span,
}

/// A parsed Cisco IOS configuration.
#[derive(Debug, Clone)]
pub struct CiscoConfig {
    /// `hostname`.
    pub hostname: String,
    /// Prefix lists by name.
    pub prefix_lists: BTreeMap<String, PrefixList>,
    /// Community lists by name.
    pub community_lists: BTreeMap<String, CommunityList>,
    /// Extended ACLs by name (numbered ACLs use their number as name).
    pub acls: BTreeMap<String, Acl>,
    /// Route maps by name.
    pub route_maps: BTreeMap<String, RouteMap>,
    /// Static routes in definition order.
    pub static_routes: Vec<StaticRoute>,
    /// Interfaces by name.
    pub interfaces: BTreeMap<String, Interface>,
    /// BGP process, if configured.
    pub bgp: Option<BgpConfig>,
    /// OSPF process, if configured.
    pub ospf: Option<OspfConfig>,
    /// The original text, for snippet extraction.
    pub source: SourceText,
}

impl CiscoConfig {
    /// Quote the configuration text for a span (text localization).
    pub fn snippet(&self, span: Span) -> String {
        self.source.snippet_dedented(span)
    }
}
