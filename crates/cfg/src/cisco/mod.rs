//! Cisco IOS configuration: AST and parser.
//!
//! IOS configs are line-oriented: top-level commands start in column zero
//! and stanza bodies (`interface`, `router bgp`, `route-map` entries, named
//! ACLs) are indented continuation lines. The parser walks the file once,
//! dispatching on the first tokens of each top-level command.

mod ast;
mod parser;

pub use ast::*;
pub use parser::parse_cisco;

#[cfg(test)]
mod tests;
