//! The Cisco IOS parser: a single pass over the configuration lines.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use campion_net::{Community, IpProtocol, PortRange, Prefix, WildcardMask};

use super::ast::*;
use crate::error::ParseError;
use crate::span::{SourceText, Span};

/// Parse a Cisco IOS configuration.
///
/// Lines the analysis does not model (NTP, SNMP, AAA, ...) are skipped, as
/// in Batfish; lines that *are* modeled but malformed produce a
/// [`ParseError`] with the offending line number.
pub fn parse_cisco(text: &str) -> Result<CiscoConfig, ParseError> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    /// (1-based line number, raw text) for every line.
    lines: Vec<(u32, &'a str)>,
    /// Cursor into `lines`.
    pos: usize,
    cfg: CiscoConfig,
}

/// Tokenize an IOS line on whitespace.
fn tokens(line: &str) -> Vec<&str> {
    line.split_whitespace().collect()
}

/// Is this line a stanza-body line (indented continuation)?
fn is_indented(line: &str) -> bool {
    line.starts_with(' ') || line.starts_with('\t')
}

fn parse_u32(tok: &str, line: u32, what: &str) -> Result<u32, ParseError> {
    tok.parse()
        .map_err(|_| ParseError::at(line, format!("bad {what}: {tok:?}")))
}

fn parse_u8(tok: &str, line: u32, what: &str) -> Result<u8, ParseError> {
    tok.parse()
        .map_err(|_| ParseError::at(line, format!("bad {what}: {tok:?}")))
}

fn parse_ip(tok: &str, line: u32) -> Result<Ipv4Addr, ParseError> {
    tok.parse()
        .map_err(|_| ParseError::at(line, format!("bad IPv4 address: {tok:?}")))
}

fn parse_action(tok: &str, line: u32) -> Result<LineAction, ParseError> {
    match tok {
        "permit" => Ok(LineAction::Permit),
        "deny" => Ok(LineAction::Deny),
        other => Err(ParseError::at(
            line,
            format!("expected permit|deny, got {other:?}"),
        )),
    }
}

/// Well-known service names accepted in `eq`/`range` port specs.
fn parse_port(tok: &str, line: u32) -> Result<u16, ParseError> {
    let named = match tok {
        "ftp-data" => Some(20),
        "ftp" => Some(21),
        "ssh" => Some(22),
        "telnet" => Some(23),
        "smtp" => Some(25),
        "domain" => Some(53),
        "tftp" => Some(69),
        "www" | "http" => Some(80),
        "pop3" => Some(110),
        "ntp" => Some(123),
        "snmp" => Some(161),
        "bgp" => Some(179),
        "https" => Some(443),
        "syslog" => Some(514),
        _ => None,
    };
    if let Some(p) = named {
        return Ok(p);
    }
    tok.parse()
        .map_err(|_| ParseError::at(line, format!("bad port: {tok:?}")))
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i as u32 + 1, l))
            .collect();
        Parser {
            lines,
            pos: 0,
            cfg: CiscoConfig {
                hostname: String::new(),
                prefix_lists: BTreeMap::new(),
                community_lists: BTreeMap::new(),
                acls: BTreeMap::new(),
                route_maps: BTreeMap::new(),
                static_routes: Vec::new(),
                interfaces: BTreeMap::new(),
                bgp: None,
                ospf: None,
                source: SourceText::new(text),
            },
        }
    }

    fn peek(&self) -> Option<(u32, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<(u32, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    /// Skip blank lines and pure comments at the cursor.
    fn skip_trivia(&mut self) {
        while let Some((_, l)) = self.peek() {
            let t = l.trim();
            if t.is_empty() || t == "!" || t.starts_with("! ") {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn parse(mut self) -> Result<CiscoConfig, ParseError> {
        loop {
            self.skip_trivia();
            let Some((num, line)) = self.peek() else {
                break;
            };
            let toks = tokens(line);
            match toks.as_slice() {
                ["hostname", name, ..] => {
                    self.cfg.hostname = (*name).to_string();
                    self.bump();
                }
                ["ip", "prefix-list", ..] => self.prefix_list_line(num, &toks)?,
                ["ip", "community-list", ..] => self.community_list_line(num, &toks)?,
                ["ip", "route", ..] => self.static_route_line(num, &toks)?,
                ["ip", "access-list", ..] => self.named_acl(num, &toks)?,
                ["access-list", ..] => self.numbered_acl_line(num, &toks)?,
                ["route-map", ..] => self.route_map_entry(num, &toks)?,
                ["interface", ..] => self.interface(num, &toks)?,
                ["router", "bgp", ..] => self.router_bgp(num, &toks)?,
                ["router", "ospf", ..] => self.router_ospf(num, &toks)?,
                _ => {
                    // Unmodeled top-level command: skip it and any body.
                    self.bump();
                    while let Some((_, l)) = self.peek() {
                        if is_indented(l) && !l.trim().is_empty() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        Ok(self.cfg)
    }

    fn prefix_list_line(&mut self, num: u32, toks: &[&str]) -> Result<(), ParseError> {
        // ip prefix-list NAME [seq N] permit|deny PFX [ge G] [le L]
        self.bump();
        let mut it = toks[2..].iter();
        let name = *it
            .next()
            .ok_or_else(|| ParseError::at(num, "prefix-list missing name"))?;
        let mut rest: Vec<&str> = it.copied().collect();
        let mut seq = None;
        if rest.first() == Some(&"seq") {
            if rest.len() < 2 {
                return Err(ParseError::at(num, "seq missing number"));
            }
            seq = Some(parse_u32(rest[1], num, "sequence number")?);
            rest.drain(0..2);
        }
        if rest.first() == Some(&"description") {
            return Ok(()); // descriptions carry no behavior
        }
        if rest.is_empty() {
            return Err(ParseError::at(num, "prefix-list missing action"));
        }
        let action = parse_action(rest[0], num)?;
        if rest.len() < 2 {
            return Err(ParseError::at(num, "prefix-list missing prefix"));
        }
        let prefix: Prefix = rest[1]
            .parse()
            .map_err(|e: campion_net::ParseNetError| ParseError::at(num, e.message))?;
        let mut ge = prefix.len();
        let mut le = prefix.len();
        let mut i = 2;
        let mut saw_le = false;
        let mut saw_ge = false;
        while i < rest.len() {
            match rest[i] {
                "ge" => {
                    ge = parse_u8(
                        rest.get(i + 1)
                            .ok_or_else(|| ParseError::at(num, "ge missing value"))?,
                        num,
                        "ge length",
                    )?;
                    saw_ge = true;
                    i += 2;
                }
                "le" => {
                    le = parse_u8(
                        rest.get(i + 1)
                            .ok_or_else(|| ParseError::at(num, "le missing value"))?,
                        num,
                        "le length",
                    )?;
                    saw_le = true;
                    i += 2;
                }
                other => return Err(ParseError::at(num, format!("unexpected token {other:?}"))),
            }
        }
        if saw_ge && !saw_le {
            le = 32;
        }
        if ge < prefix.len() || le > 32 || ge > le {
            return Err(ParseError::at(
                num,
                format!("invalid ge/le bounds {ge}/{le}"),
            ));
        }
        let list = self.cfg.prefix_lists.entry(name.to_string()).or_default();
        let seq = seq.unwrap_or((list.entries.len() as u32 + 1) * 5);
        list.entries.push(PrefixListEntry {
            seq,
            action,
            prefix,
            ge,
            le,
            span: Span::line(num),
        });
        list.entries.sort_by_key(|e| e.seq);
        Ok(())
    }

    fn community_list_line(&mut self, num: u32, toks: &[&str]) -> Result<(), ParseError> {
        // ip community-list standard|expanded NAME permit|deny ...
        self.bump();
        let kind = toks
            .get(2)
            .ok_or_else(|| ParseError::at(num, "community-list missing kind"))?;
        // Also allow the numbered form: ip community-list 10 permit 1:2
        let (expanded, name_idx) = match *kind {
            "standard" => (false, 3),
            "expanded" => (true, 3),
            _ if kind.parse::<u32>().is_ok() => (false, 2),
            other => {
                return Err(ParseError::at(
                    num,
                    format!("expected standard|expanded|number, got {other:?}"),
                ))
            }
        };
        let name = toks
            .get(name_idx)
            .ok_or_else(|| ParseError::at(num, "community-list missing name"))?;
        // In the numbered form the "name" is the number itself.
        let (name, action_idx) = if name_idx == 2 {
            (*kind, 3)
        } else {
            (*name, 4)
        };
        let action = parse_action(
            toks.get(action_idx)
                .ok_or_else(|| ParseError::at(num, "community-list missing action"))?,
            num,
        )?;
        let entry = if expanded {
            let regex = toks[action_idx + 1..].join(" ");
            if regex.is_empty() {
                return Err(ParseError::at(num, "expanded community-list missing regex"));
            }
            CommunityListEntry {
                action,
                communities: Vec::new(),
                regex: Some(regex),
                span: Span::line(num),
            }
        } else {
            let mut communities = Vec::new();
            for tok in &toks[action_idx + 1..] {
                let c: Community = tok
                    .parse()
                    .map_err(|e: campion_net::ParseNetError| ParseError::at(num, e.message))?;
                communities.push(c);
            }
            if communities.is_empty() {
                return Err(ParseError::at(num, "community-list missing communities"));
            }
            CommunityListEntry {
                action,
                communities,
                regex: None,
                span: Span::line(num),
            }
        };
        self.cfg
            .community_lists
            .entry(name.to_string())
            .or_default()
            .entries
            .push(entry);
        Ok(())
    }

    fn static_route_line(&mut self, num: u32, toks: &[&str]) -> Result<(), ParseError> {
        // ip route PREFIX MASK (NEXTHOP | IFACE [NEXTHOP]) [AD] [tag T] [name N] [permanent]
        self.bump();
        let addr = parse_ip(
            toks.get(2)
                .ok_or_else(|| ParseError::at(num, "ip route missing prefix"))?,
            num,
        )?;
        let mask = parse_ip(
            toks.get(3)
                .ok_or_else(|| ParseError::at(num, "ip route missing mask"))?,
            num,
        )?;
        let prefix =
            Prefix::from_netmask(addr, mask).map_err(|e| ParseError::at(num, e.message))?;
        let mut next_hop = None;
        let mut interface = None;
        let mut admin_distance = 1u8;
        let mut tag = None;
        let mut i = 4;
        while i < toks.len() {
            let tok = toks[i];
            if let Ok(ip) = tok.parse::<Ipv4Addr>() {
                next_hop = Some(ip);
                i += 1;
            } else if tok == "tag" {
                tag = Some(parse_u32(
                    toks.get(i + 1)
                        .ok_or_else(|| ParseError::at(num, "tag missing value"))?,
                    num,
                    "tag",
                )?);
                i += 2;
            } else if tok == "name" {
                i += 2; // route name: no behavior
            } else if tok == "permanent" || tok == "track" {
                i += 1;
            } else if let Ok(ad) = tok.parse::<u8>() {
                admin_distance = ad;
                i += 1;
            } else if interface.is_none() && next_hop.is_none() {
                interface = Some(tok.to_string());
                i += 1;
            } else {
                return Err(ParseError::at(num, format!("unexpected token {tok:?}")));
            }
        }
        if next_hop.is_none() && interface.is_none() {
            return Err(ParseError::at(num, "ip route missing next hop"));
        }
        self.cfg.static_routes.push(StaticRoute {
            prefix,
            next_hop,
            interface,
            admin_distance,
            tag,
            span: Span::line(num),
        });
        Ok(())
    }

    fn named_acl(&mut self, num: u32, toks: &[&str]) -> Result<(), ParseError> {
        // ip access-list extended|standard NAME, body indented.
        let kind = toks
            .get(2)
            .ok_or_else(|| ParseError::at(num, "access-list missing kind"))?;
        let extended = match *kind {
            "extended" => true,
            "standard" => false,
            other => {
                return Err(ParseError::at(
                    num,
                    format!("unsupported ACL kind {other:?}"),
                ))
            }
        };
        let name = toks
            .get(3)
            .ok_or_else(|| ParseError::at(num, "access-list missing name"))?
            .to_string();
        self.bump();
        let mut acl = Acl::default();
        while let Some((n, l)) = self.peek() {
            if !is_indented(l) || l.trim().is_empty() {
                break;
            }
            self.bump();
            let t = tokens(l);
            if t.first() == Some(&"remark") {
                continue;
            }
            let rule = self.acl_rule(n, &t, extended, acl.rules.len() as u32)?;
            acl.rules.push(rule);
        }
        self.cfg.acls.insert(name, acl);
        Ok(())
    }

    fn numbered_acl_line(&mut self, num: u32, toks: &[&str]) -> Result<(), ParseError> {
        // access-list NUM permit|deny ... — standard for 1-99, extended 100+.
        self.bump();
        let number = toks
            .get(1)
            .ok_or_else(|| ParseError::at(num, "access-list missing number"))?;
        let n: u32 = parse_u32(number, num, "ACL number")?;
        if toks.get(2) == Some(&"remark") {
            return Ok(());
        }
        let extended = n >= 100;
        let body: Vec<&str> = toks[2..].to_vec();
        let acl = self.cfg.acls.entry(number.to_string()).or_default();
        let seq_hint = acl.rules.len() as u32;
        let rule = self.acl_rule_tokens(num, &body, extended, seq_hint)?;
        self.cfg
            .acls
            .get_mut(*number)
            .expect("entry just created")
            .rules
            .push(rule);
        Ok(())
    }

    /// Parse one ACL rule from a body line that may start with a sequence
    /// number (named ACLs).
    fn acl_rule(
        &mut self,
        num: u32,
        toks: &[&str],
        extended: bool,
        seq_hint: u32,
    ) -> Result<AclRule, ParseError> {
        let (seq, rest) = match toks.first().and_then(|t| t.parse::<u32>().ok()) {
            Some(s) => (Some(s), &toks[1..]),
            None => (None, toks),
        };
        let mut rule = self.acl_rule_tokens(num, rest, extended, seq_hint)?;
        if let Some(s) = seq {
            rule.seq = s;
        }
        Ok(rule)
    }

    /// Parse `permit|deny [proto] SRC [ports] [DST [ports]]`.
    fn acl_rule_tokens(
        &mut self,
        num: u32,
        toks: &[&str],
        extended: bool,
        seq_hint: u32,
    ) -> Result<AclRule, ParseError> {
        let action = parse_action(
            toks.first()
                .ok_or_else(|| ParseError::at(num, "ACL rule missing action"))?,
            num,
        )?;
        let mut i = 1;
        let protocol = if extended {
            let p: IpProtocol = toks
                .get(i)
                .ok_or_else(|| ParseError::at(num, "ACL rule missing protocol"))?
                .parse()
                .map_err(|e: campion_net::ParseNetError| ParseError::at(num, e.message))?;
            i += 1;
            p
        } else {
            IpProtocol::Any
        };
        let (src, di) = self.acl_addr(num, &toks[i..])?;
        i += di;
        let (src_ports, di) = self.acl_ports(num, &toks[i..], protocol)?;
        i += di;
        let (dst, dst_ports) = if extended {
            let (dst, di) = self.acl_addr(num, &toks[i..])?;
            i += di;
            let (dp, di) = self.acl_ports(num, &toks[i..], protocol)?;
            i += di;
            (dst, dp)
        } else {
            (AclAddr::Any, PortRange::ANY)
        };
        // Trailing qualifiers we accept but do not model.
        while let Some(tok) = toks.get(i) {
            match *tok {
                "log" | "log-input" | "established" | "echo" | "echo-reply" | "fragments" => i += 1,
                other => {
                    return Err(ParseError::at(
                        num,
                        format!("unexpected ACL token {other:?}"),
                    ))
                }
            }
        }
        Ok(AclRule {
            seq: (seq_hint + 1) * 10,
            action,
            protocol,
            src,
            src_ports,
            dst,
            dst_ports,
            span: Span::line(num),
        })
    }

    /// Parse an address matcher; returns the matcher and tokens consumed.
    fn acl_addr(&mut self, num: u32, toks: &[&str]) -> Result<(AclAddr, usize), ParseError> {
        match toks.first() {
            Some(&"any") => Ok((AclAddr::Any, 1)),
            Some(&"host") => {
                let ip = parse_ip(
                    toks.get(1)
                        .ok_or_else(|| ParseError::at(num, "host missing address"))?,
                    num,
                )?;
                Ok((AclAddr::Host(ip), 2))
            }
            Some(tok) => {
                let base = parse_ip(tok, num)?;
                let wc = parse_ip(
                    toks.get(1)
                        .ok_or_else(|| ParseError::at(num, "address missing wildcard"))?,
                    num,
                )?;
                Ok((AclAddr::Wildcard(WildcardMask::new(base, wc)), 2))
            }
            None => Err(ParseError::at(num, "ACL rule missing address")),
        }
    }

    /// Parse an optional port qualifier; returns the range and tokens consumed.
    fn acl_ports(
        &mut self,
        num: u32,
        toks: &[&str],
        protocol: IpProtocol,
    ) -> Result<(PortRange, usize), ParseError> {
        if !protocol.has_ports() {
            return Ok((PortRange::ANY, 0));
        }
        match toks.first() {
            Some(&"eq") => {
                let p = parse_port(
                    toks.get(1)
                        .ok_or_else(|| ParseError::at(num, "eq missing port"))?,
                    num,
                )?;
                Ok((PortRange::exact(p), 2))
            }
            Some(&"range") => {
                let lo = parse_port(
                    toks.get(1)
                        .ok_or_else(|| ParseError::at(num, "range missing low port"))?,
                    num,
                )?;
                let hi = parse_port(
                    toks.get(2)
                        .ok_or_else(|| ParseError::at(num, "range missing high port"))?,
                    num,
                )?;
                if lo > hi {
                    return Err(ParseError::at(num, format!("empty port range {lo}-{hi}")));
                }
                Ok((PortRange::new(lo, hi), 3))
            }
            Some(&"gt") => {
                let p = parse_port(
                    toks.get(1)
                        .ok_or_else(|| ParseError::at(num, "gt missing port"))?,
                    num,
                )?;
                if p == u16::MAX {
                    return Err(ParseError::at(num, "gt 65535 matches nothing"));
                }
                Ok((PortRange::new(p + 1, u16::MAX), 2))
            }
            Some(&"lt") => {
                let p = parse_port(
                    toks.get(1)
                        .ok_or_else(|| ParseError::at(num, "lt missing port"))?,
                    num,
                )?;
                if p == 0 {
                    return Err(ParseError::at(num, "lt 0 matches nothing"));
                }
                Ok((PortRange::new(0, p - 1), 2))
            }
            _ => Ok((PortRange::ANY, 0)),
        }
    }

    fn route_map_entry(&mut self, num: u32, toks: &[&str]) -> Result<(), ParseError> {
        // route-map NAME permit|deny SEQ, body indented (match/set lines).
        self.bump();
        let name = toks
            .get(1)
            .ok_or_else(|| ParseError::at(num, "route-map missing name"))?
            .to_string();
        let action = parse_action(
            toks.get(2)
                .ok_or_else(|| ParseError::at(num, "route-map missing action"))?,
            num,
        )?;
        let seq = parse_u32(
            toks.get(3)
                .ok_or_else(|| ParseError::at(num, "route-map missing sequence"))?,
            num,
            "sequence number",
        )?;
        let mut entry = RouteMapEntry {
            seq,
            action,
            matches: Vec::new(),
            sets: Vec::new(),
            continue_seq: None,
            span: Span::line(num),
        };
        while let Some((n, l)) = self.peek() {
            if !is_indented(l) || l.trim().is_empty() {
                break;
            }
            self.bump();
            entry.span = entry.span.merge(Span::line(n));
            let t = tokens(l);
            match t.as_slice() {
                ["match", "ip", "address", "prefix-list", names @ ..] => {
                    if names.is_empty() {
                        return Err(ParseError::at(n, "match prefix-list missing names"));
                    }
                    entry.matches.push(RouteMapMatch::IpAddressPrefixList(
                        names.iter().map(|s| s.to_string()).collect(),
                    ));
                }
                ["match", "ip", "address", names @ ..] => {
                    if names.is_empty() {
                        return Err(ParseError::at(n, "match ip address missing names"));
                    }
                    entry.matches.push(RouteMapMatch::IpAddress(
                        names.iter().map(|s| s.to_string()).collect(),
                    ));
                }
                ["match", "community", names @ ..] => {
                    let names: Vec<String> = names
                        .iter()
                        .filter(|s| **s != "exact-match")
                        .map(|s| s.to_string())
                        .collect();
                    if names.is_empty() {
                        return Err(ParseError::at(n, "match community missing names"));
                    }
                    entry.matches.push(RouteMapMatch::Community(names));
                }
                ["match", "tag", v] => {
                    entry
                        .matches
                        .push(RouteMapMatch::Tag(parse_u32(v, n, "tag")?));
                }
                ["match", "metric", v] => {
                    entry
                        .matches
                        .push(RouteMapMatch::Metric(parse_u32(v, n, "metric")?));
                }
                ["set", "local-preference", v] => {
                    entry.sets.push(RouteMapSet::LocalPreference(parse_u32(
                        v,
                        n,
                        "local-preference",
                    )?));
                }
                ["set", "metric", v] => {
                    entry
                        .sets
                        .push(RouteMapSet::Metric(parse_u32(v, n, "metric")?));
                }
                ["set", "weight", v] => {
                    entry
                        .sets
                        .push(RouteMapSet::Weight(parse_u32(v, n, "weight")?));
                }
                ["set", "tag", v] => {
                    entry.sets.push(RouteMapSet::Tag(parse_u32(v, n, "tag")?));
                }
                ["set", "ip", "next-hop", v] => {
                    entry.sets.push(RouteMapSet::NextHop(parse_ip(v, n)?));
                }
                ["set", "comm-list", name, "delete"] => {
                    entry
                        .sets
                        .push(RouteMapSet::CommListDelete(name.to_string()));
                }
                ["set", "community", rest @ ..] => {
                    let additive = rest.last() == Some(&"additive");
                    let vals = if additive {
                        &rest[..rest.len() - 1]
                    } else {
                        rest
                    };
                    let mut communities = Vec::new();
                    for v in vals {
                        communities.push(v.parse::<Community>().map_err(
                            |e: campion_net::ParseNetError| ParseError::at(n, e.message),
                        )?);
                    }
                    if communities.is_empty() {
                        return Err(ParseError::at(n, "set community missing values"));
                    }
                    entry.sets.push(RouteMapSet::Community {
                        communities,
                        additive,
                    });
                }
                ["continue", v] => {
                    entry.continue_seq = Some(parse_u32(v, n, "continue sequence")?);
                }
                ["description", ..] => {}
                other => {
                    return Err(ParseError::at(
                        n,
                        format!("unsupported route-map clause: {}", other.join(" ")),
                    ))
                }
            }
        }
        let map = self.cfg.route_maps.entry(name).or_default();
        map.entries.push(entry);
        map.entries.sort_by_key(|e| e.seq);
        Ok(())
    }

    fn interface(&mut self, num: u32, toks: &[&str]) -> Result<(), ParseError> {
        let name = toks
            .get(1)
            .ok_or_else(|| ParseError::at(num, "interface missing name"))?
            .to_string();
        self.bump();
        let mut iface = Interface {
            name: name.clone(),
            address: None,
            ospf_cost: None,
            ospf_area: None,
            acl_in: None,
            acl_out: None,
            shutdown: false,
            description: None,
            span: Span::line(num),
        };
        while let Some((n, l)) = self.peek() {
            if !is_indented(l) || l.trim().is_empty() {
                break;
            }
            self.bump();
            iface.span = iface.span.merge(Span::line(n));
            let t = tokens(l);
            match t.as_slice() {
                ["ip", "address", addr, mask] => {
                    let a = parse_ip(addr, n)?;
                    let m = parse_ip(mask, n)?;
                    let p = Prefix::from_netmask(a, m).map_err(|e| ParseError::at(n, e.message))?;
                    iface.address = Some((a, p));
                }
                ["ip", "ospf", "cost", v] => iface.ospf_cost = Some(parse_u32(v, n, "ospf cost")?),
                ["ip", "ospf", _pid, "area", v] => {
                    iface.ospf_area = Some(parse_u32(v, n, "ospf area")?)
                }
                ["ip", "access-group", name, "in"] => iface.acl_in = Some(name.to_string()),
                ["ip", "access-group", name, "out"] => iface.acl_out = Some(name.to_string()),
                ["shutdown"] => iface.shutdown = true,
                ["description", rest @ ..] => iface.description = Some(rest.join(" ")),
                _ => {} // unmodeled interface attribute
            }
        }
        self.cfg.interfaces.insert(name, iface);
        Ok(())
    }

    fn router_bgp(&mut self, num: u32, toks: &[&str]) -> Result<(), ParseError> {
        let asn = parse_u32(
            toks.get(2)
                .ok_or_else(|| ParseError::at(num, "router bgp missing ASN"))?,
            num,
            "AS number",
        )?;
        self.bump();
        let mut bgp = BgpConfig {
            asn,
            router_id: None,
            neighbors: BTreeMap::new(),
            networks: Vec::new(),
            redistribute: Vec::new(),
            distance: None,
            span: Span::line(num),
        };
        while let Some((n, l)) = self.peek() {
            if !is_indented(l) || l.trim().is_empty() {
                break;
            }
            self.bump();
            bgp.span = bgp.span.merge(Span::line(n));
            let t = tokens(l);
            match t.as_slice() {
                ["bgp", "router-id", v] => bgp.router_id = Some(parse_ip(v, n)?),
                ["bgp", ..] => {} // other bgp knobs unmodeled
                ["address-family", ..] | ["exit-address-family"] => {}
                ["network", addr, "mask", mask, rest @ ..] => {
                    let a = parse_ip(addr, n)?;
                    let m = parse_ip(mask, n)?;
                    let p = Prefix::from_netmask(a, m).map_err(|e| ParseError::at(n, e.message))?;
                    let rm = match rest {
                        ["route-map", name] => Some(name.to_string()),
                        [] => None,
                        other => {
                            return Err(ParseError::at(
                                n,
                                format!("unexpected network options {other:?}"),
                            ))
                        }
                    };
                    bgp.networks.push((p, rm, Span::line(n)));
                }
                ["network", addr] => {
                    // Classful form; treat as the classful prefix.
                    let a = parse_ip(addr, n)?;
                    let len = classful_len(a);
                    bgp.networks
                        .push((Prefix::new(a, len), None, Span::line(n)));
                }
                ["redistribute", proto, rest @ ..] => {
                    let mut rm = None;
                    let mut metric = None;
                    let mut i = 0;
                    while i < rest.len() {
                        match rest[i] {
                            "route-map" => {
                                rm = Some(
                                    rest.get(i + 1)
                                        .ok_or_else(|| {
                                            ParseError::at(n, "redistribute missing route-map name")
                                        })?
                                        .to_string(),
                                );
                                i += 2;
                            }
                            "metric" => {
                                metric = Some(parse_u32(
                                    rest.get(i + 1)
                                        .ok_or_else(|| ParseError::at(n, "metric missing value"))?,
                                    n,
                                    "metric",
                                )?);
                                i += 2;
                            }
                            "subnets" => i += 1,
                            other => {
                                return Err(ParseError::at(
                                    n,
                                    format!("unexpected redistribute option {other:?}"),
                                ))
                            }
                        }
                    }
                    bgp.redistribute.push(Redistribution {
                        protocol: proto.to_string(),
                        route_map: rm,
                        metric,
                        span: Span::line(n),
                    });
                }
                ["distance", "bgp", e, i, l2] => {
                    bgp.distance = Some((
                        parse_u8(e, n, "external distance")?,
                        parse_u8(i, n, "internal distance")?,
                        parse_u8(l2, n, "local distance")?,
                    ));
                }
                ["neighbor", addr, rest @ ..] => {
                    let ip = parse_ip(addr, n)?;
                    let nb = bgp.neighbors.entry(ip).or_insert_with(|| BgpNeighbor {
                        addr: ip,
                        remote_as: None,
                        route_map_in: None,
                        route_map_out: None,
                        send_community: false,
                        route_reflector_client: false,
                        next_hop_self: false,
                        description: None,
                        span: Span::line(n),
                    });
                    nb.span = nb.span.merge(Span::line(n));
                    match rest {
                        ["remote-as", v] => nb.remote_as = Some(parse_u32(v, n, "remote AS")?),
                        ["route-map", name, "in"] => nb.route_map_in = Some(name.to_string()),
                        ["route-map", name, "out"] => nb.route_map_out = Some(name.to_string()),
                        ["send-community"]
                        | ["send-community", "both"]
                        | ["send-community", "standard"] => nb.send_community = true,
                        ["route-reflector-client"] => nb.route_reflector_client = true,
                        ["next-hop-self"] => nb.next_hop_self = true,
                        ["description", d @ ..] => nb.description = Some(d.join(" ")),
                        ["update-source", _]
                        | ["activate"]
                        | ["soft-reconfiguration", ..]
                        | ["timers", ..]
                        | ["password", ..]
                        | ["ebgp-multihop", ..] => {}
                        other => {
                            return Err(ParseError::at(
                                n,
                                format!("unsupported neighbor option: {}", other.join(" ")),
                            ))
                        }
                    }
                }
                _ => {} // unmodeled bgp line
            }
        }
        self.cfg.bgp = Some(bgp);
        Ok(())
    }

    fn router_ospf(&mut self, num: u32, toks: &[&str]) -> Result<(), ParseError> {
        let pid = parse_u32(
            toks.get(2)
                .ok_or_else(|| ParseError::at(num, "router ospf missing process id"))?,
            num,
            "process id",
        )?;
        self.bump();
        let mut ospf = OspfConfig {
            process_id: pid,
            router_id: None,
            networks: Vec::new(),
            passive_interfaces: Vec::new(),
            distance: None,
            reference_bandwidth: None,
            redistribute: Vec::new(),
            span: Span::line(num),
        };
        while let Some((n, l)) = self.peek() {
            if !is_indented(l) || l.trim().is_empty() {
                break;
            }
            self.bump();
            ospf.span = ospf.span.merge(Span::line(n));
            let t = tokens(l);
            match t.as_slice() {
                ["router-id", v] => ospf.router_id = Some(parse_ip(v, n)?),
                ["network", addr, wc, "area", area] => {
                    let a = parse_ip(addr, n)?;
                    let w = parse_ip(wc, n)?;
                    let area = parse_area(area, n)?;
                    ospf.networks
                        .push((WildcardMask::new(a, w), area, Span::line(n)));
                }
                ["passive-interface", name] => {
                    ospf.passive_interfaces.push(name.to_string());
                }
                ["distance", v] => ospf.distance = Some(parse_u8(v, n, "distance")?),
                ["auto-cost", "reference-bandwidth", v] => {
                    ospf.reference_bandwidth =
                        Some(u64::from(parse_u32(v, n, "reference bandwidth")?));
                }
                ["redistribute", proto, rest @ ..] => {
                    let rm = match rest {
                        ["route-map", name, ..] => Some(name.to_string()),
                        _ => None,
                    };
                    ospf.redistribute.push(Redistribution {
                        protocol: proto.to_string(),
                        route_map: rm,
                        metric: None,
                        span: Span::line(n),
                    });
                }
                _ => {} // unmodeled ospf line
            }
        }
        self.cfg.ospf = Some(ospf);
        Ok(())
    }
}

/// OSPF areas may be written as integers or dotted quads.
fn parse_area(tok: &str, line: u32) -> Result<u32, ParseError> {
    if let Ok(v) = tok.parse::<u32>() {
        return Ok(v);
    }
    if let Ok(ip) = tok.parse::<Ipv4Addr>() {
        return Ok(u32::from(ip));
    }
    Err(ParseError::at(line, format!("bad OSPF area {tok:?}")))
}

/// Classful prefix length for bare `network` statements.
fn classful_len(a: Ipv4Addr) -> u8 {
    let first = a.octets()[0];
    if first < 128 {
        8
    } else if first < 192 {
        16
    } else {
        24
    }
}
