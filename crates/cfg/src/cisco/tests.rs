//! Tests for the Cisco IOS parser, anchored on the paper's Figure 1(a).

use campion_net::{Community, IpProtocol, PortRange};

use super::ast::*;
use super::parse_cisco;
use crate::span::Span;

use crate::samples::FIGURE1_CISCO;

#[test]
fn figure1_cisco_parses() {
    let cfg = parse_cisco(FIGURE1_CISCO).unwrap();

    let nets = &cfg.prefix_lists["NETS"];
    assert_eq!(nets.entries.len(), 2);
    let e0 = &nets.entries[0];
    assert_eq!(e0.prefix.to_string(), "10.9.0.0/16");
    assert_eq!((e0.ge, e0.le), (16, 32));
    assert!(e0.action.permits());
    assert_eq!(e0.span, Span::line(1));
    assert_eq!(nets.entries[1].prefix.to_string(), "10.100.0.0/16");

    let comm = &cfg.community_lists["COMM"];
    assert_eq!(comm.entries.len(), 2);
    assert_eq!(comm.entries[0].communities, vec![Community::new(10, 10)]);
    assert_eq!(comm.entries[1].communities, vec![Community::new(10, 11)]);

    let pol = &cfg.route_maps["POL"];
    assert_eq!(pol.entries.len(), 3);
    assert_eq!(pol.entries[0].seq, 10);
    assert_eq!(pol.entries[0].action, LineAction::Deny);
    assert_eq!(
        pol.entries[0].matches,
        vec![RouteMapMatch::IpAddressPrefixList(vec!["NETS".into()])]
    );
    assert_eq!(pol.entries[0].span, Span::lines(7, 8));
    assert_eq!(
        pol.entries[1].matches,
        vec![RouteMapMatch::Community(vec!["COMM".into()])]
    );
    assert_eq!(pol.entries[2].action, LineAction::Permit);
    assert_eq!(pol.entries[2].sets, vec![RouteMapSet::LocalPreference(30)]);
}

#[test]
fn figure1_snippets_match_source() {
    let cfg = parse_cisco(FIGURE1_CISCO).unwrap();
    let pol = &cfg.route_maps["POL"];
    assert_eq!(
        cfg.snippet(pol.entries[0].span),
        "route-map POL deny 10\n match ip address prefix-list NETS"
    );
}

#[test]
fn prefix_list_ge_le_defaults() {
    let cfg = parse_cisco(
        "ip prefix-list A permit 10.0.0.0/8\n\
         ip prefix-list B permit 10.0.0.0/8 ge 24\n\
         ip prefix-list C seq 17 deny 10.0.0.0/8 ge 12 le 20\n",
    )
    .unwrap();
    let a = &cfg.prefix_lists["A"].entries[0];
    assert_eq!((a.ge, a.le), (8, 8), "bare prefix is exact-length");
    let b = &cfg.prefix_lists["B"].entries[0];
    assert_eq!((b.ge, b.le), (24, 32), "ge without le runs to 32");
    let c = &cfg.prefix_lists["C"].entries[0];
    assert_eq!((c.seq, c.ge, c.le), (17, 12, 20));
    assert_eq!(c.action, LineAction::Deny);
}

#[test]
fn prefix_list_rejects_bad_bounds() {
    assert!(parse_cisco("ip prefix-list A permit 10.0.0.0/16 ge 8\n").is_err());
    assert!(parse_cisco("ip prefix-list A permit 10.0.0.0/16 le 40\n").is_err());
    assert!(parse_cisco("ip prefix-list A permit 10.0.0.0/16 ge 30 le 20\n").is_err());
}

#[test]
fn static_routes_full_form() {
    let cfg = parse_cisco(
        "ip route 10.1.1.2 255.255.255.254 10.2.2.2\n\
         ip route 10.5.0.0 255.255.0.0 10.2.2.9 200 tag 77\n\
         ip route 0.0.0.0 0.0.0.0 Null0\n",
    )
    .unwrap();
    assert_eq!(cfg.static_routes.len(), 3);
    let r0 = &cfg.static_routes[0];
    assert_eq!(r0.prefix.to_string(), "10.1.1.2/31");
    assert_eq!(r0.next_hop.unwrap().to_string(), "10.2.2.2");
    assert_eq!(r0.admin_distance, 1);
    assert_eq!(r0.tag, None);
    let r1 = &cfg.static_routes[1];
    assert_eq!(r1.admin_distance, 200);
    assert_eq!(r1.tag, Some(77));
    let r2 = &cfg.static_routes[2];
    assert_eq!(r2.interface.as_deref(), Some("Null0"));
    assert!(r2.next_hop.is_none());
}

#[test]
fn named_extended_acl() {
    let cfg = parse_cisco(
        "ip access-list extended VM_FILTER_1\n\
         \x20permit tcp 10.0.0.0 0.0.255.255 any eq 443\n\
         \x20deny ipv4 9.140.0.0 0.0.1.255 any\n\
         \x20deny ip any any\n",
    );
    // `ipv4` is an IOS-XR spelling; our parser accepts standard `ip` only.
    assert!(cfg.is_err());

    let cfg = parse_cisco(
        "ip access-list extended VM_FILTER_1\n\
         \x20permit tcp 10.0.0.0 0.0.255.255 range 1000 2000 any eq 443\n\
         \x20deny ip 9.140.0.0 0.0.1.255 any\n\
         \x20permit udp any eq domain host 10.0.0.53 gt 1023\n\
         \x20deny ip any any log\n",
    )
    .unwrap();
    let acl = &cfg.acls["VM_FILTER_1"];
    assert_eq!(acl.rules.len(), 4);
    let r0 = &acl.rules[0];
    assert_eq!(r0.protocol, IpProtocol::Tcp);
    assert_eq!(r0.src_ports, PortRange::new(1000, 2000));
    assert_eq!(r0.dst_ports, PortRange::exact(443));
    let r2 = &acl.rules[2];
    assert_eq!(r2.protocol, IpProtocol::Udp);
    assert_eq!(r2.src_ports, PortRange::exact(53));
    assert_eq!(r2.dst_ports, PortRange::new(1024, 65535));
    let r3 = &acl.rules[3];
    assert_eq!(r3.action, LineAction::Deny);
    assert_eq!(r3.src, AclAddr::Any);
}

#[test]
fn numbered_acls() {
    let cfg = parse_cisco(
        "access-list 10 permit 10.0.0.0 0.255.255.255\n\
         access-list 10 deny any\n\
         access-list 101 permit tcp any host 10.0.0.1 eq bgp\n",
    )
    .unwrap();
    let std10 = &cfg.acls["10"];
    assert_eq!(std10.rules.len(), 2);
    assert_eq!(std10.rules[0].protocol, IpProtocol::Any);
    assert_eq!(std10.rules[0].dst, AclAddr::Any);
    let ext = &cfg.acls["101"];
    assert_eq!(ext.rules[0].dst_ports, PortRange::exact(179));
}

#[test]
fn acl_sequence_numbers() {
    let cfg = parse_cisco(
        "ip access-list extended SEQ\n\
         \x2050 permit tcp any any eq 80\n\
         \x20permit ip any any\n",
    )
    .unwrap();
    let acl = &cfg.acls["SEQ"];
    assert_eq!(acl.rules[0].seq, 50, "explicit sequence preserved");
    assert_eq!(acl.rules[1].seq, 20, "implicit sequence assigned");
}

#[test]
fn route_map_set_clauses() {
    let cfg = parse_cisco(
        "route-map OUT permit 10\n\
         \x20match ip address prefix-list P1 P2\n\
         \x20set metric 120\n\
         \x20set community 65000:100 65000:200 additive\n\
         \x20set ip next-hop 192.0.2.1\n\
         route-map OUT permit 20\n\
         \x20set comm-list STRIP delete\n\
         \x20continue 30\n",
    )
    .unwrap();
    let rm = &cfg.route_maps["OUT"];
    assert_eq!(
        rm.entries[0].matches,
        vec![RouteMapMatch::IpAddressPrefixList(vec![
            "P1".into(),
            "P2".into()
        ])]
    );
    assert_eq!(
        rm.entries[0].sets,
        vec![
            RouteMapSet::Metric(120),
            RouteMapSet::Community {
                communities: vec![Community::new(65000, 100), Community::new(65000, 200)],
                additive: true
            },
            RouteMapSet::NextHop("192.0.2.1".parse().unwrap()),
        ]
    );
    assert_eq!(
        rm.entries[1].sets,
        vec![RouteMapSet::CommListDelete("STRIP".into())]
    );
    assert_eq!(rm.entries[1].continue_seq, Some(30));
}

#[test]
fn route_map_entries_sorted_by_seq() {
    let cfg = parse_cisco(
        "route-map M permit 20\n\
         route-map M deny 10\n",
    )
    .unwrap();
    let seqs: Vec<u32> = cfg.route_maps["M"].entries.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![10, 20]);
}

#[test]
fn interfaces_and_ospf_attributes() {
    let cfg = parse_cisco(
        "interface GigabitEthernet0/0\n\
         \x20description uplink to core\n\
         \x20ip address 10.0.12.1 255.255.255.0\n\
         \x20ip ospf cost 250\n\
         \x20ip ospf 1 area 0\n\
         \x20ip access-group EDGE_IN in\n\
         interface Loopback0\n\
         \x20ip address 192.0.2.1 255.255.255.255\n\
         \x20shutdown\n",
    )
    .unwrap();
    let gi = &cfg.interfaces["GigabitEthernet0/0"];
    assert_eq!(gi.ospf_cost, Some(250));
    assert_eq!(gi.ospf_area, Some(0));
    assert_eq!(gi.acl_in.as_deref(), Some("EDGE_IN"));
    assert_eq!(gi.address.unwrap().1.to_string(), "10.0.12.0/24");
    assert_eq!(gi.description.as_deref(), Some("uplink to core"));
    let lo = &cfg.interfaces["Loopback0"];
    assert!(lo.shutdown);
    assert_eq!(lo.address.unwrap().1.to_string(), "192.0.2.1/32");
}

#[test]
fn router_bgp_stanza() {
    let cfg = parse_cisco(
        "router bgp 65001\n\
         \x20bgp router-id 192.0.2.1\n\
         \x20network 10.9.0.0 mask 255.255.0.0\n\
         \x20neighbor 10.0.0.2 remote-as 65002\n\
         \x20neighbor 10.0.0.2 route-map IMPORT in\n\
         \x20neighbor 10.0.0.2 route-map EXPORT out\n\
         \x20neighbor 10.0.0.2 send-community\n\
         \x20neighbor 10.0.0.3 remote-as 65001\n\
         \x20neighbor 10.0.0.3 route-reflector-client\n\
         \x20neighbor 10.0.0.3 next-hop-self\n\
         \x20redistribute static route-map STATIC_TO_BGP\n\
         \x20redistribute connected\n\
         \x20distance bgp 20 200 200\n",
    )
    .unwrap();
    let bgp = cfg.bgp.unwrap();
    assert_eq!(bgp.asn, 65001);
    assert_eq!(bgp.router_id.unwrap().to_string(), "192.0.2.1");
    assert_eq!(bgp.networks.len(), 1);
    assert_eq!(bgp.networks[0].0.to_string(), "10.9.0.0/16");
    let n2 = &bgp.neighbors[&"10.0.0.2".parse().unwrap()];
    assert_eq!(n2.remote_as, Some(65002));
    assert_eq!(n2.route_map_in.as_deref(), Some("IMPORT"));
    assert_eq!(n2.route_map_out.as_deref(), Some("EXPORT"));
    assert!(n2.send_community);
    assert!(!n2.route_reflector_client);
    let n3 = &bgp.neighbors[&"10.0.0.3".parse().unwrap()];
    assert!(n3.route_reflector_client);
    assert!(n3.next_hop_self);
    assert!(!n3.send_community, "send-community is opt-in on IOS");
    assert_eq!(bgp.redistribute.len(), 2);
    assert_eq!(
        bgp.redistribute[0].route_map.as_deref(),
        Some("STATIC_TO_BGP")
    );
    assert_eq!(bgp.distance, Some((20, 200, 200)));
}

#[test]
fn router_ospf_stanza() {
    let cfg = parse_cisco(
        "router ospf 1\n\
         \x20router-id 192.0.2.1\n\
         \x20network 10.0.12.0 0.0.0.255 area 0\n\
         \x20network 10.0.13.0 0.0.0.255 area 0.0.0.1\n\
         \x20passive-interface Loopback0\n\
         \x20distance 115\n\
         \x20auto-cost reference-bandwidth 100000\n\
         \x20redistribute bgp 65001 route-map BGP_TO_OSPF\n",
    )
    .unwrap();
    let ospf = cfg.ospf.unwrap();
    assert_eq!(ospf.process_id, 1);
    assert_eq!(ospf.networks.len(), 2);
    assert_eq!(ospf.networks[1].1, 1, "dotted-quad area decodes");
    assert_eq!(ospf.passive_interfaces, vec!["Loopback0"]);
    assert_eq!(ospf.distance, Some(115));
    assert_eq!(ospf.reference_bandwidth, Some(100000));
    assert_eq!(ospf.redistribute.len(), 1);
}

#[test]
fn community_list_forms() {
    let cfg = parse_cisco(
        "ip community-list standard BOTH permit 10:10 10:11\n\
         ip community-list expanded RX permit _65000:.*_\n\
         ip community-list 42 permit 1:2\n",
    )
    .unwrap();
    let both = &cfg.community_lists["BOTH"].entries[0];
    assert_eq!(
        both.communities.len(),
        2,
        "one line, two required communities"
    );
    let rx = &cfg.community_lists["RX"].entries[0];
    assert_eq!(rx.regex.as_deref(), Some("_65000:.*_"));
    assert!(cfg.community_lists.contains_key("42"));
}

#[test]
fn unmodeled_lines_are_skipped() {
    let cfg = parse_cisco(
        "version 15.2\n\
         service timestamps debug datetime msec\n\
         hostname edge1\n\
         ntp server 10.0.0.99\n\
         line vty 0 4\n\
         \x20transport input ssh\n\
         ip route 10.0.0.0 255.0.0.0 10.1.1.1\n",
    )
    .unwrap();
    assert_eq!(cfg.hostname, "edge1");
    assert_eq!(cfg.static_routes.len(), 1);
}

#[test]
fn malformed_lines_error_with_position() {
    let err = parse_cisco("ip route 10.0.0.0 255.0.0.0\n").unwrap_err();
    assert_eq!(err.line, 1);
    let err = parse_cisco("!\nip prefix-list X allow 10.0.0.0/8\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("permit|deny"));
}
