//! Parse errors with source positions.

use std::fmt;

/// A configuration parse error, pinned to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the problem was found (0 = whole file).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Build an error at a specific line.
    pub fn at(line: u32, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// Build a file-level error.
    pub fn file(message: impl Into<String>) -> Self {
        ParseError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "config parse error: {}", self.message)
        } else {
            write!(
                f,
                "config parse error at line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for ParseError {}

impl From<campion_net::ParseNetError> for ParseError {
    fn from(e: campion_net::ParseNetError) -> Self {
        ParseError::file(e.message)
    }
}
