//! The abstract stable routing problem (Definition 3.1) and its solver.
//!
//! An SRP is `(T, R, d_r, ≤, trans)`: a topology, a route domain, an
//! initial route advertised by a destination node, a preference relation,
//! and a per-edge transfer function. A *solution* labels every node with
//! its best route (if any). The solver iterates synchronously to a fixed
//! point, which exists and is unique for the monotone policies this
//! repository generates (the classic SRP conditions); divergence is
//! reported as an error after an iteration bound.

use std::collections::BTreeMap;
use std::fmt;

/// Errors from the SRP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No fixed point within the iteration bound (an oscillating policy).
    Diverged {
        /// Iterations executed before giving up.
        iterations: usize,
    },
    /// The destination node is not in the topology.
    UnknownDestination(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Diverged { iterations } => {
                write!(f, "SRP did not stabilize after {iterations} iterations")
            }
            SolveError::UnknownDestination(d) => write!(f, "unknown destination node {d}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// An abstract SRP instance over node names.
///
/// `R` is the route domain. The transfer function maps a route crossing the
/// edge `(from, to)` to the route `to` receives (or `None` when filtered);
/// `prefer` returns `true` when `a` is strictly preferred over `b`.
pub struct Srp<R: Clone + Eq> {
    /// Adjacency: directed edges `(from, to)`.
    pub edges: Vec<(String, String)>,
    /// The destination (origin) node.
    pub destination: String,
    /// The initially advertised route at the destination.
    pub initial: R,
    /// Transfer function along an edge.
    #[allow(clippy::type_complexity)]
    pub transfer: Box<dyn Fn(&str, &str, &R) -> Option<R>>,
    /// Strict preference between candidate routes.
    #[allow(clippy::type_complexity)]
    pub prefer: Box<dyn Fn(&R, &R) -> bool>,
}

impl<R: Clone + Eq> Srp<R> {
    /// Solve to a fixed point: every node's chosen route, destination
    /// included.
    ///
    /// Iterates at most `4 · |V| + 8` rounds (ample for converging
    /// policies) and reports divergence otherwise.
    pub fn solve(&self) -> Result<BTreeMap<String, Option<R>>, SolveError> {
        let mut nodes: Vec<String> = Vec::new();
        for (a, b) in &self.edges {
            if !nodes.contains(a) {
                nodes.push(a.clone());
            }
            if !nodes.contains(b) {
                nodes.push(b.clone());
            }
        }
        if !nodes.contains(&self.destination) {
            return Err(SolveError::UnknownDestination(self.destination.clone()));
        }
        let mut chosen: BTreeMap<String, Option<R>> = nodes
            .iter()
            .map(|n| {
                (
                    n.clone(),
                    if *n == self.destination {
                        Some(self.initial.clone())
                    } else {
                        None
                    },
                )
            })
            .collect();
        let bound = 4 * nodes.len() + 8;
        for _ in 0..bound {
            let mut next = chosen.clone();
            for node in &nodes {
                if *node == self.destination {
                    continue;
                }
                // Candidates: transferred routes from each in-neighbor's
                // current choice.
                let mut best: Option<R> = None;
                for (from, to) in &self.edges {
                    if to != node {
                        continue;
                    }
                    if let Some(Some(route)) = chosen.get(from) {
                        if let Some(received) = (self.transfer)(from, to, route) {
                            best = match best {
                                None => Some(received),
                                Some(cur) => {
                                    if (self.prefer)(&received, &cur) {
                                        Some(received)
                                    } else {
                                        Some(cur)
                                    }
                                }
                            };
                        }
                    }
                }
                next.insert(node.clone(), best);
            }
            if next == chosen {
                return Ok(chosen);
            }
            chosen = next;
        }
        Err(SolveError::Diverged { iterations: bound })
    }
}
