//! Tests for the SRP simulator: the abstract solver, the BGP decision
//! process, OSPF SPF, and the RIB merge.

use std::net::Ipv4Addr;

use campion_cfg::parse_config;
use campion_ir::{lower, RouterIr};
use campion_net::{Flow, Prefix};

use crate::bgp::BgpRoute;
use crate::network::{Network, RibProtocol};
use crate::ospf::OspfGraph;
use crate::srp::Srp;

fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).unwrap()).unwrap()
}

// --------------------------------------------------------------- abstract

#[test]
fn abstract_srp_shortest_path() {
    // Route domain: hop count; transfer adds one; prefer fewer hops.
    let srp = Srp {
        edges: vec![
            ("d".into(), "a".into()),
            ("a".into(), "b".into()),
            ("d".into(), "b".into()),
            ("b".into(), "c".into()),
        ],
        destination: "d".into(),
        initial: 0u32,
        transfer: Box::new(|_, _, r| Some(r + 1)),
        prefer: Box::new(|a, b| a < b),
    };
    let sol = srp.solve().unwrap();
    assert_eq!(sol["d"], Some(0));
    assert_eq!(sol["a"], Some(1));
    assert_eq!(sol["b"], Some(1), "direct edge beats the 2-hop path");
    assert_eq!(sol["c"], Some(2));
}

#[test]
fn abstract_srp_filtering() {
    // The transfer filters routes crossing a -> b entirely.
    let srp = Srp {
        edges: vec![("d".into(), "a".into()), ("a".into(), "b".into())],
        destination: "d".into(),
        initial: 0u32,
        transfer: Box::new(|from, to, r| {
            if from == "a" && to == "b" {
                None
            } else {
                Some(r + 1)
            }
        }),
        prefer: Box::new(|a, b| a < b),
    };
    let sol = srp.solve().unwrap();
    assert_eq!(sol["b"], None, "filtered: b learns nothing");
}

#[test]
fn abstract_srp_unknown_destination() {
    let srp = Srp {
        edges: vec![("a".into(), "b".into())],
        destination: "zz".into(),
        initial: 0u32,
        transfer: Box::new(|_, _, r| Some(*r)),
        prefer: Box::new(|_, _| false),
    };
    assert!(srp.solve().is_err());
}

// -------------------------------------------------------------------- bgp

#[test]
fn decision_process_ordering() {
    let base = BgpRoute::originate("10.0.0.0/8".parse::<Prefix>().unwrap());
    let mut high_lp = base.clone();
    high_lp.advert.local_pref = 200;
    assert!(high_lp.preferred_over(&base));
    let mut short_path = base.clone();
    short_path.as_path_len = 1;
    let mut long_path = base.clone();
    long_path.as_path_len = 3;
    assert!(short_path.preferred_over(&long_path));
    let mut low_med = base.clone();
    low_med.advert.metric = 10;
    let mut high_med = base.clone();
    high_med.advert.metric = 20;
    assert!(low_med.preferred_over(&high_med));
    // Local-pref dominates AS-path length.
    let mut lp_long = long_path.clone();
    lp_long.advert.local_pref = 300;
    assert!(lp_long.preferred_over(&short_path));
    // eBGP over iBGP.
    let mut e = base.clone();
    e.ebgp = true;
    assert!(e.preferred_over(&base));
    // Lowest neighbor address as the final tiebreak.
    let mut n1 = base.clone();
    n1.learned_from = "10.0.0.1".parse().unwrap();
    let mut n2 = base.clone();
    n2.learned_from = "10.0.0.2".parse().unwrap();
    assert!(n1.preferred_over(&n2));
}

// ------------------------------------------------------------------- ospf

#[test]
fn ospf_spf_picks_cheapest_path() {
    let mut g = OspfGraph::default();
    g.adj
        .insert("a".into(), vec![("b".into(), 10), ("c".into(), 1)]);
    g.adj
        .insert("c".into(), vec![("a".into(), 1), ("b".into(), 1)]);
    g.adj
        .insert("b".into(), vec![("a".into(), 10), ("c".into(), 1)]);
    g.subnets
        .insert("b".into(), vec!["10.99.0.0/24".parse().unwrap()]);
    let routes = g.spf("a");
    assert_eq!(routes.len(), 1);
    assert_eq!(routes[0].cost, 2, "a→c→b (1+1) beats a→b (10)");
    assert_eq!(routes[0].next_hop_router, "c");
}

// ------------------------------------------------------- full network sim

/// Two routers, eBGP session, r1 originates a network filtered by an
/// export policy.
fn two_router_net(export_policy: &str) -> Network {
    let r1 = load(&format!(
        "hostname r1\n\
         interface Gi0/0\n\
         \x20ip address 10.0.12.1 255.255.255.0\n\
         interface Loopback0\n\
         \x20ip address 192.0.2.1 255.255.255.255\n\
         ip prefix-list ORIG permit 203.0.113.0/24\n\
         route-map EXPORT {export_policy} 10\n\
         \x20match ip address prefix-list ORIG\n\
         router bgp 65001\n\
         \x20network 203.0.113.0 mask 255.255.255.0\n\
         \x20network 198.51.100.0 mask 255.255.255.0\n\
         \x20neighbor 10.0.12.2 remote-as 65002\n\
         \x20neighbor 10.0.12.2 route-map EXPORT out\n"
    ));
    let r2 = load(
        "hostname r2\n\
         interface Gi0/0\n\
         \x20ip address 10.0.12.2 255.255.255.0\n\
         router bgp 65002\n\
         \x20neighbor 10.0.12.1 remote-as 65001\n",
    );
    let mut net = Network::default();
    net.add_router(r1);
    net.add_router(r2);
    net.link("r1", "Gi0/0", "r2", "Gi0/0");
    net
}

#[test]
fn bgp_export_policy_filters_advertisements() {
    let net = two_router_net("permit");
    let ribs = net.solve();
    let r2 = &ribs["r2"];
    let has = |p: &str| {
        r2.iter()
            .any(|e| e.protocol == RibProtocol::Bgp && e.prefix == p.parse().unwrap())
    };
    assert!(has("203.0.113.0/24"), "permitted by EXPORT");
    assert!(
        !has("198.51.100.0/24"),
        "implicit deny of the Cisco route map drops the other network"
    );
    // Next hop resolves to r1.
    let e = r2
        .iter()
        .find(|e| e.prefix == "203.0.113.0/24".parse().unwrap())
        .unwrap();
    assert_eq!(e.next_hop_router, "r1");
}

#[test]
fn bgp_deny_policy_blocks_everything() {
    let net = two_router_net("deny");
    let ribs = net.solve();
    assert!(
        !ribs["r2"].iter().any(|e| e.protocol == RibProtocol::Bgp),
        "deny 10 plus implicit deny blocks all exports"
    );
}

#[test]
fn connected_and_static_in_rib_with_admin_distance() {
    let r1 = load(
        "hostname r1\n\
         interface Gi0/0\n\
         \x20ip address 10.0.12.1 255.255.255.0\n\
         ip route 10.99.0.0 255.255.0.0 10.0.12.2\n\
         ip route 10.0.12.0 255.255.255.0 10.0.12.9 250\n",
    );
    let mut net = Network::default();
    net.add_router(r1);
    let ribs = net.solve();
    let rib = &ribs["r1"];
    // The static for the connected subnet loses on admin distance.
    let e = rib
        .iter()
        .find(|e| e.prefix == "10.0.12.0/24".parse().unwrap())
        .unwrap();
    assert_eq!(e.protocol, RibProtocol::Connected);
    assert_eq!(e.admin_distance, 0);
    let s = rib
        .iter()
        .find(|e| e.prefix == "10.99.0.0/16".parse().unwrap())
        .unwrap();
    assert_eq!(s.protocol, RibProtocol::Static);
}

#[test]
fn ospf_adjacency_requires_both_sides() {
    let r1 = load(
        "hostname r1\n\
         interface Gi0/0\n\
         \x20ip address 10.0.12.1 255.255.255.0\n\
         interface Loopback0\n\
         \x20ip address 192.0.2.1 255.255.255.255\n\
         router ospf 1\n\
         \x20network 10.0.12.0 0.0.0.255 area 0\n\
         \x20network 192.0.2.1 0.0.0.0 area 0\n",
    );
    let r2_ospf = load(
        "hostname r2\n\
         interface Gi0/0\n\
         \x20ip address 10.0.12.2 255.255.255.0\n\
         router ospf 1\n\
         \x20network 10.0.12.0 0.0.0.255 area 0\n",
    );
    let r2_plain = load(
        "hostname r2\n\
         interface Gi0/0\n\
         \x20ip address 10.0.12.2 255.255.255.0\n",
    );
    let mut with = Network::default();
    with.add_router(r1.clone());
    with.add_router(r2_ospf);
    with.link("r1", "Gi0/0", "r2", "Gi0/0");
    let ribs = with.solve();
    assert!(
        ribs["r2"]
            .iter()
            .any(|e| e.protocol == RibProtocol::Ospf
                && e.prefix == "192.0.2.1/32".parse().unwrap()),
        "r2 learns r1's loopback via OSPF"
    );

    let mut without = Network::default();
    without.add_router(r1);
    without.add_router(r2_plain);
    without.link("r1", "Gi0/0", "r2", "Gi0/0");
    let ribs = without.solve();
    assert!(
        !ribs["r2"].iter().any(|e| e.protocol == RibProtocol::Ospf),
        "no adjacency when only one side runs OSPF"
    );
}

#[test]
fn forwarding_applies_ingress_acl() {
    let r1 = load(
        "hostname r1\n\
         ip access-list extended BLOCK_TELNET\n\
         \x20deny tcp any any eq 23\n\
         \x20permit ip any any\n\
         interface Gi0/0\n\
         \x20ip address 10.0.12.1 255.255.255.0\n\
         \x20ip access-group BLOCK_TELNET in\n\
         ip route 0.0.0.0 0.0.0.0 10.0.12.2\n",
    );
    let mut net = Network::default();
    net.add_router(r1);
    let ribs = net.solve();
    let telnet = Flow::tcp(
        "9.9.9.9".parse().unwrap(),
        1000,
        "8.8.8.8".parse().unwrap(),
        23,
    );
    let https = Flow::tcp(
        "9.9.9.9".parse().unwrap(),
        1000,
        "8.8.8.8".parse().unwrap(),
        443,
    );
    assert!(!net.forwards(&ribs, "r1", Some("Gi0/0"), &telnet));
    assert!(net.forwards(&ribs, "r1", Some("Gi0/0"), &https));
    assert!(net.forwards(&ribs, "r1", None, &telnet), "no ingress ACL");
}

#[test]
fn lookup_is_longest_prefix_match() {
    let r1 = load(
        "hostname r1\n\
         ip route 10.0.0.0 255.0.0.0 10.0.12.2\n\
         ip route 10.5.0.0 255.255.0.0 10.0.12.3\n",
    );
    let mut net = Network::default();
    net.add_router(r1);
    let ribs = net.solve();
    let rib = &ribs["r1"];
    let hit = Network::lookup(rib, Ipv4Addr::new(10, 5, 1, 1)).unwrap();
    assert_eq!(hit.prefix, "10.5.0.0/16".parse().unwrap());
    let other = Network::lookup(rib, Ipv4Addr::new(10, 6, 1, 1)).unwrap();
    assert_eq!(other.prefix, "10.0.0.0/8".parse().unwrap());
    assert!(Network::lookup(rib, Ipv4Addr::new(11, 0, 0, 1)).is_none());
}

/// Local equivalence ⇒ equal routing solutions (Theorem 3.3, empirically):
/// replace r1's Cisco config with a behaviorally equivalent Juniper config
/// and the peer's RIB must not change.
#[test]
fn theorem_3_3_equivalent_replacement_preserves_solution() {
    let cisco = two_router_net("permit");
    let juniper_r1 = load(
        "system { host-name r1; }
        interfaces {
            Gi0/0 { unit 0 { family inet { address 10.0.12.1/24; } } }
            Loopback0 { unit 0 { family inet { address 192.0.2.1/32; } } }
        }
        policy-options {
            prefix-list ORIG { 203.0.113.0/24; }
            policy-statement EXPORT {
                term t1 {
                    from prefix-list-filter ORIG orlonger;
                    then accept;
                }
                term t2 { then reject; }
            }
        }
        routing-options { autonomous-system 65001; }
        protocols {
            bgp {
                group peers {
                    type external;
                    peer-as 65002;
                    export EXPORT;
                    neighbor 10.0.12.2;
                }
            }
        }",
    );
    // NOTE: JunOS cannot literally write IOS interface names; the test uses
    // matching names so the topology isomorphism is the identity.
    let mut replaced = Network::default();
    let mut j = juniper_r1;
    j.name = "r1".to_string();
    // Juniper has no `network` statement: originate via the same prefixes
    // as the Cisco config by injecting BGP networks directly (the paper's
    // replacement workflow translates originations too).
    if let Some(b) = &mut j.bgp {
        b.networks.push((
            "203.0.113.0/24".parse().unwrap(),
            None,
            campion_cfg::Span::line(1),
        ));
        b.networks.push((
            "198.51.100.0/24".parse().unwrap(),
            None,
            campion_cfg::Span::line(1),
        ));
    }
    // Rename flattened Juniper interfaces to match the link names.
    let ifaces: Vec<_> = j.interfaces.values().cloned().collect();
    j.interfaces.clear();
    for mut i in ifaces {
        let name = i.name.trim_end_matches(".0").to_string();
        i.name = name.clone();
        j.interfaces.insert(name, i);
    }
    replaced.add_router(j);
    replaced.add_router(cisco.routers["r2"].clone());
    replaced.link("r1", "Gi0/0", "r2", "Gi0/0");

    let sol1 = cisco.solve();
    let sol2 = replaced.solve();
    // r2's view of the world must be identical.
    assert_eq!(sol1["r2"], sol2["r2"], "Theorem 3.3: peer RIB unchanged");
}
