//! The full-router layer: a network of lowered configurations, the
//! admin-distance RIB merge, and longest-prefix-match forwarding through
//! interface ACLs.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use campion_ir::{NextHopIr, RouterIr};
use campion_net::{Flow, Prefix};

use crate::bgp::{self, BgpRoute};
use crate::ospf::OspfGraph;

/// A point-to-point link between two routers' interfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// First endpoint: (router name, interface name).
    pub a: (String, String),
    /// Second endpoint.
    pub b: (String, String),
}

/// The protocol that installed a RIB entry (ordered by default preference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RibProtocol {
    /// Directly connected subnet (AD 0).
    Connected,
    /// Static route (AD from the route).
    Static,
    /// OSPF-internal (AD 110).
    Ospf,
    /// BGP (AD 20 external / 200 internal; simplified to 20 here).
    Bgp,
}

impl std::fmt::Display for RibProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RibProtocol::Connected => write!(f, "connected"),
            RibProtocol::Static => write!(f, "static"),
            RibProtocol::Ospf => write!(f, "ospf"),
            RibProtocol::Bgp => write!(f, "bgp"),
        }
    }
}

/// One installed route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// Destination.
    pub prefix: Prefix,
    /// Installing protocol.
    pub protocol: RibProtocol,
    /// Administrative distance used for the merge.
    pub admin_distance: u8,
    /// Next-hop router name (empty for connected/discard).
    pub next_hop_router: String,
    /// BGP attributes when applicable (for solution comparison).
    pub local_pref: Option<u32>,
}

/// A simulated network: lowered router configurations plus physical links.
#[derive(Default)]
pub struct Network {
    /// Routers by name.
    pub routers: BTreeMap<String, RouterIr>,
    /// Point-to-point links.
    pub links: Vec<Link>,
}

impl Network {
    /// Add a router.
    pub fn add_router(&mut self, r: RouterIr) {
        self.routers.insert(r.name.clone(), r);
    }

    /// Link two routers' named interfaces.
    pub fn link(&mut self, ra: &str, ia: &str, rb: &str, ib: &str) {
        self.links.push(Link {
            a: (ra.to_string(), ia.to_string()),
            b: (rb.to_string(), ib.to_string()),
        });
    }

    /// The router on the other side of `router`'s interface, if linked.
    fn peer_of(&self, router: &str, iface: &str) -> Option<(&str, &str)> {
        for l in &self.links {
            if l.a.0 == router && l.a.1 == iface {
                return Some((&l.b.0, &l.b.1));
            }
            if l.b.0 == router && l.b.1 == iface {
                return Some((&l.a.0, &l.a.1));
            }
        }
        None
    }

    /// Map a neighbor *address* configured on `router` to the owning peer
    /// router (the peer has that address on a linked interface).
    fn router_owning_addr(&self, addr: Ipv4Addr) -> Option<&str> {
        for (name, r) in &self.routers {
            for iface in r.interfaces.values() {
                if let Some((ip, _)) = iface.address {
                    if ip == addr {
                        return Some(name);
                    }
                }
            }
        }
        None
    }

    /// The address `router` uses on the link toward `peer`, as seen by
    /// `peer` (i.e. `router`'s own interface address facing `peer`).
    fn addr_facing(&self, router: &str, peer: &str) -> Option<Ipv4Addr> {
        for l in &self.links {
            let (mine, theirs) = if l.a.0 == router && l.b.0 == peer {
                (&l.a, &l.b)
            } else if l.b.0 == router && l.a.0 == peer {
                (&l.b, &l.a)
            } else {
                continue;
            };
            let _ = theirs;
            let r = self.routers.get(router)?;
            if let Some(iface) = r.interfaces.get(&mine.1) {
                if let Some((ip, _)) = iface.address {
                    return Some(ip);
                }
            }
        }
        None
    }

    /// Compute every router's RIB: connected, static, OSPF (SPF), and BGP
    /// (iterated to a fixed point), merged by administrative distance.
    pub fn solve(&self) -> BTreeMap<String, Vec<RibEntry>> {
        let mut ribs: BTreeMap<String, Vec<RibEntry>> = BTreeMap::new();

        // Connected + static.
        for (name, r) in &self.routers {
            let rib = ribs.entry(name.clone()).or_default();
            for p in r.connected_routes() {
                rib.push(RibEntry {
                    prefix: p,
                    protocol: RibProtocol::Connected,
                    admin_distance: 0,
                    next_hop_router: String::new(),
                    local_pref: None,
                });
            }
            for s in &r.static_routes {
                let next_hop_router = match &s.next_hop {
                    NextHopIr::Ip(ip) => self.router_owning_addr(*ip).unwrap_or("").to_string(),
                    NextHopIr::Interface(i) => self
                        .peer_of(name, i)
                        .map(|(r, _)| r.to_string())
                        .unwrap_or_default(),
                    NextHopIr::Discard => String::new(),
                };
                rib.push(RibEntry {
                    prefix: s.prefix,
                    protocol: RibProtocol::Static,
                    admin_distance: s.admin_distance,
                    next_hop_router,
                    local_pref: None,
                });
            }
        }

        // OSPF: build the weighted graph from OSPF-enabled interfaces on
        // both ends of each link.
        let mut graph = OspfGraph::default();
        for (name, r) in &self.routers {
            for oi in &r.ospf_interfaces {
                graph
                    .subnets
                    .entry(name.clone())
                    .or_default()
                    .extend(oi.subnet);
                if oi.passive {
                    continue;
                }
                if let Some((peer, peer_iface)) = self.peer_of(name, &oi.iface) {
                    // The adjacency forms only if the peer also runs OSPF
                    // on its side.
                    let peer_ospf = self.routers[peer]
                        .ospf_interfaces
                        .iter()
                        .any(|o| o.iface == peer_iface && !o.passive);
                    if peer_ospf {
                        graph.adj.entry(name.clone()).or_default().push((
                            peer.to_string(),
                            oi.cost.unwrap_or(crate::ospf::DEFAULT_COST),
                        ));
                    }
                }
            }
        }
        for name in self.routers.keys() {
            let rib = ribs.entry(name.clone()).or_default();
            let own: Vec<Prefix> = self.routers[name]
                .ospf_interfaces
                .iter()
                .filter_map(|o| o.subnet)
                .collect();
            for route in graph.spf(name) {
                if own.contains(&route.prefix) {
                    continue; // already connected
                }
                rib.push(RibEntry {
                    prefix: route.prefix,
                    protocol: RibProtocol::Ospf,
                    admin_distance: self.routers[name].ospf_distance.unwrap_or(110),
                    next_hop_router: route.next_hop_router,
                    local_pref: None,
                });
            }
        }

        // BGP: synchronous iteration to a fixed point over Loc-RIBs.
        let mut loc_rib: BTreeMap<String, BTreeMap<Prefix, BgpRoute>> = BTreeMap::new();
        for (name, r) in &self.routers {
            let mut originated = BTreeMap::new();
            if let Some(b) = &r.bgp {
                for (p, _, _) in &b.networks {
                    originated.insert(*p, BgpRoute::originate(*p));
                }
                for rd in &b.redistribute {
                    // Redistribute matching RIB routes into BGP, filtered by
                    // the redistribution policy.
                    let proto = match rd.from_protocol {
                        campion_ir::RouteProtocol::Connected => RibProtocol::Connected,
                        campion_ir::RouteProtocol::Static => RibProtocol::Static,
                        campion_ir::RouteProtocol::Ospf => RibProtocol::Ospf,
                        _ => continue,
                    };
                    let policy = rd.policy.as_ref().map(|n| r.policy_or_permit(n));
                    for entry in ribs.get(name).into_iter().flatten() {
                        if entry.protocol != proto {
                            continue;
                        }
                        let mut route = BgpRoute::originate(entry.prefix);
                        route.advert.protocol = rd.from_protocol;
                        if let Some(p) = &policy {
                            let v = p.evaluate(&route.advert);
                            if !v.accept {
                                continue;
                            }
                            route.advert = v.route;
                        }
                        route.advert.protocol = campion_ir::RouteProtocol::Bgp;
                        originated.insert(entry.prefix, route);
                    }
                }
            }
            loc_rib.insert(name.clone(), originated);
        }
        for _round in 0..(4 * self.routers.len() + 8) {
            let mut next = loc_rib.clone();
            let mut changed = false;
            for (name, r) in &self.routers {
                let Some(b) = &r.bgp else { continue };
                let mut candidates: Vec<BgpRoute> = loc_rib[name].values().cloned().collect();
                // Receive from each neighbor.
                for addr in b.neighbors.keys() {
                    let Some(peer) = self.router_owning_addr(*addr) else {
                        continue;
                    };
                    let Some(peer_cfg) = self.routers.get(peer) else {
                        continue;
                    };
                    // The peer must also have a session back to us.
                    let my_addr = self.addr_facing(name, peer);
                    let has_session = my_addr
                        .map(|a| {
                            peer_cfg
                                .bgp
                                .as_ref()
                                .is_some_and(|pb| pb.neighbors.contains_key(&a))
                        })
                        .unwrap_or(false);
                    if !has_session {
                        continue;
                    }
                    let my_addr = my_addr.expect("checked");
                    for route in loc_rib[peer].values() {
                        if let Some(exported) = bgp::export(peer_cfg, my_addr, route) {
                            if let Some(imported) = bgp::import(r, *addr, exported) {
                                candidates.push(imported);
                            }
                        }
                    }
                }
                let best = bgp::best_routes(&candidates);
                if best != loc_rib[name] {
                    changed = true;
                }
                next.insert(name.clone(), best);
            }
            loc_rib = next;
            if !changed {
                break;
            }
        }
        for (name, routes) in &loc_rib {
            let rib = ribs.entry(name.clone()).or_default();
            for route in routes.values() {
                let next_hop_router = if route.learned_from == Ipv4Addr::UNSPECIFIED {
                    String::new()
                } else {
                    self.router_owning_addr(route.learned_from)
                        .unwrap_or("")
                        .to_string()
                };
                rib.push(RibEntry {
                    prefix: route.advert.prefix,
                    protocol: RibProtocol::Bgp,
                    admin_distance: 20,
                    next_hop_router,
                    local_pref: Some(route.advert.local_pref),
                });
            }
        }

        // Admin-distance merge: keep the best entry per prefix.
        for rib in ribs.values_mut() {
            rib.sort_by(|a, b| {
                a.prefix
                    .cmp(&b.prefix)
                    .then(a.admin_distance.cmp(&b.admin_distance))
                    .then(a.protocol.cmp(&b.protocol))
                    .then(a.next_hop_router.cmp(&b.next_hop_router))
            });
            rib.dedup_by(|a, b| a.prefix == b.prefix);
        }
        ribs
    }

    /// Longest-prefix-match lookup in a solved RIB.
    pub fn lookup(rib: &[RibEntry], dst: Ipv4Addr) -> Option<&RibEntry> {
        rib.iter()
            .filter(|e| e.prefix.contains_addr(dst))
            .max_by_key(|e| e.prefix.len())
    }

    /// Forward a flow out of `router`: apply the ingress interface's
    /// inbound ACL (if named), look up the FIB, and report the decision.
    pub fn forwards(
        &self,
        ribs: &BTreeMap<String, Vec<RibEntry>>,
        router: &str,
        ingress_iface: Option<&str>,
        flow: &Flow,
    ) -> bool {
        let Some(r) = self.routers.get(router) else {
            return false;
        };
        if let Some(iface) = ingress_iface {
            if let Some(i) = r.interfaces.get(iface) {
                if let Some(acl_name) = &i.acl_in {
                    if let Some(acl) = r.acls.get(acl_name) {
                        if !acl.permits(flow) {
                            return false;
                        }
                    }
                }
            }
        }
        let Some(rib) = ribs.get(router) else {
            return false;
        };
        Self::lookup(rib, flow.dst_ip).is_some()
    }
}
