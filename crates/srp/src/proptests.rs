//! Property tests for the simulator: the SPF implementation against a
//! brute-force Floyd–Warshall oracle, and SRP solver invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;

use crate::ospf::OspfGraph;
use crate::srp::Srp;

const N: usize = 5;

fn names() -> Vec<String> {
    (0..N).map(|i| format!("r{i}")).collect()
}

prop_compose! {
    /// A random symmetric weighted graph over N nodes.
    fn arb_graph()(
        edges in proptest::collection::vec(
            (0..N, 0..N, 1u32..20), 2..12
        )
    ) -> OspfGraph {
        let names = names();
        let mut g = OspfGraph::default();
        for (a, b, w) in edges {
            if a == b {
                continue;
            }
            // Symmetric costs keep the oracle simple.
            g.adj.entry(names[a].clone()).or_default().push((names[b].clone(), w));
            g.adj.entry(names[b].clone()).or_default().push((names[a].clone(), w));
        }
        // Every node advertises one subnet derived from its index.
        for (i, n) in names.iter().enumerate() {
            g.subnets.insert(
                n.clone(),
                vec![format!("10.{i}.0.0/16").parse().expect("valid prefix")],
            );
        }
        g
    }
}

/// Floyd–Warshall all-pairs shortest distances.
fn oracle(g: &OspfGraph) -> BTreeMap<(String, String), u32> {
    let names = names();
    let mut d: BTreeMap<(String, String), u32> = BTreeMap::new();
    for a in &names {
        d.insert((a.clone(), a.clone()), 0);
    }
    for (from, adj) in &g.adj {
        for (to, w) in adj {
            let e = d.entry((from.clone(), to.clone())).or_insert(u32::MAX);
            *e = (*e).min(*w);
        }
    }
    for k in &names {
        for i in &names {
            for j in &names {
                let (Some(&ik), Some(&kj)) = (
                    d.get(&(i.clone(), k.clone())),
                    d.get(&(k.clone(), j.clone())),
                ) else {
                    continue;
                };
                let through = ik.saturating_add(kj);
                let e = d.entry((i.clone(), j.clone())).or_insert(u32::MAX);
                *e = (*e).min(through);
            }
        }
    }
    d
}

proptest! {
    /// SPF route costs equal the oracle's shortest distances.
    #[test]
    fn spf_matches_floyd_warshall(g in arb_graph()) {
        let dists = oracle(&g);
        for src in names() {
            for route in g.spf(&src) {
                // Which router advertises this subnet cheapest?
                let best = names()
                    .iter()
                    .filter(|dst| {
                        g.subnets
                            .get(*dst)
                            .is_some_and(|s| s.contains(&route.prefix))
                    })
                    .filter_map(|dst| dists.get(&(src.clone(), dst.clone())).copied())
                    .min()
                    .expect("some advertiser reachable");
                prop_assert_eq!(
                    route.cost, best,
                    "src {} prefix {}", src, route.prefix
                );
            }
        }
    }

    /// SPF never produces a route to the source's own subnet, and every
    /// reachable advertiser's subnet is present.
    #[test]
    fn spf_coverage(g in arb_graph()) {
        let dists = oracle(&g);
        for src in names() {
            let routes = g.spf(&src);
            for dst in names() {
                if dst == src {
                    continue;
                }
                let reachable = dists.contains_key(&(src.clone(), dst.clone()));
                let has_route = g.subnets[&dst]
                    .iter()
                    .all(|p| routes.iter().any(|r| r.prefix == *p));
                if reachable {
                    prop_assert!(has_route, "{} should reach {}", src, dst);
                }
            }
        }
    }

    /// The abstract SRP with additive transfer and min preference computes
    /// shortest hop counts (oracle: Floyd–Warshall over unit weights).
    #[test]
    fn srp_hop_counts(
        edges in proptest::collection::vec((0..N, 0..N), 2..12)
    ) {
        let names = names();
        let mut g = OspfGraph::default();
        let mut srp_edges = Vec::new();
        for (a, b) in &edges {
            if a == b { continue; }
            srp_edges.push((names[*a].clone(), names[*b].clone()));
            srp_edges.push((names[*b].clone(), names[*a].clone()));
            g.adj.entry(names[*a].clone()).or_default().push((names[*b].clone(), 1));
            g.adj.entry(names[*b].clone()).or_default().push((names[*a].clone(), 1));
        }
        if srp_edges.is_empty() {
            return Ok(());
        }
        let dists = oracle(&g);
        let dest = srp_edges[0].0.clone();
        let srp = Srp {
            edges: srp_edges,
            destination: dest.clone(),
            initial: 0u32,
            transfer: Box::new(|_, _, r| Some(r + 1)),
            prefer: Box::new(|x, y| x < y),
        };
        let sol = srp.solve().expect("converges");
        for (node, route) in &sol {
            let want = dists.get(&(node.clone(), dest.clone())).copied();
            match (route, want) {
                (Some(hops), Some(d)) => prop_assert_eq!(*hops, d, "node {}", node),
                (None, None) => {}
                (None, Some(0)) => prop_assert_eq!(node, &dest),
                (r, w) => prop_assert!(
                    false,
                    "node {node}: srp {r:?} vs oracle {w:?}"
                ),
            }
        }
    }
}
