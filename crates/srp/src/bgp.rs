//! The BGP instantiation: route advertisements transformed by export and
//! import policies, selected by the standard decision process.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use campion_ir::{RouteAdvert, RouterIr};
use campion_net::Prefix;

/// A BGP route as held in a router's Adj-RIB-In / Loc-RIB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpRoute {
    /// The transformed advertisement (prefix, communities, local-pref,
    /// MED, tag...).
    pub advert: RouteAdvert,
    /// AS-path length accumulated so far (hop count across eBGP edges).
    pub as_path_len: u32,
    /// Whether the route was learned over eBGP.
    pub ebgp: bool,
    /// The neighbor it was learned from.
    pub learned_from: Ipv4Addr,
}

impl BgpRoute {
    /// An originated route (empty AS path, default attributes).
    pub fn originate(prefix: Prefix) -> Self {
        BgpRoute {
            advert: RouteAdvert::bgp(prefix),
            as_path_len: 0,
            ebgp: false,
            learned_from: Ipv4Addr::UNSPECIFIED,
        }
    }

    /// The standard BGP decision process, returning `Ordering::Greater`
    /// when `self` is preferred over `other`:
    /// highest weight → highest local-pref → shortest AS path → lowest MED
    /// → eBGP over iBGP → lowest neighbor address.
    pub fn compare(&self, other: &BgpRoute) -> Ordering {
        self.advert
            .weight
            .cmp(&other.advert.weight)
            .then(self.advert.local_pref.cmp(&other.advert.local_pref))
            .then(other.as_path_len.cmp(&self.as_path_len))
            .then(other.advert.metric.cmp(&self.advert.metric))
            .then(self.ebgp.cmp(&other.ebgp))
            .then(other.learned_from.cmp(&self.learned_from))
    }

    /// Is `self` strictly preferred?
    pub fn preferred_over(&self, other: &BgpRoute) -> bool {
        self.compare(other) == Ordering::Greater
    }
}

/// Apply a router's export processing toward `neighbor`: export policy,
/// community stripping when `send-community` is off, AS-path extension on
/// eBGP edges.
pub fn export(router: &RouterIr, neighbor: Ipv4Addr, route: &BgpRoute) -> Option<BgpRoute> {
    let bgp = router.bgp.as_ref()?;
    let ncfg = bgp.neighbors.get(&neighbor)?;
    let ebgp_edge = ncfg.remote_as.is_some() && ncfg.remote_as != Some(bgp.asn);
    // iBGP split horizon: a route learned from an iBGP peer is only
    // propagated to other iBGP peers when this router reflects (the
    // neighbor or the source is a route-reflector client).
    if !route.ebgp && !ebgp_edge && route.learned_from != Ipv4Addr::UNSPECIFIED {
        let source_is_client = bgp
            .neighbors
            .get(&route.learned_from)
            .is_some_and(|n| n.route_reflector_client);
        if !source_is_client && !ncfg.route_reflector_client {
            return None;
        }
    }
    let policy = match &ncfg.export_policy {
        Some(name) => router.policy_or_permit(name),
        None => campion_ir::RoutePolicy::permit_all("(no export policy)"),
    };
    let verdict = policy.evaluate(&route.advert);
    if !verdict.accept {
        return None;
    }
    let mut advert = verdict.route;
    if !ncfg.send_community {
        advert.communities.clear();
    }
    // Weight is router-local and never propagates.
    advert.weight = 0;
    // MED propagates to eBGP neighbors as set; local-pref only crosses iBGP.
    if ebgp_edge {
        advert.local_pref = 100;
    }
    Some(BgpRoute {
        advert,
        as_path_len: route.as_path_len + u32::from(ebgp_edge),
        ebgp: ebgp_edge,
        learned_from: Ipv4Addr::UNSPECIFIED, // filled at the receiver
    })
}

/// Apply the receiving router's import processing from `neighbor`.
pub fn import(router: &RouterIr, neighbor: Ipv4Addr, mut route: BgpRoute) -> Option<BgpRoute> {
    let bgp = router.bgp.as_ref()?;
    let ncfg = bgp.neighbors.get(&neighbor)?;
    let policy = match &ncfg.import_policy {
        Some(name) => router.policy_or_permit(name),
        None => campion_ir::RoutePolicy::permit_all("(no import policy)"),
    };
    let verdict = policy.evaluate(&route.advert);
    if !verdict.accept {
        return None;
    }
    route.advert = verdict.route;
    route.learned_from = neighbor;
    Some(route)
}

/// Pick the best route per prefix from a set of candidates.
pub fn best_routes(candidates: &[BgpRoute]) -> BTreeMap<Prefix, BgpRoute> {
    let mut best: BTreeMap<Prefix, BgpRoute> = BTreeMap::new();
    for c in candidates {
        match best.get(&c.advert.prefix) {
            Some(cur) if !c.preferred_over(cur) => {}
            _ => {
                best.insert(c.advert.prefix, c.clone());
            }
        }
    }
    best
}

/// A router's Adj-RIB-In: candidates per (prefix, neighbor).
pub type BgpRibIn = BTreeMap<(Prefix, Ipv4Addr), BgpRoute>;
