//! # campion-srp — a stable-routing-problem control-plane simulator
//!
//! The paper's soundness theorem (§3.4) states that two *locally
//! equivalent* networks — isomorphic topologies whose corresponding edges
//! carry behaviorally equivalent configurations — compute the same routing
//! solutions, which is why Campion can be **protocol-free**: it never needs
//! to model BGP or OSPF themselves.
//!
//! This crate makes that theorem *testable* in this reproduction. It
//! implements:
//!
//! * the abstract **SRP** of Definition 3.1 ([`srp`]): a topology, a route
//!   domain, per-edge transfer functions, and a preference relation, with a
//!   synchronous fixed-point solver;
//! * a **BGP instantiation** ([`bgp`]): route advertisements transformed by
//!   the routers' export/import [`RoutePolicy`](campion_ir::RoutePolicy)s,
//!   selected by the standard decision process (weight, local-pref, AS-path
//!   length, MED, neighbor address);
//! * an **OSPF instantiation** ([`ospf`]): Dijkstra over configured link
//!   costs;
//! * a **RIB/FIB layer** ([`network`]): admin-distance merge of connected,
//!   static, OSPF and BGP routes, longest-prefix-match forwarding, and
//!   interface ACL evaluation.
//!
//! The workspace integration tests use it to check, end to end: when
//! Campion reports *no differences* between two routers, substituting one
//! for the other inside a simulated network leaves every router's routing
//! solution unchanged.

#![warn(missing_docs)]

pub mod bgp;
pub mod network;
pub mod ospf;
pub mod srp;

pub use bgp::{BgpRibIn, BgpRoute};
pub use network::{Link, Network, RibEntry, RibProtocol};
pub use ospf::OspfRoute;
pub use srp::{SolveError, Srp};

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod tests;
