//! The OSPF instantiation: Dijkstra over configured interface costs.

use std::collections::{BTreeMap, BinaryHeap};

use campion_net::Prefix;

/// The default OSPF interface cost when neither a cost nor a reference
/// bandwidth applies (IOS default for ≥100 Mbps interfaces).
pub const DEFAULT_COST: u32 = 1;

/// One OSPF-computed route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OspfRoute {
    /// Destination subnet.
    pub prefix: Prefix,
    /// Total path cost.
    pub cost: u32,
    /// First-hop router on the shortest path (empty at the source).
    pub next_hop_router: String,
}

/// A weighted adjacency for OSPF SPF: per router, the list of
/// `(neighbor router, egress cost, advertised subnets of the neighbor)`.
#[derive(Debug, Clone, Default)]
pub struct OspfGraph {
    /// `adj[router] = [(neighbor, cost_of_egress_interface)]`.
    pub adj: BTreeMap<String, Vec<(String, u32)>>,
    /// Subnets each router advertises into OSPF (its OSPF-enabled
    /// interface subnets).
    pub subnets: BTreeMap<String, Vec<Prefix>>,
}

impl OspfGraph {
    /// Shortest-path tree from `source`; returns the OSPF routes `source`
    /// installs (one per remote subnet, with total cost including the
    /// destination's advertised subnet).
    pub fn spf(&self, source: &str) -> Vec<OspfRoute> {
        // Dijkstra with deterministic tie-breaking on router name.
        let mut dist: BTreeMap<&str, (u32, String)> = BTreeMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, &str, String)>> = BinaryHeap::new();
        dist.insert(source, (0, String::new()));
        heap.push(std::cmp::Reverse((0, source, String::new())));
        while let Some(std::cmp::Reverse((d, node, first_hop))) = heap.pop() {
            if let Some((best, _)) = dist.get(node) {
                if d > *best {
                    continue;
                }
            }
            let Some(neighbors) = self.adj.get(node) else {
                continue;
            };
            for (next, cost) in neighbors {
                let nd = d + cost;
                let nfh = if node == source {
                    next.clone()
                } else {
                    first_hop.clone()
                };
                let better = match dist.get(next.as_str()) {
                    None => true,
                    Some((cur, cur_fh)) => nd < *cur || (nd == *cur && nfh < *cur_fh),
                };
                if better {
                    dist.insert(next.as_str(), (nd, nfh.clone()));
                    heap.push(std::cmp::Reverse((nd, next.as_str(), nfh)));
                }
            }
        }
        let mut out = Vec::new();
        for (router, (cost, first_hop)) in &dist {
            if router == &source {
                continue;
            }
            for subnet in self.subnets.get(*router).into_iter().flatten() {
                out.push(OspfRoute {
                    prefix: *subnet,
                    cost: *cost,
                    next_hop_router: first_hop.clone(),
                });
            }
        }
        // Keep the cheapest route per subnet (two routers may share one).
        let mut best: BTreeMap<Prefix, OspfRoute> = BTreeMap::new();
        for r in out {
            match best.get(&r.prefix) {
                Some(cur) if (cur.cost, &cur.next_hop_router) <= (r.cost, &r.next_hop_router) => {}
                _ => {
                    best.insert(r.prefix, r);
                }
            }
        }
        best.into_values().collect()
    }
}
