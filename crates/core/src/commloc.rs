//! Community localization — the extension the paper sketches in §3.2 and
//! §4 ("It is possible to extend HeaderLocalize to provide exhaustive
//! information across multiple parts of a route advertisement") but left
//! unimplemented: instead of a single example community, report the
//! **complete set of community conditions** under which a difference
//! manifests.
//!
//! The difference predicate is projected onto the community-atom variables
//! and decomposed into its satisfying cubes; each cube is a conjunction of
//! required/forbidden atoms ("with 10:10, without 10:11"). The cubes are
//! disjoint and together cover exactly the community dimension of the
//! difference, mirroring what the prefix-range representation does for the
//! destination-prefix dimension.

use campion_bdd::Bdd;
use campion_symbolic::{AtomKey, RouteSpace, PROTO_VARS};

/// One community condition: atoms that must be present and atoms that must
/// be absent (unmentioned atoms are irrelevant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityCondition {
    /// Atoms the route must carry.
    pub with: Vec<AtomKey>,
    /// Atoms the route must not carry.
    pub without: Vec<AtomKey>,
}

impl std::fmt::Display for CommunityCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if !self.with.is_empty() {
            let cs: Vec<String> = self.with.iter().map(|a| a.to_string()).collect();
            parts.push(format!("with {}", cs.join(", ")));
        }
        if !self.without.is_empty() {
            let cs: Vec<String> = self.without.iter().map(|a| a.to_string()).collect();
            parts.push(format!("without {}", cs.join(", ")));
        }
        if parts.is_empty() {
            parts.push("any communities".to_string());
        }
        write!(f, "{}", parts.join("; "))
    }
}

/// The exhaustive community localization of a difference.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommunityLocalization {
    /// Disjoint conditions whose union is the community dimension of the
    /// difference. Empty means the difference does not constrain
    /// communities at all.
    pub conditions: Vec<CommunityCondition>,
}

impl CommunityLocalization {
    /// True when the difference is community-independent.
    pub fn is_unconstrained(&self) -> bool {
        self.conditions.is_empty()
    }
}

impl std::fmt::Display for CommunityLocalization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_unconstrained() {
            return write!(f, "(any communities)");
        }
        let parts: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join("\nor "))
    }
}

/// Localize the community dimension of a difference predicate.
///
/// Projects `input` onto the community-atom variables (existentially
/// quantifying everything else) and enumerates the satisfying cubes. When
/// the projection is the constant `true` — the difference happens whatever
/// the communities are — the result is unconstrained.
pub fn community_localize(space: &mut RouteSpace, input: Bdd) -> CommunityLocalization {
    let atoms = space.atoms().to_vec();
    if atoms.is_empty() {
        return CommunityLocalization::default();
    }
    let comm_base = PROTO_VARS.end;
    let comm_end = comm_base + atoms.len() as u32;
    // Quantify away everything but the atom variables.
    let mut other: Vec<u32> = (0..comm_base).collect();
    other.extend(comm_end..space.num_vars());
    let projected = space.manager.exists(input, &other);
    if space.manager.is_true(projected) {
        return CommunityLocalization::default();
    }
    let mut conditions = Vec::new();
    for cube in space.manager.sat_cubes(projected) {
        let mut with = Vec::new();
        let mut without = Vec::new();
        for (i, atom) in atoms.iter().enumerate() {
            match cube.get(comm_base + i as u32) {
                Some(true) => with.push(atom.clone()),
                Some(false) => without.push(atom.clone()),
                None => {}
            }
        }
        conditions.push(CommunityCondition { with, without });
    }
    CommunityLocalization { conditions }
}

/// The full set of community atoms a difference predicate actually depends
/// on, in variable (interning) order.
///
/// This closes the gap the module header notes for the *default* report
/// mode: instead of quoting a single example community from one satisfying
/// assignment, `Present` lists every community the difference disagrees on
/// (bounded at render time — see `COMMUNITY_LIST_CAP` in the driver). The
/// set is computed from the BDD support, so an atom appears exactly when
/// some pair of routes differing only in that community is treated
/// differently by the two configurations — both polarities (must-carry and
/// must-not-carry) count.
pub fn disagreeing_communities(space: &mut RouteSpace, input: Bdd) -> Vec<AtomKey> {
    let atoms = space.atoms();
    if atoms.is_empty() {
        return Vec::new();
    }
    let comm_base = PROTO_VARS.end;
    let comm_end = comm_base + atoms.len() as u32;
    space
        .manager
        .support(input)
        .into_iter()
        .filter(|v| (comm_base..comm_end).contains(v))
        .map(|v| atoms[(v - comm_base) as usize].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use campion_cfg::parse_config;
    use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
    use campion_ir::lower;
    use campion_net::Community;

    use crate::semantic::{policy_paths, semantic_diff};

    #[test]
    fn figure1_difference2_communities_are_exhaustive() {
        let c = lower(&parse_config(FIGURE1_CISCO).expect("parse")).expect("lower");
        let j = lower(&parse_config(FIGURE1_JUNIPER).expect("parse")).expect("lower");
        let p1 = &c.policies["POL"];
        let p2 = &j.policies["POL"];
        let mut space = RouteSpace::for_policies(&[p1, p2]);
        let u = space.universe();
        let paths1 = policy_paths(&mut space, p1, u);
        let paths2 = policy_paths(&mut space, p2, u);
        let diffs = semantic_diff(&mut space.manager, &paths1, &paths2);
        assert_eq!(diffs.len(), 2);
        // Difference 2 (community bug): the exact condition is
        // "exactly one of 10:10, 10:11".
        let loc = community_localize(&mut space, diffs[1].input);
        assert_eq!(loc.conditions.len(), 2, "{loc}");
        let c10 = AtomKey::Literal(Community::new(10, 10));
        let c11 = AtomKey::Literal(Community::new(10, 11));
        assert!(loc
            .conditions
            .iter()
            .any(|c| c.with == vec![c10.clone()] && c.without == vec![c11.clone()]));
        assert!(loc
            .conditions
            .iter()
            .any(|c| c.with == vec![c11.clone()] && c.without == vec![c10.clone()]));
        let rendered = loc.to_string();
        assert!(rendered.contains("with 10:10; without 10:11"), "{rendered}");
    }

    #[test]
    fn figure1_difference1_community_conditions() {
        let c = lower(&parse_config(FIGURE1_CISCO).expect("parse")).expect("lower");
        let j = lower(&parse_config(FIGURE1_JUNIPER).expect("parse")).expect("lower");
        let p1 = &c.policies["POL"];
        let p2 = &j.policies["POL"];
        let mut space = RouteSpace::for_policies(&[p1, p2]);
        let u = space.universe();
        let paths1 = policy_paths(&mut space, p1, u);
        let paths2 = policy_paths(&mut space, p2, u);
        let diffs = semantic_diff(&mut space.manager, &paths1, &paths2);
        // Difference 1 constrains communities only negatively (must not
        // carry both, or Juniper would reject too): not both 10:10 & 10:11.
        let loc = community_localize(&mut space, diffs[0].input);
        assert!(!loc.is_unconstrained());
        // Every condition forbids at least one of the two communities.
        for cond in &loc.conditions {
            assert!(!cond.without.is_empty(), "{loc}");
        }
    }

    /// Shared body for the per-direction disagreeing-set tests: compare
    /// `first` against `second` and assert the community-dependent
    /// difference reports the *complete* atom set, not one example.
    fn assert_full_disagreeing_set(first: &str, second: &str) {
        let a = lower(&parse_config(first).expect("parse")).expect("lower");
        let b = lower(&parse_config(second).expect("parse")).expect("lower");
        let p1 = &a.policies["POL"];
        let p2 = &b.policies["POL"];
        let mut space = RouteSpace::for_policies(&[p1, p2]);
        let u = space.universe();
        let paths1 = policy_paths(&mut space, p1, u);
        let paths2 = policy_paths(&mut space, p2, u);
        let diffs = semantic_diff(&mut space.manager, &paths1, &paths2);
        assert_eq!(diffs.len(), 2);
        // The community bug is one of the two differences; which slot it
        // lands in depends on the enumeration side, so find it by its
        // non-prefix dependence.
        let set = diffs
            .iter()
            .map(|d| disagreeing_communities(&mut space, d.input))
            .max_by_key(Vec::len)
            .expect("two diffs");
        let c10 = AtomKey::Literal(Community::new(10, 10));
        let c11 = AtomKey::Literal(Community::new(10, 11));
        assert!(set.contains(&c10), "10:10 missing from {set:?}");
        assert!(set.contains(&c11), "10:11 missing from {set:?}");
        assert_eq!(set.len(), 2, "{set:?}");
    }

    #[test]
    fn disagreeing_set_is_complete_forward_direction() {
        // Cisco as router 1: the side whose community list fires.
        assert_full_disagreeing_set(FIGURE1_CISCO, FIGURE1_JUNIPER);
    }

    #[test]
    fn disagreeing_set_is_complete_reverse_direction() {
        // Juniper as router 1: the same difference seen from the other
        // side must report the identical community set.
        assert_full_disagreeing_set(FIGURE1_JUNIPER, FIGURE1_CISCO);
    }

    #[test]
    fn disagreeing_set_empty_without_community_dependence() {
        let c =
            lower(&parse_config("route-map A permit 10\nroute-map B deny 10\n").expect("parse"))
                .expect("lower");
        let p1 = &c.policies["A"];
        let p2 = &c.policies["B"];
        let mut space = RouteSpace::for_policies(&[p1, p2]);
        let u = space.universe();
        let paths1 = policy_paths(&mut space, p1, u);
        let paths2 = policy_paths(&mut space, p2, u);
        let diffs = semantic_diff(&mut space.manager, &paths1, &paths2);
        assert!(disagreeing_communities(&mut space, diffs[0].input).is_empty());
    }

    #[test]
    fn unconstrained_when_no_community_vars() {
        let c =
            lower(&parse_config("route-map A permit 10\nroute-map B deny 10\n").expect("parse"))
                .expect("lower");
        let p1 = &c.policies["A"];
        let p2 = &c.policies["B"];
        let mut space = RouteSpace::for_policies(&[p1, p2]);
        let u = space.universe();
        let paths1 = policy_paths(&mut space, p1, u);
        let paths2 = policy_paths(&mut space, p2, u);
        let diffs = semantic_diff(&mut space.manager, &paths1, &paths2);
        assert_eq!(diffs.len(), 1);
        let loc = community_localize(&mut space, diffs[0].input);
        assert!(loc.is_unconstrained());
        assert_eq!(loc.to_string(), "(any communities)");
    }
}
