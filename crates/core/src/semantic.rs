//! SemanticDiff (§3.1): path equivalence classes and their pairwise
//! comparison.
//!
//! Both ACLs and route policies are sequences of *if-then-else* guards, so
//! the space of inputs partitions by which guards fire. Each class carries
//! the BDD predicate selecting it, the composed [`ActionEffect`] of its
//! path, and the spans/labels of the clauses on the path (for text
//! localization). Comparing two components is then a pairwise intersection:
//! classes with a nonempty intersection and different effects are
//! behavioral differences — the quintuples `(i, a₁, a₂, t₁, t₂)` of the
//! paper.

//! ## GC root discipline
//!
//! The BDD manager only collects at explicit safe points
//! ([`campion_bdd::Manager::gc_checkpoint`]), so locals that never span a
//! checkpoint need no registration. The functions here place a checkpoint
//! after every processed rule / path frame / outer diff row, and therefore
//! root exactly what they hold across those boundaries: the active frontier
//! (`remaining`, the exploration stack's predicates and symbolic states)
//! and their outputs. **Returned [`PolicyPath`] predicates and
//! [`SemanticDifference`] inputs stay protected**: callers release them via
//! [`release_paths`] (or per-handle `unprotect`) once done.

use campion_bdd::{AnyManager, Bdd};
use campion_cfg::Span;
use campion_ir::{AclIr, AclRuleIr, RoutePolicy, Terminal};
use campion_net::{PortRange, WildcardMask};
use campion_symbolic::{ActionEffect, PacketSpace, RouteSpace, RuleKey, SymbolicRoute};

/// One path equivalence class through a component.
#[derive(Debug, Clone)]
pub struct PolicyPath {
    /// Inputs taking this path (already intersected with the universe).
    pub predicate: Bdd,
    /// The path's composed, normalized effect.
    pub effect: ActionEffect,
    /// Labels of the clauses that fired on this path (empty for the
    /// implicit default).
    pub labels: Vec<String>,
    /// Spans of the fired clauses.
    pub spans: Vec<Span>,
    /// Whether the policy's implicit default decided this path.
    pub is_default: bool,
    /// Whether any fired clause matched on a non-prefix field (community,
    /// tag, metric, protocol). Drives the paper's "single example for other
    /// fields" presentation rule.
    pub non_prefix_match: bool,
}

/// Safety valve: fall-through-heavy policies can in principle produce
/// exponentially many paths; beyond this many live states we give up rather
/// than hang (never reached by realistic configurations).
const MAX_PATHS: usize = 65_536;

/// Enumerate the path equivalence classes of a route policy.
///
/// Fall-through clauses (JunOS non-terminating terms, `next term`, Cisco
/// `continue`) fork the exploration: the symbolic route state carries their
/// rewrites forward so later matches observe them.
///
/// # Panics
/// Panics if the policy exceeds `MAX_PATHS` (65 536) classes.
pub fn policy_paths(
    space: &mut RouteSpace,
    policy: &RoutePolicy,
    universe: Bdd,
) -> Vec<PolicyPath> {
    campion_trace::span!("semdiff.policy_paths");
    struct Frame {
        idx: usize,
        predicate: Bdd,
        effect: ActionEffect,
        state: campion_symbolic::SymbolicRoute,
        labels: Vec<String>,
        spans: Vec<Span>,
        non_prefix: bool,
    }
    // Every frame on the exploration stack is held across checkpoints, so
    // its predicate and symbolic community functions are rooted at push and
    // released once the frame has been fully processed.
    fn protect_frame(m: &mut AnyManager, predicate: Bdd, state: &SymbolicRoute) {
        m.protect(predicate);
        for &b in &state.comm {
            m.protect(b);
        }
    }
    let mut out = Vec::new();
    let initial = space.initial_state();
    protect_frame(&mut space.manager, universe, &initial);
    let mut stack = vec![Frame {
        idx: 0,
        predicate: universe,
        effect: ActionEffect::default(),
        state: initial,
        labels: Vec::new(),
        spans: Vec::new(),
        non_prefix: false,
    }];
    while let Some(f) = stack.pop() {
        assert!(
            out.len() + stack.len() < MAX_PATHS,
            "policy {} exceeds {MAX_PATHS} path classes",
            policy.name
        );
        // The popped frame's roots are released at the bottom of the loop;
        // remember them now because the fallthrough branch moves `f.state`.
        let popped_predicate = f.predicate;
        let popped_comm = f.state.comm.clone();
        if space.manager.is_false(f.predicate) {
            // Dead branch: nothing to emit.
        } else if f.idx == policy.clauses.len() {
            // Implicit default.
            let mut effect = f.effect;
            effect.accept = policy.default_terminal == Terminal::Accept;
            space.manager.protect(f.predicate);
            out.push(PolicyPath {
                predicate: f.predicate,
                effect: effect.normalized(),
                labels: f.labels,
                spans: f.spans,
                is_default: true,
                non_prefix_match: f.non_prefix,
            });
        } else {
            let clause = &policy.clauses[f.idx];
            let mut cond = Bdd::TRUE;
            for m in &clause.matches {
                let b = space.match_bdd(m, &f.state);
                cond = space.manager.and(cond, b);
            }
            let fire = space.manager.and(f.predicate, cond);
            let skip = space.manager.diff(f.predicate, cond);
            // Non-matching branch: continue with unchanged state.
            if space.manager.is_sat(skip) {
                protect_frame(&mut space.manager, skip, &f.state);
                stack.push(Frame {
                    idx: f.idx + 1,
                    predicate: skip,
                    effect: f.effect.clone(),
                    state: f.state.clone(),
                    labels: f.labels.clone(),
                    spans: f.spans.clone(),
                    non_prefix: f.non_prefix,
                });
            }
            // Matching branch.
            if space.manager.is_sat(fire) {
                let mut effect = f.effect;
                effect.apply_all(&clause.sets);
                let mut labels = f.labels;
                labels.push(clause.label.clone());
                let mut spans = f.spans;
                spans.push(clause.span);
                let non_prefix = f.non_prefix
                    || clause
                        .matches
                        .iter()
                        .any(|m| !matches!(m, campion_ir::Match::Prefix(_)));
                match clause.terminal {
                    Terminal::Accept | Terminal::Reject => {
                        effect.accept = clause.terminal == Terminal::Accept;
                        space.manager.protect(fire);
                        out.push(PolicyPath {
                            predicate: fire,
                            effect: effect.normalized(),
                            labels,
                            spans,
                            is_default: false,
                            non_prefix_match: non_prefix,
                        });
                    }
                    Terminal::Fallthrough => {
                        let mut state = f.state;
                        space.apply_sets(&mut state, &clause.sets);
                        protect_frame(&mut space.manager, fire, &state);
                        stack.push(Frame {
                            idx: f.idx + 1,
                            predicate: fire,
                            effect,
                            state,
                            labels,
                            spans,
                            non_prefix,
                        });
                    }
                }
            }
        }
        space.manager.unprotect(popped_predicate);
        for b in popped_comm {
            space.manager.unprotect(b);
        }
        space.manager.gc_checkpoint();
    }
    out
}

/// Enumerate the path equivalence classes of an ACL (rules are always
/// terminal, so this is linear: one class per reachable rule plus the
/// implicit trailing deny).
pub fn acl_paths(space: &mut PacketSpace, acl: &AclIr, universe: Bdd) -> Vec<PolicyPath> {
    let mut out = Vec::new();
    let mut remaining = universe;
    space.manager.protect(remaining);
    for rule in &acl.rules {
        let cond = space.rule_bdd(rule);
        let fire = space.manager.and(remaining, cond);
        let next = space.manager.diff(remaining, cond);
        // Root the new frontier before releasing the old one: `next` and the
        // accumulated fire predicates are all we hold across the checkpoint;
        // `cond` and the superseded `remaining` become garbage.
        space.manager.protect(next);
        space.manager.unprotect(remaining);
        remaining = next;
        if space.manager.is_sat(fire) {
            space.manager.protect(fire);
            out.push(PolicyPath {
                predicate: fire,
                effect: ActionEffect::terminal(rule.permit),
                labels: vec![rule.label.clone()],
                spans: vec![rule.span],
                is_default: false,
                non_prefix_match: true,
            });
        }
        space.manager.gc_checkpoint();
    }
    if space.manager.is_sat(remaining) {
        // The frontier root carries over as the default path's output root.
        out.push(PolicyPath {
            predicate: remaining,
            effect: ActionEffect::terminal(false),
            labels: Vec::new(),
            spans: Vec::new(),
            is_default: true,
            non_prefix_match: true,
        });
    } else {
        space.manager.unprotect(remaining);
    }
    out
}

/// Difference-restricted path enumeration for an ACL *pair* — the fast
/// path behind [`crate::driver::compare_routers`]'s ACL diffs.
///
/// [`acl_paths`] materializes every class predicate against the full
/// universe, so its `remaining`-chain applys run on BDDs that grow with the
/// ACL — the dominant cost at 10k rules, even though the diff only ever
/// consumes the sliver of each class where the two sides disagree. Real
/// comparison targets are near-identical, so this variant first *aligns*
/// the two rule lists — purely syntactically, on canonical match content
/// plus action ([`RuleKey`]); equal keys encode to the same condition BDD
/// by construction, so no BDD needs to exist before alignment. A rule pair
/// common to an order-preserving alignment decides every packet it
/// first-matches identically on both sides, so disagreements live entirely
/// inside `R` = the union of the *unaligned* rules' conditions — a small
/// set when the configs are close, and the only conditions that get
/// encoded up front. Both sides' classes are then enumerated restricted to
/// `R`, keeping every chain op small; rules structurally disjoint from all
/// of `R`'s generators are skipped without encoding them at all.
///
/// Every difference reported by [`semantic_diff`] satisfies
/// `input = p₁ ∧ p₂ ⊆ R`, and restricting both sides' predicates to `R`
/// leaves each such intersection — and by hash-consing its handle —
/// unchanged, so feeding these paths to [`semantic_diff`] yields
/// byte-identical differences to the full enumeration. (Any sound
/// alignment gives a correct superset `R`; the syntactic one may align
/// slightly less than the old handle-keyed one, never more than soundness
/// allows.) Classes with an empty restriction are exactly the ones the
/// pruned diff would skip. When the alignment finds little in common, `R`
/// falls back to the universe and this degrades to plain [`acl_paths`]
/// (minus shadowed duplicates).
///
/// With `jobs ≥ 2` on a shared-arena manager the two sides enumerate in
/// parallel on forked workers (the parent goes idle for the join); the
/// private engine ignores `jobs`. Returned predicates are protected, like
/// [`acl_paths`]'s; release with [`release_paths`].
pub fn acl_diff_paths(
    space: &mut PacketSpace,
    a1: &AclIr,
    a2: &AclIr,
    jobs: usize,
) -> (Vec<PolicyPath>, Vec<PolicyPath>) {
    campion_trace::span!("semdiff.acl_paths");
    let unaligned: Option<Vec<&AclRuleIr>> = {
        campion_trace::span!("semdiff.align");
        let k1 = syn_keys(a1);
        let k2 = syn_keys(a2);
        let (common1, common2) = align_common(&k1, &k2);
        // Distinct-content unaligned rules of either side: the generator
        // set of R.
        let mut seen = std::collections::HashSet::new();
        let mut rules = Vec::new();
        for (acl, keys, common) in [(a1, &k1, &common1), (a2, &k2, &common2)] {
            for (i, rule) in acl.rules.iter().enumerate() {
                if !common[i] && seen.insert(&keys[i].0) {
                    rules.push(rule);
                }
            }
        }
        // A wide restriction set costs more to build and subtract against
        // than it saves; past a quarter of the rules, enumerate the full
        // universe.
        if rules.len() * 4 > a1.rules.len() + a2.rules.len() {
            None
        } else {
            Some(rules)
        }
    };
    let restrict = match &unaligned {
        Some(rules) => {
            let mut seen = std::collections::HashSet::new();
            let mut conds = Vec::new();
            for rule in rules {
                let c = space.rule_bdd(rule);
                if seen.insert(c) {
                    conds.push(c);
                }
            }
            space.manager.or_all(&conds)
        }
        None => space.universe(),
    };
    space.manager.protect(restrict);
    // Structural-skip generators: only worth screening against when the
    // set is small (the screen is O(rules × generators)).
    let gens: Option<&[&AclRuleIr]> = match &unaligned {
        Some(rules) if rules.len() <= SKIP_GEN_MAX => Some(rules),
        _ => None,
    };
    let (paths1, paths2) = {
        campion_trace::span!("semdiff.enumerate");
        let fan = jobs >= 2 && space.manager.is_shared();
        if fan {
            // Fork a worker per side on the shared arena; the parent goes
            // idle so the sides can collect at their checkpoints while it
            // blocks joining them. Rule-cache counter deltas fold back so
            // `--stats` is fan-out-invariant.
            let (l0, h0) = space.rule_cache_stats();
            let clones: Vec<PacketSpace> = (0..2).map(|_| space.clone()).collect();
            let parent = campion_trace::track().unwrap_or(0);
            let mut results = space.manager.with_idle(|| {
                crate::driver::steal_indexed(
                    clones,
                    2,
                    |w| campion_trace::set_track(campion_trace::sub_track(parent, w as u32)),
                    |sp, i| {
                        let acl = if i == 0 { a1 } else { a2 };
                        let paths = acl_paths_within(sp, acl, restrict, gens);
                        let (l, h) = sp.rule_cache_stats();
                        (paths, l - l0, h - h0)
                    },
                )
            });
            let (p2, l2, h2) = results.pop().expect("two sides");
            let (p1, l1, h1) = results.pop().expect("two sides");
            space.add_rule_cache_counts(l1 + l2, h1 + h2);
            (p1, p2)
        } else {
            (
                acl_paths_within(space, a1, restrict, gens),
                acl_paths_within(space, a2, restrict, gens),
            )
        }
    };
    space.manager.unprotect(restrict);
    space.manager.gc_checkpoint();
    (paths1, paths2)
}

/// Syntactic identity of each rule: canonical match content plus action.
/// Equal keys ⇔ behaviorally identical rules (their condition BDDs are
/// equal by construction) — so alignment needs no BDDs at all.
fn syn_keys(acl: &AclIr) -> Vec<(RuleKey, bool)> {
    acl.rules
        .iter()
        .map(|r| (RuleKey::of(r), r.permit))
        .collect()
}

/// Middle-segment size product under which the exact quadratic LCS runs
/// directly (also the patience recursion's base case).
const LCS_BASE: usize = 1 << 12;

/// Generator-set cap for the structural-disjointness screen in
/// [`acl_paths_within`]; past it the per-rule screen costs more than the
/// BDD work it avoids.
const SKIP_GEN_MAX: usize = 64;

/// Order-preserving alignment of two key sequences, as per-side
/// covered-by-the-alignment flags: common prefix + suffix trim, then a
/// positional pass over equal-length middles (the in-place-edit shape
/// real config pairs overwhelmingly take), else patience anchoring on
/// keys unique to both middles with an LCS base case for small segments.
/// Hashing only — `O(n log n)` in practice — replacing the former
/// quadratic LCS over condition handles (the `semdiff.align` hotspot at
/// 10k rules). Alignment quality only tunes the size of `R`; any common
/// subsequence is sound.
pub(crate) fn align_common<T: Eq + std::hash::Hash>(a: &[T], b: &[T]) -> (Vec<bool>, Vec<bool>) {
    let mut common1 = vec![false; a.len()];
    let mut common2 = vec![false; b.len()];
    let mut p = 0;
    while p < a.len() && p < b.len() && a[p] == b[p] {
        common1[p] = true;
        common2[p] = true;
        p += 1;
    }
    let mut s = 0;
    while s < a.len() - p && s < b.len() - p && a[a.len() - 1 - s] == b[b.len() - 1 - s] {
        common1[a.len() - 1 - s] = true;
        common2[b.len() - 1 - s] = true;
        s += 1;
    }
    let (m1, m2) = (p..a.len() - s, p..b.len() - s);
    if m1.len() == m2.len() {
        // Equal-length middles: the positional pass nails the in-place-edit
        // shape, but a balanced insert+delete shifts everything between the
        // two edits off-position. Run patience too and keep whichever
        // aligns more (ties go positional).
        let pos_pairs: Vec<(usize, usize)> = m1
            .clone()
            .zip(m2.clone())
            .filter(|&(i, j)| a[i] == b[j])
            .collect();
        let mut t1 = vec![false; a.len()];
        let mut t2 = vec![false; b.len()];
        patience_mark(a, b, m1.clone(), m2.clone(), &mut t1, &mut t2);
        if pos_pairs.len() >= t1.iter().filter(|&&x| x).count() {
            for (i, j) in pos_pairs {
                common1[i] = true;
                common2[j] = true;
            }
        } else {
            for i in m1 {
                common1[i] |= t1[i];
            }
            for j in m2 {
                common2[j] |= t2[j];
            }
        }
    } else {
        patience_mark(a, b, m1, m2, &mut common1, &mut common2);
    }
    (common1, common2)
}

/// Patience-diff marking pass over one segment pair: trim equal ends, LCS
/// small segments exactly, otherwise anchor on keys occurring exactly once
/// in both segments (longest increasing chain of anchor pairs) and recurse
/// between consecutive anchors. Segments with no unique common key stay
/// unaligned — sound (they only widen `R`) and the degenerate case the
/// universe fallback already covers.
fn patience_mark<T: Eq + std::hash::Hash>(
    a: &[T],
    b: &[T],
    r1: std::ops::Range<usize>,
    r2: std::ops::Range<usize>,
    common1: &mut [bool],
    common2: &mut [bool],
) {
    let (mut lo1, mut lo2) = (r1.start, r2.start);
    let (mut hi1, mut hi2) = (r1.end, r2.end);
    while lo1 < hi1 && lo2 < hi2 && a[lo1] == b[lo2] {
        common1[lo1] = true;
        common2[lo2] = true;
        lo1 += 1;
        lo2 += 1;
    }
    while hi1 > lo1 && hi2 > lo2 && a[hi1 - 1] == b[hi2 - 1] {
        common1[hi1 - 1] = true;
        common2[hi2 - 1] = true;
        hi1 -= 1;
        hi2 -= 1;
    }
    if lo1 == hi1 || lo2 == hi2 {
        return;
    }
    if (hi1 - lo1) * (hi2 - lo2) <= LCS_BASE {
        for (i, j) in lcs_pairs(&a[lo1..hi1], &b[lo2..hi2]) {
            common1[lo1 + i] = true;
            common2[lo2 + j] = true;
        }
        return;
    }
    #[derive(Default)]
    struct Occ {
        na: usize,
        ia: usize,
        nb: usize,
        ib: usize,
    }
    let mut occ: std::collections::HashMap<&T, Occ> = std::collections::HashMap::new();
    for (i, key) in a.iter().enumerate().take(hi1).skip(lo1) {
        let e = occ.entry(key).or_default();
        e.na += 1;
        e.ia = i;
    }
    for (j, key) in b.iter().enumerate().take(hi2).skip(lo2) {
        let e = occ.entry(key).or_default();
        e.nb += 1;
        e.ib = j;
    }
    let mut anchors: Vec<(usize, usize)> = occ
        .values()
        .filter(|o| o.na == 1 && o.nb == 1)
        .map(|o| (o.ia, o.ib))
        .collect();
    anchors.sort_unstable();
    let chain = lis_chain(&anchors);
    if chain.is_empty() {
        return;
    }
    let (mut prev1, mut prev2) = (lo1, lo2);
    for &(i, j) in &chain {
        patience_mark(a, b, prev1..i, prev2..j, common1, common2);
        common1[i] = true;
        common2[j] = true;
        prev1 = i + 1;
        prev2 = j + 1;
    }
    patience_mark(a, b, prev1..hi1, prev2..hi2, common1, common2);
}

/// Longest chain of anchor pairs increasing in both coordinates (`pairs`
/// arrives sorted by the first; classic patience/LIS on the second, with
/// backpointers).
fn lis_chain(pairs: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut tails: Vec<usize> = Vec::new();
    let mut back: Vec<Option<usize>> = vec![None; pairs.len()];
    for (idx, &(_, j)) in pairs.iter().enumerate() {
        let pos = tails.partition_point(|&t| pairs[t].1 < j);
        back[idx] = if pos > 0 { Some(tails[pos - 1]) } else { None };
        if pos == tails.len() {
            tails.push(idx);
        } else {
            tails[pos] = idx;
        }
    }
    let mut chain = Vec::new();
    let mut cur = tails.last().copied();
    while let Some(i) = cur {
        chain.push(pairs[i]);
        cur = back[i];
    }
    chain.reverse();
    chain
}

/// Conservative structural overlap test on two rules' match conditions:
/// `false` *proves* the conditions disjoint (some field's constraint sets
/// cannot both hold — exact in that direction); `true` means "maybe".
/// Mirrors `rule_bdd`'s encoding, including the TCP/UDP gate a
/// port-qualified rule carries.
pub(crate) fn rules_may_overlap(a: &AclRuleIr, b: &AclRuleIr) -> bool {
    /// Effective protocol set (`None` = unconstrained): the listed numbers
    /// (an unnumbered "any" alternative unconstrains), narrowed to
    /// TCP/UDP when the rule is port-qualified.
    fn protos(r: &AclRuleIr) -> Option<Vec<u8>> {
        let base: Option<Vec<u8>> = if r.protocols.is_empty() {
            None
        } else {
            r.protocols.iter().map(|p| p.number()).collect()
        };
        let gated = !r.src_ports.is_empty() || !r.dst_ports.is_empty();
        match (base, gated) {
            (Some(s), true) => Some(s.into_iter().filter(|n| *n == 6 || *n == 17).collect()),
            (Some(s), false) => Some(s),
            (None, true) => Some(vec![6, 17]),
            (None, false) => None,
        }
    }
    if let (Some(pa), Some(pb)) = (protos(a), protos(b)) {
        if !pa.iter().any(|x| pb.contains(x)) {
            return false;
        }
    }
    // Two wildcard terms overlap iff their fixed bits agree wherever both
    // care; empty alternative lists are unconstrained.
    fn addrs_overlap(xs: &[WildcardMask], ys: &[WildcardMask]) -> bool {
        if xs.is_empty() || ys.is_empty() {
            return true;
        }
        xs.iter().any(|x| {
            ys.iter()
                .any(|y| (x.addr ^ y.addr) & !x.wildcard & !y.wildcard == 0)
        })
    }
    if !addrs_overlap(&a.src, &b.src) || !addrs_overlap(&a.dst, &b.dst) {
        return false;
    }
    fn ports_overlap(xs: &[PortRange], ys: &[PortRange]) -> bool {
        if xs.is_empty() || ys.is_empty() {
            return true;
        }
        xs.iter()
            .any(|x| ys.iter().any(|y| x.lo <= y.hi && y.lo <= x.hi))
    }
    ports_overlap(&a.src_ports, &b.src_ports) && ports_overlap(&a.dst_ports, &b.dst_ports)
}

/// Index pairs of one longest common subsequence (classic quadratic DP;
/// callers bound the input product). Retained as the exact base case of
/// [`patience_mark`] and as the reference oracle the alignment proptests
/// compare against.
pub(crate) fn lcs_pairs<T: Eq>(a: &[T], b: &[T]) -> Vec<(usize, usize)> {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let at = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[at(i, j)] = if a[i] == b[j] {
                dp[at(i + 1, j + 1)] + 1
            } else {
                dp[at(i + 1, j)].max(dp[at(i, j + 1)])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[at(i + 1, j)] >= dp[at(i, j + 1)] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// [`acl_paths`] with the chain restricted to `within`: class predicates
/// come out as `predicate ∧ within`, and enumeration stops once the
/// restriction set is exhausted (every later class would restrict to ∅).
///
/// When `generators` carries the rules whose conditions union to `within`,
/// a rule structurally disjoint from every generator is skipped without
/// being encoded: `remaining ⊆ within = ⋃ generators`, so such a rule's
/// restricted fire set is empty and subtracting it is a no-op — the
/// resulting paths (and `remaining` chain) are identical.
fn acl_paths_within(
    space: &mut PacketSpace,
    acl: &AclIr,
    within: Bdd,
    generators: Option<&[&AclRuleIr]>,
) -> Vec<PolicyPath> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut remaining = within;
    space.manager.protect(remaining);
    for rule in &acl.rules {
        if !space.manager.is_sat(remaining) {
            break;
        }
        if let Some(gens) = generators {
            if !gens.iter().any(|g| rules_may_overlap(rule, g)) {
                continue;
            }
        }
        let cond = space.rule_bdd(rule);
        if !seen.insert(cond) {
            // Duplicate condition: shadowed, fires on nothing.
            continue;
        }
        let fire = space.manager.and(remaining, cond);
        let next = space.manager.diff(remaining, cond);
        space.manager.protect(next);
        space.manager.unprotect(remaining);
        remaining = next;
        if space.manager.is_sat(fire) {
            space.manager.protect(fire);
            out.push(PolicyPath {
                predicate: fire,
                effect: ActionEffect::terminal(rule.permit),
                labels: vec![rule.label.clone()],
                spans: vec![rule.span],
                is_default: false,
                non_prefix_match: true,
            });
        }
        space.manager.gc_checkpoint();
    }
    if space.manager.is_sat(remaining) {
        out.push(PolicyPath {
            predicate: remaining,
            effect: ActionEffect::terminal(false),
            labels: Vec::new(),
            spans: Vec::new(),
            is_default: true,
            non_prefix_match: true,
        });
    } else {
        space.manager.unprotect(remaining);
    }
    out
}

/// One behavioral difference between two components: the paper's quintuple
/// `(i, a₁, a₂, t₁, t₂)`.
#[derive(Debug, Clone)]
pub struct SemanticDifference {
    /// The impacted inputs.
    pub input: Bdd,
    /// Action taken by the first component.
    pub effect1: ActionEffect,
    /// Action taken by the second component.
    pub effect2: ActionEffect,
    /// Clause labels on the first component's path.
    pub labels1: Vec<String>,
    /// Clause labels on the second component's path.
    pub labels2: Vec<String>,
    /// Spans on the first component's path.
    pub spans1: Vec<Span>,
    /// Spans on the second component's path.
    pub spans2: Vec<Span>,
    /// Whether each side's implicit default decided.
    pub default1: bool,
    /// See `default1`.
    pub default2: bool,
    /// Whether either side's path matched on a non-prefix field.
    pub non_prefix_match: bool,
}

/// Counters describing how much of the path-pair cross product the pruned
/// [`semantic_diff`] actually had to look at. Merged into
/// [`campion_bdd::ManagerStats`] by the driver so `--stats` and the
/// scalability bench can report them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffPruneStats {
    /// Inner-loop `(p1, p2)` visits actually performed.
    pub pairs_examined: u64,
    /// Pairs skipped without a visit (`|paths1|·|paths2|` minus examined):
    /// whole rows cut by the disagreement pre-filter plus inner-loop tails
    /// cut by the remainder early exit.
    pub pairs_pruned: u64,
    /// Inner loops that exited before exhausting `paths2` because the
    /// remainder set emptied.
    pub early_exits: u64,
}

/// Pairwise comparison of two components' path classes, output-sensitive.
///
/// Both inputs must be *partitions* of a common universe — exactly what
/// [`policy_paths`] and [`acl_paths`] produce (disjoint classes covering
/// every input). The naive comparison intersects all `|paths1|·|paths2|`
/// pairs; this implementation only pays for pairs that can actually
/// disagree, in three steps (the *selective symbolic simulation* idea —
/// restrict exploration to inputs where behavior can differ):
///
/// 1. **Disagreement pre-filter.** One linear pass builds, per distinct
///    side-2 [`ActionEffect`], the union of its class predicates; the
///    disagreement set `D = ⋃ p1 ∧ ¬union2[p1.effect]` then contains
///    exactly the inputs the two sides treat differently (for a two-effect
///    ACL this degenerates to `permit₁ XOR permit₂`). A row whose
///    `p1.predicate ∧ D` is empty is skipped with that single `and`.
/// 2. **Partition-aware early exit.** A surviving row tracks its remainder
///    `rem = p1.predicate ∧ D` and subtracts each intersecting `p2`; since
///    side-2 classes are disjoint, `rem` empties as soon as every
///    overlapping class has been seen and the inner loop breaks — its cost
///    is the number of *overlapping* classes, not `|paths2|`.
/// 3. Equal-effect pairs need no subtraction at all: their intersection is
///    disjoint from `D` by construction.
///
/// Every emitted intersection equals `p1.predicate ∧ p2.predicate` as a
/// function, so hash-consing makes the result — quintuples, order, and BDD
/// handles — identical to the all-pairs loop (kept as a `#[cfg(test)]`
/// reference oracle below).
pub fn semantic_diff(
    manager: &mut AnyManager,
    paths1: &[PolicyPath],
    paths2: &[PolicyPath],
) -> Vec<SemanticDifference> {
    let mut stats = DiffPruneStats::default();
    semantic_diff_stats(manager, paths1, paths2, &mut stats)
}

/// [`semantic_diff`] with pruning counters reported through `stats`
/// (counters accumulate, so one instance can span several components).
pub fn semantic_diff_stats(
    manager: &mut AnyManager,
    paths1: &[PolicyPath],
    paths2: &[PolicyPath],
    stats: &mut DiffPruneStats,
) -> Vec<SemanticDifference> {
    semantic_diff_jobs(manager, paths1, paths2, stats, 1)
}

/// [`semantic_diff_stats`] with the row loop fanned across `jobs` forked
/// workers when the manager is shared-arena (each row's remainder chain is
/// independent of every other row's, so rows are embarrassingly parallel;
/// results merge in row order, which with hash-consing keeps quintuples,
/// order, and handles byte-identical to the sequential loop). The private
/// engine, `jobs < 2`, or too few rows fall back to the sequential loop.
pub fn semantic_diff_jobs(
    manager: &mut AnyManager,
    paths1: &[PolicyPath],
    paths2: &[PolicyPath],
    stats: &mut DiffPruneStats,
    jobs: usize,
) -> Vec<SemanticDifference> {
    campion_trace::span!("semdiff.diff");
    let total_pairs = paths1.len() as u64 * paths2.len() as u64;
    let examined_before = stats.pairs_examined;

    let disagree = {
        campion_trace::span!("semdiff.disagreement");
        // Step 1a: per-effect predicate unions of side 2, in first-seen
        // order. The number of distinct effects is tiny (2 for ACLs), so a
        // linear scan beats imposing Hash/Ord on ActionEffect.
        let mut groups: Vec<(&ActionEffect, Vec<Bdd>)> = Vec::new();
        for p2 in paths2 {
            match groups.iter_mut().find(|(e, _)| **e == p2.effect) {
                Some((_, preds)) => preds.push(p2.predicate),
                None => groups.push((&p2.effect, vec![p2.predicate])),
            }
        }
        let unions: Vec<(&ActionEffect, Bdd)> = groups
            .iter()
            .map(|(e, preds)| (*e, manager.or_all(preds)))
            .collect();

        // Step 1b: the disagreement set D. Built whole before any
        // checkpoint, so the unions and row terms need no roots of their
        // own.
        let mut terms = Vec::with_capacity(paths1.len());
        for p1 in paths1 {
            let same = unions
                .iter()
                .find(|(e, _)| **e == p1.effect)
                .map_or(Bdd::FALSE, |(_, u)| *u);
            terms.push(manager.diff(p1.predicate, same));
        }
        manager.or_all(&terms)
    };
    // D is consulted across every row checkpoint below — root it. The
    // construction garbage (unions, row terms) may go right away.
    manager.protect(disagree);
    manager.gc_checkpoint();

    let mut out = Vec::new();
    let workers = if jobs >= 2 && paths1.len() >= 2 {
        manager.try_split(jobs.min(paths1.len()))
    } else {
        None
    };
    match workers {
        Some(ws) => {
            // Fan the rows across forked workers on the shared arena; the
            // parent goes idle so workers can collect at their checkpoints
            // while it blocks on the join. Each worker's row output and
            // counters come back indexed, then merge in row order.
            let nrows = paths1.len();
            let parent = campion_trace::track().unwrap_or(0);
            let rows = manager.with_idle(|| {
                crate::driver::steal_indexed(
                    ws,
                    nrows,
                    |w| campion_trace::set_track(campion_trace::sub_track(parent, w as u32)),
                    |m, i| {
                        let mut row_out = Vec::new();
                        let mut row_stats = DiffPruneStats::default();
                        diff_row(
                            m,
                            &paths1[i],
                            paths2,
                            disagree,
                            &mut row_stats,
                            &mut row_out,
                        );
                        m.gc_checkpoint();
                        (row_out, row_stats)
                    },
                )
            });
            for (row_out, row_stats) in rows {
                out.extend(row_out);
                stats.pairs_examined += row_stats.pairs_examined;
                stats.early_exits += row_stats.early_exits;
            }
        }
        None => {
            for p1 in paths1 {
                diff_row(manager, p1, paths2, disagree, stats, &mut out);
                manager.gc_checkpoint();
            }
        }
    }
    manager.unprotect(disagree);
    stats.pairs_pruned += total_pairs - (stats.pairs_examined - examined_before);
    out
}

/// One row of the pruned comparison: `p1` against every side-2 class, with
/// the remainder early exit. Emitted inputs are protected (on a shared
/// arena roots are global, so a forked worker's protections survive the
/// join and are released by the parent as usual).
fn diff_row(
    manager: &mut AnyManager,
    p1: &PolicyPath,
    paths2: &[PolicyPath],
    disagree: Bdd,
    stats: &mut DiffPruneStats,
    out: &mut Vec<SemanticDifference>,
) {
    // Step 2: the row remainder. Empty ⇒ no p2 can disagree with p1.
    let mut rem = manager.and(p1.predicate, disagree);
    if manager.is_sat(rem) {
        for p2 in paths2 {
            stats.pairs_examined += 1;
            if p1.effect == p2.effect {
                // rem ∧ p2 = ∅: equal-effect intersections never meet D.
                continue;
            }
            // rem ⊆ p1 minus already-subtracted (disjoint) classes, and
            // differing-effect intersections lie inside D, so this is
            // exactly p1.predicate ∧ p2.predicate.
            let inter = manager.and(rem, p2.predicate);
            if manager.is_sat(inter) {
                // Returned inputs are rooted; the driver releases each
                // one after presenting it.
                manager.protect(inter);
                out.push(SemanticDifference {
                    input: inter,
                    effect1: p1.effect.clone(),
                    effect2: p2.effect.clone(),
                    labels1: p1.labels.clone(),
                    labels2: p2.labels.clone(),
                    spans1: p1.spans.clone(),
                    spans2: p2.spans.clone(),
                    default1: p1.is_default,
                    default2: p2.is_default,
                    non_prefix_match: p1.non_prefix_match || p2.non_prefix_match,
                });
                rem = manager.diff(rem, inter);
                if manager.is_false(rem) {
                    stats.early_exits += 1;
                    break;
                }
            }
        }
    }
}

/// The original all-pairs comparison, retained verbatim as the reference
/// oracle for the pruned [`semantic_diff`]: proptests assert the two return
/// identical difference lists (same handles, labels, spans, effects) for
/// random policy/ACL pairs under every GC mode.
#[cfg(test)]
pub(crate) fn semantic_diff_all_pairs(
    manager: &mut AnyManager,
    paths1: &[PolicyPath],
    paths2: &[PolicyPath],
) -> Vec<SemanticDifference> {
    let mut out = Vec::new();
    for p1 in paths1 {
        for p2 in paths2 {
            if p1.effect == p2.effect {
                continue;
            }
            let inter = manager.and(p1.predicate, p2.predicate);
            if manager.is_sat(inter) {
                manager.protect(inter);
                out.push(SemanticDifference {
                    input: inter,
                    effect1: p1.effect.clone(),
                    effect2: p2.effect.clone(),
                    labels1: p1.labels.clone(),
                    labels2: p2.labels.clone(),
                    spans1: p1.spans.clone(),
                    spans2: p2.spans.clone(),
                    default1: p1.is_default,
                    default2: p2.is_default,
                    non_prefix_match: p1.non_prefix_match || p2.non_prefix_match,
                });
            }
        }
        manager.gc_checkpoint();
    }
    out
}

/// Release the GC roots held by a set of path predicates (the counterpart
/// of [`policy_paths`]/[`acl_paths`], which return their outputs rooted).
/// Call once `semantic_diff` has consumed the paths.
pub fn release_paths(manager: &mut AnyManager, paths: &[PolicyPath]) {
    for p in paths {
        manager.unprotect(p.predicate);
    }
}

/// Convenience: are two route policies behaviorally equivalent (no
/// semantic differences over the shared input space)?
pub fn policies_equivalent(p1: &RoutePolicy, p2: &RoutePolicy) -> bool {
    let mut space = RouteSpace::for_policies(&[p1, p2]);
    let u = space.universe();
    let paths1 = policy_paths(&mut space, p1, u);
    let paths2 = policy_paths(&mut space, p2, u);
    semantic_diff(&mut space.manager, &paths1, &paths2).is_empty()
}

/// Convenience: are two ACLs behaviorally equivalent?
pub fn acls_equivalent(a1: &AclIr, a2: &AclIr) -> bool {
    let mut space = PacketSpace::new();
    let u = space.universe();
    let paths1 = acl_paths(&mut space, a1, u);
    let paths2 = acl_paths(&mut space, a2, u);
    semantic_diff(&mut space.manager, &paths1, &paths2).is_empty()
}
