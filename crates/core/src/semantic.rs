//! SemanticDiff (§3.1): path equivalence classes and their pairwise
//! comparison.
//!
//! Both ACLs and route policies are sequences of *if-then-else* guards, so
//! the space of inputs partitions by which guards fire. Each class carries
//! the BDD predicate selecting it, the composed [`ActionEffect`] of its
//! path, and the spans/labels of the clauses on the path (for text
//! localization). Comparing two components is then a pairwise intersection:
//! classes with a nonempty intersection and different effects are
//! behavioral differences — the quintuples `(i, a₁, a₂, t₁, t₂)` of the
//! paper.

//! ## GC root discipline
//!
//! The BDD manager only collects at explicit safe points
//! ([`campion_bdd::Manager::gc_checkpoint`]), so locals that never span a
//! checkpoint need no registration. The functions here place a checkpoint
//! after every processed rule / path frame / outer diff row, and therefore
//! root exactly what they hold across those boundaries: the active frontier
//! (`remaining`, the exploration stack's predicates and symbolic states)
//! and their outputs. **Returned [`PolicyPath`] predicates and
//! [`SemanticDifference`] inputs stay protected**: callers release them via
//! [`release_paths`] (or per-handle `unprotect`) once done.

use campion_bdd::{Bdd, Manager};
use campion_cfg::Span;
use campion_ir::{AclIr, RoutePolicy, Terminal};
use campion_symbolic::{ActionEffect, PacketSpace, RouteSpace, SymbolicRoute};

/// One path equivalence class through a component.
#[derive(Debug, Clone)]
pub struct PolicyPath {
    /// Inputs taking this path (already intersected with the universe).
    pub predicate: Bdd,
    /// The path's composed, normalized effect.
    pub effect: ActionEffect,
    /// Labels of the clauses that fired on this path (empty for the
    /// implicit default).
    pub labels: Vec<String>,
    /// Spans of the fired clauses.
    pub spans: Vec<Span>,
    /// Whether the policy's implicit default decided this path.
    pub is_default: bool,
    /// Whether any fired clause matched on a non-prefix field (community,
    /// tag, metric, protocol). Drives the paper's "single example for other
    /// fields" presentation rule.
    pub non_prefix_match: bool,
}

/// Safety valve: fall-through-heavy policies can in principle produce
/// exponentially many paths; beyond this many live states we give up rather
/// than hang (never reached by realistic configurations).
const MAX_PATHS: usize = 65_536;

/// Enumerate the path equivalence classes of a route policy.
///
/// Fall-through clauses (JunOS non-terminating terms, `next term`, Cisco
/// `continue`) fork the exploration: the symbolic route state carries their
/// rewrites forward so later matches observe them.
///
/// # Panics
/// Panics if the policy exceeds `MAX_PATHS` (65 536) classes.
pub fn policy_paths(
    space: &mut RouteSpace,
    policy: &RoutePolicy,
    universe: Bdd,
) -> Vec<PolicyPath> {
    campion_trace::span!("semdiff.policy_paths");
    struct Frame {
        idx: usize,
        predicate: Bdd,
        effect: ActionEffect,
        state: campion_symbolic::SymbolicRoute,
        labels: Vec<String>,
        spans: Vec<Span>,
        non_prefix: bool,
    }
    // Every frame on the exploration stack is held across checkpoints, so
    // its predicate and symbolic community functions are rooted at push and
    // released once the frame has been fully processed.
    fn protect_frame(m: &mut Manager, predicate: Bdd, state: &SymbolicRoute) {
        m.protect(predicate);
        for &b in &state.comm {
            m.protect(b);
        }
    }
    let mut out = Vec::new();
    let initial = space.initial_state();
    protect_frame(&mut space.manager, universe, &initial);
    let mut stack = vec![Frame {
        idx: 0,
        predicate: universe,
        effect: ActionEffect::default(),
        state: initial,
        labels: Vec::new(),
        spans: Vec::new(),
        non_prefix: false,
    }];
    while let Some(f) = stack.pop() {
        assert!(
            out.len() + stack.len() < MAX_PATHS,
            "policy {} exceeds {MAX_PATHS} path classes",
            policy.name
        );
        // The popped frame's roots are released at the bottom of the loop;
        // remember them now because the fallthrough branch moves `f.state`.
        let popped_predicate = f.predicate;
        let popped_comm = f.state.comm.clone();
        if space.manager.is_false(f.predicate) {
            // Dead branch: nothing to emit.
        } else if f.idx == policy.clauses.len() {
            // Implicit default.
            let mut effect = f.effect;
            effect.accept = policy.default_terminal == Terminal::Accept;
            space.manager.protect(f.predicate);
            out.push(PolicyPath {
                predicate: f.predicate,
                effect: effect.normalized(),
                labels: f.labels,
                spans: f.spans,
                is_default: true,
                non_prefix_match: f.non_prefix,
            });
        } else {
            let clause = &policy.clauses[f.idx];
            let mut cond = Bdd::TRUE;
            for m in &clause.matches {
                let b = space.match_bdd(m, &f.state);
                cond = space.manager.and(cond, b);
            }
            let fire = space.manager.and(f.predicate, cond);
            let skip = space.manager.diff(f.predicate, cond);
            // Non-matching branch: continue with unchanged state.
            if space.manager.is_sat(skip) {
                protect_frame(&mut space.manager, skip, &f.state);
                stack.push(Frame {
                    idx: f.idx + 1,
                    predicate: skip,
                    effect: f.effect.clone(),
                    state: f.state.clone(),
                    labels: f.labels.clone(),
                    spans: f.spans.clone(),
                    non_prefix: f.non_prefix,
                });
            }
            // Matching branch.
            if space.manager.is_sat(fire) {
                let mut effect = f.effect;
                effect.apply_all(&clause.sets);
                let mut labels = f.labels;
                labels.push(clause.label.clone());
                let mut spans = f.spans;
                spans.push(clause.span);
                let non_prefix = f.non_prefix
                    || clause
                        .matches
                        .iter()
                        .any(|m| !matches!(m, campion_ir::Match::Prefix(_)));
                match clause.terminal {
                    Terminal::Accept | Terminal::Reject => {
                        effect.accept = clause.terminal == Terminal::Accept;
                        space.manager.protect(fire);
                        out.push(PolicyPath {
                            predicate: fire,
                            effect: effect.normalized(),
                            labels,
                            spans,
                            is_default: false,
                            non_prefix_match: non_prefix,
                        });
                    }
                    Terminal::Fallthrough => {
                        let mut state = f.state;
                        space.apply_sets(&mut state, &clause.sets);
                        protect_frame(&mut space.manager, fire, &state);
                        stack.push(Frame {
                            idx: f.idx + 1,
                            predicate: fire,
                            effect,
                            state,
                            labels,
                            spans,
                            non_prefix,
                        });
                    }
                }
            }
        }
        space.manager.unprotect(popped_predicate);
        for b in popped_comm {
            space.manager.unprotect(b);
        }
        space.manager.gc_checkpoint();
    }
    out
}

/// Enumerate the path equivalence classes of an ACL (rules are always
/// terminal, so this is linear: one class per reachable rule plus the
/// implicit trailing deny).
pub fn acl_paths(space: &mut PacketSpace, acl: &AclIr, universe: Bdd) -> Vec<PolicyPath> {
    let mut out = Vec::new();
    let mut remaining = universe;
    space.manager.protect(remaining);
    for rule in &acl.rules {
        let cond = space.rule_bdd(rule);
        let fire = space.manager.and(remaining, cond);
        let next = space.manager.diff(remaining, cond);
        // Root the new frontier before releasing the old one: `next` and the
        // accumulated fire predicates are all we hold across the checkpoint;
        // `cond` and the superseded `remaining` become garbage.
        space.manager.protect(next);
        space.manager.unprotect(remaining);
        remaining = next;
        if space.manager.is_sat(fire) {
            space.manager.protect(fire);
            out.push(PolicyPath {
                predicate: fire,
                effect: ActionEffect::terminal(rule.permit),
                labels: vec![rule.label.clone()],
                spans: vec![rule.span],
                is_default: false,
                non_prefix_match: true,
            });
        }
        space.manager.gc_checkpoint();
    }
    if space.manager.is_sat(remaining) {
        // The frontier root carries over as the default path's output root.
        out.push(PolicyPath {
            predicate: remaining,
            effect: ActionEffect::terminal(false),
            labels: Vec::new(),
            spans: Vec::new(),
            is_default: true,
            non_prefix_match: true,
        });
    } else {
        space.manager.unprotect(remaining);
    }
    out
}

/// Difference-restricted path enumeration for an ACL *pair* — the fast
/// path behind [`crate::driver::compare_routers`]'s ACL diffs.
///
/// [`acl_paths`] materializes every class predicate against the full
/// universe, so its `remaining`-chain applys run on BDDs that grow with the
/// ACL — the dominant cost at 10k rules, even though the diff only ever
/// consumes the sliver of each class where the two sides disagree. Real
/// comparison targets are near-identical, so this variant first *aligns*
/// the two rule lists on content (condition BDD handle + action): a rule
/// pair common to an order-preserving alignment decides every packet it
/// first-matches identically on both sides, so disagreements live entirely
/// inside `R` = the union of the *unaligned* rules' conditions — a small
/// set when the configs are close. Both sides' classes are then enumerated
/// restricted to `R`, keeping every chain op small.
///
/// Every difference reported by [`semantic_diff`] satisfies
/// `input = p₁ ∧ p₂ ⊆ R`, and restricting both sides' predicates to `R`
/// leaves each such intersection — and by hash-consing its handle —
/// unchanged, so feeding these paths to [`semantic_diff`] yields
/// byte-identical differences to the full enumeration. Classes with an
/// empty restriction are exactly the ones the pruned diff would skip. When
/// the alignment finds little in common, `R` falls back to the universe
/// and this degrades to plain [`acl_paths`] (minus shadowed duplicates).
///
/// Returned predicates are protected, like [`acl_paths`]'s; release with
/// [`release_paths`].
pub fn acl_diff_paths(
    space: &mut PacketSpace,
    a1: &AclIr,
    a2: &AclIr,
) -> (Vec<PolicyPath>, Vec<PolicyPath>) {
    campion_trace::span!("semdiff.acl_paths");
    let restrict = {
        campion_trace::span!("semdiff.align");
        let conds1 = rule_contents(space, a1);
        let conds2 = rule_contents(space, a2);
        match unaligned_union(space, &conds1, &conds2) {
            Some(r) => r,
            None => space.universe(),
        }
    };
    space.manager.protect(restrict);
    let (paths1, paths2) = {
        campion_trace::span!("semdiff.enumerate");
        (
            acl_paths_within(space, a1, restrict),
            acl_paths_within(space, a2, restrict),
        )
    };
    space.manager.unprotect(restrict);
    space.manager.gc_checkpoint();
    (paths1, paths2)
}

/// Content identity of each rule: `(condition handle, action)`. Handles are
/// canonical, so equal pairs ⇔ behaviorally identical rules. The handles
/// are rooted by the space's rule cache; no extra protection needed.
fn rule_contents(space: &mut PacketSpace, acl: &AclIr) -> Vec<(Bdd, bool)> {
    acl.rules
        .iter()
        .map(|r| (space.rule_bdd(r), r.permit))
        .collect()
}

/// The union of the conditions of rules *not* covered by an
/// order-preserving alignment of the two content sequences, or `None` when
/// the lists share too little for the restriction to pay for itself.
/// Alignment: common prefix + common suffix, then a positional pass over
/// equal-length middles (the in-place-edit shape) or an LCS when the
/// middles are small; anything else counts as unaligned. No safe points.
fn unaligned_union(space: &mut PacketSpace, c1: &[(Bdd, bool)], c2: &[(Bdd, bool)]) -> Option<Bdd> {
    let mut common1 = vec![false; c1.len()];
    let mut common2 = vec![false; c2.len()];
    let mut p = 0;
    while p < c1.len() && p < c2.len() && c1[p] == c2[p] {
        common1[p] = true;
        common2[p] = true;
        p += 1;
    }
    let mut s = 0;
    while s < c1.len() - p && s < c2.len() - p && c1[c1.len() - 1 - s] == c2[c2.len() - 1 - s] {
        common1[c1.len() - 1 - s] = true;
        common2[c2.len() - 1 - s] = true;
        s += 1;
    }
    let (m1, m2) = (p..c1.len() - s, p..c2.len() - s);
    if m1.len() == m2.len() {
        for (i, j) in m1.clone().zip(m2.clone()) {
            if c1[i] == c2[j] {
                common1[i] = true;
                common2[j] = true;
            }
        }
    } else if m1.len() * m2.len() <= 1 << 20 {
        for (i, j) in lcs_pairs(&c1[m1.clone()], &c2[m2.clone()]) {
            common1[p + i] = true;
            common2[p + j] = true;
        }
    }
    // Distinct conditions of unaligned rules on either side.
    let mut seen = std::collections::HashSet::new();
    let mut uncommon = Vec::new();
    for (contents, common) in [(c1, &common1), (c2, &common2)] {
        for (&(cond, _), &is_common) in contents.iter().zip(common.iter()) {
            if !is_common && seen.insert(cond) {
                uncommon.push(cond);
            }
        }
    }
    // A wide restriction set costs more to build and subtract against than
    // it saves; past a quarter of the rules, enumerate the full universe.
    if uncommon.len() * 4 > c1.len() + c2.len() {
        return None;
    }
    Some(space.manager.or_all(&uncommon))
}

/// Index pairs of one longest common subsequence (classic quadratic DP;
/// callers bound the input product).
fn lcs_pairs(a: &[(Bdd, bool)], b: &[(Bdd, bool)]) -> Vec<(usize, usize)> {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let at = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[at(i, j)] = if a[i] == b[j] {
                dp[at(i + 1, j + 1)] + 1
            } else {
                dp[at(i + 1, j)].max(dp[at(i, j + 1)])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[at(i + 1, j)] >= dp[at(i, j + 1)] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// [`acl_paths`] with the chain restricted to `within`: class predicates
/// come out as `predicate ∧ within`, and enumeration stops once the
/// restriction set is exhausted (every later class would restrict to ∅).
fn acl_paths_within(space: &mut PacketSpace, acl: &AclIr, within: Bdd) -> Vec<PolicyPath> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut remaining = within;
    space.manager.protect(remaining);
    for rule in &acl.rules {
        if !space.manager.is_sat(remaining) {
            break;
        }
        let cond = space.rule_bdd(rule);
        if !seen.insert(cond) {
            // Duplicate condition: shadowed, fires on nothing.
            continue;
        }
        let fire = space.manager.and(remaining, cond);
        let next = space.manager.diff(remaining, cond);
        space.manager.protect(next);
        space.manager.unprotect(remaining);
        remaining = next;
        if space.manager.is_sat(fire) {
            space.manager.protect(fire);
            out.push(PolicyPath {
                predicate: fire,
                effect: ActionEffect::terminal(rule.permit),
                labels: vec![rule.label.clone()],
                spans: vec![rule.span],
                is_default: false,
                non_prefix_match: true,
            });
        }
        space.manager.gc_checkpoint();
    }
    if space.manager.is_sat(remaining) {
        out.push(PolicyPath {
            predicate: remaining,
            effect: ActionEffect::terminal(false),
            labels: Vec::new(),
            spans: Vec::new(),
            is_default: true,
            non_prefix_match: true,
        });
    } else {
        space.manager.unprotect(remaining);
    }
    out
}

/// One behavioral difference between two components: the paper's quintuple
/// `(i, a₁, a₂, t₁, t₂)`.
#[derive(Debug, Clone)]
pub struct SemanticDifference {
    /// The impacted inputs.
    pub input: Bdd,
    /// Action taken by the first component.
    pub effect1: ActionEffect,
    /// Action taken by the second component.
    pub effect2: ActionEffect,
    /// Clause labels on the first component's path.
    pub labels1: Vec<String>,
    /// Clause labels on the second component's path.
    pub labels2: Vec<String>,
    /// Spans on the first component's path.
    pub spans1: Vec<Span>,
    /// Spans on the second component's path.
    pub spans2: Vec<Span>,
    /// Whether each side's implicit default decided.
    pub default1: bool,
    /// See `default1`.
    pub default2: bool,
    /// Whether either side's path matched on a non-prefix field.
    pub non_prefix_match: bool,
}

/// Counters describing how much of the path-pair cross product the pruned
/// [`semantic_diff`] actually had to look at. Merged into
/// [`campion_bdd::ManagerStats`] by the driver so `--stats` and the
/// scalability bench can report them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffPruneStats {
    /// Inner-loop `(p1, p2)` visits actually performed.
    pub pairs_examined: u64,
    /// Pairs skipped without a visit (`|paths1|·|paths2|` minus examined):
    /// whole rows cut by the disagreement pre-filter plus inner-loop tails
    /// cut by the remainder early exit.
    pub pairs_pruned: u64,
    /// Inner loops that exited before exhausting `paths2` because the
    /// remainder set emptied.
    pub early_exits: u64,
}

/// Pairwise comparison of two components' path classes, output-sensitive.
///
/// Both inputs must be *partitions* of a common universe — exactly what
/// [`policy_paths`] and [`acl_paths`] produce (disjoint classes covering
/// every input). The naive comparison intersects all `|paths1|·|paths2|`
/// pairs; this implementation only pays for pairs that can actually
/// disagree, in three steps (the *selective symbolic simulation* idea —
/// restrict exploration to inputs where behavior can differ):
///
/// 1. **Disagreement pre-filter.** One linear pass builds, per distinct
///    side-2 [`ActionEffect`], the union of its class predicates; the
///    disagreement set `D = ⋃ p1 ∧ ¬union2[p1.effect]` then contains
///    exactly the inputs the two sides treat differently (for a two-effect
///    ACL this degenerates to `permit₁ XOR permit₂`). A row whose
///    `p1.predicate ∧ D` is empty is skipped with that single `and`.
/// 2. **Partition-aware early exit.** A surviving row tracks its remainder
///    `rem = p1.predicate ∧ D` and subtracts each intersecting `p2`; since
///    side-2 classes are disjoint, `rem` empties as soon as every
///    overlapping class has been seen and the inner loop breaks — its cost
///    is the number of *overlapping* classes, not `|paths2|`.
/// 3. Equal-effect pairs need no subtraction at all: their intersection is
///    disjoint from `D` by construction.
///
/// Every emitted intersection equals `p1.predicate ∧ p2.predicate` as a
/// function, so hash-consing makes the result — quintuples, order, and BDD
/// handles — identical to the all-pairs loop (kept as a `#[cfg(test)]`
/// reference oracle below).
pub fn semantic_diff(
    manager: &mut Manager,
    paths1: &[PolicyPath],
    paths2: &[PolicyPath],
) -> Vec<SemanticDifference> {
    let mut stats = DiffPruneStats::default();
    semantic_diff_stats(manager, paths1, paths2, &mut stats)
}

/// [`semantic_diff`] with pruning counters reported through `stats`
/// (counters accumulate, so one instance can span several components).
pub fn semantic_diff_stats(
    manager: &mut Manager,
    paths1: &[PolicyPath],
    paths2: &[PolicyPath],
    stats: &mut DiffPruneStats,
) -> Vec<SemanticDifference> {
    campion_trace::span!("semdiff.diff");
    let total_pairs = paths1.len() as u64 * paths2.len() as u64;
    let examined_before = stats.pairs_examined;

    let disagree = {
        campion_trace::span!("semdiff.disagreement");
        // Step 1a: per-effect predicate unions of side 2, in first-seen
        // order. The number of distinct effects is tiny (2 for ACLs), so a
        // linear scan beats imposing Hash/Ord on ActionEffect.
        let mut groups: Vec<(&ActionEffect, Vec<Bdd>)> = Vec::new();
        for p2 in paths2 {
            match groups.iter_mut().find(|(e, _)| **e == p2.effect) {
                Some((_, preds)) => preds.push(p2.predicate),
                None => groups.push((&p2.effect, vec![p2.predicate])),
            }
        }
        let unions: Vec<(&ActionEffect, Bdd)> = groups
            .iter()
            .map(|(e, preds)| (*e, manager.or_all(preds)))
            .collect();

        // Step 1b: the disagreement set D. Built whole before any
        // checkpoint, so the unions and row terms need no roots of their
        // own.
        let mut terms = Vec::with_capacity(paths1.len());
        for p1 in paths1 {
            let same = unions
                .iter()
                .find(|(e, _)| **e == p1.effect)
                .map_or(Bdd::FALSE, |(_, u)| *u);
            terms.push(manager.diff(p1.predicate, same));
        }
        manager.or_all(&terms)
    };
    // D is consulted across every row checkpoint below — root it. The
    // construction garbage (unions, row terms) may go right away.
    manager.protect(disagree);
    manager.gc_checkpoint();

    let mut out = Vec::new();
    for p1 in paths1 {
        // Step 2: the row remainder. Empty ⇒ no p2 can disagree with p1.
        let mut rem = manager.and(p1.predicate, disagree);
        if manager.is_sat(rem) {
            for p2 in paths2 {
                stats.pairs_examined += 1;
                if p1.effect == p2.effect {
                    // rem ∧ p2 = ∅: equal-effect intersections never meet D.
                    continue;
                }
                // rem ⊆ p1 minus already-subtracted (disjoint) classes, and
                // differing-effect intersections lie inside D, so this is
                // exactly p1.predicate ∧ p2.predicate.
                let inter = manager.and(rem, p2.predicate);
                if manager.is_sat(inter) {
                    // Returned inputs are rooted; the driver releases each
                    // one after presenting it.
                    manager.protect(inter);
                    out.push(SemanticDifference {
                        input: inter,
                        effect1: p1.effect.clone(),
                        effect2: p2.effect.clone(),
                        labels1: p1.labels.clone(),
                        labels2: p2.labels.clone(),
                        spans1: p1.spans.clone(),
                        spans2: p2.spans.clone(),
                        default1: p1.is_default,
                        default2: p2.is_default,
                        non_prefix_match: p1.non_prefix_match || p2.non_prefix_match,
                    });
                    rem = manager.diff(rem, inter);
                    if manager.is_false(rem) {
                        stats.early_exits += 1;
                        break;
                    }
                }
            }
        }
        manager.gc_checkpoint();
    }
    manager.unprotect(disagree);
    stats.pairs_pruned += total_pairs - (stats.pairs_examined - examined_before);
    out
}

/// The original all-pairs comparison, retained verbatim as the reference
/// oracle for the pruned [`semantic_diff`]: proptests assert the two return
/// identical difference lists (same handles, labels, spans, effects) for
/// random policy/ACL pairs under every GC mode.
#[cfg(test)]
pub(crate) fn semantic_diff_all_pairs(
    manager: &mut Manager,
    paths1: &[PolicyPath],
    paths2: &[PolicyPath],
) -> Vec<SemanticDifference> {
    let mut out = Vec::new();
    for p1 in paths1 {
        for p2 in paths2 {
            if p1.effect == p2.effect {
                continue;
            }
            let inter = manager.and(p1.predicate, p2.predicate);
            if manager.is_sat(inter) {
                manager.protect(inter);
                out.push(SemanticDifference {
                    input: inter,
                    effect1: p1.effect.clone(),
                    effect2: p2.effect.clone(),
                    labels1: p1.labels.clone(),
                    labels2: p2.labels.clone(),
                    spans1: p1.spans.clone(),
                    spans2: p2.spans.clone(),
                    default1: p1.is_default,
                    default2: p2.is_default,
                    non_prefix_match: p1.non_prefix_match || p2.non_prefix_match,
                });
            }
        }
        manager.gc_checkpoint();
    }
    out
}

/// Release the GC roots held by a set of path predicates (the counterpart
/// of [`policy_paths`]/[`acl_paths`], which return their outputs rooted).
/// Call once `semantic_diff` has consumed the paths.
pub fn release_paths(manager: &mut Manager, paths: &[PolicyPath]) {
    for p in paths {
        manager.unprotect(p.predicate);
    }
}

/// Convenience: are two route policies behaviorally equivalent (no
/// semantic differences over the shared input space)?
pub fn policies_equivalent(p1: &RoutePolicy, p2: &RoutePolicy) -> bool {
    let mut space = RouteSpace::for_policies(&[p1, p2]);
    let u = space.universe();
    let paths1 = policy_paths(&mut space, p1, u);
    let paths2 = policy_paths(&mut space, p2, u);
    semantic_diff(&mut space.manager, &paths1, &paths2).is_empty()
}

/// Convenience: are two ACLs behaviorally equivalent?
pub fn acls_equivalent(a1: &AclIr, a2: &AclIr) -> bool {
    let mut space = PacketSpace::new();
    let u = space.universe();
    let paths1 = acl_paths(&mut space, a1, u);
    let paths2 = acl_paths(&mut space, a2, u);
    semantic_diff(&mut space.manager, &paths1, &paths2).is_empty()
}
