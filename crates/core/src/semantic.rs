//! SemanticDiff (§3.1): path equivalence classes and their pairwise
//! comparison.
//!
//! Both ACLs and route policies are sequences of *if-then-else* guards, so
//! the space of inputs partitions by which guards fire. Each class carries
//! the BDD predicate selecting it, the composed [`ActionEffect`] of its
//! path, and the spans/labels of the clauses on the path (for text
//! localization). Comparing two components is then a pairwise intersection:
//! classes with a nonempty intersection and different effects are
//! behavioral differences — the quintuples `(i, a₁, a₂, t₁, t₂)` of the
//! paper.

//! ## GC root discipline
//!
//! The BDD manager only collects at explicit safe points
//! ([`campion_bdd::Manager::gc_checkpoint`]), so locals that never span a
//! checkpoint need no registration. The functions here place a checkpoint
//! after every processed rule / path frame / outer diff row, and therefore
//! root exactly what they hold across those boundaries: the active frontier
//! (`remaining`, the exploration stack's predicates and symbolic states)
//! and their outputs. **Returned [`PolicyPath`] predicates and
//! [`SemanticDifference`] inputs stay protected**: callers release them via
//! [`release_paths`] (or per-handle `unprotect`) once done.

use campion_bdd::{Bdd, Manager};
use campion_cfg::Span;
use campion_ir::{AclIr, RoutePolicy, Terminal};
use campion_symbolic::{ActionEffect, PacketSpace, RouteSpace, SymbolicRoute};

/// One path equivalence class through a component.
#[derive(Debug, Clone)]
pub struct PolicyPath {
    /// Inputs taking this path (already intersected with the universe).
    pub predicate: Bdd,
    /// The path's composed, normalized effect.
    pub effect: ActionEffect,
    /// Labels of the clauses that fired on this path (empty for the
    /// implicit default).
    pub labels: Vec<String>,
    /// Spans of the fired clauses.
    pub spans: Vec<Span>,
    /// Whether the policy's implicit default decided this path.
    pub is_default: bool,
    /// Whether any fired clause matched on a non-prefix field (community,
    /// tag, metric, protocol). Drives the paper's "single example for other
    /// fields" presentation rule.
    pub non_prefix_match: bool,
}

/// Safety valve: fall-through-heavy policies can in principle produce
/// exponentially many paths; beyond this many live states we give up rather
/// than hang (never reached by realistic configurations).
const MAX_PATHS: usize = 65_536;

/// Enumerate the path equivalence classes of a route policy.
///
/// Fall-through clauses (JunOS non-terminating terms, `next term`, Cisco
/// `continue`) fork the exploration: the symbolic route state carries their
/// rewrites forward so later matches observe them.
///
/// # Panics
/// Panics if the policy exceeds `MAX_PATHS` (65 536) classes.
pub fn policy_paths(
    space: &mut RouteSpace,
    policy: &RoutePolicy,
    universe: Bdd,
) -> Vec<PolicyPath> {
    struct Frame {
        idx: usize,
        predicate: Bdd,
        effect: ActionEffect,
        state: campion_symbolic::SymbolicRoute,
        labels: Vec<String>,
        spans: Vec<Span>,
        non_prefix: bool,
    }
    // Every frame on the exploration stack is held across checkpoints, so
    // its predicate and symbolic community functions are rooted at push and
    // released once the frame has been fully processed.
    fn protect_frame(m: &mut Manager, predicate: Bdd, state: &SymbolicRoute) {
        m.protect(predicate);
        for &b in &state.comm {
            m.protect(b);
        }
    }
    let mut out = Vec::new();
    let initial = space.initial_state();
    protect_frame(&mut space.manager, universe, &initial);
    let mut stack = vec![Frame {
        idx: 0,
        predicate: universe,
        effect: ActionEffect::default(),
        state: initial,
        labels: Vec::new(),
        spans: Vec::new(),
        non_prefix: false,
    }];
    while let Some(f) = stack.pop() {
        assert!(
            out.len() + stack.len() < MAX_PATHS,
            "policy {} exceeds {MAX_PATHS} path classes",
            policy.name
        );
        // The popped frame's roots are released at the bottom of the loop;
        // remember them now because the fallthrough branch moves `f.state`.
        let popped_predicate = f.predicate;
        let popped_comm = f.state.comm.clone();
        if space.manager.is_false(f.predicate) {
            // Dead branch: nothing to emit.
        } else if f.idx == policy.clauses.len() {
            // Implicit default.
            let mut effect = f.effect;
            effect.accept = policy.default_terminal == Terminal::Accept;
            space.manager.protect(f.predicate);
            out.push(PolicyPath {
                predicate: f.predicate,
                effect: effect.normalized(),
                labels: f.labels,
                spans: f.spans,
                is_default: true,
                non_prefix_match: f.non_prefix,
            });
        } else {
            let clause = &policy.clauses[f.idx];
            let mut cond = Bdd::TRUE;
            for m in &clause.matches {
                let b = space.match_bdd(m, &f.state);
                cond = space.manager.and(cond, b);
            }
            let fire = space.manager.and(f.predicate, cond);
            let skip = space.manager.diff(f.predicate, cond);
            // Non-matching branch: continue with unchanged state.
            if space.manager.is_sat(skip) {
                protect_frame(&mut space.manager, skip, &f.state);
                stack.push(Frame {
                    idx: f.idx + 1,
                    predicate: skip,
                    effect: f.effect.clone(),
                    state: f.state.clone(),
                    labels: f.labels.clone(),
                    spans: f.spans.clone(),
                    non_prefix: f.non_prefix,
                });
            }
            // Matching branch.
            if space.manager.is_sat(fire) {
                let mut effect = f.effect;
                effect.apply_all(&clause.sets);
                let mut labels = f.labels;
                labels.push(clause.label.clone());
                let mut spans = f.spans;
                spans.push(clause.span);
                let non_prefix = f.non_prefix
                    || clause
                        .matches
                        .iter()
                        .any(|m| !matches!(m, campion_ir::Match::Prefix(_)));
                match clause.terminal {
                    Terminal::Accept | Terminal::Reject => {
                        effect.accept = clause.terminal == Terminal::Accept;
                        space.manager.protect(fire);
                        out.push(PolicyPath {
                            predicate: fire,
                            effect: effect.normalized(),
                            labels,
                            spans,
                            is_default: false,
                            non_prefix_match: non_prefix,
                        });
                    }
                    Terminal::Fallthrough => {
                        let mut state = f.state;
                        space.apply_sets(&mut state, &clause.sets);
                        protect_frame(&mut space.manager, fire, &state);
                        stack.push(Frame {
                            idx: f.idx + 1,
                            predicate: fire,
                            effect,
                            state,
                            labels,
                            spans,
                            non_prefix,
                        });
                    }
                }
            }
        }
        space.manager.unprotect(popped_predicate);
        for b in popped_comm {
            space.manager.unprotect(b);
        }
        space.manager.gc_checkpoint();
    }
    out
}

/// Enumerate the path equivalence classes of an ACL (rules are always
/// terminal, so this is linear: one class per reachable rule plus the
/// implicit trailing deny).
pub fn acl_paths(space: &mut PacketSpace, acl: &AclIr, universe: Bdd) -> Vec<PolicyPath> {
    let mut out = Vec::new();
    let mut remaining = universe;
    space.manager.protect(remaining);
    for rule in &acl.rules {
        let cond = space.rule_bdd(rule);
        let fire = space.manager.and(remaining, cond);
        let next = space.manager.diff(remaining, cond);
        // Root the new frontier before releasing the old one: `next` and the
        // accumulated fire predicates are all we hold across the checkpoint;
        // `cond` and the superseded `remaining` become garbage.
        space.manager.protect(next);
        space.manager.unprotect(remaining);
        remaining = next;
        if space.manager.is_sat(fire) {
            space.manager.protect(fire);
            out.push(PolicyPath {
                predicate: fire,
                effect: ActionEffect::terminal(rule.permit),
                labels: vec![rule.label.clone()],
                spans: vec![rule.span],
                is_default: false,
                non_prefix_match: true,
            });
        }
        space.manager.gc_checkpoint();
    }
    if space.manager.is_sat(remaining) {
        // The frontier root carries over as the default path's output root.
        out.push(PolicyPath {
            predicate: remaining,
            effect: ActionEffect::terminal(false),
            labels: Vec::new(),
            spans: Vec::new(),
            is_default: true,
            non_prefix_match: true,
        });
    } else {
        space.manager.unprotect(remaining);
    }
    out
}

/// One behavioral difference between two components: the paper's quintuple
/// `(i, a₁, a₂, t₁, t₂)`.
#[derive(Debug, Clone)]
pub struct SemanticDifference {
    /// The impacted inputs.
    pub input: Bdd,
    /// Action taken by the first component.
    pub effect1: ActionEffect,
    /// Action taken by the second component.
    pub effect2: ActionEffect,
    /// Clause labels on the first component's path.
    pub labels1: Vec<String>,
    /// Clause labels on the second component's path.
    pub labels2: Vec<String>,
    /// Spans on the first component's path.
    pub spans1: Vec<Span>,
    /// Spans on the second component's path.
    pub spans2: Vec<Span>,
    /// Whether each side's implicit default decided.
    pub default1: bool,
    /// See `default1`.
    pub default2: bool,
    /// Whether either side's path matched on a non-prefix field.
    pub non_prefix_match: bool,
}

/// Pairwise comparison of two components' path classes. `manager_and` is
/// abstracted so route maps and ACLs share the code.
pub fn semantic_diff(
    manager: &mut Manager,
    paths1: &[PolicyPath],
    paths2: &[PolicyPath],
) -> Vec<SemanticDifference> {
    let mut out = Vec::new();
    for p1 in paths1 {
        for p2 in paths2 {
            if p1.effect == p2.effect {
                continue;
            }
            let inter = manager.and(p1.predicate, p2.predicate);
            if manager.is_sat(inter) {
                // Returned inputs are rooted; the driver releases each one
                // after presenting it.
                manager.protect(inter);
                out.push(SemanticDifference {
                    input: inter,
                    effect1: p1.effect.clone(),
                    effect2: p2.effect.clone(),
                    labels1: p1.labels.clone(),
                    labels2: p2.labels.clone(),
                    spans1: p1.spans.clone(),
                    spans2: p2.spans.clone(),
                    default1: p1.is_default,
                    default2: p2.is_default,
                    non_prefix_match: p1.non_prefix_match || p2.non_prefix_match,
                });
            }
        }
        manager.gc_checkpoint();
    }
    out
}

/// Release the GC roots held by a set of path predicates (the counterpart
/// of [`policy_paths`]/[`acl_paths`], which return their outputs rooted).
/// Call once `semantic_diff` has consumed the paths.
pub fn release_paths(manager: &mut Manager, paths: &[PolicyPath]) {
    for p in paths {
        manager.unprotect(p.predicate);
    }
}

/// Convenience: are two route policies behaviorally equivalent (no
/// semantic differences over the shared input space)?
pub fn policies_equivalent(p1: &RoutePolicy, p2: &RoutePolicy) -> bool {
    let mut space = RouteSpace::for_policies(&[p1, p2]);
    let u = space.universe();
    let paths1 = policy_paths(&mut space, p1, u);
    let paths2 = policy_paths(&mut space, p2, u);
    semantic_diff(&mut space.manager, &paths1, &paths2).is_empty()
}

/// Convenience: are two ACLs behaviorally equivalent?
pub fn acls_equivalent(a1: &AclIr, a2: &AclIr) -> bool {
    let mut space = PacketSpace::new();
    let u = space.universe();
    let paths1 = acl_paths(&mut space, a1, u);
    let paths2 = acl_paths(&mut space, a2, u);
    semantic_diff(&mut space.manager, &paths1, &paths2).is_empty()
}
