//! MatchPolicies (§4): pair corresponding components between two routers.
//!
//! Heuristics mirror the paper: BGP import/export policies are paired by
//! the shared neighbor address; redistribution filters by source protocol;
//! ACLs by name; remaining same-named policies by name. Components present
//! in only one router are reported as unmatched.

use std::collections::BTreeSet;

use campion_ir::RouterIr;

/// One pair of route policies to compare semantically. `None` means "no
/// policy configured" (compared against the permissive identity policy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyPair {
    /// Why these were paired ("export to neighbor 10.0.0.2", ...).
    pub context: String,
    /// Policy name in the first router.
    pub name1: Option<String>,
    /// Policy name in the second router.
    pub name2: Option<String>,
}

/// The output of component matching.
#[derive(Debug, Clone, Default)]
pub struct MatchedComponents {
    /// Route-policy pairs (BGP import/export, redistribution, by-name).
    pub policy_pairs: Vec<PolicyPair>,
    /// ACL names present in both routers.
    pub acl_pairs: Vec<String>,
    /// Reports about unpairable components.
    pub unmatched: Vec<String>,
}

/// Pair up the components of two routers.
pub fn match_policies(r1: &RouterIr, r2: &RouterIr) -> MatchedComponents {
    let mut out = MatchedComponents::default();
    let mut paired1: BTreeSet<String> = BTreeSet::new();
    let mut paired2: BTreeSet<String> = BTreeSet::new();

    // BGP neighbors: pair import and export policies per shared neighbor.
    if let (Some(b1), Some(b2)) = (&r1.bgp, &r2.bgp) {
        for (addr, n1) in &b1.neighbors {
            let Some(n2) = b2.neighbors.get(addr) else {
                // Presence differences belong to StructuralDiff; nothing to
                // pair here.
                continue;
            };
            for (dir, p1, p2) in [
                ("import from", &n1.import_policy, &n2.import_policy),
                ("export to", &n1.export_policy, &n2.export_policy),
            ] {
                if p1.is_none() && p2.is_none() {
                    continue;
                }
                if let Some(n) = p1 {
                    paired1.insert(n.clone());
                }
                if let Some(n) = p2 {
                    paired2.insert(n.clone());
                }
                out.policy_pairs.push(PolicyPair {
                    context: format!("{dir} neighbor {addr}"),
                    name1: p1.clone(),
                    name2: p2.clone(),
                });
            }
        }
    }

    // Redistribution filters, paired by (target protocol, source protocol).
    for (target, rs1, rs2) in [
        ("OSPF", &r1.ospf_redistribute, &r2.ospf_redistribute),
        (
            "BGP",
            &r1.bgp
                .as_ref()
                .map(|b| b.redistribute.clone())
                .unwrap_or_default(),
            &r2.bgp
                .as_ref()
                .map(|b| b.redistribute.clone())
                .unwrap_or_default(),
        ),
    ] {
        for rd1 in rs1.iter() {
            match rs2
                .iter()
                .find(|rd2| rd2.from_protocol == rd1.from_protocol)
            {
                Some(rd2) => {
                    if rd1.policy.is_none() && rd2.policy.is_none() {
                        continue;
                    }
                    if let Some(n) = &rd1.policy {
                        paired1.insert(n.clone());
                    }
                    if let Some(n) = &rd2.policy {
                        paired2.insert(n.clone());
                    }
                    out.policy_pairs.push(PolicyPair {
                        context: format!("redistribution of {} into {target}", rd1.from_protocol),
                        name1: rd1.policy.clone(),
                        name2: rd2.policy.clone(),
                    });
                }
                None => out.unmatched.push(format!(
                    "{}: redistribution of {} into {target} has no counterpart in {}",
                    r1.name, rd1.from_protocol, r2.name
                )),
            }
        }
        for rd2 in rs2.iter() {
            if !rs1.iter().any(|rd1| rd1.from_protocol == rd2.from_protocol) {
                out.unmatched.push(format!(
                    "{}: redistribution of {} into {target} has no counterpart in {}",
                    r2.name, rd2.from_protocol, r1.name
                ));
            }
        }
    }

    // Remaining policies with equal names (covers standalone comparisons
    // like the paper's Figure 1, where no BGP context is present).
    for name in r1.policies.keys() {
        if r2.policies.contains_key(name)
            && !paired1.contains(name)
            && !paired2.contains(name)
            && !name.contains('+')
        {
            out.policy_pairs.push(PolicyPair {
                context: format!("policy {name} (matched by name)"),
                name1: Some(name.clone()),
                name2: Some(name.clone()),
            });
            paired1.insert(name.clone());
            paired2.insert(name.clone());
        }
    }
    for (router, policies, paired, other) in [
        (&r1.name, &r1.policies, &paired1, &r2.name),
        (&r2.name, &r2.policies, &paired2, &r1.name),
    ] {
        for name in policies.keys() {
            if !paired.contains(name) && !name.contains('+') {
                out.unmatched.push(format!(
                    "{router}: policy {name} has no counterpart in {other}"
                ));
            }
        }
    }

    // ACLs by name.
    for name in r1.acls.keys() {
        if r2.acls.contains_key(name) {
            out.acl_pairs.push(name.clone());
        } else {
            out.unmatched.push(format!(
                "{}: ACL {name} has no counterpart in {}",
                r1.name, r2.name
            ));
        }
    }
    for name in r2.acls.keys() {
        if !r1.acls.contains_key(name) {
            out.unmatched.push(format!(
                "{}: ACL {name} has no counterpart in {}",
                r2.name, r1.name
            ));
        }
    }
    out
}
