//! # campion-core — the paper's contribution
//!
//! The modular configuration-differencing pipeline of *Campion: Debugging
//! Router Configuration Differences* (SIGCOMM 2021):
//!
//! * [`semantic`] — **SemanticDiff** (§3.1): partitions the input space of a
//!   route map or ACL into path equivalence classes (BDD predicates +
//!   composed action + text spans), then pairwise-intersects the classes of
//!   the two components to find **all** behavioral differences.
//! * [`headerloc`] — **HeaderLocalize** (§3.2): re-expresses each
//!   difference's input set minimally in terms of the prefix ranges that
//!   appear in the configurations, via a ddNF DAG and the recursive
//!   `GetMatch` traversal.
//! * [`structural`] — **StructuralDiff** (§3.3): exact structural comparison
//!   for components whose modular equivalence *is* structural equality —
//!   static routes, connected routes, BGP properties, OSPF attributes,
//!   administrative distances.
//! * [`matching`] — **MatchPolicies** (§4): pairs corresponding components
//!   across the two routers (route maps by BGP neighbor, ACLs by name,
//!   OSPF interfaces by name/subnet).
//! * [`report`] / [`driver`] — **Present**: renders each difference in the
//!   paper's two-column table format with header and text localization.
//!
//! The top-level entry point is [`compare_routers`]:
//!
//! ```
//! use campion_cfg::parse_config;
//! use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
//! use campion_core::{compare_routers, CampionOptions};
//! use campion_ir::lower;
//!
//! let cisco = lower(&parse_config(FIGURE1_CISCO).unwrap()).unwrap();
//! let juniper = lower(&parse_config(FIGURE1_JUNIPER).unwrap()).unwrap();
//! let report = compare_routers(&cisco, &juniper, &CampionOptions::default());
//! assert_eq!(report.route_map_diffs.len(), 2); // the paper's Table 2
//! ```

#![warn(missing_docs)]

pub mod commloc;
pub mod driver;
pub mod headerloc;
pub mod json;
pub mod matching;
pub mod portloc;
pub mod report;
pub mod semantic;
pub mod structural;

pub use commloc::{community_localize, CommunityCondition, CommunityLocalization};
pub use driver::{
    compare_config_texts, compare_policies_by_name, compare_routers, steal_indexed, CampionOptions,
    GcMode,
};
pub use headerloc::{
    header_localize, header_localize_with, reencode, DstAddrSpace, HeaderLocalization, RangeDag,
    RangeEncoder, RangeTerm, SrcAddrSpace,
};
pub use json::{policy_diff_json, report_json, stats_json, structural_finding_json};
pub use matching::{match_policies, MatchedComponents, PolicyPair};
pub use portloc::{dst_port_localize, src_port_localize};
pub use report::{CampionReport, FindingSide, PolicyDiffReport, StructuralFinding};
pub use semantic::{
    acl_paths, acls_equivalent, policies_equivalent, policy_paths, semantic_diff, PolicyPath,
    SemanticDifference,
};

#[cfg(test)]
mod tests;
