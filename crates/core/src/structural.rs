//! StructuralDiff (§3.3): exact structural comparison for components whose
//! modular behavioral equivalence coincides with structural equality —
//! static routes, connected routes, BGP neighbor properties, OSPF interface
//! attributes, and administrative distances.
//!
//! Localization is inherent: every finding points at the differing values
//! and their source spans directly.

use std::collections::BTreeMap;

use campion_cfg::Span;
use campion_ir::{NextHopIr, RouterIr, StaticRouteIr};
use campion_net::Prefix;

use crate::report::{FindingSide, StructuralFinding};

/// Compare the static routes of two routers.
///
/// Routes are grouped by destination prefix; a difference is a prefix
/// configured in only one router, or configured in both with a different
/// attribute multiset (next hops, administrative distances, tags) — the
/// exact tuple comparison of §3.3.
pub fn diff_static_routes(r1: &RouterIr, r2: &RouterIr) -> Vec<StructuralFinding> {
    let mut out = Vec::new();
    let by_prefix = |r: &RouterIr| -> BTreeMap<Prefix, Vec<StaticRouteIr>> {
        let mut m: BTreeMap<Prefix, Vec<StaticRouteIr>> = BTreeMap::new();
        for s in &r.static_routes {
            m.entry(s.prefix).or_default().push(s.clone());
        }
        m
    };
    let m1 = by_prefix(r1);
    let m2 = by_prefix(r2);
    for (prefix, routes1) in &m1 {
        match m2.get(prefix) {
            None => out.push(missing_static(*prefix, routes1, FindingSide::OnlyFirst)),
            Some(routes2) => {
                // Compare attribute multisets, order-independent.
                let key = |r: &StaticRouteIr| (r.next_hop.clone(), r.admin_distance, r.tag);
                let mut k1: Vec<_> = routes1.iter().map(key).collect();
                let mut k2: Vec<_> = routes2.iter().map(key).collect();
                k1.sort();
                k2.sort();
                if k1 != k2 {
                    let span1 = routes1
                        .iter()
                        .map(|r| r.span)
                        .reduce(Span::merge)
                        .expect("nonempty");
                    let span2 = routes2
                        .iter()
                        .map(|r| r.span)
                        .reduce(Span::merge)
                        .expect("nonempty");
                    out.push(StructuralFinding {
                        component: "Static Routes".to_string(),
                        key: prefix.to_string(),
                        description: format!(
                            "static routes for {prefix} have different attributes"
                        ),
                        value1: routes1
                            .iter()
                            .map(describe_static)
                            .collect::<Vec<_>>()
                            .join("; "),
                        value2: routes2
                            .iter()
                            .map(describe_static)
                            .collect::<Vec<_>>()
                            .join("; "),
                        span1: Some(span1),
                        span2: Some(span2),
                        side: FindingSide::Both,
                    });
                }
            }
        }
    }
    for (prefix, routes2) in &m2 {
        if !m1.contains_key(prefix) {
            out.push(missing_static(*prefix, routes2, FindingSide::OnlySecond));
        }
    }
    out
}

fn describe_static(r: &StaticRouteIr) -> String {
    let mut s = format!("next-hop {}, AD {}", r.next_hop, r.admin_distance);
    if let Some(t) = r.tag {
        s.push_str(&format!(", tag {t}"));
    }
    s
}

fn missing_static(
    prefix: Prefix,
    routes: &[StaticRouteIr],
    side: FindingSide,
) -> StructuralFinding {
    let span = routes.iter().map(|r| r.span).reduce(Span::merge);
    let desc = routes
        .iter()
        .map(describe_static)
        .collect::<Vec<_>>()
        .join("; ");
    let (value1, value2, span1, span2) = match side {
        FindingSide::OnlyFirst => (desc, "None".to_string(), span, None),
        FindingSide::OnlySecond => ("None".to_string(), desc, None, span),
        FindingSide::Both => unreachable!("missing route is one-sided"),
    };
    StructuralFinding {
        component: "Static Routes".to_string(),
        key: prefix.to_string(),
        description: format!("static route for {prefix} present in only one router"),
        value1,
        value2,
        span1,
        span2,
        side,
    }
}

/// Compare connected routes: the subnet sets contributed by up interfaces.
pub fn diff_connected_routes(r1: &RouterIr, r2: &RouterIr) -> Vec<StructuralFinding> {
    let c1 = r1.connected_routes();
    let c2 = r2.connected_routes();
    let mut out = Vec::new();
    for p in c1.difference(&c2) {
        out.push(StructuralFinding {
            component: "Connected Routes".to_string(),
            key: p.to_string(),
            description: format!("connected subnet {p} present in only one router"),
            value1: p.to_string(),
            value2: "None".to_string(),
            span1: iface_span(r1, p),
            span2: None,
            side: FindingSide::OnlyFirst,
        });
    }
    for p in c2.difference(&c1) {
        out.push(StructuralFinding {
            component: "Connected Routes".to_string(),
            key: p.to_string(),
            description: format!("connected subnet {p} present in only one router"),
            value1: "None".to_string(),
            value2: p.to_string(),
            span1: None,
            span2: iface_span(r2, p),
            side: FindingSide::OnlySecond,
        });
    }
    out
}

fn iface_span(r: &RouterIr, p: &Prefix) -> Option<Span> {
    r.interfaces
        .values()
        .find(|i| i.connected_route().as_ref() == Some(p))
        .map(|i| i.span)
}

/// Compare BGP properties not implemented by route maps: neighbor presence,
/// remote AS, community propagation, route-reflector-client status,
/// next-hop-self, plus the process-level AS and configured distances.
pub fn diff_bgp_properties(r1: &RouterIr, r2: &RouterIr) -> Vec<StructuralFinding> {
    let mut out = Vec::new();
    match (&r1.bgp, &r2.bgp) {
        (None, None) => {}
        (Some(b), None) => out.push(StructuralFinding {
            component: "BGP Properties".to_string(),
            key: "process".to_string(),
            description: "BGP configured in only one router".to_string(),
            value1: format!("AS {}", b.asn),
            value2: "None".to_string(),
            span1: Some(b.span),
            span2: None,
            side: FindingSide::OnlyFirst,
        }),
        (None, Some(b)) => out.push(StructuralFinding {
            component: "BGP Properties".to_string(),
            key: "process".to_string(),
            description: "BGP configured in only one router".to_string(),
            value1: "None".to_string(),
            value2: format!("AS {}", b.asn),
            span1: None,
            span2: Some(b.span),
            side: FindingSide::OnlySecond,
        }),
        (Some(b1), Some(b2)) => {
            if b1.asn != b2.asn {
                out.push(StructuralFinding {
                    component: "BGP Properties".to_string(),
                    key: "local AS".to_string(),
                    description: "local AS numbers differ".to_string(),
                    value1: b1.asn.to_string(),
                    value2: b2.asn.to_string(),
                    span1: Some(b1.span),
                    span2: Some(b2.span),
                    side: FindingSide::Both,
                });
            }
            if b1.distance != b2.distance {
                out.push(StructuralFinding {
                    component: "Administrative Distances".to_string(),
                    key: "bgp".to_string(),
                    description: "configured BGP distances differ".to_string(),
                    value1: format!("{:?}", b1.distance),
                    value2: format!("{:?}", b2.distance),
                    span1: Some(b1.span),
                    span2: Some(b2.span),
                    side: FindingSide::Both,
                });
            }
            for (addr, n1) in &b1.neighbors {
                match b2.neighbors.get(addr) {
                    None => out.push(StructuralFinding {
                        component: "BGP Properties".to_string(),
                        key: addr.to_string(),
                        description: format!("neighbor {addr} present in only one router"),
                        value1: format!("remote-as {:?}", n1.remote_as),
                        value2: "None".to_string(),
                        span1: Some(n1.span),
                        span2: None,
                        side: FindingSide::OnlyFirst,
                    }),
                    Some(n2) => {
                        let checks: [(&str, String, String); 4] = [
                            (
                                "remote-as",
                                format!("{:?}", n1.remote_as),
                                format!("{:?}", n2.remote_as),
                            ),
                            (
                                "send-community",
                                n1.send_community.to_string(),
                                n2.send_community.to_string(),
                            ),
                            (
                                "route-reflector-client",
                                n1.route_reflector_client.to_string(),
                                n2.route_reflector_client.to_string(),
                            ),
                            (
                                "next-hop-self",
                                n1.next_hop_self.to_string(),
                                n2.next_hop_self.to_string(),
                            ),
                        ];
                        for (what, v1, v2) in checks {
                            if v1 != v2 {
                                out.push(StructuralFinding {
                                    component: "BGP Properties".to_string(),
                                    key: format!("{addr} {what}"),
                                    description: format!("neighbor {addr}: {what} differs"),
                                    value1: v1,
                                    value2: v2,
                                    span1: Some(n1.span),
                                    span2: Some(n2.span),
                                    side: FindingSide::Both,
                                });
                            }
                        }
                    }
                }
            }
            for (addr, n2) in &b2.neighbors {
                if !b1.neighbors.contains_key(addr) {
                    out.push(StructuralFinding {
                        component: "BGP Properties".to_string(),
                        key: addr.to_string(),
                        description: format!("neighbor {addr} present in only one router"),
                        value1: "None".to_string(),
                        value2: format!("remote-as {:?}", n2.remote_as),
                        span1: None,
                        span2: Some(n2.span),
                        side: FindingSide::OnlySecond,
                    });
                }
            }
        }
    }
    out
}

/// Compare OSPF interface attributes (cost, area, passive status).
///
/// Interfaces are paired by name first; leftovers are paired by equal
/// subnet, then by (area, mask length) — backup routers use different
/// addresses for interfaces in the same role (§4 of the paper).
pub fn diff_ospf(r1: &RouterIr, r2: &RouterIr) -> Vec<StructuralFinding> {
    let mut out = Vec::new();
    if r1.ospf_distance != r2.ospf_distance {
        out.push(StructuralFinding {
            component: "Administrative Distances".to_string(),
            key: "ospf".to_string(),
            description: "configured OSPF distances differ".to_string(),
            value1: format!("{:?}", r1.ospf_distance),
            value2: format!("{:?}", r2.ospf_distance),
            span1: None,
            span2: None,
            side: FindingSide::Both,
        });
    }
    let mut used2 = vec![false; r2.ospf_interfaces.len()];
    for o1 in &r1.ospf_interfaces {
        // Pairing heuristics, most to least specific.
        let candidate = r2
            .ospf_interfaces
            .iter()
            .enumerate()
            .filter(|(j, _)| !used2[*j])
            .find(|(_, o2)| o2.iface == o1.iface)
            .or_else(|| {
                r2.ospf_interfaces
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| !used2[*j])
                    .find(|(_, o2)| o1.subnet.is_some() && o2.subnet == o1.subnet)
            })
            .or_else(|| {
                r2.ospf_interfaces
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| !used2[*j])
                    .find(|(_, o2)| {
                        o2.area == o1.area
                            && o1.subnet.map(|s| s.len()) == o2.subnet.map(|s| s.len())
                    })
            });
        match candidate {
            None => out.push(StructuralFinding {
                component: "OSPF Properties".to_string(),
                key: o1.iface.clone(),
                description: format!("OSPF interface {} has no counterpart", o1.iface),
                value1: describe_ospf(o1),
                value2: "None".to_string(),
                span1: Some(o1.span),
                span2: None,
                side: FindingSide::OnlyFirst,
            }),
            Some((j, o2)) => {
                used2[j] = true;
                let checks: [(&str, String, String); 3] = [
                    ("area", o1.area.to_string(), o2.area.to_string()),
                    ("cost", format!("{:?}", o1.cost), format!("{:?}", o2.cost)),
                    ("passive", o1.passive.to_string(), o2.passive.to_string()),
                ];
                for (what, v1, v2) in checks {
                    if v1 != v2 {
                        out.push(StructuralFinding {
                            component: "OSPF Properties".to_string(),
                            key: format!("{} / {} {what}", o1.iface, o2.iface),
                            description: format!(
                                "OSPF {what} differs on {} vs {}",
                                o1.iface, o2.iface
                            ),
                            value1: v1,
                            value2: v2,
                            span1: Some(o1.span),
                            span2: Some(o2.span),
                            side: FindingSide::Both,
                        });
                    }
                }
            }
        }
    }
    for (j, o2) in r2.ospf_interfaces.iter().enumerate() {
        if !used2[j] {
            out.push(StructuralFinding {
                component: "OSPF Properties".to_string(),
                key: o2.iface.clone(),
                description: format!("OSPF interface {} has no counterpart", o2.iface),
                value1: "None".to_string(),
                value2: describe_ospf(o2),
                span1: None,
                span2: Some(o2.span),
                side: FindingSide::OnlySecond,
            });
        }
    }
    out
}

fn describe_ospf(o: &campion_ir::OspfIfaceIr) -> String {
    let mut s = format!("area {}", o.area);
    if let Some(c) = o.cost {
        s.push_str(&format!(", cost {c}"));
    }
    if o.passive {
        s.push_str(", passive");
    }
    if let Some(net) = o.subnet {
        s.push_str(&format!(", subnet {net}"));
    }
    s
}

/// Helper used by tests: does a static-route set contain a route to
/// `prefix` via `next_hop`?
pub fn has_static(r: &RouterIr, prefix: &str, next_hop: &str) -> bool {
    let p: Prefix = prefix.parse().expect("valid prefix");
    r.static_routes.iter().any(|s| {
        s.prefix == p
            && match (&s.next_hop, next_hop.parse::<std::net::Ipv4Addr>()) {
                (NextHopIr::Ip(ip), Ok(want)) => *ip == want,
                (NextHopIr::Discard, _) => next_hop == "discard",
                (NextHopIr::Interface(i), _) => i == next_hop,
                _ => false,
            }
    })
}
