//! Present: rendering differences in the paper's two-column table format
//! (Tables 2, 4 and 7).

use std::fmt;

use campion_bdd::ManagerStats;
use campion_cfg::Span;
use campion_net::PrefixRange;

/// Which router a structural finding concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingSide {
    /// Present only in the first router.
    OnlyFirst,
    /// Present only in the second router.
    OnlySecond,
    /// Present in both with differing attributes.
    Both,
}

/// One StructuralDiff finding, directly localized (§3.3).
#[derive(Debug, Clone)]
pub struct StructuralFinding {
    /// Component family ("Static Routes", "BGP Properties", ...).
    pub component: String,
    /// Pairing key (prefix, neighbor address, interface).
    pub key: String,
    /// Human-readable description.
    pub description: String,
    /// Value in the first router ("None" when absent).
    pub value1: String,
    /// Value in the second router.
    pub value2: String,
    /// Source span in the first configuration.
    pub span1: Option<Span>,
    /// Source span in the second configuration.
    pub span2: Option<Span>,
    /// Sidedness.
    pub side: FindingSide,
}

/// One SemanticDiff difference, header- and text-localized, ready for
/// display (the rows of Table 2 / Table 7).
#[derive(Debug, Clone)]
pub struct PolicyDiffReport {
    /// What was compared ("route map POL (export to 10.0.0.2)",
    /// "ACL VM_FILTER_1").
    pub context: String,
    /// Component name in each router.
    pub name1: String,
    /// See `name1`.
    pub name2: String,
    /// Included prefix ranges (header localization).
    pub included: Vec<PrefixRange>,
    /// Excluded prefix ranges.
    pub excluded: Vec<PrefixRange>,
    /// A concrete example for non-prefix fields (communities etc.),
    /// when relevant.
    pub example: Option<String>,
    /// Action in the first router.
    pub action1: String,
    /// Action in the second router.
    pub action2: String,
    /// Configuration text in the first router.
    pub text1: String,
    /// Configuration text in the second router.
    pub text2: String,
    /// Source spans of the fired clauses/rules in the first router —
    /// the structured form of `text1`, for machine consumers (the fuzz
    /// harness's localization oracle). Deliberately absent from `Display`.
    pub spans1: Vec<Span>,
    /// See `spans1`.
    pub spans2: Vec<Span>,
    /// True when the first side's behavior comes from the component's
    /// implicit default (no clause/rule fired), in which case `spans1` is
    /// empty.
    pub default1: bool,
    /// See `default1`.
    pub default2: bool,
}

/// The full output of comparing two routers.
#[derive(Debug, Clone, Default)]
pub struct CampionReport {
    /// First router's name.
    pub router1: String,
    /// Second router's name.
    pub router2: String,
    /// Semantic route-map differences.
    pub route_map_diffs: Vec<PolicyDiffReport>,
    /// Semantic ACL differences.
    pub acl_diffs: Vec<PolicyDiffReport>,
    /// Structural findings.
    pub structural: Vec<StructuralFinding>,
    /// Components that could not be paired (reported, as in §4).
    pub unmatched: Vec<String>,
    /// Aggregate BDD-engine counters across every semantic pair diffed for
    /// this report. Diagnostic only — deliberately absent from `Display`,
    /// so rendered reports stay identical across worker counts.
    pub bdd_stats: ManagerStats,
}

impl CampionReport {
    /// Total number of reported differences.
    pub fn total_differences(&self) -> usize {
        self.route_map_diffs.len() + self.acl_diffs.len() + self.structural.len()
    }

    /// True when the routers were found behaviorally equivalent.
    pub fn is_equivalent(&self) -> bool {
        self.total_differences() == 0 && self.unmatched.is_empty()
    }

    /// Render the aggregate BDD-engine counters, including the garbage
    /// collector's. Exposed behind the CLI's `--stats` flag rather than
    /// `Display` so default reports stay byte-identical across worker
    /// counts and GC modes.
    pub fn render_stats(&self) -> String {
        let s = &self.bdd_stats;
        let mut out = String::from("=== BDD engine statistics ===\n");
        let mut row = |label: &str, value: String| {
            out.push_str(&format!("{label:<24} {value}\n"));
        };
        row("live nodes", s.nodes.to_string());
        row("peak live nodes", s.peak_nodes.to_string());
        row("post-GC live nodes", s.post_gc_nodes.to_string());
        row("GC collections", s.gc_runs.to_string());
        row("GC nodes freed", s.gc_nodes_freed.to_string());
        row(
            "GC pause time",
            format!("{} \u{b5}s across {} pause(s)", s.gc_pause_us, s.gc_pauses),
        );
        row("GC max pause", format!("{} \u{b5}s", s.gc_pause_max_us));
        row("cache resizes", s.cache_resizes.to_string());
        row("unique-table grows", s.unique_grows.to_string());
        row(
            "unique hit rate",
            format!("{:.4} ({} lookups)", s.unique_hit_rate(), s.unique_lookups),
        );
        row(
            "apply hit rate",
            format!("{:.4} ({} lookups)", s.apply_hit_rate(), s.apply_lookups),
        );
        row(
            "not lookups/hits",
            format!("{}/{}", s.not_lookups, s.not_hits),
        );
        row(
            "ite lookups/hits",
            format!("{}/{}", s.ite_lookups, s.ite_hits),
        );
        row(
            "rule-cache hit rate",
            format!(
                "{:.4} ({} lookups)",
                s.rule_cache_hit_rate(),
                s.rule_cache_lookups
            ),
        );
        row(
            "diff pairs examined",
            format!("{} ({} pruned)", s.pairs_examined, s.pairs_pruned),
        );
        row("diff early exits", s.early_exits.to_string());
        row(
            "shard CAS retries",
            format!(
                "{} ({} lock waits)",
                s.shard_cas_retries, s.shard_lock_waits
            ),
        );
        out
    }
}

/// Render a two-column table with a fixed label gutter, in the style of the
/// paper's tables.
fn two_column_table(
    f: &mut fmt::Formatter<'_>,
    header: (&str, &str),
    rows: &[(&str, String, String)],
) -> fmt::Result {
    const LABEL_W: usize = 18;
    const COL_W: usize = 34;
    let hline = format!(
        "+{}+{}+{}+",
        "-".repeat(LABEL_W + 2),
        "-".repeat(COL_W + 2),
        "-".repeat(COL_W + 2)
    );
    writeln!(f, "{hline}")?;
    writeln!(
        f,
        "| {:LABEL_W$} | {:COL_W$} | {:COL_W$} |",
        "", header.0, header.1
    )?;
    writeln!(f, "{hline}")?;
    for (label, v1, v2) in rows {
        let c1: Vec<&str> = if v1.is_empty() {
            vec![""]
        } else {
            v1.lines().collect()
        };
        let c2: Vec<&str> = if v2.is_empty() {
            vec![""]
        } else {
            v2.lines().collect()
        };
        let n = c1.len().max(c2.len());
        for i in 0..n {
            let l = if i == 0 { label } else { &"" };
            let a = c1.get(i).copied().unwrap_or("");
            let b = c2.get(i).copied().unwrap_or("");
            // Hard-wrap long lines so the table stays rectangular.
            let a = truncate_pad(a, COL_W);
            let b = truncate_pad(b, COL_W);
            writeln!(f, "| {l:LABEL_W$} | {a} | {b} |")?;
        }
        writeln!(f, "{hline}")?;
    }
    Ok(())
}

fn truncate_pad(s: &str, w: usize) -> String {
    let mut out: String = s.chars().take(w).collect();
    let pad = w.saturating_sub(out.chars().count());
    out.extend(std::iter::repeat_n(' ', pad));
    out
}

fn ranges_cell(rs: &[PrefixRange]) -> String {
    if rs.is_empty() {
        "(none)".to_string()
    } else {
        rs.iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for PolicyDiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.context)?;
        let mut rows: Vec<(&str, String, String)> = vec![(
            "Included Prefixes",
            ranges_cell(&self.included),
            String::new(),
        )];
        if !self.excluded.is_empty() {
            rows.push((
                "Excluded Prefixes",
                ranges_cell(&self.excluded),
                String::new(),
            ));
        }
        if let Some(e) = &self.example {
            rows.push(("Example", e.clone(), String::new()));
        }
        rows.push(("Policy Name", self.name1.clone(), self.name2.clone()));
        rows.push(("Action", self.action1.clone(), self.action2.clone()));
        rows.push(("Text", self.text1.clone(), self.text2.clone()));
        two_column_table(f, (&self.name1, &self.name2), &rows)
    }
}

impl fmt::Display for StructuralFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.component, self.description)?;
        let span = |s: &Option<Span>| match s {
            Some(sp) => format!(" ({sp})"),
            None => String::new(),
        };
        writeln!(f, "  router 1: {}{}", self.value1, span(&self.span1))?;
        writeln!(f, "  router 2: {}{}", self.value2, span(&self.span2))
    }
}

impl fmt::Display for CampionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== Campion: {} vs {} — {} difference(s) ===",
            self.router1,
            self.router2,
            self.total_differences()
        )?;
        if self.is_equivalent() {
            writeln!(f, "No behavioral differences found.")?;
            return Ok(());
        }
        if !self.route_map_diffs.is_empty() {
            writeln!(f, "\n--- Route map differences (SemanticDiff) ---")?;
            for (i, d) in self.route_map_diffs.iter().enumerate() {
                writeln!(f, "\nDifference {}:", i + 1)?;
                write!(f, "{d}")?;
            }
        }
        if !self.acl_diffs.is_empty() {
            writeln!(f, "\n--- ACL differences (SemanticDiff) ---")?;
            for (i, d) in self.acl_diffs.iter().enumerate() {
                writeln!(f, "\nDifference {}:", i + 1)?;
                write!(f, "{d}")?;
            }
        }
        if !self.structural.is_empty() {
            writeln!(f, "\n--- Structural differences (StructuralDiff) ---")?;
            for s in &self.structural {
                writeln!(f)?;
                write!(f, "{s}")?;
            }
        }
        if !self.unmatched.is_empty() {
            writeln!(f, "\n--- Unmatched components ---")?;
            for u in &self.unmatched {
                writeln!(f, "  {u}")?;
            }
        }
        Ok(())
    }
}
