//! Structured JSON serialization of comparison reports — the machine
//! twin of `Present`'s two-column tables.
//!
//! One serializer feeds every consumer: `campion compare --format json`,
//! the `campion-fleetd` snapshot store, and the fleet HTTP API, so a
//! report served from the daemon's cache is byte-identical to the CLI's
//! output for the same pair. The document is deterministic — fields are
//! emitted in a fixed order, maps come from `BTreeMap`s upstream — and the
//! text `Display` rendering is untouched.
//!
//! The encoder is hand-rolled (the repo's vendored-shim philosophy: no
//! serde in the build image); the matching decoder lives in
//! `campion_trace::json`, which the fleet store uses to read documents
//! back.

use std::fmt::Write as _;

use campion_bdd::ManagerStats;
use campion_cfg::Span;
use campion_trace::json::escape;

use crate::report::{CampionReport, FindingSide, PolicyDiffReport, StructuralFinding};

fn push_str_field(out: &mut String, key: &str, value: &str, comma: bool) {
    let _ = write!(
        out,
        "\"{key}\": \"{}\"{}",
        escape(value),
        if comma { ", " } else { "" }
    );
}

fn span_json(s: &Span) -> String {
    format!("{{\"start\": {}, \"end\": {}}}", s.start, s.end)
}

fn spans_json(spans: &[Span]) -> String {
    let parts: Vec<String> = spans.iter().map(span_json).collect();
    format!("[{}]", parts.join(", "))
}

fn opt_str_json(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

fn str_list_json(items: &[String]) -> String {
    let parts: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", parts.join(", "))
}

/// Serialize one semantic difference. Prefix ranges use their canonical
/// `Display` form (`"10.9.0.0/16:16-32"`), which `PrefixRange::from_str`
/// parses back.
pub fn policy_diff_json(d: &PolicyDiffReport) -> String {
    let mut o = String::from("{");
    push_str_field(&mut o, "context", &d.context, true);
    push_str_field(&mut o, "name1", &d.name1, true);
    push_str_field(&mut o, "name2", &d.name2, true);
    let ranges = |rs: &[campion_net::PrefixRange]| {
        str_list_json(&rs.iter().map(|r| r.to_string()).collect::<Vec<_>>())
    };
    let _ = write!(o, "\"included\": {}, ", ranges(&d.included));
    let _ = write!(o, "\"excluded\": {}, ", ranges(&d.excluded));
    let _ = write!(o, "\"example\": {}, ", opt_str_json(&d.example));
    push_str_field(&mut o, "action1", &d.action1, true);
    push_str_field(&mut o, "action2", &d.action2, true);
    push_str_field(&mut o, "text1", &d.text1, true);
    push_str_field(&mut o, "text2", &d.text2, true);
    let _ = write!(o, "\"spans1\": {}, ", spans_json(&d.spans1));
    let _ = write!(o, "\"spans2\": {}, ", spans_json(&d.spans2));
    let _ = write!(o, "\"default1\": {}, ", d.default1);
    let _ = write!(o, "\"default2\": {}}}", d.default2);
    o
}

/// Serialize one structural finding.
pub fn structural_finding_json(s: &StructuralFinding) -> String {
    let mut o = String::from("{");
    push_str_field(&mut o, "component", &s.component, true);
    push_str_field(&mut o, "key", &s.key, true);
    push_str_field(&mut o, "description", &s.description, true);
    push_str_field(&mut o, "value1", &s.value1, true);
    push_str_field(&mut o, "value2", &s.value2, true);
    let span = |sp: &Option<Span>| sp.as_ref().map_or("null".to_string(), span_json);
    let _ = write!(o, "\"span1\": {}, ", span(&s.span1));
    let _ = write!(o, "\"span2\": {}, ", span(&s.span2));
    let side = match s.side {
        FindingSide::OnlyFirst => "only_first",
        FindingSide::OnlySecond => "only_second",
        FindingSide::Both => "both",
    };
    let _ = write!(o, "\"side\": \"{side}\"}}");
    o
}

/// Serialize a full comparison report as a stable JSON document
/// (`campion compare --format json`, the fleet store and API).
pub fn report_json(r: &CampionReport) -> String {
    let mut o = String::from("{\n  ");
    push_str_field(&mut o, "router1", &r.router1, true);
    push_str_field(&mut o, "router2", &r.router2, true);
    let _ = write!(o, "\"equivalent\": {}, ", r.is_equivalent());
    let _ = write!(o, "\"total_differences\": {},\n  ", r.total_differences());
    let diffs = |ds: &[PolicyDiffReport]| {
        let parts: Vec<String> = ds.iter().map(policy_diff_json).collect();
        format!("[{}]", parts.join(",\n    "))
    };
    let _ = write!(o, "\"route_map_diffs\": {},\n  ", diffs(&r.route_map_diffs));
    let _ = write!(o, "\"acl_diffs\": {},\n  ", diffs(&r.acl_diffs));
    let structural: Vec<String> = r.structural.iter().map(structural_finding_json).collect();
    let _ = write!(o, "\"structural\": [{}],\n  ", structural.join(",\n    "));
    let _ = write!(o, "\"unmatched\": {}\n}}\n", str_list_json(&r.unmatched));
    o
}

/// Serialize the aggregate BDD-engine counters (`campion compare
/// --stats-json`): the machine twin of `CampionReport::render_stats`,
/// field-for-field compatible with the per-size rows the scalability bench
/// writes into `BENCH_campion.json`.
pub fn stats_json(s: &ManagerStats) -> String {
    let mut o = String::from("{\n  ");
    let _ = write!(o, "\"bdd_nodes\": {}, ", s.nodes);
    let _ = write!(o, "\"peak_nodes\": {}, ", s.peak_nodes);
    let _ = write!(o, "\"post_gc_nodes\": {},\n  ", s.post_gc_nodes);
    let _ = write!(o, "\"gc_runs\": {}, ", s.gc_runs);
    let _ = write!(o, "\"gc_nodes_freed\": {}, ", s.gc_nodes_freed);
    let _ = write!(o, "\"gc_pauses\": {}, ", s.gc_pauses);
    let _ = write!(o, "\"gc_pause_us\": {}, ", s.gc_pause_us);
    let _ = write!(o, "\"gc_pause_max_us\": {},\n  ", s.gc_pause_max_us);
    let _ = write!(o, "\"cache_resizes\": {}, ", s.cache_resizes);
    let _ = write!(o, "\"unique_grows\": {},\n  ", s.unique_grows);
    let _ = write!(o, "\"unique_lookups\": {}, ", s.unique_lookups);
    let _ = write!(o, "\"unique_hit_rate\": {:.4},\n  ", s.unique_hit_rate());
    let _ = write!(o, "\"apply_lookups\": {}, ", s.apply_lookups);
    let _ = write!(o, "\"apply_hit_rate\": {:.4},\n  ", s.apply_hit_rate());
    let _ = write!(o, "\"not_lookups\": {}, ", s.not_lookups);
    let _ = write!(o, "\"not_hits\": {}, ", s.not_hits);
    let _ = write!(o, "\"ite_lookups\": {}, ", s.ite_lookups);
    let _ = write!(o, "\"ite_hits\": {},\n  ", s.ite_hits);
    let _ = write!(o, "\"rule_cache_lookups\": {}, ", s.rule_cache_lookups);
    let _ = write!(
        o,
        "\"rule_cache_hit_rate\": {:.4},\n  ",
        s.rule_cache_hit_rate()
    );
    let _ = write!(o, "\"pairs_examined\": {}, ", s.pairs_examined);
    let _ = write!(o, "\"pairs_pruned\": {}, ", s.pairs_pruned);
    let _ = write!(o, "\"early_exits\": {},\n  ", s.early_exits);
    let _ = write!(o, "\"shard_cas_retries\": {}, ", s.shard_cas_retries);
    let _ = write!(o, "\"shard_lock_waits\": {}\n}}\n", s.shard_lock_waits);
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use campion_cfg::parse_config;
    use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
    use campion_ir::lower;
    use campion_trace::json::{parse, Json};

    use crate::driver::{compare_routers, CampionOptions};

    fn fig1_report() -> CampionReport {
        let c = lower(&parse_config(FIGURE1_CISCO).expect("parse")).expect("lower");
        let j = lower(&parse_config(FIGURE1_JUNIPER).expect("parse")).expect("lower");
        compare_routers(&c, &j, &CampionOptions::default())
    }

    #[test]
    fn report_json_parses_and_round_trips_fields() {
        let report = fig1_report();
        let doc = report_json(&report);
        let parsed = parse(&doc).expect("valid JSON");
        assert_eq!(
            parsed.get("router1").and_then(Json::as_str),
            Some("cisco_router")
        );
        assert_eq!(
            parsed
                .get("total_differences")
                .and_then(Json::as_f64)
                .map(|f| f as usize),
            Some(report.total_differences())
        );
        let diffs = parsed
            .get("route_map_diffs")
            .and_then(Json::as_arr)
            .expect("array");
        assert_eq!(diffs.len(), report.route_map_diffs.len());
        // Included prefixes survive as their canonical Display strings.
        let inc = diffs[0]
            .get("included")
            .and_then(Json::as_arr)
            .expect("arr");
        let want: Vec<String> = report.route_map_diffs[0]
            .included
            .iter()
            .map(|r| r.to_string())
            .collect();
        let got: Vec<String> = inc
            .iter()
            .map(|j| j.as_str().expect("string").to_string())
            .collect();
        assert_eq!(got, want);
        for (i, d) in report.route_map_diffs.iter().enumerate() {
            let j = &diffs[i];
            assert_eq!(
                j.get("spans1").and_then(Json::as_arr).map(|a| a.len()),
                Some(d.spans1.len())
            );
            assert_eq!(j.get("default1").and_then(Json::as_bool), Some(d.default1));
            assert_eq!(
                j.get("text1").and_then(Json::as_str),
                Some(d.text1.as_str())
            );
        }
    }

    #[test]
    fn stats_json_parses_and_matches_counters() {
        let report = fig1_report();
        let doc = stats_json(&report.bdd_stats);
        let parsed = parse(&doc).expect("valid JSON");
        let num = |k: &str| parsed.get(k).and_then(Json::as_f64).expect("numeric field");
        assert_eq!(num("bdd_nodes") as u64, report.bdd_stats.nodes);
        assert_eq!(num("peak_nodes") as u64, report.bdd_stats.peak_nodes);
        assert_eq!(
            num("unique_lookups") as u64,
            report.bdd_stats.unique_lookups
        );
        assert!((num("apply_hit_rate") - report.bdd_stats.apply_hit_rate()).abs() < 1e-3);
        assert_eq!(
            num("gc_pause_max_us") as u64,
            report.bdd_stats.gc_pause_max_us
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = report_json(&fig1_report());
        let b = report_json(&fig1_report());
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_not_perturbed_by_serialization() {
        let report = fig1_report();
        let before = report.to_string();
        let _ = report_json(&report);
        assert_eq!(report.to_string(), before);
    }
}
