//! Tests for the Campion core pipeline, anchored on the paper's §2 examples.

use campion_cfg::parse_config;
use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER, STATIC_CISCO, STATIC_JUNIPER};
use campion_ir::{lower, RouterIr};
use campion_net::PrefixRange;

use crate::driver::{compare_routers, CampionOptions};
use crate::headerloc::{header_localize, reencode};
use crate::report::FindingSide;
use crate::semantic::{acl_paths, policies_equivalent, policy_paths, semantic_diff};
use campion_symbolic::RouteSpace;

fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).unwrap()).unwrap()
}

fn fig1() -> (RouterIr, RouterIr) {
    (load(FIGURE1_CISCO), load(FIGURE1_JUNIPER))
}

// ---------------------------------------------------------------- semantic

#[test]
fn figure1_path_counts() {
    let (c, j) = fig1();
    let p1 = &c.policies["POL"];
    let p2 = &j.policies["POL"];
    let mut space = RouteSpace::for_policies(&[p1, p2]);
    let u = space.universe();
    let paths1 = policy_paths(&mut space, p1, u);
    let paths2 = policy_paths(&mut space, p2, u);
    // Three reachable clauses each; clause 3 matches everything so the
    // implicit default is unreachable.
    assert_eq!(paths1.len(), 3);
    assert_eq!(paths2.len(), 3);
    // The classes partition the universe.
    for paths in [&paths1, &paths2] {
        let mut acc = campion_bdd::Bdd::FALSE;
        for p in paths.iter() {
            let inter = space.manager.and(acc, p.predicate);
            assert!(space.manager.is_false(inter), "classes must be disjoint");
            acc = space.manager.or(acc, p.predicate);
        }
        assert_eq!(acc, u, "classes must cover the universe");
    }
}

#[test]
fn figure1_produces_exactly_two_differences() {
    let (c, j) = fig1();
    let report = compare_routers(&c, &j, &CampionOptions::default());
    assert_eq!(
        report.route_map_diffs.len(),
        2,
        "the paper's Table 2 reports exactly two differences:\n{report}"
    );

    // Difference 1 (Table 2a): Cisco rejects via `deny 10`, Juniper accepts
    // via rule3 with local-pref 30.
    let d1 = &report.route_map_diffs[0];
    assert_eq!(d1.action1, "REJECT");
    assert_eq!(d1.action2, "SET LOCAL PREF 30\nACCEPT");
    assert_eq!(
        d1.included,
        vec![
            "10.9.0.0/16:16-32".parse::<PrefixRange>().unwrap(),
            "10.100.0.0/16:16-32".parse().unwrap()
        ]
    );
    assert_eq!(
        d1.excluded,
        vec![
            "10.9.0.0/16:16-16".parse::<PrefixRange>().unwrap(),
            "10.100.0.0/16:16-16".parse().unwrap()
        ]
    );
    assert!(d1.text1.contains("route-map POL deny 10"));
    assert!(d1.text1.contains("match ip address prefix-list NETS"));
    assert!(d1.text2.contains("term rule3"));
    assert!(d1.example.is_none(), "difference 1 is prefix-only");

    // Difference 2 (Table 2b): community mismatch, all prefixes outside
    // NETS.
    let d2 = &report.route_map_diffs[1];
    assert_eq!(d2.action1, "REJECT");
    assert_eq!(d2.action2, "SET LOCAL PREF 30\nACCEPT");
    assert_eq!(
        d2.included,
        vec!["0.0.0.0/0:0-32".parse::<PrefixRange>().unwrap()]
    );
    assert_eq!(
        d2.excluded,
        vec![
            "10.9.0.0/16:16-32".parse::<PrefixRange>().unwrap(),
            "10.100.0.0/16:16-32".parse().unwrap()
        ]
    );
    let example = d2.example.as_ref().expect("community example");
    assert!(
        example.contains("10:10") || example.contains("10:11"),
        "example must show a community: {example}"
    );
    assert!(d2.text1.contains("match community COMM"));
}

#[test]
fn identical_policies_are_equivalent() {
    let c1 = load(FIGURE1_CISCO);
    let c2 = load(FIGURE1_CISCO);
    let report = compare_routers(&c1, &c2, &CampionOptions::default());
    assert!(report.is_equivalent(), "{report}");
    assert!(policies_equivalent(
        &c1.policies["POL"],
        &c2.policies["POL"]
    ));
}

#[test]
fn corrected_juniper_config_is_equivalent() {
    // Fix both Figure-1 bugs on the Juniper side: orlonger prefix matching
    // and per-member community semantics — plus a terminal reject term to
    // mirror Cisco's implicit deny.
    let fixed = "\
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community C10 members 10:10;
    community C11 members 10:11;
    policy-statement POL {
        term rule1 {
            from prefix-list-filter NETS orlonger;
            then reject;
        }
        term rule2a {
            from community C10;
            then reject;
        }
        term rule2b {
            from community C11;
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
";
    let c = load(FIGURE1_CISCO);
    let j = load(fixed);
    let report = compare_routers(&c, &j, &CampionOptions::default());
    assert!(
        report.route_map_diffs.is_empty(),
        "fixed config must be equivalent:\n{report}"
    );
}

#[test]
fn semantic_diff_is_symmetric_in_count() {
    let (c, j) = fig1();
    let p1 = &c.policies["POL"];
    let p2 = &j.policies["POL"];
    let mut s1 = RouteSpace::for_policies(&[p1, p2]);
    let u1 = s1.universe();
    let a = policy_paths(&mut s1, p1, u1);
    let b = policy_paths(&mut s1, p2, u1);
    let fwd = semantic_diff(&mut s1.manager, &a, &b).len();
    let rev = semantic_diff(&mut s1.manager, &b, &a).len();
    assert_eq!(fwd, rev);
}

// ----------------------------------------------------------------- static

#[test]
fn static_route_diff_matches_table4() {
    let c = load(STATIC_CISCO);
    let j = load(STATIC_JUNIPER);
    let report = compare_routers(&c, &j, &CampionOptions::default());
    // 10.1.1.2/31 only in Cisco; 192.0.2.0/24 only in Juniper.
    let statics: Vec<_> = report
        .structural
        .iter()
        .filter(|s| s.component == "Static Routes")
        .collect();
    assert_eq!(statics.len(), 2);
    let cisco_only = statics
        .iter()
        .find(|s| s.side == FindingSide::OnlyFirst)
        .expect("cisco-only route");
    assert_eq!(cisco_only.key, "10.1.1.2/31");
    assert!(cisco_only.value1.contains("next-hop 10.2.2.2"));
    assert!(cisco_only.value1.contains("AD 1"));
    assert_eq!(cisco_only.value2, "None");
    // Text localization points at the exact line.
    let span = cisco_only.span1.expect("span");
    assert_eq!(
        c.snippet(span),
        "ip route 10.1.1.2 255.255.255.254 10.2.2.2"
    );
}

#[test]
fn static_attr_differences_detected() {
    let a = load("ip route 10.0.0.0 255.0.0.0 10.1.1.1\n");
    let b = load("ip route 10.0.0.0 255.0.0.0 10.1.1.2\n");
    let report = compare_routers(&a, &b, &CampionOptions::default());
    assert_eq!(report.structural.len(), 1);
    assert_eq!(report.structural[0].side, FindingSide::Both);
    assert!(report.structural[0].value1.contains("10.1.1.1"));
    assert!(report.structural[0].value2.contains("10.1.1.2"));
    // Same next hops in different definition order: no difference.
    let a2 = load("ip route 10.0.0.0 255.0.0.0 10.1.1.1\nip route 10.0.0.0 255.0.0.0 10.1.1.2\n");
    let b2 = load("ip route 10.0.0.0 255.0.0.0 10.1.1.2\nip route 10.0.0.0 255.0.0.0 10.1.1.1\n");
    assert!(compare_routers(&a2, &b2, &CampionOptions::default()).is_equivalent());
}

// -------------------------------------------------------------------- acl

#[test]
fn acl_diff_reports_address_and_text() {
    let c = load(
        "ip access-list extended VM_FILTER_1\n\
         \x20deny ip 9.140.0.0 0.0.1.255 any\n\
         \x20permit ip any any\n",
    );
    let j = load(
        "firewall {
            family inet {
                filter VM_FILTER_1 {
                    term permit_whitelist {
                        then accept;
                    }
                }
            }
        }",
    );
    let report = compare_routers(&c, &j, &CampionOptions::default());
    assert_eq!(report.acl_diffs.len(), 1, "{report}");
    let d = &report.acl_diffs[0];
    assert_eq!(d.action1, "REJECT");
    assert_eq!(d.action2, "ACCEPT");
    assert!(d.text1.contains("deny ip 9.140.0.0 0.0.1.255 any"));
    assert!(d.text2.contains("term permit_whitelist"));
    let ex = d.example.as_ref().unwrap();
    assert!(ex.contains("srcIP: 9.140.0.0"), "got {ex}");
}

#[test]
fn equivalent_acls_cross_vendor() {
    let c = load(
        "ip access-list extended F\n\
         \x20permit tcp 10.0.0.0 0.0.255.255 any eq 443\n\
         \x20deny ip any any\n",
    );
    let j = load(
        "firewall {
            family inet {
                filter F {
                    term t {
                        from {
                            source-address 10.0.0.0/16;
                            protocol tcp;
                            destination-port 443;
                        }
                        then accept;
                    }
                    term rest { then discard; }
                }
            }
        }",
    );
    let report = compare_routers(&c, &j, &CampionOptions::default());
    assert!(report.acl_diffs.is_empty(), "{report}");
}

#[test]
fn acl_paths_partition() {
    let c = load(
        "ip access-list extended F\n\
         \x20permit tcp any any eq 80\n\
         \x20deny udp any any\n\
         \x20permit ip any any\n",
    );
    let mut space = campion_symbolic::PacketSpace::new();
    let u = space.universe();
    let paths = acl_paths(&mut space, &c.acls["F"], u);
    assert_eq!(paths.len(), 3, "third rule swallows the default");
    let mut acc = campion_bdd::Bdd::FALSE;
    for p in &paths {
        let inter = space.manager.and(acc, p.predicate);
        assert!(space.manager.is_false(inter));
        acc = space.manager.or(acc, p.predicate);
    }
    assert!(space.manager.is_true(acc));
}

// -------------------------------------------------------------- headerloc

#[test]
fn headerloc_figure3_worked_example() {
    // Reproduce the paper's Figure 3: seven ranges A..G with S = (B − D) ∪
    // (C − F) ∪ G. We realize the figure's containment shape with concrete
    // ranges:
    //   A = U, B, C children of A; D, E under B; F under C; G under F.
    let a = PrefixRange::universe();
    let b: PrefixRange = "10.0.0.0/8:8-32".parse().unwrap();
    let c: PrefixRange = "20.0.0.0/8:8-32".parse().unwrap();
    let d: PrefixRange = "10.1.0.0/16:16-32".parse().unwrap();
    let e: PrefixRange = "10.2.0.0/16:16-32".parse().unwrap();
    let f: PrefixRange = "20.1.0.0/16:16-32".parse().unwrap();
    let g: PrefixRange = "20.1.1.0/24:24-32".parse().unwrap();
    let ranges = [a, b, c, d, e, f, g];

    // Build S = (B − D) ∪ (C − F) ∪ G in a bare route space.
    let dummy = campion_ir::RoutePolicy::permit_all("x");
    let mut space = RouteSpace::for_policies(&[&dummy]);
    let bb = space.prefix_range_bdd(&b);
    let db = space.prefix_range_bdd(&d);
    let cb = space.prefix_range_bdd(&c);
    let fb = space.prefix_range_bdd(&f);
    let gb = space.prefix_range_bdd(&g);
    let bd = space.manager.diff(bb, db);
    let cf = space.manager.diff(cb, fb);
    let mut s = space.manager.or(bd, cf);
    s = space.manager.or(s, gb);
    // Also include E (a remainder-covered child of B): E ⊂ B − D.
    let loc = header_localize(&mut space, s, &ranges);
    assert!(loc.exact);
    let rendered = loc.to_string();
    assert_eq!(
        rendered,
        format!("{b} − ({d}) ∪ {c} − ({f}) ∪ {g}"),
        "GetMatch must produce B − D, C − F, G"
    );
    // Re-encoding gives back exactly S.
    let back = reencode(&mut space, &loc);
    assert_eq!(back, s);
}

#[test]
fn headerloc_whole_universe() {
    let dummy = campion_ir::RoutePolicy::permit_all("x");
    let mut space = RouteSpace::for_policies(&[&dummy]);
    let u = space.universe();
    let s = space.project_to_prefix(u);
    let loc = header_localize(&mut space, s, &[]);
    assert_eq!(loc.terms.len(), 1);
    assert_eq!(loc.terms[0].base, PrefixRange::universe());
    assert!(loc.terms[0].minus.is_empty());
}

#[test]
fn headerloc_empty_set() {
    let dummy = campion_ir::RoutePolicy::permit_all("x");
    let mut space = RouteSpace::for_policies(&[&dummy]);
    let loc = header_localize(&mut space, campion_bdd::Bdd::FALSE, &[]);
    assert!(loc.terms.is_empty());
    assert!(loc.exact);
}

#[test]
fn headerloc_closure_under_intersection() {
    // Two overlapping ranges: the difference set needs their intersection,
    // which only exists in R by closure.
    let r1: PrefixRange = "10.0.0.0/8:8-24".parse().unwrap();
    let r2: PrefixRange = "10.0.0.0/8:16-32".parse().unwrap();
    let dummy = campion_ir::RoutePolicy::permit_all("x");
    let mut space = RouteSpace::for_policies(&[&dummy]);
    let b1 = space.prefix_range_bdd(&r1);
    let b2 = space.prefix_range_bdd(&r2);
    let s = space.manager.and(b1, b2); // = (10.0.0.0/8, 16-24)
    let loc = header_localize(&mut space, s, &[r1, r2]);
    assert!(loc.exact);
    let back = reencode(&mut space, &loc);
    assert_eq!(back, s);
    assert_eq!(loc.terms.len(), 1);
    assert_eq!(loc.terms[0].base, "10.0.0.0/8:16-24".parse().unwrap());
}

// ------------------------------------------------------------- structural

#[test]
fn bgp_property_differences() {
    let c = load(
        "router bgp 65001\n\
         \x20neighbor 10.0.0.2 remote-as 65002\n\
         \x20neighbor 10.0.0.3 remote-as 65001\n",
    );
    let j = load(
        "routing-options { autonomous-system 65001; }
        protocols {
            bgp {
                group ibgp {
                    type internal;
                    neighbor 10.0.0.3;
                }
            }
        }",
    );
    let report = compare_routers(&c, &j, &CampionOptions::default());
    let bgp: Vec<_> = report
        .structural
        .iter()
        .filter(|s| s.component == "BGP Properties")
        .collect();
    // 10.0.0.2 present only in Cisco; 10.0.0.3 differs on send-community
    // (IOS default off vs JunOS default on).
    assert!(bgp.iter().any(|s| s.key == "10.0.0.2"));
    assert!(
        bgp.iter().any(|s| s.key.contains("send-community")),
        "the paper's send-community default gap must be flagged: {report}"
    );
}

#[test]
fn ospf_cost_differences() {
    let c = load(
        "interface GigabitEthernet0/0\n\
         \x20ip address 10.0.12.1 255.255.255.0\n\
         \x20ip ospf cost 250\n\
         router ospf 1\n\
         \x20network 10.0.12.0 0.0.0.255 area 0\n",
    );
    let j = load(
        "interfaces {
            ge-0/0/0 { unit 0 { family inet { address 10.0.12.2/24; } } }
        }
        protocols {
            ospf {
                area 0.0.0.0 { interface ge-0/0/0.0 { metric 100; } }
            }
        }",
    );
    let report = compare_routers(&c, &j, &CampionOptions::default());
    let ospf: Vec<_> = report
        .structural
        .iter()
        .filter(|s| s.component == "OSPF Properties")
        .collect();
    assert_eq!(ospf.len(), 1, "{report}");
    assert!(ospf[0].description.contains("cost"));
    assert!(ospf[0].value1.contains("250"));
    assert!(ospf[0].value2.contains("100"));
}

#[test]
fn connected_route_differences() {
    let a = load(
        "interface Gi0/0\n\
         \x20ip address 10.0.1.1 255.255.255.0\n\
         interface Gi0/1\n\
         \x20ip address 10.0.2.1 255.255.255.0\n",
    );
    let b = load(
        "interface Gi0/0\n\
         \x20ip address 10.0.1.7 255.255.255.0\n",
    );
    let report = compare_routers(&a, &b, &CampionOptions::default());
    let conn: Vec<_> = report
        .structural
        .iter()
        .filter(|s| s.component == "Connected Routes")
        .collect();
    assert_eq!(conn.len(), 1, "same /24 on Gi0/0; extra /24 on Gi0/1");
    assert_eq!(conn[0].key, "10.0.2.0/24");
}

// ------------------------------------------------------------ full driver

#[test]
fn report_renders_and_is_stable() {
    let (c, j) = fig1();
    let report = compare_routers(&c, &j, &CampionOptions::default());
    let text = format!("{report}");
    assert!(text.contains("Included Prefixes"));
    assert!(text.contains("10.9.0.0/16 : 16-32"));
    assert!(text.contains("REJECT"));
    // Deterministic across runs.
    let again = format!("{}", compare_routers(&c, &j, &CampionOptions::default()));
    assert_eq!(text, again);
}

#[test]
fn options_disable_checks() {
    let (c, j) = fig1();
    let opts = CampionOptions {
        check_route_maps: false,
        ..CampionOptions::default()
    };
    let report = compare_routers(&c, &j, &opts);
    assert!(report.route_map_diffs.is_empty());
}

#[test]
fn unmatched_components_are_reported() {
    let a = load("route-map ONLY_HERE permit 10\n");
    let b = load("hostname other\n");
    let report = compare_routers(&a, &b, &CampionOptions::default());
    assert!(
        report.unmatched.iter().any(|u| u.contains("ONLY_HERE")),
        "{report}"
    );
}

// ------------------------------------------------------------- properties

mod properties {
    use super::*;
    use campion_ir::{RouteAdvert, RoutePolicy};
    use campion_net::{Community, Prefix};
    use proptest::prelude::*;

    prop_compose! {
        fn arb_advert()(
            bits in any::<u32>(),
            len in 0u8..=32,
            c10 in any::<bool>(),
            c11 in any::<bool>(),
        ) -> RouteAdvert {
            let mut comms = Vec::new();
            if c10 { comms.push(Community::new(10, 10)); }
            if c11 { comms.push(Community::new(10, 11)); }
            RouteAdvert::bgp(Prefix::new(std::net::Ipv4Addr::from(bits), len))
                .with_communities(comms)
        }
    }

    /// Encode a concrete advertisement as a BDD assignment.
    fn advert_assignment(space: &RouteSpace, advert: &RouteAdvert) -> campion_bdd::Assignment {
        let mut a = campion_bdd::Assignment::all_false(space.num_vars());
        let bits = advert.prefix.bits();
        for i in 0..32u32 {
            a.set(i, (bits >> (31 - i)) & 1 == 1);
        }
        for i in 0..6u32 {
            a.set(32 + i, (advert.prefix.len() >> (5 - i)) & 1 == 1);
        }
        a.set(39, true);
        a.set(40, true); // protocol = BGP (3)
        for (i, key) in space.atoms().iter().enumerate() {
            if let campion_symbolic::AtomKey::Literal(c) = key {
                if advert.has_community(*c) {
                    a.set(41 + i as u32, true);
                }
            }
        }
        a
    }

    proptest! {
        /// Soundness + completeness of SemanticDiff on Figure 1: a random
        /// advertisement is covered by some reported difference IFF the two
        /// concrete policies disagree on it.
        #[test]
        fn semantic_diff_covers_exactly_the_disagreements(advert in arb_advert()) {
            let (c, j) = fig1();
            let p1 = &c.policies["POL"];
            let p2 = &j.policies["POL"];
            let mut space = RouteSpace::for_policies(&[p1, p2]);
            let u = space.universe();
            let paths1 = policy_paths(&mut space, p1, u);
            let paths2 = policy_paths(&mut space, p2, u);
            let diffs = semantic_diff(&mut space.manager, &paths1, &paths2);
            let a = advert_assignment(&space, &advert);
            let covered = diffs.iter().any(|d| space.manager.eval(d.input, &a));
            let v1 = p1.evaluate(&advert);
            let v2 = p2.evaluate(&advert);
            // Disagreement on accept/reject, or on the transformed route.
            let disagree = v1.accept != v2.accept
                || (v1.accept && v2.accept && {
                    let mut r1 = v1.route.clone();
                    let r2 = v2.route.clone();
                    // next_hop/weight not modeled in this pair.
                    r1.protocol = r2.protocol;
                    r1 != r2
                });
            prop_assert_eq!(covered, disagree, "advert {}", advert);
        }

        /// HeaderLocalize round-trips: the localized representation
        /// re-encodes to exactly the projected difference set.
        #[test]
        fn headerloc_roundtrip_on_random_range_sets(
            seeds in proptest::collection::vec((any::<u32>(), 0u8..=24, 0u8..=8, any::<bool>()), 1..6)
        ) {
            let dummy = RoutePolicy::permit_all("x");
            let mut space = RouteSpace::for_policies(&[&dummy]);
            let mut ranges = Vec::new();
            let mut s = campion_bdd::Bdd::FALSE;
            for (bits, len, extra, include) in seeds {
                let hi = (len + extra).min(32);
                let r = PrefixRange::new(
                    Prefix::new(std::net::Ipv4Addr::from(bits), len), len, hi);
                ranges.push(r);
                if include {
                    let b = space.prefix_range_bdd(&r);
                    s = space.manager.or(s, b);
                }
            }
            // Constrain to valid lengths like real path predicates.
            let valid = space.prefix_range_bdd(&PrefixRange::universe());
            s = space.manager.and(s, valid);
            let loc = header_localize(&mut space, s, &ranges);
            prop_assert!(loc.exact);
            let back = reencode(&mut space, &loc);
            prop_assert_eq!(back, s);
        }

        /// Minimality-ish sanity: localizing a single range yields exactly
        /// that range with no exclusions.
        #[test]
        fn headerloc_single_range_is_itself(bits in any::<u32>(), len in 0u8..=28) {
            let dummy = RoutePolicy::permit_all("x");
            let mut space = RouteSpace::for_policies(&[&dummy]);
            let r = PrefixRange::new(
                Prefix::new(std::net::Ipv4Addr::from(bits), len), len, 32);
            let s = space.prefix_range_bdd(&r);
            let loc = header_localize(&mut space, s, &[r]);
            prop_assert_eq!(loc.terms.len(), 1);
            prop_assert!(loc.terms[0].minus.is_empty());
            // The reported base denotes the same set.
            let base = space.prefix_range_bdd(&loc.terms[0].base);
            prop_assert_eq!(base, s);
        }
    }
}

// ------------------------------------------------------------- extensions

/// Cisco `continue` produces fall-through paths whose accumulated sets
/// survive into the final effect — and SemanticDiff distinguishes them.
#[test]
fn cisco_continue_fallthrough_semantics() {
    let with_continue = load(
        "route-map M permit 10\n\
         \x20set metric 50\n\
         \x20continue 20\n\
         route-map M permit 20\n\
         \x20set local-preference 200\n",
    );
    let without = load(
        "route-map M permit 10\n\
         \x20set local-preference 200\n",
    );
    let report = compare_routers(&with_continue, &without, &CampionOptions::default());
    // The continue version also sets the metric: a behavioral difference.
    assert_eq!(report.route_map_diffs.len(), 1, "{report}");
    assert!(report.route_map_diffs[0].action1.contains("SET METRIC 50"));
    assert!(report.route_map_diffs[0]
        .action1
        .contains("SET LOCAL PREF 200"));
}

/// The exhaustive-communities option replaces the single example with the
/// complete condition set.
#[test]
fn exhaustive_communities_option() {
    let (c, j) = fig1();
    let opts = CampionOptions {
        exhaustive_communities: true,
        ..CampionOptions::default()
    };
    let report = compare_routers(&c, &j, &opts);
    let d2 = &report.route_map_diffs[1];
    let ex = d2.example.as_ref().expect("conditions");
    assert!(ex.contains("with 10:10; without 10:11"), "{ex}");
    assert!(ex.contains("with 10:11; without 10:10"), "{ex}");
    // Difference 1 constrains communities only as "not both": exhaustive
    // mode reports that too (unlike the example heuristic).
    let d1 = &report.route_map_diffs[0];
    assert!(d1.example.is_some());
}

/// A policy referencing an undefined route map on one side compares against
/// permit-all, so a permissive counterpart is equivalent but a restrictive
/// one is flagged.
#[test]
fn missing_policy_compares_as_permit_all() {
    let a = load(
        "router bgp 65000\n\
         \x20neighbor 10.0.0.2 remote-as 65001\n\
         \x20neighbor 10.0.0.2 send-community\n",
    );
    let permissive = load(
        "route-map ALL permit 10\n\
         router bgp 65000\n\
         \x20neighbor 10.0.0.2 remote-as 65001\n\
         \x20neighbor 10.0.0.2 route-map ALL in\n\
         \x20neighbor 10.0.0.2 send-community\n",
    );
    let restrictive = load(
        "route-map NONE deny 10\n\
         router bgp 65000\n\
         \x20neighbor 10.0.0.2 remote-as 65001\n\
         \x20neighbor 10.0.0.2 route-map NONE in\n\
         \x20neighbor 10.0.0.2 send-community\n",
    );
    let r1 = compare_routers(&a, &permissive, &CampionOptions::default());
    assert!(r1.route_map_diffs.is_empty(), "{r1}");
    let r2 = compare_routers(&a, &restrictive, &CampionOptions::default());
    assert_eq!(r2.route_map_diffs.len(), 1, "{r2}");
}

// ------------------------------------------------------- pruning oracle

/// Differential oracle for the disagreement-set-pruned [`semantic_diff`]:
/// the quadratic all-pairs loop is kept verbatim (test-only) and random
/// near-identical component pairs are pushed through both, under every GC
/// mode. Both run in the *same* manager, so hash-consing makes BDD handle
/// equality function equality — the strongest possible "same predicate"
/// check — and the remaining fields are compared structurally.
mod prune_oracle {
    use super::*;
    use crate::driver::GcMode;
    use crate::semantic::{semantic_diff_all_pairs, SemanticDifference};
    use campion_cfg::Span;
    use campion_ir::{
        AclIr, AclRuleIr, Clause, Match, PrefixMatcher, PrefixMatcherEntry, RoutePolicy, SetAction,
        Terminal,
    };
    use campion_net::{Community, IpProtocol, PortRange, Prefix, WildcardMask};
    use campion_symbolic::PacketSpace;
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    /// Seed for one ACL rule: addresses, (dst-port base, protocol selector,
    /// permit), and the side-2 mutation selector.
    type RuleSeed = (u32, u8, u32, u8, (u16, u8, bool), u8);

    fn mk_rule(i: usize, s: &RuleSeed, flip: bool, widen: bool) -> AclRuleIr {
        let (src_bits, src_len, dst_bits, dst_len, (port_lo, proto_sel, permit), _) = *s;
        let dst_len = if widen {
            dst_len.saturating_sub(4)
        } else {
            dst_len
        };
        let src = WildcardMask::from_prefix(&Prefix::new(Ipv4Addr::from(src_bits), src_len));
        let dst = WildcardMask::from_prefix(&Prefix::new(Ipv4Addr::from(dst_bits), dst_len));
        let protocols = match proto_sel {
            0 => Vec::new(),
            1 => vec![IpProtocol::Tcp],
            2 => vec![IpProtocol::Udp],
            _ => vec![IpProtocol::Tcp, IpProtocol::Udp],
        };
        let dst_ports = if proto_sel > 0 {
            vec![PortRange::new(port_lo, port_lo.saturating_add(100))]
        } else {
            Vec::new()
        };
        AclRuleIr {
            label: format!("seq {}", 10 * (i + 1)),
            permit: permit ^ flip,
            protocols,
            src: vec![src],
            dst: vec![dst],
            src_ports: Vec::new(),
            dst_ports,
            span: Span::default(),
        }
    }

    /// Build a near-identical ACL pair: side 2 is side 1 with per-rule
    /// mutations (most rules identical, a few flipped / dropped / widened —
    /// the regime the pruning is designed for).
    fn acl_pair(seeds: &[RuleSeed]) -> (AclIr, AclIr) {
        let mut r1 = Vec::new();
        let mut r2 = Vec::new();
        for (i, s) in seeds.iter().enumerate() {
            r1.push(mk_rule(i, s, false, false));
            match s.5 {
                5 => r2.push(mk_rule(i, s, true, false)),
                6 => {}
                7 => r2.push(mk_rule(i, s, false, true)),
                _ => r2.push(mk_rule(i, s, false, false)),
            }
        }
        let mk = |rules| AclIr {
            name: "ORACLE".into(),
            rules,
            span: Span::default(),
        };
        (mk(r1), mk(r2))
    }

    /// Seed for one policy clause: prefix bits/len, set-action selector,
    /// terminal selector, and the side-2 mutation selector.
    type ClauseSeed = (u32, u8, u8, u8, u8);

    fn mk_clause(i: usize, s: &ClauseSeed, flip_term: bool, alt_sets: bool) -> Clause {
        let (bits, len, action_sel, term_sel, _) = *s;
        let range = PrefixRange::new(Prefix::new(Ipv4Addr::from(bits), len), len, 32);
        let matcher = PrefixMatcher {
            entries: vec![PrefixMatcherEntry {
                permit: true,
                range,
                span: Span::default(),
            }],
            name: String::new(),
        };
        let sets = match (action_sel % 4, alt_sets) {
            (_, true) => vec![SetAction::LocalPref(300)],
            (0, _) => Vec::new(),
            (1, _) => vec![SetAction::LocalPref(200)],
            (2, _) => vec![SetAction::Metric(50)],
            _ => vec![SetAction::CommunityAdd(vec![Community::new(10, 10)])],
        };
        let accept = (term_sel % 2 == 0) ^ flip_term;
        Clause {
            label: format!("seq {}", 10 * (i + 1)),
            matches: vec![Match::Prefix(vec![matcher])],
            sets,
            terminal: if accept {
                Terminal::Accept
            } else {
                Terminal::Reject
            },
            span: Span::default(),
        }
    }

    /// Near-identical policy pair, mutation scheme as for ACLs.
    fn policy_pair(seeds: &[ClauseSeed], default_accept: bool) -> (RoutePolicy, RoutePolicy) {
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        for (i, s) in seeds.iter().enumerate() {
            c1.push(mk_clause(i, s, false, false));
            match s.4 {
                5 => c2.push(mk_clause(i, s, true, false)),
                6 => {}
                7 => c2.push(mk_clause(i, s, false, true)),
                _ => c2.push(mk_clause(i, s, false, false)),
            }
        }
        let mk = |clauses| RoutePolicy {
            name: "ORACLE".into(),
            clauses,
            default_terminal: if default_accept {
                Terminal::Accept
            } else {
                Terminal::Reject
            },
            span: Span::default(),
        };
        (mk(c1), mk(c2))
    }

    /// Field-by-field comparison of two difference lists (order included).
    fn assert_same(
        manager: &campion_bdd::AnyManager,
        pruned: &[SemanticDifference],
        reference: &[SemanticDifference],
        gc: GcMode,
    ) -> Result<(), proptest::prelude::TestCaseError> {
        prop_assert_eq!(pruned.len(), reference.len(), "count, gc={:?}", gc);
        for (a, b) in pruned.iter().zip(reference.iter()) {
            prop_assert_eq!(a.input, b.input, "input handle, gc={:?}", gc);
            prop_assert!(manager.equivalent(a.input, b.input));
            prop_assert_eq!(&a.effect1, &b.effect1, "effect1, gc={:?}", gc);
            prop_assert_eq!(&a.effect2, &b.effect2, "effect2, gc={:?}", gc);
            prop_assert_eq!(&a.labels1, &b.labels1, "labels1, gc={:?}", gc);
            prop_assert_eq!(&a.labels2, &b.labels2, "labels2, gc={:?}", gc);
            prop_assert_eq!(&a.spans1, &b.spans1, "spans1, gc={:?}", gc);
            prop_assert_eq!(&a.spans2, &b.spans2, "spans2, gc={:?}", gc);
            prop_assert_eq!(a.default1, b.default1, "default1, gc={:?}", gc);
            prop_assert_eq!(a.default2, b.default2, "default2, gc={:?}", gc);
            prop_assert_eq!(
                a.non_prefix_match,
                b.non_prefix_match,
                "non_prefix_match, gc={:?}",
                gc
            );
        }
        Ok(())
    }

    const GC_MODES: [GcMode; 3] = [GcMode::Off, GcMode::Auto, GcMode::Aggressive];

    proptest! {
        // The acceptance bar for this oracle is ≥256 cases per property;
        // honor a larger PROPTEST_CASES from the environment.
        #![proptest_config(ProptestConfig::with_cases(
            ProptestConfig::default().cases.max(256)
        ))]

        /// ACL diff: pruned == all-pairs reference under every GC mode.
        #[test]
        fn acl_pruned_diff_matches_all_pairs(
            seeds in proptest::collection::vec(
                (any::<u32>(), 0u8..=32, any::<u32>(), 0u8..=32,
                 (any::<u16>(), 0u8..=3, any::<bool>()), 0u8..=7),
                1..10,
            )
        ) {
            let (a1, a2) = acl_pair(&seeds);
            for gc in GC_MODES {
                let mut space = PacketSpace::new();
                space.manager.set_gc_policy(gc.policy());
                let u = space.universe();
                let paths1 = acl_paths(&mut space, &a1, u);
                let paths2 = acl_paths(&mut space, &a2, u);
                let pruned = semantic_diff(&mut space.manager, &paths1, &paths2);
                let reference =
                    semantic_diff_all_pairs(&mut space.manager, &paths1, &paths2);
                assert_same(&space.manager, &pruned, &reference, gc)?;
            }
        }

        /// Route-policy diff: pruned == all-pairs reference under every GC
        /// mode (exercises multi-effect grouping: accept verdicts carry
        /// distinct rewrite sets).
        #[test]
        fn policy_pruned_diff_matches_all_pairs(
            seeds in proptest::collection::vec(
                (any::<u32>(), 0u8..=24, 0u8..=3, 0u8..=1, 0u8..=7),
                1..8,
            ),
            default_accept in any::<bool>(),
        ) {
            let (p1, p2) = policy_pair(&seeds, default_accept);
            for gc in GC_MODES {
                let mut space = RouteSpace::for_policies(&[&p1, &p2]);
                space.manager.set_gc_policy(gc.policy());
                let u = space.universe();
                space.manager.protect(u);
                let paths1 = policy_paths(&mut space, &p1, u);
                let paths2 = policy_paths(&mut space, &p2, u);
                let pruned = semantic_diff(&mut space.manager, &paths1, &paths2);
                let reference =
                    semantic_diff_all_pairs(&mut space.manager, &paths1, &paths2);
                assert_same(&space.manager, &pruned, &reference, gc)?;
            }
        }
    }
}

// --------------------------------------------------------------- alignment

/// Property suite for the hashed-anchor (patience) alignment that replaced
/// the quadratic handle-keyed LCS in `acl_diff_paths`: soundness (every
/// mark pair is a valid order-preserving common subsequence — the property
/// the restriction set's correctness rests on) and quality against the
/// retained `lcs_pairs` oracle.
mod alignment {
    use crate::semantic::{align_common, lcs_pairs};
    use proptest::prelude::*;

    /// The marked positions, in order, per side.
    fn marked(flags: &[bool]) -> Vec<usize> {
        flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect()
    }

    /// Soundness: equal mark counts, and the k-th marked element of `a`
    /// equals the k-th marked element of `b` — i.e. the marks spell one
    /// common subsequence of both inputs.
    fn assert_valid_alignment(
        a: &[u16],
        b: &[u16],
    ) -> Result<(Vec<usize>, Vec<usize>), TestCaseError> {
        let (c1, c2) = align_common(a, b);
        let (m1, m2) = (marked(&c1), marked(&c2));
        prop_assert_eq!(m1.len(), m2.len(), "mark counts differ");
        for (&i, &j) in m1.iter().zip(m2.iter()) {
            prop_assert_eq!(a[i], b[j], "marked pair ({}, {}) differs", i, j);
        }
        Ok((m1, m2))
    }

    proptest! {
        /// Arbitrary sequences (duplicates included): alignment is always
        /// a valid common subsequence, never longer than the true LCS.
        #[test]
        fn alignment_is_valid_common_subsequence(
            a in proptest::collection::vec(0u16..12, 0..60),
            b in proptest::collection::vec(0u16..12, 0..60),
        ) {
            let (m1, _) = assert_valid_alignment(&a, &b)?;
            prop_assert!(m1.len() <= lcs_pairs(&a, &b).len());
        }

        /// Unique-keyed sequences under random edits — the shape real
        /// config pairs take (rule lines rarely repeat verbatim): patience
        /// anchoring recovers a *maximum* common subsequence, exactly
        /// matching the LCS oracle's length.
        #[test]
        fn patience_matches_lcs_on_unique_keys(
            n in 1usize..80,
            edits in proptest::collection::vec((any::<u16>(), 0u8..3), 0..8),
        ) {
            let a: Vec<u16> = (0..n as u16).collect();
            let mut b = a.clone();
            for (r, kind) in &edits {
                let pos = *r as usize % b.len().max(1);
                match kind {
                    0 if !b.is_empty() => { b.remove(pos); }
                    1 => b.insert(pos.min(b.len()), 1000 + *r % 900),
                    _ if !b.is_empty() => b[pos] = 2000 + *r % 900,
                    _ => {}
                }
            }
            let (m1, _) = assert_valid_alignment(&a, &b)?;
            // `b` can still repeat an inserted/substituted key; the LCS
            // oracle is the ground truth either way.
            prop_assert_eq!(m1.len(), lcs_pairs(&a, &b).len());
        }

        /// Equal-length middles take the positional pass: an in-place
        /// mutation leaves everything but the touched positions aligned.
        #[test]
        fn positional_pass_aligns_in_place_edits(
            n in 2usize..100,
            touched in proptest::collection::btree_set(0usize..100, 1..4),
        ) {
            let a: Vec<u16> = (0..n as u16).collect();
            let mut b = a.clone();
            let touched: Vec<usize> =
                touched.into_iter().map(|t| t % n).collect();
            for &t in &touched {
                b[t] = 5000 + t as u16;
            }
            let (c1, _) = align_common(&a, &b);
            for (i, &flag) in c1.iter().enumerate() {
                prop_assert_eq!(flag, !touched.contains(&i), "position {}", i);
            }
        }
    }
}

// --------------------------------------------------------------- ddNF/trie

/// Differential suite for the structural ddNF builder: the trie-based
/// [`RangeDag::build`] must produce byte-identical DAGs — node order, cover
/// edges, BDD handles and remainders included — versus the retained
/// BDD-deciding oracle, and localizations against either must agree.
mod ddnf {
    use std::net::Ipv4Addr;

    use campion_net::Prefix;
    use campion_symbolic::PacketSpace;
    use proptest::prelude::*;

    use super::*;
    use crate::headerloc::{
        build_ddnf_oracle, dag_structure, header_localize_with, DstAddrSpace, RangeDag,
        RangeEncoder,
    };

    /// Build with both builders in the same space (so deterministic
    /// hash-consing makes node handles comparable), assert full equality,
    /// then cross-check localization of every input range and their union.
    fn assert_same_dag<E: RangeEncoder>(space: &mut E, ranges: &[PrefixRange]) {
        let oracle = build_ddnf_oracle(space, ranges);
        let fast = RangeDag::build(space, ranges);
        assert_eq!(
            dag_structure(&oracle),
            dag_structure(&fast),
            "trie builder diverged from the oracle"
        );
        let mut targets = Vec::new();
        let mut union = campion_bdd::Bdd::FALSE;
        for r in ranges {
            let b = space.encode(r);
            targets.push(b);
            union = space.manager().or(union, b);
        }
        targets.push(union);
        targets.push(campion_bdd::Bdd::FALSE);
        let valid = space.encode(&PrefixRange::universe());
        for t in targets {
            let s = space.manager().and(t, valid);
            let a = header_localize_with(space, s, &oracle);
            let b = header_localize_with(space, s, &fast);
            assert_eq!(a, b, "localization diverged between oracle and trie DAG");
        }
        oracle.release(space.manager());
        fast.release(space.manager());
    }

    fn route_space() -> RouteSpace {
        let dummy = campion_ir::RoutePolicy::permit_all("x");
        RouteSpace::for_policies(&[&dummy])
    }

    proptest! {
        /// Route-space (member semantics): arbitrary length intervals,
        /// including empty member sets and truncation chains.
        #[test]
        fn trie_matches_oracle_in_route_spaces(
            seeds in proptest::collection::vec(
                (any::<u32>(), 0u8..=32, 0u8..=32, 0u8..=32), 1..8)
        ) {
            let ranges: Vec<PrefixRange> = seeds
                .iter()
                .map(|&(bits, len, a, b)| {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    PrefixRange::new(Prefix::new(Ipv4Addr::from(bits), len), lo, hi)
                })
                .collect();
            assert_same_dag(&mut route_space(), &ranges);
        }

        /// Address-space (prefix-only semantics), as the ACL driver builds
        /// them: `or_longer` ranges from rule prefixes.
        #[test]
        fn trie_matches_oracle_in_addr_spaces(
            seeds in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..8)
        ) {
            let ranges: Vec<PrefixRange> = seeds
                .iter()
                .map(|&(bits, len)| {
                    PrefixRange::or_longer(Prefix::new(Ipv4Addr::from(bits), len))
                })
                .collect();
            let mut space = PacketSpace::new();
            assert_same_dag(&mut DstAddrSpace(&mut space), &ranges);
        }
    }

    /// The IPv4 corners: /0, /32, adjacent blocks, duplicates, and
    /// structurally different spellings of the same member set.
    #[test]
    fn trie_matches_oracle_on_edge_cases() {
        let r = |s: &str| s.parse::<PrefixRange>().unwrap();
        let ranges = vec![
            r("0.0.0.0/0:0-0"),
            r("0.0.0.0/0:0-32"), // duplicate of the implicit universe
            r("10.0.0.0/9:9-32"),
            r("10.128.0.0/9:9-32"), // adjacent block of the previous
            r("10.0.0.0/8:8-32"),
            r("255.255.255.255/32:32-32"),
            r("10.0.0.0/8:8-8"),
            r("10.0.0.0/16:8-8"), // same member set as the previous
            r("10.0.0.0/8:0-6"),  // empty member set
            r("10.0.0.0/8:8-32"), // literal duplicate
        ];
        assert_same_dag(&mut route_space(), &ranges);
    }

    /// Localizing against a released DAG is a use-after-free of its GC
    /// roots; the poison flag catches it in debug builds.
    #[test]
    #[should_panic(expected = "released RangeDag")]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "the poison flag is a debug_assert; it compiles out in release builds"
    )]
    fn localize_after_release_is_poisoned() {
        let mut space = route_space();
        let dag = RangeDag::build(&mut space, &[]);
        dag.release(&mut space.manager);
        let _ = header_localize_with(&mut space, campion_bdd::Bdd::FALSE, &dag);
    }

    /// The `(node, S)` memo must serve repeat queries and reset when a
    /// sweep recycles node indices.
    #[test]
    fn memo_is_stable_across_queries_and_collections() {
        let r = |s: &str| s.parse::<PrefixRange>().unwrap();
        let ranges = [
            r("10.0.0.0/8:8-32"),
            r("10.1.0.0/16:16-32"),
            r("20.0.0.0/8:8-32"),
        ];
        let mut space = route_space();
        space
            .manager
            .set_gc_policy(campion_bdd::GcPolicy::Aggressive);
        let dag = RangeDag::build(&mut space, &ranges);
        let b = space.prefix_range_bdd(&ranges[0]);
        let valid = space.prefix_range_bdd(&PrefixRange::universe());
        let s = space.manager.and(b, valid);
        space.manager.protect(s);
        let first = header_localize_with(&mut space, s, &dag);
        let memo_hit = header_localize_with(&mut space, s, &dag);
        assert_eq!(first, memo_hit);
        space.manager.gc_checkpoint(); // aggressive: sweeps, indices may move
        let after_gc = header_localize_with(&mut space, s, &dag);
        assert_eq!(first, after_gc);
        space.manager.unprotect(s);
        dag.release(&mut space.manager);
    }

    /// The fan-out invariant: a cloned (space, DAG) snapshot localizes
    /// byte-identically to the original, even after the arenas diverge.
    #[test]
    fn snapshot_clones_localize_identically() {
        let r = |s: &str| s.parse::<PrefixRange>().unwrap();
        let ranges = [
            r("10.0.0.0/8:8-32"),
            r("10.1.0.0/16:16-32"),
            r("10.2.0.0/16:16-32"),
            r("20.0.0.0/8:8-24"),
        ];
        let mut space = route_space();
        let dag = RangeDag::build(&mut space, &ranges);
        let valid = space.prefix_range_bdd(&PrefixRange::universe());
        let mut targets = Vec::new();
        for r in &ranges {
            let b = space.prefix_range_bdd(r);
            let s = space.manager.and(b, valid);
            space.manager.protect(s);
            targets.push(s);
        }
        let mut clone_space = space.clone();
        let clone_dag = dag.clone();
        // Diverge the clone's arena before querying: new nodes beyond the
        // snapshot must not disturb snapshot handles.
        let extra = clone_space.prefix_range_bdd(&r("99.0.0.0/8:8-32"));
        let _ = clone_space.manager.not(extra);
        for (i, &s) in targets.iter().enumerate() {
            // Opposite query orders on purpose.
            let from_clone =
                header_localize_with(&mut clone_space, targets[targets.len() - 1 - i], &clone_dag);
            let from_orig = header_localize_with(&mut space, targets[targets.len() - 1 - i], &dag);
            assert_eq!(from_orig, from_clone);
            let a = header_localize_with(&mut space, s, &dag);
            let b = header_localize_with(&mut clone_space, s, &clone_dag);
            assert_eq!(a, b);
        }
        for s in targets {
            space.manager.unprotect(s);
        }
        dag.release(&mut space.manager);
    }
}
