//! HeaderLocalize (§3.2): express a difference's input set minimally in
//! terms of the prefix ranges appearing in the configurations.
//!
//! The algorithm mirrors the paper exactly:
//!
//! 1. extract every prefix range from the two configurations, add the
//!    universe `U = (0.0.0.0/0, 0-32)`, and close the set under
//!    intersection;
//! 2. build the ddNF DAG: one node per distinct range *set* (structurally
//!    different ranges denoting the same set share a node), with a cover
//!    edge `(m, n)` exactly when `λ(n) ⊂ λ(m)` with nothing in between;
//! 3. run the recursive `GetMatch` over the DAG: a node's *remainder* (its
//!    range minus its children) is either inside or outside the target set
//!    `S`, which drives inclusion of the node's range minus the non-matching
//!    children (computed by recursing with `¬S`);
//! 4. remove *nested differences* in a single pass:
//!    `C − (F − G)` becomes `{C − F, G}`.
//!
//! ## How the DAG is built fast
//!
//! Everything the builder needs to decide — emptiness, set equality
//! (dedup), containment — is decidable *structurally* on the ranges
//! themselves, without touching the BDD engine:
//!
//! * In a route space a range denotes its **member prefixes**, and
//!   [`PrefixRange::canonical_members`] is a perfect set key:
//!   [`PrefixRange::member_superset`] decides containment exactly.
//! * In a packet-address space a range denotes the **addresses** under its
//!   covering prefix, so the key is the prefix and containment is
//!   [`Prefix::contains`].
//!
//! [`RangeEncoder::semantics`] says which reading applies. BDDs are still
//! *encoded* — once per distinct node, since `GetMatch` consumes them — but
//! the closure/containment passes never call `diff`, and a [`PrefixTrie`]
//! over the node prefixes supplies each node's possible partners (only
//! prefix-nested ranges can be related) instead of a per-call BTreeMap scan
//! with sort/dedup. The pre-trie, BDD-deciding builder is retained as
//! [`build_ddnf_oracle`]; a property suite asserts both produce identical
//! DAGs, node order included.
//!
//! ## How localization queries are kept cheap
//!
//! A pair's DAG serves ~10 difference queries, which overlap heavily. Three
//! caches exploit that: per-node remainders (`λ(n) − children`) are computed
//! once at build time; `GetMatch` results are memoized per `(node, S)` on
//! the DAG (`¬S` recursions hit the same table); and `¬S` itself is computed
//! once per localize call, not once per included node.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use campion_bdd::{AnyManager, Bdd};
use campion_net::{Prefix, PrefixRange, PrefixTrie};
use campion_symbolic::{PacketSpace, RouteSpace};

/// What set a prefix range denotes in a given encoder — selects the
/// structural set key the ddNF builder dedups and orders nodes by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeSemantics {
    /// The range's member prefixes (route spaces: address **and** length
    /// dimensions both matter).
    Members,
    /// The addresses under the range's covering prefix (packet spaces: the
    /// length bounds are irrelevant).
    Addresses,
}

/// Abstracts "a BDD space in which a prefix range denotes a set", so the
/// same ddNF machinery serves route maps (prefix + length dimensions) and
/// ACLs (pure address dimensions for source or destination).
pub trait RangeEncoder {
    /// The underlying manager.
    fn manager(&mut self) -> &mut AnyManager;
    /// The set denoted by a prefix range in this space.
    fn encode(&mut self, r: &PrefixRange) -> Bdd;
    /// Which structural reading of a range [`RangeEncoder::encode`]
    /// implements. Must agree with `encode`: two ranges with equal set keys
    /// must encode to the same BDD, and key containment must match BDD
    /// containment.
    fn semantics(&self) -> RangeSemantics;
}

impl RangeEncoder for RouteSpace {
    fn manager(&mut self) -> &mut AnyManager {
        &mut self.manager
    }
    fn encode(&mut self, r: &PrefixRange) -> Bdd {
        self.prefix_range_bdd(r)
    }
    fn semantics(&self) -> RangeSemantics {
        RangeSemantics::Members
    }
}

/// Destination-address view of a packet space: a range `(P, lo-hi)` denotes
/// the packets whose destination lies under `P` (length bounds are
/// irrelevant for address sets).
pub struct DstAddrSpace<'a>(pub &'a mut PacketSpace);

impl RangeEncoder for DstAddrSpace<'_> {
    fn manager(&mut self) -> &mut AnyManager {
        &mut self.0.manager
    }
    fn encode(&mut self, r: &PrefixRange) -> Bdd {
        self.0.dst_prefix_bdd(&r.prefix)
    }
    fn semantics(&self) -> RangeSemantics {
        RangeSemantics::Addresses
    }
}

/// Source-address view of a packet space.
pub struct SrcAddrSpace<'a>(pub &'a mut PacketSpace);

impl RangeEncoder for SrcAddrSpace<'_> {
    fn manager(&mut self) -> &mut AnyManager {
        &mut self.0.manager
    }
    fn encode(&mut self, r: &PrefixRange) -> Bdd {
        self.0.src_prefix_bdd(&r.prefix)
    }
    fn semantics(&self) -> RangeSemantics {
        RangeSemantics::Addresses
    }
}

/// A range's denoted set, as a hashable structural key. Under either
/// semantics the key is in bijection with the denoted set (and hence with
/// the encoded BDD): canonical member representatives for route spaces,
/// the covering prefix for address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SetKey {
    Members(PrefixRange),
    Addr(Prefix),
}

impl SetKey {
    /// The key of `r`'s denoted set, or `None` when that set is empty
    /// (address sets never are).
    fn of(sem: RangeSemantics, r: &PrefixRange) -> Option<SetKey> {
        match sem {
            RangeSemantics::Members => r.canonical_members().map(SetKey::Members),
            RangeSemantics::Addresses => Some(SetKey::Addr(r.prefix)),
        }
    }

    /// Exact set containment: `other ⊆ self`. Keys of different semantics
    /// never meet (one builder, one encoder).
    fn contains(&self, other: &SetKey) -> bool {
        match (self, other) {
            (SetKey::Members(a), SetKey::Members(b)) => a.member_superset(b),
            (SetKey::Addr(a), SetKey::Addr(b)) => a.contains(b),
            _ => unreachable!("mixed range semantics in one ddNF"),
        }
    }
}

/// One term of the final representation: a base range minus zero or more
/// excluded ranges (all nesting already removed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeTerm {
    /// The included range.
    pub base: PrefixRange,
    /// Ranges subtracted from it.
    pub minus: Vec<PrefixRange>,
}

impl std::fmt::Display for RangeTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.base)?;
        for m in &self.minus {
            write!(f, " − ({m})")?;
        }
        Ok(())
    }
}

/// The result of header localization: `S = ⋃ terms`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeaderLocalization {
    /// The union of difference terms.
    pub terms: Vec<RangeTerm>,
    /// True when the ddNF decomposition was exact (every cell was fully
    /// inside or outside `S`). Always true for sets built from the
    /// configurations' own ranges; retained as a safety signal.
    pub exact: bool,
}

impl HeaderLocalization {
    /// All included (base) ranges, for the report's "Included Prefixes" row.
    pub fn included(&self) -> Vec<PrefixRange> {
        self.terms.iter().map(|t| t.base).collect()
    }

    /// All excluded ranges, for the "Excluded Prefixes" row.
    pub fn excluded(&self) -> Vec<PrefixRange> {
        self.terms
            .iter()
            .flat_map(|t| t.minus.iter().copied())
            .collect()
    }
}

impl std::fmt::Display for HeaderLocalization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

/// `GetMatch` memo table: `(node, S) → (terms, exact)`.
type GetMatchMemo = HashMap<(usize, Bdd), (Vec<NestedTerm>, bool)>;

/// The ddNF DAG over prefix ranges. Build it once per compared pair with
/// [`RangeDag::build`] and localize many difference sets against it.
///
/// Cloning a DAG alongside a clone of its manager-owning space yields an
/// independent snapshot whose node handles (and memo entries) remain valid
/// in the cloned arena — the basis of the driver's per-difference fan-out.
#[derive(Clone)]
pub struct RangeDag {
    /// Node ranges (label function λ).
    ranges: Vec<PrefixRange>,
    /// Node BDDs (the denoted prefix sets).
    bdds: Vec<Bdd>,
    /// Cover-edge children per node.
    children: Vec<Vec<usize>>,
    /// Per-node remainder (`λ(n) − children`), precomputed at build time so
    /// localize queries stop re-deriving them node by node.
    remainders: Vec<Bdd>,
    /// Index of the universe node.
    root: usize,
    /// Poison flag: [`RangeDag::release`] drops the GC roots, after which
    /// localizing against this DAG would read collectable BDDs.
    released: Cell<bool>,
    /// `GetMatch` memo: `(node, S) → (terms, exact)`. Valid for one GC
    /// generation — a sweep may recycle node indices, so the table is
    /// cleared whenever the manager's sweep count moves past `memo_gen`.
    memo: RefCell<GetMatchMemo>,
    memo_gen: Cell<u64>,
}

impl RangeDag {
    /// Build the ddNF over the given configuration ranges (plus the
    /// universe, closed under intersection).
    pub fn build<E: RangeEncoder>(space: &mut E, ranges: &[PrefixRange]) -> RangeDag {
        campion_trace::span!("headerloc.ddnf");
        build_ddnf(space, ranges)
    }

    /// Number of nodes (for diagnostics).
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Drop the GC roots this DAG holds on its node sets ([`RangeDag::build`]
    /// protects every node BDD and remainder so the DAG survives the
    /// collections the driver runs between differences). The DAG must not
    /// be used for localization afterwards (debug-asserted).
    pub fn release(&self, manager: &mut AnyManager) {
        debug_assert!(!self.released.get(), "RangeDag released twice");
        self.released.set(true);
        for &b in self.bdds.iter().chain(self.remainders.iter()) {
            manager.unprotect(b);
        }
    }

    /// True when only the universe node exists.
    pub fn is_empty(&self) -> bool {
        self.ranges.len() <= 1
    }
}

type Ddnf = RangeDag;

/// Close a range set under intersection, deduplicating by denoted set via
/// structural keys. BDDs are encoded (and rooted) once per distinct node;
/// the trie answers partner queries for the fixpoint loop.
fn closed_ranges<E: RangeEncoder>(
    space: &mut E,
    ranges: &[PrefixRange],
) -> (Vec<PrefixRange>, Vec<Bdd>, Vec<SetKey>, PrefixTrie) {
    let sem = space.semantics();
    let mut out: Vec<PrefixRange> = Vec::new();
    let mut bdds: Vec<Bdd> = Vec::new();
    let mut keys: Vec<SetKey> = Vec::new();
    let mut trie = PrefixTrie::new();
    let mut seen: std::collections::HashSet<SetKey> = std::collections::HashSet::new();
    let mut push = |space: &mut E,
                    out: &mut Vec<PrefixRange>,
                    bdds: &mut Vec<Bdd>,
                    keys: &mut Vec<SetKey>,
                    trie: &mut PrefixTrie,
                    r: PrefixRange| {
        let Some(key) = SetKey::of(sem, &r) else {
            return; // denotes ∅ — e.g. length bounds under the prefix's bits
        };
        if seen.insert(key) {
            let b = space.encode(&r);
            debug_assert!(!space.manager().is_false(b), "nonempty key, empty set");
            // Root every distinct node set: the DAG outlives the safe
            // points between localizations (released by `RangeDag::release`).
            space.manager().protect(b);
            trie.insert(out.len(), &r.prefix);
            out.push(r);
            bdds.push(b);
            keys.push(key);
        }
    };
    push(
        space,
        &mut out,
        &mut bdds,
        &mut keys,
        &mut trie,
        PrefixRange::universe(),
    );
    for r in ranges {
        push(space, &mut out, &mut bdds, &mut keys, &mut trie, *r);
    }
    // Fixpoint closure under pairwise intersection, with the trie supplying
    // each node's possible partners (only prefix-nested ranges intersect)
    // instead of an all-pairs scan. Range intersection is again a range, so
    // this terminates; candidates come back in ascending order, so pushes
    // happen in the same order the plain `for j < i` loop produced.
    let mut i = 0;
    while i < out.len() {
        for j in trie.candidates(&out[i].prefix) {
            if j >= i {
                break;
            }
            if let Some(x) = out[i].intersect(&out[j]) {
                push(space, &mut out, &mut bdds, &mut keys, &mut trie, x);
            }
        }
        i += 1;
    }
    (out, bdds, keys, trie)
}

/// Build the ddNF DAG from the closed range set, deciding containment on
/// the structural set keys.
fn build_ddnf<E: RangeEncoder>(space: &mut E, ranges: &[PrefixRange]) -> Ddnf {
    let (ranges, bdds, keys, trie) = {
        campion_trace::span!("headerloc.ddnf.close");
        closed_ranges(space, ranges)
    };
    campion_trace::span!("headerloc.ddnf.edges");
    let n = ranges.len();
    // containers[c] = nodes whose set strictly contains node c's set
    // (structurally different but equal ranges were already merged, so
    // strictness is just key inequality). The trie narrows each node's
    // possible containers to its prefix-nested partners, making this
    // near-linear for the sparse range sets real configurations produce.
    let mut containers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..n {
        for m in trie.candidates(&ranges[c].prefix) {
            if c == m || ranges[c].intersect(&ranges[m]).is_none() {
                continue;
            }
            if keys[m].contains(&keys[c]) {
                containers[c].push(m);
            }
        }
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (c, cs) in containers.iter().enumerate() {
        // Cover edges: minimal containers of c (no other container of c
        // sits strictly between). `set(k) ⊆ set(m)` is one structural
        // check, replacing the former `containers[k].contains(&m)` scan.
        for &m in cs {
            let covered = cs.iter().any(|&k| k != m && keys[m].contains(&keys[k]));
            if !covered {
                children[m].push(c);
            }
        }
    }
    finish_dag(space, ranges, bdds, children)
}

/// Shared tail of both builders: locate the root and precompute (and root)
/// every node's remainder.
fn finish_dag<E: RangeEncoder>(
    space: &mut E,
    ranges: Vec<PrefixRange>,
    bdds: Vec<Bdd>,
    children: Vec<Vec<usize>>,
) -> Ddnf {
    campion_trace::span!("headerloc.ddnf.remainders");
    let root = ranges
        .iter()
        .position(|r| *r == PrefixRange::universe())
        .expect("universe inserted first");
    let mut remainders = Vec::with_capacity(bdds.len());
    for (i, &b) in bdds.iter().enumerate() {
        let mut rem = b;
        for &k in &children[i] {
            rem = space.manager().diff(rem, bdds[k]);
        }
        space.manager().protect(rem);
        remainders.push(rem);
    }
    Ddnf {
        ranges,
        bdds,
        children,
        remainders,
        root,
        released: Cell::new(false),
        memo: RefCell::new(HashMap::new()),
        memo_gen: Cell::new(u64::MAX),
    }
}

/// The pre-trie `closed_ranges`: BDD-keyed dedup plus a BTreeMap prefix
/// index. Retained verbatim as the differential oracle for the structural
/// builder (`tests::ddnf` asserts identical DAGs).
fn closed_ranges_oracle<E: RangeEncoder>(
    space: &mut E,
    ranges: &[PrefixRange],
) -> (Vec<PrefixRange>, Vec<Bdd>, RangeIndex) {
    let mut out: Vec<PrefixRange> = Vec::new();
    let mut bdds: Vec<Bdd> = Vec::new();
    let mut seen: std::collections::HashSet<Bdd> = std::collections::HashSet::new();
    let mut push =
        |space: &mut E, out: &mut Vec<PrefixRange>, bdds: &mut Vec<Bdd>, r: PrefixRange| {
            let b = space.encode(&r);
            if space.manager().is_false(b) {
                return;
            }
            if seen.insert(b) {
                space.manager().protect(b);
                out.push(r);
                bdds.push(b);
            }
        };
    push(space, &mut out, &mut bdds, PrefixRange::universe());
    for r in ranges {
        push(space, &mut out, &mut bdds, *r);
    }
    let mut index = RangeIndex::new();
    for (id, r) in out.iter().enumerate() {
        index.insert(id, r);
    }
    let mut i = 0;
    while i < out.len() {
        for j in index.candidates(&out[i]) {
            if j >= i {
                break;
            }
            if let Some(x) = out[i].intersect(&out[j]) {
                let before = out.len();
                push(space, &mut out, &mut bdds, x);
                if out.len() > before {
                    index.insert(before, &out[before]);
                }
            }
        }
        i += 1;
    }
    (out, bdds, index)
}

/// The pre-trie DAG builder, deciding containment with BDD `diff`. Retained
/// as the differential-testing oracle for [`RangeDag::build`]; not used on
/// the production path.
#[doc(hidden)]
pub fn build_ddnf_oracle<E: RangeEncoder>(space: &mut E, ranges: &[PrefixRange]) -> RangeDag {
    let (ranges, bdds, index) = closed_ranges_oracle(space, ranges);
    let n = ranges.len();
    let mut containers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..n {
        for m in index.candidates(&ranges[c]) {
            if c == m || ranges[c].intersect(&ranges[m]).is_none() {
                continue;
            }
            let extra = space.manager().diff(bdds[c], bdds[m]);
            if space.manager().is_false(extra) {
                containers[c].push(m);
            }
        }
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..n {
        for &m in &containers[c] {
            let covered = containers[c]
                .iter()
                .any(|&k| k != m && containers[k].contains(&m));
            if !covered {
                children[m].push(c);
            }
        }
    }
    finish_dag(space, ranges, bdds, children)
}

/// The DAG's full skeleton `(ranges, bdds, children, remainders, root)`,
/// for the differential suite's node-order-included equality assertions
/// (two builds in one manager must agree on every node handle too).
#[doc(hidden)]
#[allow(clippy::type_complexity)]
pub fn dag_structure(dag: &RangeDag) -> (&[PrefixRange], &[Bdd], &[Vec<usize>], &[Bdd], usize) {
    (
        &dag.ranges,
        &dag.bdds,
        &dag.children,
        &dag.remainders,
        dag.root,
    )
}

/// Candidate-pair index for the oracle's closure and containment scans.
///
/// Two prefix ranges can intersect only when one's prefix is a truncation
/// of the other's (`PrefixRange::intersect` demands the shorter prefix's
/// bits match the longer's), so node `i`'s possible partners all carry
/// either a truncation of `ranges[i].prefix` — found by exact lookup at
/// each length — or an extension of it — found by scanning `i`'s address
/// block in a map ordered by `(bits, len)`. The result is a superset of
/// the true partner set (the caller still runs `intersect`), returned in
/// ascending node order so scan order matches the plain nested loops
/// exactly (node order flows into report rendering order).
/// [`PrefixTrie`] answers the same query without the per-call sort/dedup.
struct RangeIndex {
    by_prefix: std::collections::BTreeMap<(u32, u8), Vec<usize>>,
}

impl RangeIndex {
    fn new() -> Self {
        RangeIndex {
            by_prefix: std::collections::BTreeMap::new(),
        }
    }

    fn insert(&mut self, id: usize, r: &PrefixRange) {
        self.by_prefix
            .entry((r.prefix.bits(), r.prefix.len()))
            .or_default()
            .push(id);
    }

    fn candidates(&self, r: &PrefixRange) -> Vec<usize> {
        let p = &r.prefix;
        let mut out = Vec::new();
        // Strict truncations of p (p itself falls inside the block scan).
        for len in 0..p.len() {
            let bits = if len == 0 {
                0
            } else {
                p.bits() & (u32::MAX << (32 - u32::from(len)))
            };
            if let Some(v) = self.by_prefix.get(&(bits, len)) {
                out.extend_from_slice(v);
            }
        }
        // Everything whose bits lie inside p's address block: all
        // extensions of p (plus p itself, plus a few same-block keys the
        // intersect re-check weeds out).
        let block_end = p.bits() | (((1u64 << (32 - u64::from(p.len()))) - 1) as u32);
        for (_, v) in self
            .by_prefix
            .range((p.bits(), p.len())..=(block_end, 32u8))
        {
            out.extend_from_slice(v);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// `GetMatch` (paper §3.2): returns terms representing `S ∩ set(node)`,
/// assuming every ddNF cell is inside or outside `S`. Terms may be nested
/// (a minus item carrying its own minus list) until the cleanup pass.
#[derive(Debug, Clone)]
struct NestedTerm {
    base: PrefixRange,
    minus: Vec<NestedTerm>,
}

/// One `GetMatch` node visit, memoized per `(node, s)` on the DAG. `not_s`
/// is `¬s`, threaded down so the include-branch recursion (which queries
/// the complement) costs no `not()` calls; the roles swap on recursion
/// since `¬¬s = s` is free in a canonical BDD.
fn get_match<E: RangeEncoder>(
    space: &mut E,
    ddnf: &Ddnf,
    s: Bdd,
    not_s: Bdd,
    node: usize,
    exact: &mut bool,
) -> Vec<NestedTerm> {
    if let Some((terms, sub_exact)) = ddnf.memo.borrow().get(&(node, s)).cloned() {
        if !sub_exact {
            *exact = false;
        }
        return terms;
    }
    let range_bdd = ddnf.bdds[node];
    let kids = &ddnf.children[node];
    // Remainder = range minus all children (precomputed; equals the range
    // itself at leaves).
    let remainder = ddnf.remainders[node];
    let mut sub_exact = true;
    let rem_outside = space.manager().diff(remainder, s);
    let overlaps_s = {
        let x = space.manager().and(range_bdd, s);
        space.manager().is_sat(x)
    };
    // Include-branch: the remainder is inside S (an empty remainder counts,
    // provided the range overlaps S at all — otherwise the node contributes
    // nothing and we just recurse).
    let terms = if space.manager().is_false(rem_outside) && overlaps_s {
        // Remainder ⊆ S: include the range minus the children not in S.
        let mut minus = Vec::new();
        for &k in kids {
            minus.extend(get_match(space, ddnf, not_s, s, k, &mut sub_exact));
        }
        vec![NestedTerm {
            base: ddnf.ranges[node],
            minus,
        }]
    } else {
        if space.manager().is_sat(remainder) {
            let rem_inside = space.manager().and(remainder, s);
            if space.manager().is_sat(rem_inside) {
                sub_exact = false; // cell splits S: decomposition inexact
            }
        }
        let mut out = Vec::new();
        for &k in kids {
            out.extend(get_match(space, ddnf, s, not_s, k, &mut sub_exact));
        }
        out
    };
    if !sub_exact {
        *exact = false;
    }
    ddnf.memo
        .borrow_mut()
        .insert((node, s), (terms.clone(), sub_exact));
    terms
}

/// Remove nested differences in one pass: `C − (F − G)` → `{C − F, G}`.
fn flatten(terms: Vec<NestedTerm>) -> Vec<RangeTerm> {
    let mut out = Vec::new();
    for t in terms {
        let mut minus = Vec::new();
        let mut extra = Vec::new();
        for m in t.minus {
            minus.push(m.base);
            // Whatever the minus-term itself subtracted belongs back in S.
            extra.extend(flatten(m.minus));
        }
        out.push(RangeTerm {
            base: t.base,
            minus,
        });
        out.extend(extra);
    }
    out
}

/// Header localization entry point: decompose a predicate `s` (already
/// projected onto this encoder's range dimensions) over the prefix ranges
/// mentioned by the two compared components (the paper's `R`).
pub fn header_localize<E: RangeEncoder>(
    space: &mut E,
    s: Bdd,
    config_ranges: &[PrefixRange],
) -> HeaderLocalization {
    let ddnf = RangeDag::build(space, config_ranges);
    let loc = header_localize_with(space, s, &ddnf);
    ddnf.release(space.manager());
    loc
}

/// As [`header_localize`], against a prebuilt [`RangeDag`] — the fast path
/// when one component pair produces several differences.
pub fn header_localize_with<E: RangeEncoder>(
    space: &mut E,
    s: Bdd,
    ddnf: &RangeDag,
) -> HeaderLocalization {
    campion_trace::span!("headerloc.localize");
    debug_assert!(
        !ddnf.released.get(),
        "localize against a released RangeDag (its node BDDs are unrooted)"
    );
    // Memo entries name arena indices, which stay put between sweeps and
    // may be recycled by one: key the table to the manager's sweep count.
    // (No sweep can happen inside this call — collection only runs at
    // explicit checkpoints, and there are none below.)
    let gc_gen = space.manager().sweep_count();
    if ddnf.memo_gen.get() != gc_gen {
        ddnf.memo.borrow_mut().clear();
        ddnf.memo_gen.set(gc_gen);
    }
    let mut exact = true;
    let not_s = space.manager().not(s);
    let nested = get_match(space, ddnf, s, not_s, ddnf.root, &mut exact);
    let mut terms = flatten(nested);
    // Deterministic output order, and deduplication: a shared DAG node can
    // be reached through several parents and must be reported once.
    for t in &mut terms {
        t.minus.sort();
        t.minus.dedup();
    }
    terms.sort_by(|a, b| (a.base, &a.minus).cmp(&(b.base, &b.minus)));
    terms.dedup();
    let loc = HeaderLocalization { terms, exact };
    debug_assert!(
        !loc.exact
            || reencode(space, &loc) == {
                let u = space.encode(&PrefixRange::universe());
                space.manager().and(s, u)
            },
        "HeaderLocalize must re-encode to exactly S"
    );
    loc
}

/// Re-encode a localization back into a BDD (the correctness check used by
/// the property tests). The result is intersected with the universe range's
/// own encoding, which carries the validity constraint (length ≤ 32) in
/// route spaces.
pub fn reencode<E: RangeEncoder>(space: &mut E, loc: &HeaderLocalization) -> Bdd {
    let mut acc = Bdd::FALSE;
    let valid = space.encode(&PrefixRange::universe());
    for t in &loc.terms {
        let mut b = space.encode(&t.base);
        for m in &t.minus {
            let mb = space.encode(m);
            b = space.manager().diff(b, mb);
        }
        acc = space.manager().or(acc, b);
    }
    space.manager().and(acc, valid)
}
