//! The ConfigDiff driver (§3): MatchPolicies → Diff → Present.
//!
//! Matched component pairs are independent — each policy or ACL pair gets
//! its own BDD manager and variable space — so the driver fans the diff
//! work out over a small work-stealing pool (`std::thread::scope`, no
//! external dependencies). Results are merged back in the original pair
//! order, so the rendered report is byte-identical to a sequential run
//! regardless of the worker count.

use std::sync::atomic::{AtomicUsize, Ordering};

use campion_bdd::{GcPolicy, ManagerStats, SharedPool};
use campion_cfg::Span;
use campion_ir::{AclIr, RoutePolicy, RouterIr};
use campion_net::PrefixRange;
use campion_symbolic::{PacketSpace, RouteSpace};

use crate::headerloc::{self, DstAddrSpace, SrcAddrSpace};
use crate::matching::{match_policies, PolicyPair};
use crate::report::{CampionReport, PolicyDiffReport, StructuralFinding};
use crate::semantic::{
    acl_diff_paths, policy_paths, release_paths, semantic_diff_jobs, DiffPruneStats,
    SemanticDifference,
};
use crate::structural;

/// Garbage-collection mode for the per-pair BDD managers. The rendered
/// report is byte-identical in every mode; only memory behavior changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcMode {
    /// Never collect (PR 1 behavior: the arena grows monotonically).
    Off,
    /// Collect at safe points when the live set has doubled since the last
    /// collection ([`GcPolicy::automatic`]).
    #[default]
    Auto,
    /// Collect at *every* safe point — maximal memory pressure relief and
    /// the differential-testing mode of `tests/determinism.rs`.
    Aggressive,
}

impl GcMode {
    /// The manager-level policy this mode installs.
    pub fn policy(self) -> GcPolicy {
        match self {
            GcMode::Off => GcPolicy::Disabled,
            GcMode::Auto => GcPolicy::automatic(),
            GcMode::Aggressive => GcPolicy::Aggressive,
        }
    }
}

/// Options controlling a comparison run.
#[derive(Debug, Clone)]
pub struct CampionOptions {
    /// Compare static routes structurally.
    pub check_static_routes: bool,
    /// Compare connected routes structurally.
    pub check_connected_routes: bool,
    /// Compare BGP properties structurally.
    pub check_bgp_properties: bool,
    /// Compare OSPF attributes structurally.
    pub check_ospf: bool,
    /// Compare route maps semantically.
    pub check_route_maps: bool,
    /// Compare ACLs semantically.
    pub check_acls: bool,
    /// Report the *exhaustive* community conditions of each route-map
    /// difference instead of a single example (the §3.2 extension; off by
    /// default to match the paper's output format).
    pub exhaustive_communities: bool,
    /// Worker threads for the diff phase; `0` means one per available
    /// hardware thread. The report is identical for every value.
    pub jobs: usize,
    /// Garbage-collection mode for the per-pair BDD managers.
    pub gc: GcMode,
    /// Run every pair on one process-wide shared concurrent BDD arena
    /// (per-thread workers, cross-pair node sharing, intra-pair fan-out)
    /// instead of a private manager per pair. The report is identical
    /// either way.
    pub shared_manager: bool,
}

impl Default for CampionOptions {
    fn default() -> Self {
        CampionOptions {
            check_static_routes: true,
            check_connected_routes: true,
            check_bgp_properties: true,
            check_ospf: true,
            check_route_maps: true,
            check_acls: true,
            exhaustive_communities: false,
            jobs: 0,
            gc: GcMode::default(),
            shared_manager: false,
        }
    }
}

impl CampionOptions {
    /// The effective worker count: `jobs` clamped to the machine's
    /// available parallelism (more workers than hardware threads only adds
    /// scheduling overhead), or that parallelism itself when `jobs == 0`.
    pub fn effective_jobs(&self) -> usize {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if self.jobs != 0 {
            self.jobs.min(hw)
        } else {
            hw
        }
    }

    /// The effective GC mode: `CAMPION_GC_AGGRESSIVE=1` in the environment
    /// forces [`GcMode::Aggressive`] (the differential-testing hook);
    /// otherwise the configured mode stands.
    pub fn effective_gc(&self) -> GcMode {
        match std::env::var("CAMPION_GC_AGGRESSIVE") {
            Ok(v) if v == "1" => GcMode::Aggressive,
            _ => self.gc,
        }
    }
}

/// One independent unit of diff work. Policy and ACL items each build a
/// private BDD manager; structural items are pure IR walks.
enum WorkItem<'a> {
    Policy(&'a PolicyPair),
    Acl(&'a str),
    StaticRoutes,
    ConnectedRoutes,
    BgpProperties,
    Ospf,
}

/// The output of one work item, tagged so the merge step can append it to
/// the right report section.
enum WorkOutput {
    RouteMaps(Vec<PolicyDiffReport>, ManagerStats),
    Acls(Vec<PolicyDiffReport>, ManagerStats),
    Structural(Vec<StructuralFinding>),
}

fn run_item(
    r1: &RouterIr,
    r2: &RouterIr,
    item: &WorkItem<'_>,
    opts: &CampionOptions,
    pool: Option<&SharedPool>,
) -> WorkOutput {
    match item {
        WorkItem::Policy(pair) => {
            let (diffs, stats) = diff_policy_pair(r1, r2, pair, opts, pool);
            WorkOutput::RouteMaps(diffs, stats)
        }
        WorkItem::Acl(name) => {
            let (diffs, stats) =
                diff_acl_pair(r1, r2, &r1.acls[*name], &r2.acls[*name], opts, pool);
            WorkOutput::Acls(diffs, stats)
        }
        WorkItem::StaticRoutes => {
            campion_trace::span!("item.structural");
            WorkOutput::Structural(structural::diff_static_routes(r1, r2))
        }
        WorkItem::ConnectedRoutes => {
            campion_trace::span!("item.structural");
            WorkOutput::Structural(structural::diff_connected_routes(r1, r2))
        }
        WorkItem::BgpProperties => {
            campion_trace::span!("item.structural");
            WorkOutput::Structural(structural::diff_bgp_properties(r1, r2))
        }
        WorkItem::Ospf => {
            campion_trace::span!("item.structural");
            WorkOutput::Structural(structural::diff_ospf(r1, r2))
        }
    }
}

/// Attach the pair manager's counter deltas (exit snapshot minus entry
/// snapshot) to a work-item span: BDD arena growth, cache traffic, GC
/// effort, and the semantic-diff pruning counters.
fn attach_stats_delta(
    span: &mut campion_trace::SpanGuard,
    before: &ManagerStats,
    after: &ManagerStats,
) {
    if !span.is_active() {
        return;
    }
    let d = |a: u64, b: u64| a as i64 - b as i64;
    span.counter("bdd_nodes", d(after.nodes, before.nodes));
    span.counter("peak_nodes", d(after.peak_nodes, before.peak_nodes));
    span.counter(
        "unique_lookups",
        d(after.unique_lookups, before.unique_lookups),
    );
    span.counter(
        "apply_lookups",
        d(after.apply_lookups, before.apply_lookups),
    );
    span.counter("apply_hits", d(after.apply_hits, before.apply_hits));
    span.counter("gc_runs", d(after.gc_runs, before.gc_runs));
    span.counter("gc_pauses", d(after.gc_pauses, before.gc_pauses));
    span.counter("gc_pause_us", d(after.gc_pause_us, before.gc_pause_us));
    span.counter(
        "gc_nodes_freed",
        d(after.gc_nodes_freed, before.gc_nodes_freed),
    );
    span.counter(
        "rule_cache_lookups",
        d(after.rule_cache_lookups, before.rule_cache_lookups),
    );
    span.counter(
        "rule_cache_hits",
        d(after.rule_cache_hits, before.rule_cache_hits),
    );
    span.counter(
        "pairs_examined",
        d(after.pairs_examined, before.pairs_examined),
    );
    span.counter("pairs_pruned", d(after.pairs_pruned, before.pairs_pruned));
    span.counter("early_exits", d(after.early_exits, before.early_exits));
}

/// Work-stealing fan-out shared by the pair pool, the per-difference
/// localization pool, and external batch drivers such as `campion-fuzz`:
/// one scoped worker thread per element of `states` (each worker owns its
/// state), claiming indices `0..n` from a shared cursor so a slow item
/// never serializes the rest. Outputs come back in index order, making the
/// callers' merges byte-identical to a sequential run regardless of the
/// worker count. `on_start` runs on each worker thread before any work
/// (trace-track assignment).
pub fn steal_indexed<S, T>(
    states: Vec<S>,
    n: usize,
    on_start: impl Fn(usize) + Sync,
    f: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T>
where
    S: Send,
    T: Send,
{
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .into_iter()
            .enumerate()
            .map(|(w, mut state)| {
                let cursor = &cursor;
                let f = &f;
                let on_start = &on_start;
                scope.spawn(move || {
                    on_start(w);
                    // Per-worker utilization: how many items this worker
                    // claimed and how long it spent inside them, vs. the
                    // worker's total lifetime (the `pool.worker` span).
                    let mut worker_span = campion_trace::span("pool.worker");
                    let timed = worker_span.is_active();
                    let mut claimed = 0i64;
                    let mut busy_ns = 0u64;
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if timed {
                            claimed += 1;
                            let t0 = std::time::Instant::now();
                            done.push((i, f(&mut state, i)));
                            busy_ns += t0.elapsed().as_nanos() as u64;
                        } else {
                            done.push((i, f(&mut state, i)));
                        }
                    }
                    if timed {
                        worker_span.counter("claimed", claimed);
                        worker_span.counter("busy_ns", busy_ns as i64);
                    }
                    drop(worker_span);
                    // Hand the buffered span events over before the scope
                    // observes this closure as finished — the thread-local
                    // backstop flush would race a drain that runs right
                    // after the join.
                    campion_trace::flush();
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, out) in h.join().expect("diff worker panicked") {
                slots[i] = Some(out);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("work item never claimed"))
        .collect()
}

/// The top-level ConfigDiff algorithm: pair components, diff each pair, and
/// present the localized differences.
pub fn compare_routers(r1: &RouterIr, r2: &RouterIr, opts: &CampionOptions) -> CampionReport {
    campion_trace::span!("core.compare");
    let mut report = CampionReport {
        router1: r1.name.clone(),
        router2: r2.name.clone(),
        ..CampionReport::default()
    };
    let matched = {
        campion_trace::span!("core.match");
        match_policies(r1, r2)
    };
    report.unmatched = matched.unmatched.clone();

    // Collect every enabled unit of work. The vector order is the report
    // order: policy pairs, ACL pairs, then the structural families in their
    // traditional sequence.
    let mut items: Vec<WorkItem<'_>> = Vec::new();
    if opts.check_route_maps {
        items.extend(matched.policy_pairs.iter().map(WorkItem::Policy));
    }
    if opts.check_acls {
        items.extend(matched.acl_pairs.iter().map(|n| WorkItem::Acl(n)));
    }
    if opts.check_static_routes {
        items.push(WorkItem::StaticRoutes);
    }
    if opts.check_connected_routes {
        items.push(WorkItem::ConnectedRoutes);
    }
    if opts.check_bgp_properties {
        items.push(WorkItem::BgpProperties);
    }
    if opts.check_ospf {
        items.push(WorkItem::Ospf);
    }

    let jobs = opts.effective_jobs().min(items.len()).max(1);
    // When pairs are scarcer than workers, the spare parallelism moves down
    // a level: each pair's per-difference localizations fan out over
    // `inner` sub-workers instead (see `diff_policy_pair`).
    let inner = if items.len() >= opts.effective_jobs() {
        1
    } else {
        opts.effective_jobs() / items.len().max(1)
    };
    let mut diff_opts = opts.clone();
    diff_opts.jobs = inner.max(1);
    let diff_opts = &diff_opts;
    // One shared arena pool for the whole run when requested; pair workers
    // (one per thread, keyed by variable count) hang off it. `None` keeps
    // the classic private-manager-per-pair layout.
    let pool = opts
        .shared_manager
        .then(|| SharedPool::new(opts.effective_gc().policy()));
    let pool = pool.as_ref();
    let outputs: Vec<WorkOutput> = if jobs <= 1 {
        items
            .iter()
            .map(|it| run_item(r1, r2, it, diff_opts, pool))
            .collect()
    } else {
        steal_indexed(
            vec![(); jobs],
            items.len(),
            // Each worker gets its own trace track (lane in the Chrome
            // trace); track 0 is the coordinating thread.
            |w| campion_trace::set_track(w as u32 + 1),
            |(), i| run_item(r1, r2, &items[i], diff_opts, pool),
        )
    };

    // Merge in item order: identical to the sequential driver's appends.
    for out in outputs {
        match out {
            WorkOutput::RouteMaps(diffs, stats) => {
                report.route_map_diffs.extend(diffs);
                report.bdd_stats.merge(&stats);
            }
            WorkOutput::Acls(diffs, stats) => {
                report.acl_diffs.extend(diffs);
                report.bdd_stats.merge(&stats);
            }
            WorkOutput::Structural(findings) => report.structural.extend(findings),
        }
    }
    // Shared mode: per-item stats carry only worker-local counters; the
    // arena-wide node/GC/shard figures come from the pool, once.
    if let Some(p) = pool {
        report.bdd_stats.merge(&p.stats());
    }
    report
}

/// Reusable end-to-end entry: parse, lower and compare two raw
/// configuration texts. The CLI's `compare` command and the fleet
/// daemon's one-shot path both go through here, so their reports are the
/// same bytes by construction.
pub fn compare_config_texts(
    text1: &str,
    text2: &str,
    opts: &CampionOptions,
) -> Result<CampionReport, String> {
    let load = |text: &str| -> Result<RouterIr, String> {
        let cfg = campion_cfg::parse_config(text).map_err(|e| e.to_string())?;
        campion_ir::lower(&cfg).map_err(|e| e.to_string())
    };
    Ok(compare_routers(&load(text1)?, &load(text2)?, opts))
}

/// Compare two route policies by name (the Figure-1 workflow) and return
/// the localized difference reports.
pub fn compare_policies_by_name(r1: &RouterIr, r2: &RouterIr, name: &str) -> Vec<PolicyDiffReport> {
    diff_policy_pair(
        r1,
        r2,
        &PolicyPair {
            context: format!("policy {name}"),
            name1: Some(name.to_string()),
            name2: Some(name.to_string()),
        },
        &CampionOptions::default(),
        None,
    )
    .0
}

/// Text localization for one side of a difference: quote the fired clauses'
/// source lines, or describe the implicit default.
fn side_text(router: &RouterIr, spans: &[Span], is_default: bool, policy: &RoutePolicy) -> String {
    if is_default {
        return match policy.default_terminal {
            campion_ir::Terminal::Accept => {
                format!("(policy {}: default accept)", policy.name)
            }
            _ => format!("(policy {}: implicit deny)", policy.name),
        };
    }
    spans
        .iter()
        .map(|s| router.snippet(*s))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Run SemanticDiff + HeaderLocalize + Present for one policy pair.
/// Returns the localized differences plus the pair's BDD-engine counters.
fn diff_policy_pair(
    r1: &RouterIr,
    r2: &RouterIr,
    pair: &PolicyPair,
    opts: &CampionOptions,
    pool: Option<&SharedPool>,
) -> (Vec<PolicyDiffReport>, ManagerStats) {
    let mut item_span = campion_trace::span("item.policy_pair");
    let p1 = match &pair.name1 {
        Some(n) => r1.policy_or_permit(n),
        None => RoutePolicy::permit_all("(no policy)"),
    };
    let p2 = match &pair.name2 {
        Some(n) => r2.policy_or_permit(n),
        None => RoutePolicy::permit_all("(no policy)"),
    };
    let mut space = RouteSpace::for_policies_in(&[&p1, &p2], pool);
    space.manager.set_gc_policy(opts.effective_gc().policy());
    let stats_at_entry = space.manager.stats();
    let universe = space.universe();
    // The universe is consulted by both path enumerations, which contain
    // safe points — root it for the whole pair.
    space.manager.protect(universe);
    let paths1 = policy_paths(&mut space, &p1, universe);
    let paths2 = policy_paths(&mut space, &p2, universe);
    let mut prune = DiffPruneStats::default();
    let diffs = semantic_diff_jobs(
        &mut space.manager,
        &paths1,
        &paths2,
        &mut prune,
        opts.effective_jobs(),
    );
    // The diffs' inputs are rooted by semantic_diff; the paths themselves
    // are now garbage.
    release_paths(&mut space.manager, &paths1);
    release_paths(&mut space.manager, &paths2);
    space.manager.gc_checkpoint();

    // The range universe R: every range in either configuration (§3.2).
    // The ddNF over R is built once and reused for every difference (its
    // node sets are rooted by `build`).
    let mut ranges: Vec<PrefixRange> = p1.prefix_ranges();
    ranges.extend(p2.prefix_ranges());
    let dag = headerloc::RangeDag::build(&mut space, &ranges);
    space.manager.gc_checkpoint();

    let inner_jobs = opts.effective_jobs().min(diffs.len());
    let out: Vec<PolicyDiffReport> = if diffs.is_empty() {
        Vec::new()
    } else if inner_jobs <= 1 {
        // Present against a snapshot clone even when sequential: the
        // localization intermediates then live (and die) in the clone's
        // arena exactly as they do in a parallel worker's, so the main
        // manager sees the same operation sequence — and the pair reports
        // the same ManagerStats — at every worker count. The parent worker
        // goes idle for the duration: on a shared arena the clone is a
        // sibling worker, and a collection it requests at a safe point
        // can only proceed once the (blocked) parent is off the active
        // roster. No-op for private managers.
        let (mut sp, dg) = (space.clone(), dag.clone());
        let out = space.manager.with_idle(|| {
            diffs
                .iter()
                .map(|d| present_policy_diff(r1, r2, &mut sp, &dg, &p1, &p2, pair, d, opts))
                .collect()
        });
        drop(sp);
        for d in &diffs {
            space.manager.unprotect(d.input);
        }
        space.manager.gc_checkpoint();
        out
    } else {
        // Per-difference fan-out: localizations against a fixed DAG are
        // independent, so each sub-worker takes a snapshot clone of the
        // space and the DAG (node indices survive cloning, so results are
        // the sequential ones bit for bit) and the differences are claimed
        // work-stealing style. The clones' arenas and stats are discarded;
        // the original manager stays untouched (and idle, so sub-workers
        // can collect) until the roots are dropped below, at the same safe
        // point a sequential run reaches.
        let parent = campion_trace::track().unwrap_or(0);
        let states: Vec<(RouteSpace, headerloc::RangeDag)> = (0..inner_jobs)
            .map(|_| (space.clone(), dag.clone()))
            .collect();
        let out = space.manager.with_idle(|| {
            steal_indexed(
                states,
                diffs.len(),
                |w| campion_trace::set_track(campion_trace::sub_track(parent, w as u32)),
                |(sp, dg), i| present_policy_diff(r1, r2, sp, dg, &p1, &p2, pair, &diffs[i], opts),
            )
        });
        for d in &diffs {
            space.manager.unprotect(d.input);
        }
        space.manager.gc_checkpoint();
        out
    };
    dag.release(&mut space.manager);
    space.manager.unprotect(universe);
    let mut stats = space.manager.stats();
    let (lookups, hits) = space.rule_cache_stats();
    stats.rule_cache_lookups = lookups;
    stats.rule_cache_hits = hits;
    stats.pairs_examined = prune.pairs_examined;
    stats.pairs_pruned = prune.pairs_pruned;
    stats.early_exits = prune.early_exits;
    attach_stats_delta(&mut item_span, &stats_at_entry, &stats);
    (out, stats)
}

/// Present one route-map difference: localize its input over the pair's
/// ddNF and render the report row. Pure with respect to the report — only
/// the space's caches/arena mutate — so the driver can run it on snapshot
/// clones in parallel.
#[allow(clippy::too_many_arguments)]
fn present_policy_diff(
    r1: &RouterIr,
    r2: &RouterIr,
    space: &mut RouteSpace,
    dag: &headerloc::RangeDag,
    p1: &RoutePolicy,
    p2: &RoutePolicy,
    pair: &PolicyPair,
    d: &SemanticDifference,
    opts: &CampionOptions,
) -> PolicyDiffReport {
    campion_trace::span!("present.localize");
    let projected = space.project_to_prefix(d.input);
    let loc = headerloc::header_localize_with(space, projected, dag);
    let example = if opts.exhaustive_communities {
        let cl = crate::commloc::community_localize(space, d.input);
        if cl.is_unconstrained() {
            None
        } else {
            Some(format!("Communities: {cl}"))
        }
    } else {
        non_prefix_example(space, d)
    };
    PolicyDiffReport {
        context: pair.context.clone(),
        name1: p1.name.clone(),
        name2: p2.name.clone(),
        included: loc.included(),
        excluded: loc.excluded(),
        example,
        action1: d.effect1.to_string(),
        action2: d.effect2.to_string(),
        text1: side_text(r1, &d.spans1, d.default1, p1),
        text2: side_text(r2, &d.spans2, d.default2, p2),
        spans1: d.spans1.clone(),
        spans2: d.spans2.clone(),
        default1: d.default1,
        default2: d.default2,
    }
}

/// At most this many disagreeing communities are listed in a report's
/// Example cell; past the cap the list is truncated with a `(+N more)`
/// marker so a pathological difference cannot flood the table.
const COMMUNITY_LIST_CAP: usize = 8;

/// Campion reports exhaustive prefix information for the prefix dimension;
/// for other route fields the paper shows a single example (§3.2). The
/// community line goes further (the commloc extension): it lists the
/// *complete* set of communities the difference disagrees on — every atom
/// the difference predicate depends on — bounded at
/// [`COMMUNITY_LIST_CAP`]. Tag/metric/protocol still come from one
/// satisfying example.
fn non_prefix_example(space: &mut RouteSpace, d: &SemanticDifference) -> Option<String> {
    // Only when a fired clause actually matched on a non-prefix field — a
    // difference localized purely by prefixes (Table 2a) shows no example.
    if !d.non_prefix_match {
        return None;
    }
    let support = space.manager.support(d.input);
    let constrains_other = support
        .iter()
        .any(|v| *v >= campion_symbolic::PROTO_VARS.start);
    if !constrains_other {
        return None;
    }
    // Prefer-true extraction so the example carries the first listed atom
    // (the paper's Table 2(b) shows `10:10`).
    let a = space
        .manager
        .first_sat_preferring_true(d.input)?
        .complete_with(false);
    let ex = space.concretize(&a);
    let mut parts = Vec::new();
    let disagreeing = crate::commloc::disagreeing_communities(space, d.input);
    if !disagreeing.is_empty() {
        let mut cs: Vec<String> = disagreeing
            .iter()
            .take(COMMUNITY_LIST_CAP)
            .map(|c| c.to_string())
            .collect();
        if disagreeing.len() > COMMUNITY_LIST_CAP {
            cs.push(format!(
                "(+{} more)",
                disagreeing.len() - COMMUNITY_LIST_CAP
            ));
        }
        parts.push(format!("Community: {}", cs.join(", ")));
    }
    if let Some(t) = ex.tag {
        parts.push(format!("Tag: {t}"));
    }
    if let Some(m) = ex.metric {
        parts.push(format!("Metric: {m}"));
    }
    if parts.is_empty() {
        // Constrained only on protocol: name it.
        parts.push(format!("Protocol: {}", ex.protocol));
    }
    Some(parts.join("\n"))
}

/// Present one ACL difference: destination/source address localization,
/// port localization, and an example packet. As `present_policy_diff`,
/// safe to run on snapshot clones.
#[allow(clippy::too_many_arguments)]
fn present_acl_diff(
    r1: &RouterIr,
    r2: &RouterIr,
    space: &mut PacketSpace,
    dst_dag: &headerloc::RangeDag,
    src_dag: &headerloc::RangeDag,
    a1: &AclIr,
    a2: &AclIr,
    d: &SemanticDifference,
) -> PolicyDiffReport {
    campion_trace::span!("present.localize");
    let dst_proj = space.project_to_dst(d.input);
    let dst_loc = headerloc::header_localize_with(&mut DstAddrSpace(space), dst_proj, dst_dag);
    let src_proj = space.project_to_src(d.input);
    let src_loc = headerloc::header_localize_with(&mut SrcAddrSpace(space), src_proj, src_dag);
    // Render address sets as prefixes (drop the length dimension, which
    // is meaningless for packets).
    let as_addr = |rs: Vec<PrefixRange>| -> Vec<PrefixRange> {
        rs.into_iter()
            .map(|r| PrefixRange::new(r.prefix, 32, 32))
            .collect()
    };
    let example = {
        let a = space.manager.first_sat_assignment(d.input);
        a.map(|a| space.concretize(&a).to_string())
    };
    let fmt_addr = |loc: &[PrefixRange]| {
        loc.iter()
            .map(|r| r.prefix.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let included = as_addr(dst_loc.included());
    let excluded = as_addr(dst_loc.excluded());
    let src_inc = fmt_addr(&src_loc.included());
    let src_exc = fmt_addr(&src_loc.excluded());
    let mut example_text = format!("srcIP: {src_inc}");
    if !src_exc.is_empty() {
        example_text.push_str(&format!(" excluding {src_exc}"));
    }
    // Port localization (extension; see portloc): exhaustive intervals
    // when the difference constrains destination ports.
    if let Some(ports) = crate::portloc::dst_port_localize(space, d.input) {
        let ps: Vec<String> = ports.iter().map(|p| p.to_string()).collect();
        example_text.push_str(&format!("\ndstPort: {}", ps.join(", ")));
    }
    if let Some(e) = example {
        example_text.push_str(&format!("\nexample packet: {e}"));
    }
    let text_for = |router: &RouterIr, spans: &[Span], is_default: bool| {
        if is_default {
            "(implicit deny at end of ACL)".to_string()
        } else {
            spans
                .iter()
                .map(|s| router.snippet(*s))
                .collect::<Vec<_>>()
                .join("\n")
        }
    };
    PolicyDiffReport {
        context: format!("ACL {}", a1.name),
        name1: a1.name.clone(),
        name2: a2.name.clone(),
        included,
        excluded,
        example: Some(example_text),
        action1: d.effect1.to_string(),
        action2: d.effect2.to_string(),
        text1: text_for(r1, &d.spans1, d.default1),
        text2: text_for(r2, &d.spans2, d.default2),
        spans1: d.spans1.clone(),
        spans2: d.spans2.clone(),
        default1: d.default1,
        default2: d.default2,
    }
}

/// Run SemanticDiff + address localization + Present for one ACL pair.
/// Returns the localized differences plus the pair's BDD-engine counters.
fn diff_acl_pair(
    r1: &RouterIr,
    r2: &RouterIr,
    a1: &AclIr,
    a2: &AclIr,
    opts: &CampionOptions,
    pool: Option<&SharedPool>,
) -> (Vec<PolicyDiffReport>, ManagerStats) {
    let mut item_span = campion_trace::span("item.acl_pair");
    let mut space = PacketSpace::new_in(pool);
    space.manager.set_gc_policy(opts.effective_gc().policy());
    let stats_at_entry = space.manager.stats();
    // Pair-aware enumeration: both sides' classes restricted to the
    // disagreement set, so the chain never materializes predicates the
    // diff would prune anyway (the 10k-rule hot path). On a shared arena
    // with spare workers the two sides enumerate in parallel.
    let (paths1, paths2) = acl_diff_paths(&mut space, a1, a2, opts.effective_jobs());
    let mut prune = DiffPruneStats::default();
    let diffs = semantic_diff_jobs(
        &mut space.manager,
        &paths1,
        &paths2,
        &mut prune,
        opts.effective_jobs(),
    );
    release_paths(&mut space.manager, &paths1);
    release_paths(&mut space.manager, &paths2);
    space.manager.gc_checkpoint();

    // Address universes from both ACLs' matchers. Non-contiguous wildcard
    // masks decompose into their covering prefixes (capped — past the cap a
    // matcher contributes only its single enclosing prefix and localization
    // may go inexact), so differences confined to a non-contiguous region
    // still land on ddNF cells instead of vanishing from the included set.
    const WILDCARD_COVER_CAP: usize = 256;
    let mut src_ranges = Vec::new();
    let mut dst_ranges = Vec::new();
    for acl in [a1, a2] {
        for rule in &acl.rules {
            for w in &rule.src {
                src_ranges.extend(
                    w.cover_prefixes(WILDCARD_COVER_CAP)
                        .into_iter()
                        .map(PrefixRange::or_longer),
                );
            }
            for w in &rule.dst {
                dst_ranges.extend(
                    w.cover_prefixes(WILDCARD_COVER_CAP)
                        .into_iter()
                        .map(PrefixRange::or_longer),
                );
            }
        }
    }

    let dst_dag = headerloc::RangeDag::build(&mut DstAddrSpace(&mut space), &dst_ranges);
    let src_dag = headerloc::RangeDag::build(&mut SrcAddrSpace(&mut space), &src_ranges);
    space.manager.gc_checkpoint();
    let inner_jobs = opts.effective_jobs().min(diffs.len());
    let out: Vec<PolicyDiffReport> = if diffs.is_empty() {
        Vec::new()
    } else if inner_jobs <= 1 {
        // Sequential presentation runs on a snapshot clone too, keeping
        // the main manager's operation sequence (and so the pair's
        // ManagerStats) identical at every worker count; the parent goes
        // idle for the clone's safe points — see diff_policy_pair.
        let (mut sp, ddag, sdag) = (space.clone(), dst_dag.clone(), src_dag.clone());
        let out = space.manager.with_idle(|| {
            diffs
                .iter()
                .map(|d| present_acl_diff(r1, r2, &mut sp, &ddag, &sdag, a1, a2, d))
                .collect()
        });
        drop(sp);
        for d in &diffs {
            space.manager.unprotect(d.input);
        }
        space.manager.gc_checkpoint();
        out
    } else {
        // Per-difference fan-out over snapshot clones; see diff_policy_pair.
        let parent = campion_trace::track().unwrap_or(0);
        let states: Vec<(PacketSpace, headerloc::RangeDag, headerloc::RangeDag)> = (0..inner_jobs)
            .map(|_| (space.clone(), dst_dag.clone(), src_dag.clone()))
            .collect();
        let out = space.manager.with_idle(|| {
            steal_indexed(
                states,
                diffs.len(),
                |w| campion_trace::set_track(campion_trace::sub_track(parent, w as u32)),
                |(sp, ddag, sdag), i| present_acl_diff(r1, r2, sp, ddag, sdag, a1, a2, &diffs[i]),
            )
        });
        for d in &diffs {
            space.manager.unprotect(d.input);
        }
        space.manager.gc_checkpoint();
        out
    };
    dst_dag.release(&mut space.manager);
    src_dag.release(&mut space.manager);
    let mut stats = space.manager.stats();
    let (lookups, hits) = space.rule_cache_stats();
    stats.rule_cache_lookups = lookups;
    stats.rule_cache_hits = hits;
    stats.pairs_examined = prune.pairs_examined;
    stats.pairs_pruned = prune.pairs_pruned;
    stats.early_exits = prune.early_exits;
    attach_stats_delta(&mut item_span, &stats_at_entry, &stats);
    (out, stats)
}
