//! Port localization for ACL differences — extending header localization
//! to another packet dimension, as §4 suggests ("extend HeaderLocalize to
//! provide exhaustive information across multiple parts").
//!
//! The difference predicate is projected onto the 16 destination- (or
//! source-) port variables; the resulting boolean function over a 16-bit
//! integer is converted to its **minimal union of inclusive intervals** by
//! walking the BDD once: each cube over big-endian port bits denotes an
//! aligned interval, and adjacent intervals merge in a final pass.

use campion_bdd::Bdd;
use campion_net::PortRange;
use campion_symbolic::PacketSpace;

/// Project a difference onto the destination-port dimension and return the
/// minimal interval union (`None` = ports unconstrained).
pub fn dst_port_localize(space: &mut PacketSpace, input: Bdd) -> Option<Vec<PortRange>> {
    port_localize(space, input, campion_symbolic::packet_dport_vars())
}

/// Project a difference onto the source-port dimension.
pub fn src_port_localize(space: &mut PacketSpace, input: Bdd) -> Option<Vec<PortRange>> {
    port_localize(space, input, campion_symbolic::packet_sport_vars())
}

fn port_localize(
    space: &mut PacketSpace,
    input: Bdd,
    vars: std::ops::Range<u32>,
) -> Option<Vec<PortRange>> {
    // Quantify away everything but the chosen port run.
    let mut others: Vec<u32> = (0..vars.start).collect();
    others.extend(vars.end..campion_symbolic::packet_num_vars());
    let projected = space.manager.exists(input, &others);
    if space.manager.is_true(projected) {
        return None; // unconstrained
    }
    // Each satisfying cube over big-endian bits is an aligned interval:
    // fixed high bits select the base, free low bits... in general cubes
    // may fix non-contiguous bits; enumerate each cube into one or more
    // intervals by expanding only the *interior* free bits (rare: BDD cubes
    // over comparisons are contiguous suffix-free in practice, and the
    // expansion is bounded by the cube count of a 16-bit function).
    let mut points: Vec<(u32, u32)> = Vec::new();
    for cube in space.manager.sat_cubes(projected) {
        let bits: Vec<Option<bool>> = vars.clone().map(|v| cube.get(v)).collect();
        expand_cube(&bits, 0, 0, &mut points);
    }
    points.sort_unstable();
    // Merge overlapping/adjacent intervals.
    let mut merged: Vec<(u32, u32)> = Vec::new();
    for (lo, hi) in points {
        match merged.last_mut() {
            Some((_, last_hi)) if lo <= last_hi.saturating_add(1) => {
                *last_hi = (*last_hi).max(hi);
            }
            _ => merged.push((lo, hi)),
        }
    }
    Some(
        merged
            .into_iter()
            .map(|(lo, hi)| PortRange::new(lo as u16, hi as u16))
            .collect(),
    )
}

/// Expand a (possibly non-suffix) cube over big-endian bits into aligned
/// intervals: fixed bits accumulate into `prefix`; a free bit followed by
/// fixed bits forks.
fn expand_cube(bits: &[Option<bool>], idx: usize, prefix: u32, out: &mut Vec<(u32, u32)>) {
    if idx == bits.len() {
        out.push((prefix, prefix));
        return;
    }
    // If all remaining bits are free, the cube is one aligned interval.
    if bits[idx..].iter().all(Option::is_none) {
        let span = (1u32 << (bits.len() - idx)) - 1;
        let lo = prefix << (bits.len() - idx);
        out.push((lo, lo + span));
        return;
    }
    match bits[idx] {
        Some(b) => expand_cube(bits, idx + 1, (prefix << 1) | u32::from(b), out),
        None => {
            expand_cube(bits, idx + 1, prefix << 1, out);
            expand_cube(bits, idx + 1, (prefix << 1) | 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campion_cfg::parse_config;
    use campion_ir::lower;

    use crate::semantic::{acl_paths, semantic_diff};

    fn diff_input(cisco1: &str, cisco2: &str) -> (PacketSpace, Vec<Bdd>) {
        let a = lower(&parse_config(cisco1).expect("parse")).expect("lower");
        let b = lower(&parse_config(cisco2).expect("parse")).expect("lower");
        let mut space = PacketSpace::new();
        let u = space.universe();
        let p1 = acl_paths(&mut space, &a.acls["F"], u);
        let p2 = acl_paths(&mut space, &b.acls["F"], u);
        let diffs = semantic_diff(&mut space.manager, &p1, &p2);
        let inputs = diffs.iter().map(|d| d.input).collect();
        (space, inputs)
    }

    #[test]
    fn single_port_difference() {
        let (mut space, inputs) = diff_input(
            "ip access-list extended F\n\
             \x20permit tcp any any eq 443\n\
             \x20deny ip any any\n",
            "ip access-list extended F\n\
             \x20permit tcp any any eq 443\n\
             \x20permit tcp any any eq 8443\n\
             \x20deny ip any any\n",
        );
        assert_eq!(inputs.len(), 1);
        let ports = dst_port_localize(&mut space, inputs[0]).expect("constrained");
        assert_eq!(ports, vec![PortRange::exact(8443)]);
    }

    #[test]
    fn range_difference_is_minimal() {
        let (mut space, inputs) = diff_input(
            "ip access-list extended F\n\
             \x20permit tcp any any range 1000 2000\n\
             \x20deny ip any any\n",
            "ip access-list extended F\n\
             \x20permit tcp any any range 1000 2500\n\
             \x20deny ip any any\n",
        );
        assert_eq!(inputs.len(), 1);
        let ports = dst_port_localize(&mut space, inputs[0]).expect("constrained");
        assert_eq!(
            ports,
            vec![PortRange::new(2001, 2500)],
            "merged to one interval"
        );
    }

    #[test]
    fn unconstrained_when_difference_is_address_only() {
        let (mut space, inputs) = diff_input(
            "ip access-list extended F\n\
             \x20permit ip 10.0.0.0 0.0.255.255 any\n\
             \x20deny ip any any\n",
            "ip access-list extended F\n\
             \x20deny ip any any\n",
        );
        assert_eq!(inputs.len(), 1);
        assert!(dst_port_localize(&mut space, inputs[0]).is_none());
    }

    #[test]
    fn disjoint_intervals_stay_disjoint() {
        let (mut space, inputs) = diff_input(
            "ip access-list extended F\n\
             \x20deny ip any any\n",
            "ip access-list extended F\n\
             \x20permit udp any any eq 53\n\
             \x20permit udp any any eq 123\n\
             \x20deny ip any any\n",
        );
        // Two extra permits on the second side, each a distinct diff class.
        let mut all_ports = Vec::new();
        for i in &inputs {
            if let Some(ps) = dst_port_localize(&mut space, *i) {
                all_ports.extend(ps);
            }
        }
        all_ports.sort();
        assert_eq!(all_ports, vec![PortRange::exact(53), PortRange::exact(123)]);
    }
}
