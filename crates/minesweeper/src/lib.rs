//! # campion-minesweeper — the monolithic baseline checker
//!
//! A reimplementation of the *comparison baseline* of the paper's §2: a
//! Minesweeper-style behavioral-equivalence checker (the paper's reference \[3\]). It encodes each
//! component's **whole** behavior as one symbolic relation, asks a single
//! satisfiability query for inequivalence, and reports a single **concrete
//! counterexample** — no header localization, no text localization. The
//! paper's Tables 3 and 5 show exactly this output shape, and §2.1 shows
//! why it is a poor debugging experience: covering all of Difference 1's
//! prefix ranges took 7 iterated counterexamples (27 after a one-token
//! config change).
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The original Minesweeper discharges queries with an SMT solver (Z3);
//! this baseline uses the same BDD substrate as the rest of the repository.
//! The *observable interface* — one model per query, iterated enumeration
//! via blocking clauses, no localization — is what the paper's comparison
//! exercises, and that is preserved. Enumeration order is deterministic
//! (lexicographically first satisfying cube, lowest concrete values), so
//! the counterexample-count experiment is exactly reproducible.

#![warn(missing_docs)]

use std::net::Ipv4Addr;

use campion_bdd::Bdd;
use campion_ir::{AclIr, RoutePolicy, RouterIr, StaticRouteIr};
use campion_net::{Flow, Prefix, PrefixRange};
use campion_symbolic::{PacketSpace, RouteExample, RouteSpace};

#[cfg(test)]
mod tests;

/// A concrete route-map counterexample, mirroring the paper's Table 3.
#[derive(Debug, Clone)]
pub struct RouteMapCex {
    /// The route advertisement both routers receive.
    pub advert: RouteExample,
    /// A packet destination covered by the advertised prefix (Table 3's
    /// `dstIp` row).
    pub packet_dst: Ipv4Addr,
    /// First router's behavior ("forwards (BGP)" / "does not forward").
    pub behavior1: String,
    /// Second router's behavior.
    pub behavior2: String,
}

impl std::fmt::Display for RouteMapCex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Route received: Prefix: {}", self.advert)?;
        writeln!(f, "Packet: dstIp: {}", self.packet_dst)?;
        writeln!(f, "Router 1 {}", self.behavior1)?;
        write!(f, "Router 2 {}", self.behavior2)
    }
}

/// The monolithic behavioral difference relation of two route policies:
/// inputs on which the policies' outcomes (acceptance or resulting
/// attributes) differ.
fn route_map_difference(space: &mut RouteSpace, p1: &RoutePolicy, p2: &RoutePolicy) -> Bdd {
    let universe = space.universe();
    route_map_difference_over(space, p1, p2, universe)
}

/// As [`route_map_difference`], over an explicit input universe.
fn route_map_difference_over(
    space: &mut RouteSpace,
    p1: &RoutePolicy,
    p2: &RoutePolicy,
    universe: Bdd,
) -> Bdd {
    // Monolithically: fold each policy into a single relation between
    // inputs and outcomes, then compare. We realize the outcome comparison
    // by intersecting outcome-classes with differing effects — the same
    // relation Minesweeper's SMT encoding denotes.
    let mut diff = Bdd::FALSE;
    let paths1 = outcome_classes(space, p1, universe);
    let paths2 = outcome_classes(space, p2, universe);
    for (b1, e1) in &paths1 {
        for (b2, e2) in &paths2 {
            if e1 == e2 {
                continue;
            }
            let inter = space.manager.and(*b1, *b2);
            diff = space.manager.or(diff, inter);
        }
    }
    diff
}

/// Outcome classes (predicate, effect) of a policy — internal encoding
/// detail of the monolithic relation.
fn outcome_classes(
    space: &mut RouteSpace,
    p: &RoutePolicy,
    universe: Bdd,
) -> Vec<(Bdd, campion_symbolic::ActionEffect)> {
    // Reuses the shared path machinery; the baseline only ever *exposes*
    // single concrete models of the folded relation.
    let paths = campion_core::policy_paths(space, p, universe);
    paths.into_iter().map(|p| (p.predicate, p.effect)).collect()
}

/// Render a policy's behavior on an accepted/rejected route the way
/// Minesweeper's forwarding-oriented output does.
fn behavior(accept: bool) -> String {
    if accept {
        "forwards (BGP)".to_string()
    } else {
        "does not forward".to_string()
    }
}

/// Check two route maps for behavioral equivalence; return the single
/// first counterexample, like Minesweeper (Table 3).
pub fn check_route_maps(p1: &RoutePolicy, p2: &RoutePolicy) -> Option<RouteMapCex> {
    enumerate_route_map_cexs(p1, p2, 1).into_iter().next()
}

/// Iterated counterexamples via blocking clauses: after each model, the
/// satisfying region it came from is excluded and the query re-run. This is
/// the §2.1 "modify Minesweeper to produce multiple counterexamples"
/// experiment. Returns up to `limit` counterexamples in deterministic
/// order; stops early when the difference relation is exhausted.
pub fn enumerate_route_map_cexs(
    p1: &RoutePolicy,
    p2: &RoutePolicy,
    limit: usize,
) -> Vec<RouteMapCex> {
    let mut space = RouteSpace::for_policies(&[p1, p2]);
    let mut diff = route_map_difference(&mut space, p1, p2);
    let mut out = Vec::new();
    while out.len() < limit {
        let Some(cube) = space.manager.first_sat(diff) else {
            break;
        };
        let assignment = cube.complete_with(false);
        let advert = space.concretize(&assignment);
        // Evaluate both policies concretely on the model to report the
        // behaviors (as an SMT model evaluation would).
        let concrete = concrete_advert(&advert);
        let v1 = p1.evaluate(&concrete);
        let v2 = p2.evaluate(&concrete);
        out.push(RouteMapCex {
            packet_dst: advert.prefix.addr(),
            advert,
            behavior1: behavior(v1.accept),
            behavior2: behavior(v2.accept),
        });
        // Blocking clause: remove the whole satisfying cube (one BDD path),
        // the closest analogue of Z3's per-model diversity while staying
        // deterministic.
        let mut blocked = Bdd::TRUE;
        for (var, val) in cube.values().iter().enumerate() {
            if let Some(v) = val {
                let lit = space.manager.literal(var as u32, *v);
                blocked = space.manager.and(blocked, lit);
            }
        }
        diff = space.manager.diff(diff, blocked);
    }
    out
}

/// Iterated counterexamples with SMT-style blocking: each model is blocked
/// **including the auxiliary match-predicate booleans** of the encoding —
/// what happens when a Z3 model of Minesweeper's encoding (which carries
/// per-entry match variables) is negated and reasserted. Every iteration
/// therefore eliminates one *combination of matched entries*, so
/// successive models jump between structurally distinct regions instead of
/// crawling adjacent assignments. This is the mechanism behind the paper's
/// 7- and 27-counterexample measurements; lexicographic point enumeration
/// ([`enumerate_route_map_cexs`]) is the pathological alternative that can
/// exhaust one region before ever visiting another.
pub fn enumerate_route_map_cexs_general(
    p1: &RoutePolicy,
    p2: &RoutePolicy,
    limit: usize,
) -> Vec<RouteMapCex> {
    let mut space = RouteSpace::for_policies(&[p1, p2]);
    let mut diff = route_map_difference(&mut space, p1, p2);

    // The boolean skeleton: every atomic match predicate either policy
    // evaluates (prefix-list entries, community matchers, tag/metric/
    // protocol tests), deduplicated.
    let mut predicates: Vec<Bdd> = Vec::new();
    let state = space.initial_state();
    for p in [p1, p2] {
        for clause in &p.clauses {
            for m in &clause.matches {
                match m {
                    campion_ir::Match::Prefix(pms) => {
                        // Minesweeper's encoding gives each prefix-list
                        // entry separate booleans for the address match and
                        // the two length-bound comparisons; blocked models
                        // enumerate combinations of all three.
                        for pm in pms {
                            for e in &pm.entries {
                                let addr = space.prefix_range_bdd(&PrefixRange::new(
                                    e.range.prefix,
                                    0,
                                    32,
                                ));
                                let ge = space.prefix_range_bdd(&PrefixRange::new(
                                    Prefix::DEFAULT,
                                    e.range.min_len,
                                    32,
                                ));
                                let le = space.prefix_range_bdd(&PrefixRange::new(
                                    Prefix::DEFAULT,
                                    0,
                                    e.range.max_len,
                                ));
                                for b in [addr, ge, le] {
                                    if !predicates.contains(&b) {
                                        predicates.push(b);
                                    }
                                }
                            }
                        }
                    }
                    other => {
                        let b = space.match_bdd(other, &state);
                        if !predicates.contains(&b) {
                            predicates.push(b);
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    while out.len() < limit {
        let Some(assignment) = space.manager.first_sat_assignment(diff) else {
            break;
        };
        let advert = space.concretize(&assignment);
        let concrete = concrete_advert(&advert);
        let v1 = p1.evaluate(&concrete);
        let v2 = p2.evaluate(&concrete);
        out.push(RouteMapCex {
            packet_dst: advert.prefix.addr(),
            advert,
            behavior1: behavior(v1.accept),
            behavior2: behavior(v2.accept),
        });
        // Block the model's skeleton signature: the conjunction of each
        // predicate as it evaluated under this model.
        let mut signature = Bdd::TRUE;
        for &p in &predicates {
            let lit = if space.manager.eval(p, &assignment) {
                p
            } else {
                space.manager.not(p)
            };
            signature = space.manager.and(signature, lit);
        }
        diff = space.manager.diff(diff, signature);
    }
    out
}

/// Rebuild a concrete advertisement from a decoded example (literal atoms
/// only; unknown-regex atoms have no concrete witness in the literal
/// universe and are skipped for evaluation purposes).
fn concrete_advert(e: &RouteExample) -> campion_ir::RouteAdvert {
    let mut a = campion_ir::RouteAdvert::bgp(e.prefix).with_protocol(e.protocol);
    for atom in &e.communities {
        if let campion_symbolic::AtomKey::Literal(c) = atom {
            a.communities.insert(*c);
        }
    }
    if let Some(t) = e.tag {
        a.tag = t;
    }
    if let Some(m) = e.metric {
        a.metric = m;
    }
    a
}

/// A concrete static-route counterexample, mirroring the paper's Table 5:
/// just a packet and the divergent forwarding behavior — no prefix, no
/// administrative distance, no configuration lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticCex {
    /// The packet destination.
    pub dst_ip: Ipv4Addr,
    /// First router's behavior.
    pub behavior1: String,
    /// Second router's behavior.
    pub behavior2: String,
}

impl std::fmt::Display for StaticCex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Packet: dstIp: {}", self.dst_ip)?;
        writeln!(f, "Router 1 {}", self.behavior1)?;
        write!(f, "Router 2 {}", self.behavior2)
    }
}

/// Longest-prefix-match forwarding decision over a static route table.
fn static_lookup(routes: &[StaticRouteIr], ip: Ipv4Addr) -> Option<&StaticRouteIr> {
    routes
        .iter()
        .filter(|r| r.prefix.contains_addr(ip))
        .max_by_key(|r| r.prefix.len())
}

/// Monolithic static-route equivalence: the first destination IP whose
/// forwarding differs (Table 5's output shape).
pub fn check_static_routes(r1: &RouterIr, r2: &RouterIr) -> Option<StaticCex> {
    // Encode each router's forwarded-address set symbolically; the
    // difference relation also separates next hops by pairing regions.
    let mut space = PacketSpace::new();
    let fwd = |space: &mut PacketSpace, routes: &[StaticRouteIr]| -> Bdd {
        let mut acc = Bdd::FALSE;
        for r in routes {
            let b = space.dst_prefix_bdd(&r.prefix);
            acc = space.manager.or(acc, b);
        }
        acc
    };
    let f1 = fwd(&mut space, &r1.static_routes);
    let f2 = fwd(&mut space, &r2.static_routes);
    let mut diff = space.manager.xor(f1, f2);
    // Where both forward, compare the LPM next hop by region refinement.
    let both = space.manager.and(f1, f2);
    if space.manager.is_sat(both) {
        // Regions are intersections of route prefixes; enumerate pairs.
        for a in &r1.static_routes {
            for b in &r2.static_routes {
                let pa = space.dst_prefix_bdd(&a.prefix);
                let pb = space.dst_prefix_bdd(&b.prefix);
                let mut region = space.manager.and(pa, pb);
                // Restrict to where these are the LPM choices.
                for longer in r1
                    .static_routes
                    .iter()
                    .filter(|r| r.prefix.len() > a.prefix.len())
                {
                    let lb = space.dst_prefix_bdd(&longer.prefix);
                    region = space.manager.diff(region, lb);
                }
                for longer in r2
                    .static_routes
                    .iter()
                    .filter(|r| r.prefix.len() > b.prefix.len())
                {
                    let lb = space.dst_prefix_bdd(&longer.prefix);
                    region = space.manager.diff(region, lb);
                }
                if a.next_hop != b.next_hop && space.manager.is_sat(region) {
                    diff = space.manager.or(diff, region);
                }
            }
        }
    }
    let cube = space.manager.first_sat(diff)?;
    let a = cube.complete_with(false);
    let dst = Ipv4Addr::from(a.decode_be(0..32) as u32);
    let describe = |routes: &[StaticRouteIr]| match static_lookup(routes, dst) {
        Some(_) => "forwards (static)".to_string(),
        None => "does not forward".to_string(),
    };
    Some(StaticCex {
        dst_ip: dst,
        behavior1: describe(&r1.static_routes),
        behavior2: describe(&r2.static_routes),
    })
}

/// A concrete ACL counterexample: one packet treated differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclCex {
    /// The differing packet.
    pub flow: Flow,
    /// First ACL's action.
    pub action1: &'static str,
    /// Second ACL's action.
    pub action2: &'static str,
}

impl std::fmt::Display for AclCex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Packet: {}", self.flow)?;
        writeln!(f, "Router 1: {}", self.action1)?;
        write!(f, "Router 2: {}", self.action2)
    }
}

/// Monolithic ACL equivalence: first differing packet only.
pub fn check_acls(a1: &AclIr, a2: &AclIr) -> Option<AclCex> {
    let mut space = PacketSpace::new();
    let permit_set = |space: &mut PacketSpace, acl: &AclIr| -> Bdd {
        let mut remaining = Bdd::TRUE;
        let mut permit = Bdd::FALSE;
        for rule in &acl.rules {
            let cond = space.rule_bdd(rule);
            let fire = space.manager.and(remaining, cond);
            remaining = space.manager.diff(remaining, cond);
            if rule.permit {
                permit = space.manager.or(permit, fire);
            }
        }
        permit
    };
    let s1 = permit_set(&mut space, a1);
    let s2 = permit_set(&mut space, a2);
    let diff = space.manager.xor(s1, s2);
    let cube = space.manager.first_sat(diff)?;
    let a = cube.complete_with(false);
    let ex = space.concretize(&a);
    let p1 = a1.permits(&ex.flow);
    Some(AclCex {
        flow: ex.flow,
        action1: if p1 { "permits" } else { "denies" },
        action2: if p1 { "denies" } else { "permits" },
    })
}

/// The §2.1 experiment harness: iterate counterexamples until at least one
/// has been produced inside each of the given target regions (e.g. the
/// prefix ranges relevant to Difference 1). Returns the number of
/// counterexamples needed, or `None` if `limit` was hit first.
/// Uses most-general-first (solver-like) enumeration; see
/// [`cexs_until_coverage_lexicographic`] for the pathological ordering.
pub fn cexs_until_coverage(
    p1: &RoutePolicy,
    p2: &RoutePolicy,
    targets: &[CoverageTarget],
    limit: usize,
) -> Option<usize> {
    let cexs = enumerate_route_map_cexs_general(p1, p2, limit);
    coverage_index(&cexs, targets)
}

/// As [`cexs_until_coverage`], but with lexicographic enumeration — which
/// demonstrates the failure mode: it exhausts one difference region before
/// ever visiting another.
pub fn cexs_until_coverage_lexicographic(
    p1: &RoutePolicy,
    p2: &RoutePolicy,
    targets: &[CoverageTarget],
    limit: usize,
) -> Option<usize> {
    let cexs = enumerate_route_map_cexs(p1, p2, limit);
    coverage_index(&cexs, targets)
}

fn coverage_index(cexs: &[RouteMapCex], targets: &[CoverageTarget]) -> Option<usize> {
    let mut seen = vec![false; targets.len()];
    for (i, cex) in cexs.iter().enumerate() {
        for (t, target) in targets.iter().enumerate() {
            if target.covers(cex) {
                seen[t] = true;
            }
        }
        if seen.iter().all(|s| *s) {
            return Some(i + 1);
        }
    }
    None
}

/// A region a counterexample can fall into, for the coverage experiment.
#[derive(Debug, Clone)]
pub struct CoverageTarget {
    /// The advertisement prefix must be a member of this range.
    pub range: campion_net::PrefixRange,
    /// If set, the advert must (not) carry any community.
    pub requires_community: Option<bool>,
}

impl CoverageTarget {
    /// A pure prefix-range target.
    pub fn range(r: campion_net::PrefixRange) -> Self {
        CoverageTarget {
            range: r,
            requires_community: None,
        }
    }

    fn covers(&self, cex: &RouteMapCex) -> bool {
        let p: Prefix = cex.advert.prefix;
        if !self.range.member(&p) {
            return false;
        }
        match self.requires_community {
            None => true,
            Some(want) => want != cex.advert.communities.is_empty(),
        }
    }
}
