//! Tests for the Minesweeper-style baseline, anchored on the paper's §2.

use campion_cfg::parse_config;
use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER, STATIC_CISCO, STATIC_JUNIPER};
use campion_ir::{lower, RouterIr};
use campion_net::PrefixRange;

use crate::*;

fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).unwrap()).unwrap()
}

#[test]
fn figure1_single_counterexample_like_table3() {
    let c = load(FIGURE1_CISCO);
    let j = load(FIGURE1_JUNIPER);
    let cex =
        check_route_maps(&c.policies["POL"], &j.policies["POL"]).expect("Figure 1 policies differ");
    // One concrete advert; the two routers disagree.
    assert_ne!(cex.behavior1, cex.behavior2);
    // The counterexample prefix falls in one of the two difference regions.
    let nets: [PrefixRange; 2] = [
        "10.9.0.0/16:16-32".parse().unwrap(),
        "10.100.0.0/16:16-32".parse().unwrap(),
    ];
    let in_nets = nets.iter().any(|r| r.member(&cex.advert.prefix));
    let has_comm = !cex.advert.communities.is_empty();
    assert!(
        in_nets || has_comm,
        "cex must witness one of the two bugs: {cex}"
    );
}

#[test]
fn equivalent_policies_have_no_counterexample() {
    let c1 = load(FIGURE1_CISCO);
    let c2 = load(FIGURE1_CISCO);
    assert!(check_route_maps(&c1.policies["POL"], &c2.policies["POL"]).is_none());
}

#[test]
fn enumeration_is_deterministic_and_disjoint() {
    let c = load(FIGURE1_CISCO);
    let j = load(FIGURE1_JUNIPER);
    let a = enumerate_route_map_cexs(&c.policies["POL"], &j.policies["POL"], 10);
    let b = enumerate_route_map_cexs(&c.policies["POL"], &j.policies["POL"], 10);
    assert_eq!(a.len(), 10);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.advert, y.advert, "enumeration must be deterministic");
    }
    // Blocking clauses: no repeated advert.
    for i in 0..a.len() {
        for j in (i + 1)..a.len() {
            assert_ne!(a[i].advert, a[j].advert, "cexs {i} and {j} repeat");
        }
    }
}

/// The §2.1 experiment shape: a single counterexample never covers both
/// difference classes; several iterations are needed; and the le-31 variant
/// needs strictly more iterations for Difference-1 coverage than the
/// original needs.
#[test]
fn coverage_requires_multiple_counterexamples() {
    let c = load(FIGURE1_CISCO);
    let j = load(FIGURE1_JUNIPER);
    // Difference 1's relevant regions: inside each NETS range but not the
    // exact /16 (the excluded ranges of Table 2a).
    let targets = [
        CoverageTarget::range("10.9.0.0/16:17-32".parse().unwrap()),
        CoverageTarget::range("10.100.0.0/16:17-32".parse().unwrap()),
    ];
    let n = cexs_until_coverage(&c.policies["POL"], &j.policies["POL"], &targets, 100000)
        .expect("coverage reachable");
    assert!(
        n > 1,
        "a single monolithic counterexample cannot cover Difference 1's ranges (got {n})"
    );
    // The lexicographic ordering is far worse: it exhausts the community
    // difference region first and does not reach the prefix ranges within
    // hundreds of counterexamples.
    let lex =
        cexs_until_coverage_lexicographic(&c.policies["POL"], &j.policies["POL"], &targets, 500);
    assert!(
        lex.is_none(),
        "lexicographic enumeration should not cover quickly"
    );
}

#[test]
fn skeleton_enumeration_is_deterministic_and_exhausts() {
    let c = load(FIGURE1_CISCO);
    let j = load(FIGURE1_JUNIPER);
    let a = enumerate_route_map_cexs_general(&c.policies["POL"], &j.policies["POL"], 50);
    let b = enumerate_route_map_cexs_general(&c.policies["POL"], &j.policies["POL"], 50);
    // Blocking whole skeleton signatures exhausts the (small) space of
    // matched-entry combinations — far fewer models than point-blocked
    // enumeration, which is exactly the solver-like sampling behavior.
    assert!(a.len() > 1 && a.len() < 50, "got {}", a.len());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.advert, y.advert, "enumeration must be deterministic");
    }
    // Signature blocking: all models distinct.
    for i in 0..a.len() {
        for k in (i + 1)..a.len() {
            assert_ne!(a[i].advert, a[k].advert, "models {i} and {k} repeat");
        }
    }
    // Both difference classes are visited.
    assert!(a.iter().any(|cx| !cx.advert.communities.is_empty()));
    let nets: [PrefixRange; 2] = [
        "10.9.0.0/16:16-32".parse().unwrap(),
        "10.100.0.0/16:16-32".parse().unwrap(),
    ];
    assert!(a
        .iter()
        .any(|cx| nets.iter().any(|r| r.member(&cx.advert.prefix))));
}

#[test]
fn static_route_cex_like_table5() {
    let c = load(STATIC_CISCO);
    let j = load(STATIC_JUNIPER);
    let cex = check_static_routes(&c, &j).expect("static routes differ");
    // The first divergent address in lexicographic order is the Cisco /31.
    assert_eq!(cex.dst_ip.to_string(), "10.1.1.2");
    assert_eq!(cex.behavior1, "forwards (static)");
    assert_eq!(cex.behavior2, "does not forward");
    // No localization in the output: this is the Table 5 deficiency.
    let text = cex.to_string();
    assert!(!text.contains("255.255.255.254"));
    assert!(!text.contains("Admin"));
}

#[test]
fn static_next_hop_difference_found() {
    let a = load("ip route 10.0.0.0 255.0.0.0 10.1.1.1\n");
    let b = load("ip route 10.0.0.0 255.0.0.0 10.1.1.2\n");
    let cex = check_static_routes(&a, &b).expect("next hops differ");
    assert!(a.static_routes[0].prefix.contains_addr(cex.dst_ip));
}

#[test]
fn static_lpm_shadowing_no_false_positive() {
    // Both forward 10.0.0.0/8, one also has a more-specific with the same
    // next hop — LPM regions with equal next hops must not be flagged.
    let a = load(
        "ip route 10.0.0.0 255.0.0.0 10.1.1.1\n\
         ip route 10.5.0.0 255.255.0.0 10.1.1.1\n",
    );
    let b = load(
        "ip route 10.0.0.0 255.0.0.0 10.1.1.1\n\
         ip route 10.5.0.0 255.255.0.0 10.1.1.1\n",
    );
    assert!(check_static_routes(&a, &b).is_none());
}

#[test]
fn equivalent_statics_have_no_cex() {
    let a = load(STATIC_CISCO);
    let b = load(STATIC_CISCO);
    assert!(check_static_routes(&a, &b).is_none());
}

#[test]
fn acl_single_counterexample() {
    let a = load(
        "ip access-list extended F\n\
         \x20permit tcp any any eq 443\n\
         \x20deny ip any any\n",
    );
    let b = load(
        "ip access-list extended F\n\
         \x20permit tcp any any eq 443\n\
         \x20permit tcp any any eq 8443\n\
         \x20deny ip any any\n",
    );
    let cex = check_acls(&a.acls["F"], &b.acls["F"]).expect("ACLs differ");
    assert_eq!(cex.flow.dst_port, 8443);
    assert_eq!(cex.action1, "denies");
    assert_eq!(cex.action2, "permits");
    assert!(check_acls(&a.acls["F"], &a.acls["F"]).is_none());
}

#[test]
fn display_formats() {
    let c = load(FIGURE1_CISCO);
    let j = load(FIGURE1_JUNIPER);
    let cex = check_route_maps(&c.policies["POL"], &j.policies["POL"]).unwrap();
    let text = cex.to_string();
    assert!(text.contains("Route received"));
    assert!(text.contains("Packet: dstIp"));
}
