//! Minimal JSON support for the trace layer: a hand-rolled parser (the
//! workspace has no external dependencies) plus the Chrome trace-event
//! schema validator used by the tests and the `tracecheck` binary.

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", char::from(c), *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogates are replaced rather than paired; trace
                        // names are ASCII so this never triggers in practice.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        out.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Summary returned by a successful [`validate_chrome_trace`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in `traceEvents` (metadata included).
    pub events: usize,
    /// Matched `B`/`E` pairs.
    pub spans: usize,
    /// Distinct `tid`s carrying duration events.
    pub tracks: usize,
}

impl fmt::Display for TraceCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} spans, {} track(s)",
            self.events, self.spans, self.tracks
        )
    }
}

/// Validate a Chrome trace-event JSON document of the shape
/// [`crate::Trace::chrome_json`] emits:
///
/// * the root is an object whose `traceEvents` member is an array;
/// * every event is an object with string `name` and `ph`;
/// * duration events (`ph` ∈ {`B`, `E`}) carry numeric `ts`, `pid`, `tid`;
/// * per `tid`, in array order: timestamps are monotonically
///   non-decreasing, and `B`/`E` events pair LIFO with matching names —
///   every `B` has its `E`, no `E` arrives unopened.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let root = parse(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("root has no `traceEvents` array")?;
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `name`"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `ph`"))?;
        match ph {
            "M" => continue,
            "B" | "E" => {
                let ts = e
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: missing numeric `ts`"))?;
                e.get("pid")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: missing numeric `pid`"))?;
                let tid = e
                    .get("tid")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: missing numeric `tid`"))?
                    as u64;
                if let Some(&prev) = last_ts.get(&tid) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: ts {ts} < {prev} — tid {tid} not monotonic"
                        ));
                    }
                }
                last_ts.insert(tid, ts);
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    stack.push(name.to_string());
                } else {
                    match stack.pop() {
                        Some(open) if open == name => spans += 1,
                        Some(open) => {
                            return Err(format!(
                                "event {i}: E `{name}` closes open span `{open}` on tid {tid}"
                            ))
                        }
                        None => {
                            return Err(format!(
                                "event {i}: E `{name}` with no open span on tid {tid}"
                            ))
                        }
                    }
                }
            }
            other => return Err(format!("event {i}: unsupported ph `{other}`")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) never closed (first: `{}`)",
                stack.len(),
                stack[0]
            ));
        }
    }
    Ok(TraceCheck {
        events: events.len(),
        spans,
        tracks: stacks.len(),
    })
}
