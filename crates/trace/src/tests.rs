//! Unit tests for the collector. The collector is global state, so every
//! test that enables it serializes on [`TEST_LOCK`] and drains on exit.

use super::*;
use crate::json::Json;

/// Serializes tests that touch the global collector (cargo runs tests in
/// one process on many threads).
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Lock (surviving poisoning: an assert failure in one test must not take
/// down the rest), reset to a clean enabled state, and drain any leftovers.
fn locked_enabled() -> std::sync::MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    enable();
    let _ = drain();
    guard
}

#[test]
fn disabled_records_nothing() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    disable();
    let _ = drain();
    {
        let mut s = span("never");
        s.counter("x", 1);
        assert!(!s.is_active());
    }
    span!("also-never");
    assert!(drain().is_empty(), "disabled collector buffered events");
}

#[test]
fn spans_nest_and_pair_in_order() {
    let _g = locked_enabled();
    {
        let _outer = span("outer");
        {
            span!("inner-1");
        }
        {
            span!("inner-2");
        }
    }
    disable();
    let trace = drain();
    let spans = trace.spans();
    // Spans close innermost-first.
    let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    assert_eq!(names, ["inner-1", "inner-2", "outer"]);
    let depths: Vec<u32> = spans.iter().map(|s| s.depth).collect();
    assert_eq!(depths, [1, 1, 0]);
    for s in &spans {
        assert!(s.end_ns >= s.start_ns);
    }
    let outer = &spans[2];
    assert!(outer.start_ns <= spans[0].start_ns && outer.end_ns >= spans[1].end_ns);
    // Raw events alternate correctly and timestamps are monotonic.
    let ts: Vec<u64> = trace.events.iter().map(|e| e.t_ns).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
}

#[test]
fn counters_attach_to_end_events_and_sum() {
    let _g = locked_enabled();
    for v in [3i64, 4] {
        let mut s = span("counted");
        s.counter("nodes", v);
        s.counter("freed", -v);
    }
    disable();
    let stats = drain().phase_stats();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].count, 2);
    assert_eq!(stats[0].counters, vec![("nodes", 7), ("freed", -7)]);
}

#[test]
fn worker_buffers_merge_in_track_order() {
    let _g = locked_enabled();
    std::thread::scope(|scope| {
        for w in [3u32, 1, 2] {
            scope.spawn(move || {
                set_track(w);
                {
                    span!("work");
                }
                // Scoped joins don't wait for TLS destructors; hand the
                // buffer over explicitly (as the parallel driver does).
                flush();
            });
        }
    });
    disable();
    let trace = drain();
    let tracks: Vec<u32> = trace.events.iter().map(|e| e.track).collect();
    assert_eq!(tracks, [1, 1, 2, 2, 3, 3], "merge must sort by track");
    assert_eq!(trace.spans().len(), 3);
}

#[test]
fn phase_stats_aggregate_count_total_p50_max() {
    let mk = |name, track, start, end| {
        [
            Event {
                track,
                name,
                phase: Phase::Begin,
                t_ns: start,
                counters: Vec::new(),
            },
            Event {
                track,
                name,
                phase: Phase::End,
                t_ns: end,
                counters: Vec::new(),
            },
        ]
    };
    let mut events = Vec::new();
    events.extend(mk("a", 0, 0, 10));
    events.extend(mk("a", 0, 20, 50));
    events.extend(mk("a", 0, 60, 160));
    events.extend(mk("b", 1, 0, 5));
    let trace = Trace { events };
    let stats = trace.phase_stats();
    assert_eq!(stats[0].name, "a");
    assert_eq!(
        (
            stats[0].count,
            stats[0].total_ns,
            stats[0].p50_ns,
            stats[0].max_ns
        ),
        (3, 140, 30, 100)
    );
    assert_eq!(stats[1].name, "b");
    assert_eq!(trace.wall_ns(), 160);
    // Top-level coverage merges overlapping intervals across tracks:
    // [0,10]∪[0,5] = 10, [20,50] = 30, [60,160] = 100.
    assert_eq!(trace.top_level_coverage_ns(), 140);
    let table = trace.render_table();
    assert!(table.contains("phase"), "{table}");
    assert!(table.contains("top-level span coverage"), "{table}");
}

#[test]
fn chrome_export_validates_and_unpaired_events_fail() {
    let _g = locked_enabled();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            set_track(1);
            drop(span("worker-item"));
            flush();
        });
    });
    {
        let mut s = span("main-item");
        s.counter("delta", 42);
    }
    disable();
    let json_text = drain().chrome_json();
    let check = json::validate_chrome_trace(&json_text).expect("emitted trace is valid");
    assert_eq!(check.spans, 2);
    assert_eq!(check.tracks, 2, "one lane per worker:\n{json_text}");
    assert!(json_text.contains("\"delta\":42"), "{json_text}");
    assert!(json_text.contains("worker-1"), "{json_text}");

    // A lone B (no E) must be rejected.
    let bad = Trace {
        events: vec![Event {
            track: 0,
            name: "orphan",
            phase: Phase::Begin,
            t_ns: 0,
            counters: Vec::new(),
        }],
    };
    assert!(json::validate_chrome_trace(&bad.chrome_json()).is_err());
    // A lone E must be rejected too.
    let bad = Trace {
        events: vec![Event {
            track: 0,
            name: "orphan",
            phase: Phase::End,
            t_ns: 0,
            counters: Vec::new(),
        }],
    };
    assert!(json::validate_chrome_trace(&bad.chrome_json()).is_err());
    // Non-monotonic per-tid timestamps must be rejected.
    let bad = r#"{"traceEvents":[
        {"name":"x","ph":"B","ts":10.0,"pid":1,"tid":0},
        {"name":"x","ph":"E","ts":5.0,"pid":1,"tid":0}]}"#;
    let err = json::validate_chrome_trace(bad).unwrap_err();
    assert!(err.contains("monotonic"), "{err}");
}

#[test]
fn phases_json_is_parseable_and_sorted() {
    let _g = locked_enabled();
    {
        span!("b.second");
    }
    {
        span!("a.first");
    }
    disable();
    let text = drain().phases_json();
    let parsed = json::parse(&text).expect("phases JSON parses");
    let Json::Obj(members) = &parsed else {
        panic!("phases JSON is not an object: {text}")
    };
    let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["a.first", "b.second"], "keys sorted by name");
    for (_, v) in members {
        for field in ["count", "total_s", "p50_s", "p90_s", "p99_s", "max_s"] {
            assert!(v.get(field).and_then(Json::as_f64).is_some(), "{text}");
        }
    }
}

#[test]
fn phase_percentiles_come_from_the_histogram() {
    let mk = |start: u64, end: u64| {
        [
            Event {
                track: 0,
                name: "p",
                phase: Phase::Begin,
                t_ns: start,
                counters: Vec::new(),
            },
            Event {
                track: 0,
                name: "p",
                phase: Phase::End,
                t_ns: end,
                counters: Vec::new(),
            },
        ]
    };
    let mut events = Vec::new();
    let mut t = 0u64;
    // 99 fast spans (1us) and one slow outlier (1ms).
    for _ in 0..99 {
        events.extend(mk(t, t + 1_000));
        t += 2_000;
    }
    events.extend(mk(t, t + 1_000_000));
    let trace = Trace { events };
    let stats = trace.phase_stats();
    let p = stats.iter().find(|s| s.name == "p").expect("phase present");
    assert_eq!(p.count, 100);
    assert_eq!(p.p50_ns, 1_000, "p50 stays exact");
    assert_eq!(p.max_ns, 1_000_000);
    assert_eq!(p.hist.count(), 100);
    // p90 stays in the fast bucket; p99 must not yet reach the outlier,
    // which only the max (== quantile 1.0) reports exactly.
    assert!(p.p90_ns < 10_000, "p90 = {}", p.p90_ns);
    assert!(p.p99_ns < 1_000_000, "p99 = {}", p.p99_ns);
    assert_eq!(p.hist.quantile(1.0), 1_000_000);
    let table = trace.render_table();
    assert!(table.contains("p90"), "{table}");
    assert!(table.contains("p99"), "{table}");
}

#[test]
fn worker_stats_aggregate_pool_worker_spans() {
    let _g = locked_enabled();
    std::thread::scope(|scope| {
        for w in [1u32, 2] {
            scope.spawn(move || {
                set_track(w);
                {
                    let mut s = span("pool.worker");
                    s.counter("claimed", 3 + w as i64);
                    s.counter("busy_ns", 500);
                }
                flush();
            });
        }
    });
    disable();
    let trace = drain();
    let ws = trace.worker_stats();
    assert_eq!(ws.len(), 2);
    assert_eq!((ws[0].track, ws[0].claimed), (1, 4));
    assert_eq!((ws[1].track, ws[1].claimed), (2, 5));
    assert_eq!(ws[0].busy_ns, 500);
    assert!(ws[0].wall_ns >= ws[0].busy_ns || ws[0].utilization() >= 0.0);
    let table = trace.render_table();
    assert!(table.contains("worker utilization:"), "{table}");
    assert!(table.contains("worker-1"), "{table}");
}

#[test]
fn logger_writes_json_lines_with_span_context() {
    let _g = locked_enabled();
    let buf = log::init_buffer(log::Level::Debug);
    {
        span!("fleet.ingest");
        log::info(
            "test.event",
            &[("seq", log::Value::U64(7)), ("ok", log::Value::Bool(true))],
        );
    }
    log::debug("test.detail", &[("msg", log::Value::Str("a\"b"))]);
    log::shutdown();
    disable();
    let _ = drain();
    let text = buf.lock().expect("buffer").clone();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    let first = json::parse(lines[0]).expect("log line is JSON");
    assert_eq!(
        first.get("event").and_then(Json::as_str),
        Some("test.event")
    );
    assert_eq!(first.get("level").and_then(Json::as_str), Some("info"));
    assert_eq!(
        first.get("span").and_then(Json::as_str),
        Some("fleet.ingest"),
        "span context stamped: {text}"
    );
    assert_eq!(first.get("seq").and_then(Json::as_f64), Some(7.0));
    let second = json::parse(lines[1]).expect("second line is JSON");
    assert_eq!(second.get("msg").and_then(Json::as_str), Some("a\"b"));
    assert_eq!(second.get("span"), None, "no open span → no span field");
}

#[test]
fn logger_respects_level_and_rate_limit() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    disable();
    let _ = drain();
    let buf = log::init_buffer(log::Level::Warn);
    assert!(!log::enabled(log::Level::Info));
    assert!(log::enabled(log::Level::Error));
    log::info("dropped.event", &[]);
    // Overflow one event's per-second window: the excess is counted and
    // would surface as "suppressed" on the next record that passes.
    for _ in 0..(log::MAX_PER_WINDOW + 10) {
        log::warn("noisy.event", &[]);
    }
    log::shutdown();
    assert!(
        !log::enabled(log::Level::Error),
        "shutdown turns logging off"
    );
    log::error("after.shutdown", &[]);
    let text = buf.lock().expect("buffer").clone();
    assert!(!text.contains("dropped.event"), "{text}");
    assert!(!text.contains("after.shutdown"), "{text}");
    let noisy = text.lines().filter(|l| l.contains("noisy.event")).count();
    assert_eq!(noisy as u32, log::MAX_PER_WINDOW, "window caps emission");
}

#[test]
fn json_parser_round_trips_edge_cases() {
    let text = r#"{"a": [1, -2.5, 1e3], "b": "q\"\\\nA", "c": {"d": null, "e": [true, false]}}"#;
    let v = json::parse(text).expect("parses");
    assert_eq!(
        v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
        Some(3)
    );
    assert_eq!(v.get("b").and_then(Json::as_str), Some("q\"\\\nA"));
    assert_eq!(v.get("c").and_then(|c| c.get("d")), Some(&Json::Null));
    assert!(json::parse("{").is_err());
    assert!(json::parse("[1,]").is_err());
    assert!(json::parse("{}{}").is_err(), "trailing garbage");
    assert!(json::parse(r#"{"k": 01x}"#).is_err());
    assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}
