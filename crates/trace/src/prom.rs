//! Prometheus text exposition (format 0.0.4): a writer and a strict linter.
//!
//! The writer ([`Exposition`]) renders counters, gauges, and the log2
//! histograms of [`crate::hist`] into the plain-text scrape format —
//! `# HELP` / `# TYPE` headers, `name{labels} value` samples, cumulative
//! `_bucket{le="..."}` series with `+Inf`, `_sum`, `_count`. The linter
//! ([`validate_exposition`]) re-parses that text and checks everything a
//! scraper relies on, in the spirit of `json::validate_chrome_trace` /
//! `tracecheck`: it is what the `promcheck` binary and the CI fleetd-smoke
//! job run against a live `GET /metrics` response.
//!
//! Strictness notes: the linter demands `HELP` + `TYPE` before every
//! family's samples (our writer always emits them), contiguous family
//! blocks, unique series, non-negative finite counters, and — for
//! histograms — ascending `le` bounds, non-decreasing cumulative counts,
//! and `+Inf == _count` with `_sum`/`_count` present per series.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::hist::Histogram;

/// Builder for one exposition document.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

/// Borrowed label set: `&[("phase", "cfg.parse")]`.
pub type Labels<'a> = &'a [(&'a str, &'a str)];

fn write_labels(out: &mut String, labels: Labels<'_>, extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

/// Escape a label value per the exposition format (`\\`, `\"`, `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format a sample value: integers stay integral, floats keep full
/// precision via `Display` (scientific notation is valid in the format).
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, typ: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {typ}");
    }

    /// One unlabeled counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.counter_vec(name, help, &[(&[], value)]);
    }

    /// A counter family with one sample per label set.
    pub fn counter_vec(&mut self, name: &str, help: &str, series: &[(Labels<'_>, u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in series {
            self.out.push_str(name);
            write_labels(&mut self.out, labels, None);
            let _ = writeln!(self.out, " {value}");
        }
    }

    /// One unlabeled gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {}", fmt_value(value));
    }

    /// A histogram family with one `(labels, histogram)` series each,
    /// sample values scaled by `scale` (pass `1e-9` to export nanosecond
    /// histograms in seconds). Bucket bounds come from the histogram's
    /// non-empty log2 buckets; `+Inf`, `_sum`, and `_count` are appended
    /// per series.
    pub fn histogram_vec(
        &mut self,
        name: &str,
        help: &str,
        series: &[(Labels<'_>, &Histogram)],
        scale: f64,
    ) {
        self.header(name, help, "histogram");
        for (labels, hist) in series {
            for (bound, cum) in hist.cumulative_buckets() {
                let le = format!("{}", bound as f64 * scale);
                let _ = write!(self.out, "{name}_bucket");
                write_labels(&mut self.out, labels, Some(("le", &le)));
                let _ = writeln!(self.out, " {cum}");
            }
            let _ = write!(self.out, "{name}_bucket");
            write_labels(&mut self.out, labels, Some(("le", "+Inf")));
            let _ = writeln!(self.out, " {}", hist.count());
            let _ = write!(self.out, "{name}_sum");
            write_labels(&mut self.out, labels, None);
            let _ = writeln!(self.out, " {}", fmt_value(hist.sum() as f64 * scale));
            let _ = write!(self.out, "{name}_count");
            write_labels(&mut self.out, labels, None);
            let _ = writeln!(self.out, " {}", hist.count());
        }
    }

    /// An unlabeled histogram family.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &Histogram, scale: f64) {
        self.histogram_vec(name, help, &[(&[], hist)], scale);
    }

    /// The finished document (ends with a newline as the format requires).
    pub fn finish(self) -> String {
        self.out
    }
}

/// Summary returned by a successful [`validate_exposition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromReport {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
    /// Families declared `histogram`.
    pub histograms: usize,
}

impl std::fmt::Display for PromReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} families ({} histograms), {} samples",
            self.families, self.histograms, self.samples
        )
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parse the label body (between braces): `k="v",k2="v2"` with `\\`, `\"`,
/// `\n` escapes inside values.
fn parse_labels(body: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let err = |m: String| format!("line {lineno}: {m}");
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Skip a separating comma (also tolerate a trailing one, as
        // Prometheus does).
        while chars.peek() == Some(&',') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            name.push(c);
            chars.next();
        }
        if chars.next() != Some('=') {
            return Err(err(format!("label `{name}` missing '='")));
        }
        if !valid_label_name(&name) {
            return Err(err(format!("invalid label name `{name}`")));
        }
        if chars.next() != Some('"') {
            return Err(err(format!("label `{name}` value not quoted")));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => {
                        return Err(err(format!("bad escape {other:?} in label `{name}`")));
                    }
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(err(format!("unterminated value for label `{name}`"))),
            }
        }
        labels.push((name, value));
    }
    Ok(labels)
}

/// Parse `name[{labels}] value [timestamp]`.
fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |m: String| format!("line {lineno}: {m}");
    let (name, labels, rest) = match line.find('{') {
        Some(brace) => {
            // Find the closing brace outside quoted label values.
            let bytes = line.as_bytes();
            let mut i = brace + 1;
            let mut in_quotes = false;
            let mut close = None;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' if in_quotes => i += 1,
                    b'"' => in_quotes = !in_quotes,
                    b'}' if !in_quotes => {
                        close = Some(i);
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            let close = close.ok_or_else(|| err("unterminated label set".into()))?;
            let labels = parse_labels(&line[brace + 1..close], lineno)?;
            (&line[..brace], labels, &line[close + 1..])
        }
        None => {
            let sp = line
                .find([' ', '\t'])
                .ok_or_else(|| err("sample has no value".into()))?;
            (&line[..sp], Vec::new(), &line[sp..])
        }
    };
    if !valid_metric_name(name) {
        return Err(err(format!("invalid metric name `{name}`")));
    }
    {
        let mut seen: Vec<&str> = labels.iter().map(|(k, _)| k.as_str()).collect();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(err(format!("duplicate label name on `{name}`")));
        }
    }
    let mut parts = rest.split_ascii_whitespace();
    let value_str = parts
        .next()
        .ok_or_else(|| err(format!("`{name}` has no value")))?;
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s
            .parse::<f64>()
            .map_err(|_| err(format!("`{name}` has unparseable value `{s}`")))?,
    };
    // Optional timestamp, then nothing.
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| err(format!("`{name}` has bad timestamp `{ts}`")))?;
    }
    if parts.next().is_some() {
        return Err(err(format!("trailing garbage after `{name}` sample")));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Map a sample name to its family: strips `_bucket`/`_sum`/`_count` when
/// the stripped prefix was declared a histogram.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Series key: labels minus `le`, canonically ordered.
fn series_key(labels: &[(String, String)]) -> String {
    let mut ls: Vec<&(String, String)> = labels.iter().filter(|(k, _)| k != "le").collect();
    ls.sort();
    let parts: Vec<String> = ls
        .iter()
        .map(|(k, v)| format!("{k}={}", escape_label(v)))
        .collect();
    parts.join(",")
}

/// Per-series histogram bookkeeping accumulated during the scan.
#[derive(Default)]
struct HistSeries {
    buckets: Vec<(f64, f64)>, // (le, cumulative)
    sum: Option<f64>,
    count: Option<f64>,
}

/// Validate a text exposition document (format 0.0.4). Returns a summary
/// on success, the first problem found on failure.
pub fn validate_exposition(text: &str) -> Result<PromReport, String> {
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }

    let mut helps: HashMap<String, ()> = HashMap::new();
    let mut types: HashMap<String, String> = HashMap::new();
    // Family blocks must be contiguous: remember families we've moved past.
    let mut current_family: Option<String> = None;
    let mut closed_families: Vec<String> = Vec::new();
    let mut seen_series: HashMap<String, ()> = HashMap::new();
    let mut hist_series: HashMap<String, HashMap<String, HistSeries>> = HashMap::new();
    let mut samples = 0usize;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |m: String| format!("line {lineno}: {m}");
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, _help) = rest.split_once(' ').unwrap_or((rest, ""));
                if !valid_metric_name(name) {
                    return Err(err(format!("HELP for invalid metric name `{name}`")));
                }
                if helps.insert(name.to_string(), ()).is_some() {
                    return Err(err(format!("duplicate HELP for `{name}`")));
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let (name, typ) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("TYPE line missing type".into()))?;
                if !valid_metric_name(name) {
                    return Err(err(format!("TYPE for invalid metric name `{name}`")));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&typ) {
                    return Err(err(format!("unknown TYPE `{typ}` for `{name}`")));
                }
                if types.insert(name.to_string(), typ.to_string()).is_some() {
                    return Err(err(format!("duplicate TYPE for `{name}`")));
                }
                if closed_families.iter().any(|f| f == name) {
                    return Err(err(format!(
                        "family `{name}` re-opened after other samples"
                    )));
                }
            }
            // Other comment lines are legal and ignored.
            continue;
        }

        let sample = parse_sample(line, lineno)?;
        samples += 1;
        let family = family_of(&sample.name, &types).to_string();
        let typ = types
            .get(&family)
            .ok_or_else(|| err(format!("sample `{}` has no TYPE declaration", sample.name)))?
            .clone();
        if !helps.contains_key(&family) {
            return Err(err(format!(
                "sample `{}` has no HELP declaration",
                sample.name
            )));
        }
        match &current_family {
            Some(f) if *f == family => {}
            Some(f) => {
                closed_families.push(f.clone());
                if closed_families.contains(&family) {
                    return Err(err(format!("samples of `{family}` are not contiguous")));
                }
                current_family = Some(family.clone());
            }
            None => current_family = Some(family.clone()),
        }

        let series = format!("{}|{}", sample.name, {
            let mut ls: Vec<&(String, String)> = sample.labels.iter().collect();
            ls.sort();
            ls.iter()
                .map(|(k, v)| format!("{k}={}", escape_label(v)))
                .collect::<Vec<_>>()
                .join(",")
        });
        if seen_series.insert(series, ()).is_some() {
            return Err(err(format!("duplicate series for `{}`", sample.name)));
        }

        match typ.as_str() {
            "counter" if !sample.value.is_finite() || sample.value < 0.0 => {
                return Err(err(format!(
                    "counter `{}` has non-finite or negative value {}",
                    sample.name, sample.value
                )));
            }
            "counter" => {}
            "gauge" if sample.value.is_nan() => {
                return Err(err(format!("gauge `{}` is NaN", sample.name)));
            }
            "gauge" => {}
            "histogram" => {
                let entry = hist_series
                    .entry(family.clone())
                    .or_default()
                    .entry(series_key(&sample.labels))
                    .or_default();
                if sample.name.ends_with("_bucket") {
                    let le = sample
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .ok_or_else(|| err(format!("`{}` missing le label", sample.name)))?;
                    let bound = match le.1.as_str() {
                        "+Inf" => f64::INFINITY,
                        s => s.parse::<f64>().map_err(|_| {
                            err(format!("`{}` has unparseable le `{s}`", sample.name))
                        })?,
                    };
                    entry.buckets.push((bound, sample.value));
                } else if sample.name.ends_with("_sum") {
                    entry.sum = Some(sample.value);
                } else if sample.name.ends_with("_count") {
                    entry.count = Some(sample.value);
                } else {
                    return Err(err(format!(
                        "histogram family `{family}` has non-histogram sample `{}`",
                        sample.name
                    )));
                }
            }
            // summary/untyped samples only get the generic checks above.
            _ => {}
        }
    }

    // Histogram series invariants.
    let mut sorted_hists: Vec<(&String, &HashMap<String, HistSeries>)> =
        hist_series.iter().collect();
    sorted_hists.sort_by_key(|(f, _)| (*f).clone());
    for (family, by_series) in sorted_hists {
        let mut keys: Vec<&String> = by_series.keys().collect();
        keys.sort();
        for key in keys {
            let s = &by_series[key];
            let ctx = if key.is_empty() {
                format!("histogram `{family}`")
            } else {
                format!("histogram `{family}{{{key}}}`")
            };
            if s.buckets.is_empty() {
                return Err(format!("{ctx}: no buckets"));
            }
            for w in s.buckets.windows(2) {
                if w[1].0 <= w[0].0 {
                    return Err(format!("{ctx}: le bounds not strictly increasing"));
                }
                if w[1].1 < w[0].1 {
                    return Err(format!("{ctx}: cumulative bucket counts decrease"));
                }
            }
            let last = s.buckets.last().expect("checked non-empty");
            if !last.0.is_infinite() {
                return Err(format!("{ctx}: missing le=\"+Inf\" bucket"));
            }
            let count = s
                .count
                .ok_or_else(|| format!("{ctx}: missing _count sample"))?;
            if s.sum.is_none() {
                return Err(format!("{ctx}: missing _sum sample"));
            }
            if last.1 != count {
                return Err(format!("{ctx}: +Inf bucket {} != _count {count}", last.1));
            }
        }
    }

    let histograms = types.values().filter(|t| t.as_str() == "histogram").count();
    Ok(PromReport {
        families: types.len(),
        samples,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> String {
        let mut h = Histogram::new();
        for v in [900u64, 1_000_000, 2_000_000, 40_000_000] {
            h.record(v);
        }
        let mut e = Exposition::new();
        e.counter("campion_requests_total", "Requests served.", 42);
        e.gauge("campion_pairs", "Pairs tracked.", 12.0);
        e.counter_vec(
            "campion_http_responses_total",
            "Responses by status code.",
            &[(&[("code", "200")], 40), (&[("code", "404")], 2)],
        );
        e.histogram(
            "campion_ingest_duration_seconds",
            "Snapshot ingest latency.",
            &h,
            1e-9,
        );
        e.finish()
    }

    #[test]
    fn writer_output_passes_linter() {
        let doc = sample_doc();
        let report = validate_exposition(&doc).expect("linter rejects writer output");
        assert_eq!(report.families, 4);
        assert_eq!(report.histograms, 1);
        assert!(report.samples >= 8);
    }

    #[test]
    fn empty_histogram_still_valid() {
        let h = Histogram::new();
        let mut e = Exposition::new();
        e.histogram("x_seconds", "Empty.", &h, 1e-9);
        let doc = e.finish();
        validate_exposition(&doc).expect("empty histogram must still expose +Inf/_sum/_count");
    }

    #[test]
    fn linter_rejects_missing_newline() {
        let doc = sample_doc();
        assert!(validate_exposition(doc.trim_end()).is_err());
    }

    #[test]
    fn linter_rejects_missing_type() {
        let doc = "# HELP x help\nx 1\n";
        let err = validate_exposition(doc).unwrap_err();
        assert!(err.contains("no TYPE"), "{err}");
    }

    #[test]
    fn linter_rejects_negative_counter() {
        let doc = "# HELP x h\n# TYPE x counter\nx -1\n";
        let err = validate_exposition(doc).unwrap_err();
        assert!(err.contains("negative"), "{err}");
    }

    #[test]
    fn linter_rejects_duplicate_series() {
        let doc = "# HELP x h\n# TYPE x gauge\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n";
        let err = validate_exposition(doc).unwrap_err();
        assert!(err.contains("duplicate series"), "{err}");
    }

    #[test]
    fn linter_rejects_non_contiguous_family() {
        let doc = "# HELP x h\n# TYPE x gauge\n# HELP y h\n# TYPE y gauge\nx 1\ny 1\nx 2\n";
        let err = validate_exposition(doc).unwrap_err();
        assert!(
            err.contains("not contiguous") || err.contains("duplicate"),
            "{err}"
        );
    }

    #[test]
    fn linter_rejects_non_cumulative_histogram() {
        let doc = "# HELP h_seconds h\n# TYPE h_seconds histogram\n\
                   h_seconds_bucket{le=\"0.1\"} 5\n\
                   h_seconds_bucket{le=\"1\"} 3\n\
                   h_seconds_bucket{le=\"+Inf\"} 5\n\
                   h_seconds_sum 1\nh_seconds_count 5\n";
        let err = validate_exposition(doc).unwrap_err();
        assert!(err.contains("decrease"), "{err}");
    }

    #[test]
    fn linter_rejects_inf_count_mismatch() {
        let doc = "# HELP h_seconds h\n# TYPE h_seconds histogram\n\
                   h_seconds_bucket{le=\"+Inf\"} 5\n\
                   h_seconds_sum 1\nh_seconds_count 6\n";
        let err = validate_exposition(doc).unwrap_err();
        assert!(err.contains("!= _count"), "{err}");
    }

    #[test]
    fn label_escapes_round_trip() {
        let mut e = Exposition::new();
        e.counter_vec("x_total", "h", &[(&[("p", "a\"b\\c\nd")], 1)]);
        let doc = e.finish();
        validate_exposition(&doc).expect("escaped labels must lint clean");
    }
}
