//! Structured, leveled, rate-limited JSON-lines logging.
//!
//! The same zero-dependency philosophy as the span collector: one relaxed
//! atomic load is the whole cost when logging is off, and there is nothing
//! to configure beyond a level and a sink. Each record is a single JSON
//! object per line:
//!
//! ```text
//! {"ts_ms":1754649600123,"level":"info","event":"fleet.ingest","span":"fleet.ingest","track":0,"seq":3,"pairs_computed":1}
//! ```
//!
//! * **Span-context enriched.** If the calling thread has an open trace
//!   span, its name and track are stamped onto the record
//!   ([`crate::current_span`]), tying log lines to the phase that emitted
//!   them without the caller passing context around.
//! * **Rate-limited.** Each distinct event name may emit at most
//!   [`MAX_PER_WINDOW`] records per second; excess records are counted, not
//!   written, and the next record that passes carries a
//!   `"suppressed": N` field so nothing disappears silently.
//! * **Sinks.** Stderr (the daemon default), a file (`--log <path>`), or an
//!   in-memory buffer for tests. The sink is swappable at runtime so tests
//!   can capture output; writes take a mutex — logging is for edges
//!   (requests, ingests, errors), not per-item hot paths, which belong to
//!   the span collector.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::escape;

/// Log severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-operation detail (per-pair recomputes); off by default.
    Debug = 1,
    /// Normal operational events (requests, ingests).
    Info = 2,
    /// Unexpected but handled conditions (SLO breaches, flight dumps).
    Warn = 3,
    /// Failed operations.
    Error = 4,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse `"debug" | "info" | "warn" | "error"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A typed field value; borrows strings so call sites never allocate just
/// to log.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// String field (JSON-escaped on write).
    Str(&'a str),
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Float field (written with up to 6 significant decimals).
    F64(f64),
    /// Boolean field.
    Bool(bool),
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Max records per event name per one-second window before suppression.
pub const MAX_PER_WINDOW: u32 = 64;

enum Sink {
    Stderr,
    File(std::fs::File),
    Buffer(Arc<Mutex<String>>),
}

struct RateState {
    window: u64,
    emitted: u32,
    suppressed: u64,
}

struct Logger {
    sink: Sink,
    limits: HashMap<&'static str, RateState>,
}

/// 0 = off; otherwise the minimum enabled `Level` discriminant. One relaxed
/// load gates every call site.
static LOG_LEVEL: AtomicU8 = AtomicU8::new(0);
static LOGGER: Mutex<Option<Logger>> = Mutex::new(None);
static START: OnceLock<Instant> = OnceLock::new();

fn init(level: Level, sink: Sink) {
    START.get_or_init(Instant::now);
    *LOGGER.lock().expect("logger poisoned") = Some(Logger {
        sink,
        limits: HashMap::new(),
    });
    LOG_LEVEL.store(level as u8, Ordering::SeqCst);
}

/// Route records at `level` and above to stderr.
pub fn init_stderr(level: Level) {
    init(level, Sink::Stderr);
}

/// Route records at `level` and above to `path` (append-created).
pub fn init_file(level: Level, path: &Path) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    init(level, Sink::File(f));
    Ok(())
}

/// Route records into an in-memory buffer and return it (tests).
pub fn init_buffer(level: Level) -> Arc<Mutex<String>> {
    let buf = Arc::new(Mutex::new(String::new()));
    init(level, Sink::Buffer(buf.clone()));
    buf
}

/// Turn logging off and drop the sink (flushes file sinks via drop).
pub fn shutdown() {
    LOG_LEVEL.store(0, Ordering::SeqCst);
    *LOGGER.lock().expect("logger poisoned") = None;
}

/// Would a record at `level` be written? One relaxed atomic load — gate
/// any field computation on this.
#[inline]
pub fn enabled(level: Level) -> bool {
    let min = LOG_LEVEL.load(Ordering::Relaxed);
    min != 0 && level as u8 >= min
}

/// Write one record. `event` is a static name (it keys rate limiting);
/// `fields` are appended in order after the standard fields.
pub fn log(level: Level, event: &'static str, fields: &[(&str, Value<'_>)]) {
    if !enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let uptime = START.get().map(|s| s.elapsed()).unwrap_or_default();
    let span = crate::current_span();
    let track = crate::track();

    let mut g = LOGGER.lock().expect("logger poisoned");
    let Some(logger) = g.as_mut() else { return };

    // Per-event token window keyed on uptime seconds.
    let window = uptime.as_secs();
    let state = logger.limits.entry(event).or_insert(RateState {
        window,
        emitted: 0,
        suppressed: 0,
    });
    if state.window != window {
        state.window = window;
        state.emitted = 0;
    }
    if state.emitted >= MAX_PER_WINDOW {
        state.suppressed += 1;
        return;
    }
    state.emitted += 1;
    let suppressed = std::mem::take(&mut state.suppressed);

    let mut line = String::with_capacity(128);
    let _ = write!(
        line,
        "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"event\":\"{}\"",
        level.as_str(),
        escape(event)
    );
    if let Some(name) = span {
        let _ = write!(line, ",\"span\":\"{}\"", escape(name));
    }
    if let Some(t) = track {
        let _ = write!(line, ",\"track\":{t}");
    }
    if suppressed > 0 {
        let _ = write!(line, ",\"suppressed\":{suppressed}");
    }
    for (k, v) in fields {
        let _ = write!(line, ",\"{}\":", escape(k));
        match v {
            Value::Str(s) => {
                let _ = write!(line, "\"{}\"", escape(s));
            }
            Value::U64(n) => {
                let _ = write!(line, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(line, "{n}");
            }
            Value::F64(x) => {
                if x.is_finite() {
                    let _ = write!(line, "{x:.6}");
                } else {
                    line.push_str("null");
                }
            }
            Value::Bool(b) => {
                let _ = write!(line, "{b}");
            }
        }
    }
    line.push_str("}\n");

    match &mut logger.sink {
        Sink::Stderr => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
        Sink::File(f) => {
            let _ = f.write_all(line.as_bytes());
        }
        Sink::Buffer(b) => {
            b.lock().expect("log buffer poisoned").push_str(&line);
        }
    }
}

/// `log(Level::Debug, ...)`.
pub fn debug(event: &'static str, fields: &[(&str, Value<'_>)]) {
    log(Level::Debug, event, fields);
}

/// `log(Level::Info, ...)`.
pub fn info(event: &'static str, fields: &[(&str, Value<'_>)]) {
    log(Level::Info, event, fields);
}

/// `log(Level::Warn, ...)`.
pub fn warn(event: &'static str, fields: &[(&str, Value<'_>)]) {
    log(Level::Warn, event, fields);
}

/// `log(Level::Error, ...)`.
pub fn error(event: &'static str, fields: &[(&str, Value<'_>)]) {
    log(Level::Error, event, fields);
}
