//! `promcheck <file>` — validate a Prometheus text exposition (format 0.0.4)
//! document, e.g. a saved `GET /metrics` response from `campion-fleetd`,
//! against [`campion_trace::prom::validate_exposition`]. Pass `-` to read
//! stdin. Exit codes: 0 valid, 1 invalid, 2 usage/IO error. CI scrapes the
//! fleetd-smoke daemon and runs this on the response body.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: promcheck <metrics.txt|->");
        return ExitCode::from(2);
    };
    let text = if path == "-" {
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("error: stdin: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    };
    match campion_trace::prom::validate_exposition(&text) {
        Ok(summary) => {
            println!("{path}: valid exposition ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID exposition: {e}");
            ExitCode::FAILURE
        }
    }
}
