//! `tracecheck <file>` — validate a Chrome trace-event JSON file emitted by
//! `campion --trace` (or the scalability bench) against the schema rules in
//! [`campion_trace::json::validate_chrome_trace`]. Exit codes: 0 valid,
//! 1 invalid, 2 usage/IO error. CI runs this on the smoke-job artifact.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: tracecheck <trace.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match campion_trace::json::validate_chrome_trace(&text) {
        Ok(summary) => {
            println!("{path}: valid Chrome trace ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID trace: {e}");
            ExitCode::FAILURE
        }
    }
}
