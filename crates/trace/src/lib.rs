//! # campion-trace — span/metrics collection for the Campion pipeline
//!
//! A zero-dependency observability layer in the spirit of the workspace's
//! vendored offline shims: no external crates, just the API surface the
//! pipeline needs to answer "which stage burned the time".
//!
//! * **RAII spans.** [`span`] (or the [`span!`] macro) opens a named span on
//!   the calling thread and closes it when the guard drops. Spans nest via a
//!   thread-local stack, so begin/end events always pair LIFO per thread.
//! * **Typed counters.** [`SpanGuard::counter`] attaches `(name, i64)`
//!   deltas to the span's end event — the driver snapshots
//!   `ManagerStats` at span entry/exit and attaches the differences.
//! * **Per-thread buffers.** Recording is lock-free in the hot path: each
//!   thread appends to its own buffer; a mutex is touched only on thread
//!   exit (flush) and at [`drain`]. The parallel driver labels worker
//!   threads with [`set_track`], and [`drain`] merges buffers in ascending
//!   `(track, first timestamp)` order, so the merged event list is
//!   deterministic for a deterministic schedule.
//! * **Zero cost when disabled.** All entry points first check one relaxed
//!   atomic load ([`is_enabled`]); until [`enable`] is called nothing is
//!   allocated, timed, or buffered, and the instrumented pipeline's
//!   rendered reports are byte-identical with tracing on or off.
//!
//! Three sinks consume a drained [`Trace`]:
//!
//! * [`Trace::render_table`] — the human-readable `--metrics` table
//!   (per-phase count / total / p50 / p90 / p99 / max plus counter deltas
//!   and per-worker utilization);
//! * [`Trace::chrome_json`] — Chrome trace-event JSON (`--trace <file>`),
//!   loadable in `chrome://tracing` / Perfetto, one track per worker;
//! * [`Trace::phases_json`] — the machine-readable `phases` object the
//!   scalability bench appends to `BENCH_campion.json` for CI gating.
//!
//! Sibling modules round out the observability layer: [`hist`] is the
//! log2-bucketed latency histogram behind the p90/p99 columns, [`log`] is a
//! structured leveled JSON-lines logger (span-context enriched,
//! rate-limited), and [`prom`] renders and lints Prometheus text exposition
//! for the fleet daemon's `GET /metrics`.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod hist;
pub mod json;
pub mod log;
pub mod prom;

#[cfg(test)]
mod tests;

use hist::Histogram;

/// Begin/end marker of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span entry (`"B"` in Chrome trace-event terms).
    Begin,
    /// Span exit (`"E"`), carrying the span's counters.
    End,
}

/// One recorded begin or end event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Track (thread lane) the event was recorded on: `0` is the thread
    /// that called [`enable`], `1..` are driver workers ([`set_track`]),
    /// and unlabeled threads get ids from [`ANON_TRACK_BASE`] up.
    pub track: u32,
    /// Span name (a static string so recording never allocates for it).
    pub name: &'static str,
    /// Begin or end.
    pub phase: Phase,
    /// Nanoseconds since the trace epoch ([`enable`] time), monotonic.
    pub t_ns: u64,
    /// Counter deltas attached to the span (end events only).
    pub counters: Vec<(&'static str, i64)>,
}

/// First track id handed to threads that never called [`set_track`].
pub const ANON_TRACK_BASE: u32 = 1000;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static FLUSHED: Mutex<Vec<LocalBuf>> = Mutex::new(Vec::new());
static ANON_TRACK: AtomicU32 = AtomicU32::new(ANON_TRACK_BASE);

/// A thread's flushed event buffer, tagged with its track id.
struct LocalBuf {
    track: u32,
    events: Vec<Event>,
}

/// Per-thread recording state: the open-span stack and the event buffer.
/// Flushed into [`FLUSHED`] on thread exit (scoped workers end before the
/// driver joins, so their buffers are visible to the post-join [`drain`]).
struct LocalState {
    track: Option<u32>,
    stack: Vec<&'static str>,
    buf: Vec<Event>,
}

impl LocalState {
    const fn new() -> LocalState {
        LocalState {
            track: None,
            stack: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn resolve_track(&mut self) -> u32 {
        *self
            .track
            .get_or_insert_with(|| ANON_TRACK.fetch_add(1, Ordering::Relaxed))
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let track = self.resolve_track();
        let events = std::mem::take(&mut self.buf);
        FLUSHED
            .lock()
            .expect("trace flush registry poisoned")
            .push(LocalBuf { track, events });
    }
}

impl Drop for LocalState {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalState> = const { RefCell::new(LocalState::new()) };
}

fn now_ns() -> u64 {
    // `enable` initializes the epoch before setting the flag, so any thread
    // observing `ENABLED` also observes the epoch.
    EPOCH
        .get()
        .map(|e| e.elapsed().as_nanos() as u64)
        .unwrap_or(0)
}

/// Turn the collector on. The first call fixes the trace epoch (timestamp
/// zero); the calling thread becomes track `0`. Idempotent.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if l.track.is_none() {
            l.track = Some(0);
        }
    });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the collector off. Already-buffered events stay until [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Is the collector on? One relaxed atomic load — the entire cost of the
/// instrumentation when tracing is disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Label the calling thread's track (the driver calls this with the worker
/// index + 1 so every worker gets its own lane in the Chrome trace). No-op
/// when the collector is disabled.
pub fn set_track(track: u32) {
    if !is_enabled() {
        return;
    }
    LOCAL.with(|l| l.borrow_mut().track = Some(track));
}

/// The calling thread's track label, if [`set_track`] assigned one (the
/// driver consults this to derive sub-worker lanes from the parent lane).
pub fn track() -> Option<u32> {
    LOCAL.with(|l| l.borrow().track)
}

/// Name of the innermost open span on the calling thread, or `None` when
/// the collector is disabled or no span is open. The structured logger
/// ([`log`]) stamps this onto every record so log lines tie back to the
/// phase that emitted them.
pub fn current_span() -> Option<&'static str> {
    if !is_enabled() {
        return None;
    }
    LOCAL.with(|l| l.borrow().stack.last().copied())
}

/// First track id of the per-difference localization sub-worker lanes.
/// Lanes `0..ANON_TRACK_BASE` split three ways: `0` is the coordinating
/// thread, `1..SUB_TRACK_BASE` are driver workers, and from here up each
/// parent lane owns a [`SUB_TRACK_STRIDE`]-wide block of sub-lanes.
pub const SUB_TRACK_BASE: u32 = 100;

/// Sub-lanes reserved per parent lane.
pub const SUB_TRACK_STRIDE: u32 = 32;

/// Track id for localization sub-worker `worker` forked from the lane
/// `parent` (clamped so ids stay below [`ANON_TRACK_BASE`]).
pub fn sub_track(parent: u32, worker: u32) -> u32 {
    let parent = parent.min((ANON_TRACK_BASE - SUB_TRACK_BASE) / SUB_TRACK_STRIDE - 1);
    SUB_TRACK_BASE + parent * SUB_TRACK_STRIDE + worker.min(SUB_TRACK_STRIDE - 1)
}

/// RAII span guard returned by [`span`]: records the end event (with any
/// attached counters) when dropped. Inactive — a no-op shell — when the
/// collector was disabled at construction.
pub struct SpanGuard {
    name: &'static str,
    active: bool,
    counters: Vec<(&'static str, i64)>,
}

impl SpanGuard {
    /// Attach a named counter delta to this span's end event.
    pub fn counter(&mut self, name: &'static str, value: i64) {
        if self.active {
            self.counters.push((name, value));
        }
    }

    /// Whether this guard is actually recording (collector was enabled).
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let t = now_ns();
        let counters = std::mem::take(&mut self.counters);
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let popped = l.stack.pop();
            debug_assert_eq!(popped, Some(self.name), "span stack out of order");
            l.buf.push(Event {
                track: 0, // rewritten at flush
                name: self.name,
                phase: Phase::End,
                t_ns: t,
                counters,
            });
        });
    }
}

/// Open a span named `name` on the calling thread; it closes when the
/// returned guard drops. Guards must drop in reverse creation order per
/// thread (RAII scoping guarantees this), keeping begin/end events LIFO.
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            name,
            active: false,
            counters: Vec::new(),
        };
    }
    let t = now_ns();
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.stack.push(name);
        l.buf.push(Event {
            track: 0, // rewritten at flush
            name,
            phase: Phase::Begin,
            t_ns: t,
            counters: Vec::new(),
        });
    });
    SpanGuard {
        name,
        active: true,
        counters: Vec::new(),
    }
}

/// Open a span for the rest of the enclosing scope:
/// `span!("semdiff.diff");` is `let _guard = campion_trace::span(...)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _campion_trace_span = $crate::span($name);
    };
}

/// Flush the calling thread's buffered events into the global registry.
///
/// Worker threads must call this at the *end of their closure* when the
/// spawner will [`drain`] right after joining them: `std::thread::scope`
/// observes a thread as finished once its closure returns, but the
/// thread-local destructor that would flush the buffer runs later, during
/// actual thread exit — so relying on the RAII backstop alone races the
/// join and can drop a whole track from the trace.
pub fn flush() {
    LOCAL.with(|l| l.borrow_mut().flush());
}

/// Collect every flushed buffer (plus the calling thread's) into one
/// [`Trace`], clearing the registry. Buffers merge in ascending
/// `(track, first timestamp)` order; within a buffer, recording order is
/// preserved, so per-track timestamps are monotonic.
pub fn drain() -> Trace {
    LOCAL.with(|l| l.borrow_mut().flush());
    let mut bufs = std::mem::take(&mut *FLUSHED.lock().expect("trace flush registry poisoned"));
    bufs.sort_by_key(|b| (b.track, b.events.first().map_or(0, |e| e.t_ns)));
    let mut events = Vec::with_capacity(bufs.iter().map(|b| b.events.len()).sum());
    for b in bufs {
        let track = b.track;
        events.extend(b.events.into_iter().map(|mut e| {
            e.track = track;
            e
        }));
    }
    Trace { events }
}

/// One closed span reconstructed from a begin/end event pair.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Track the span ran on.
    pub track: u32,
    /// Span name.
    pub name: &'static str,
    /// Nesting depth on its track (0 = top level).
    pub depth: u32,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch.
    pub end_ns: u64,
    /// Counter deltas attached at span exit.
    pub counters: Vec<(&'static str, i64)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Aggregate statistics for one span name across a whole trace.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Span name.
    pub name: &'static str,
    /// Number of closed spans.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Median (lower) duration, nanoseconds — exact, from sorted samples.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds — estimated from the log2 histogram.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds — estimated from the log2 histogram.
    pub p99_ns: u64,
    /// Maximum duration, nanoseconds.
    pub max_ns: u64,
    /// Log2-bucketed duration histogram (the daemon merges these across
    /// drains into long-lived per-phase aggregates).
    pub hist: Histogram,
    /// Counter deltas summed across the phase's spans, in first-seen order.
    pub counters: Vec<(&'static str, i64)>,
}

/// Per-worker utilization derived from `pool.worker` spans (one per worker
/// per [`crate::span`]-instrumented steal pool run).
#[derive(Debug, Clone)]
pub struct WorkerStat {
    /// Track the worker ran on.
    pub track: u32,
    /// Human label for the track (matches the Chrome trace lane name).
    pub label: String,
    /// Number of `pool.worker` spans (pool runs) on this track.
    pub spans: u64,
    /// Summed `pool.worker` span durations: time the worker existed.
    pub wall_ns: u64,
    /// Work items the worker claimed from the shared cursor.
    pub claimed: u64,
    /// Time spent inside item closures (the rest is steal/park overhead).
    pub busy_ns: u64,
}

impl WorkerStat {
    /// `busy_ns / wall_ns` as a fraction (0 when the worker never ran).
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }
}

/// A drained, merged event list plus its analyses.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Merged events, grouped by track, record order within each track.
    pub events: Vec<Event>,
}

impl Trace {
    /// No events recorded?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Reconstruct closed spans by pairing begin/end events per track.
    /// Events of unterminated spans (begin without end at drain time) are
    /// dropped.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        let mut tracks: Vec<(u32, Vec<(&'static str, u64)>)> = Vec::new();
        for e in &self.events {
            let stack = match tracks.iter_mut().find(|(t, _)| *t == e.track) {
                Some((_, s)) => s,
                None => {
                    tracks.push((e.track, Vec::new()));
                    &mut tracks.last_mut().expect("just pushed").1
                }
            };
            match e.phase {
                Phase::Begin => stack.push((e.name, e.t_ns)),
                Phase::End => {
                    let Some((name, start_ns)) = stack.pop() else {
                        debug_assert!(false, "end event without begin");
                        continue;
                    };
                    debug_assert_eq!(name, e.name, "mispaired span events");
                    out.push(SpanRecord {
                        track: e.track,
                        name,
                        depth: stack.len() as u32,
                        start_ns,
                        end_ns: e.t_ns,
                        counters: e.counters.clone(),
                    });
                }
            }
        }
        out
    }

    /// Per-phase aggregates, ordered by total time (descending; name breaks
    /// ties) so the table reads hottest-first.
    pub fn phase_stats(&self) -> Vec<PhaseStat> {
        let spans = self.spans();
        let mut durs: Vec<(&'static str, Vec<u64>)> = Vec::new();
        let mut counters: Vec<(&'static str, Vec<(&'static str, i64)>)> = Vec::new();
        for s in &spans {
            match durs.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, v)) => v.push(s.dur_ns()),
                None => durs.push((s.name, vec![s.dur_ns()])),
            }
            let sums = match counters.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, c)) => c,
                None => {
                    counters.push((s.name, Vec::new()));
                    &mut counters.last_mut().expect("just pushed").1
                }
            };
            for &(cname, v) in &s.counters {
                match sums.iter_mut().find(|(n, _)| *n == cname) {
                    Some((_, acc)) => *acc += v,
                    None => sums.push((cname, v)),
                }
            }
        }
        let mut out: Vec<PhaseStat> = durs
            .into_iter()
            .map(|(name, mut ds)| {
                ds.sort_unstable();
                let mut hist = Histogram::new();
                for &d in &ds {
                    hist.record(d);
                }
                PhaseStat {
                    name,
                    count: ds.len() as u64,
                    total_ns: ds.iter().sum(),
                    p50_ns: ds[(ds.len() - 1) / 2],
                    p90_ns: hist.quantile(0.90),
                    p99_ns: hist.quantile(0.99),
                    max_ns: *ds.last().expect("non-empty by construction"),
                    hist,
                    counters: counters
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, c)| c.clone())
                        .unwrap_or_default(),
                }
            })
            .collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        out
    }

    /// Trace extent: last event timestamp minus first, nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        let min = self.events.iter().map(|e| e.t_ns).min().unwrap_or(0);
        let max = self.events.iter().map(|e| e.t_ns).max().unwrap_or(0);
        max - min
    }

    /// Length of the union of all top-level (depth-0) span intervals,
    /// across tracks, in nanoseconds: how much of [`Trace::wall_ns`] at
    /// least one top-level phase accounts for. Close to `wall_ns` means the
    /// per-phase table explains the end-to-end time.
    pub fn top_level_coverage_ns(&self) -> u64 {
        let mut iv: Vec<(u64, u64)> = self
            .spans()
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| (s.start_ns, s.end_ns))
            .collect();
        iv.sort_unstable();
        let mut covered = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for (s, e) in iv {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    covered += ce - cs;
                    cur = Some((s, e));
                }
            }
        }
        if let Some((cs, ce)) = cur {
            covered += ce - cs;
        }
        covered
    }

    /// Per-worker utilization aggregated from `pool.worker` spans, ordered
    /// by track. Empty when no steal pool ran (e.g. `--jobs 1` inline path).
    pub fn worker_stats(&self) -> Vec<WorkerStat> {
        let mut out: Vec<WorkerStat> = Vec::new();
        for s in self.spans() {
            if s.name != "pool.worker" {
                continue;
            }
            let stat = match out.iter_mut().find(|w| w.track == s.track) {
                Some(w) => w,
                None => {
                    out.push(WorkerStat {
                        track: s.track,
                        label: track_label(s.track),
                        spans: 0,
                        wall_ns: 0,
                        claimed: 0,
                        busy_ns: 0,
                    });
                    out.last_mut().expect("just pushed")
                }
            };
            stat.spans += 1;
            stat.wall_ns += s.dur_ns();
            for &(name, v) in &s.counters {
                match name {
                    "claimed" => stat.claimed += v.max(0) as u64,
                    "busy_ns" => stat.busy_ns += v.max(0) as u64,
                    _ => {}
                }
            }
        }
        out.sort_by_key(|w| w.track);
        out
    }

    /// The human-readable `--metrics` table: per-phase count / total / p50 /
    /// p90 / p99 / max, counter deltas, per-worker utilization, and a
    /// wall-clock coverage footer.
    pub fn render_table(&self) -> String {
        let stats = self.phase_stats();
        let mut out = String::from("=== campion per-phase metrics ===\n");
        if stats.is_empty() {
            out.push_str("(no spans recorded)\n");
            return out;
        }
        out.push_str(&format!(
            "{:<24} {:>7} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
            "phase", "count", "total", "p50", "p90", "p99", "max"
        ));
        for s in &stats {
            out.push_str(&format!(
                "{:<24} {:>7} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
                s.name,
                s.count,
                fmt_dur(s.total_ns),
                fmt_dur(s.p50_ns),
                fmt_dur(s.p90_ns),
                fmt_dur(s.p99_ns),
                fmt_dur(s.max_ns)
            ));
        }
        let with_counters: Vec<&PhaseStat> =
            stats.iter().filter(|s| !s.counters.is_empty()).collect();
        if !with_counters.is_empty() {
            out.push_str("counter deltas:\n");
            for s in with_counters {
                let cs: Vec<String> = s.counters.iter().map(|(n, v)| format!("{n}={v}")).collect();
                out.push_str(&format!("  {:<22} {}\n", s.name, cs.join(" ")));
            }
        }
        let workers = self.worker_stats();
        if !workers.is_empty() {
            out.push_str("worker utilization:\n");
            for w in &workers {
                out.push_str(&format!(
                    "  {:<22} claimed={} busy={} / {} ({:.1}%)\n",
                    w.label,
                    w.claimed,
                    fmt_dur(w.busy_ns),
                    fmt_dur(w.wall_ns),
                    w.utilization() * 100.0
                ));
            }
        }
        let wall = self.wall_ns();
        let covered = self.top_level_coverage_ns();
        let pct = if wall == 0 {
            100.0
        } else {
            covered as f64 / wall as f64 * 100.0
        };
        out.push_str(&format!(
            "wall (first\u{2192}last event): {}\ntop-level span coverage: {} ({pct:.1}%)\n",
            fmt_dur(wall),
            fmt_dur(covered)
        ));
        out
    }

    /// Chrome trace-event JSON: `{"traceEvents": [...]}` with one `tid` per
    /// track, thread-name metadata, and `B`/`E` duration events whose `ts`
    /// is microseconds since the trace epoch. Loadable in `chrome://tracing`
    /// and Perfetto; checkable with [`json::validate_chrome_trace`].
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        emit(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"campion\"}}"
                .to_string(),
            &mut out,
        );
        let mut tracks: Vec<u32> = self.events.iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for t in &tracks {
            emit(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    track_label(*t)
                ),
                &mut out,
            );
        }
        for e in &self.events {
            let ph = match e.phase {
                Phase::Begin => "B",
                Phase::End => "E",
            };
            let ts = e.t_ns as f64 / 1000.0;
            let mut line = format!(
                "{{\"name\":\"{}\",\"cat\":\"campion\",\"ph\":\"{ph}\",\
                 \"ts\":{ts:.3},\"pid\":1,\"tid\":{}}}",
                json::escape(e.name),
                e.track
            );
            if !e.counters.is_empty() {
                let args: Vec<String> = e
                    .counters
                    .iter()
                    .map(|(n, v)| format!("\"{}\":{v}", json::escape(n)))
                    .collect();
                line.truncate(line.len() - 1);
                line.push_str(&format!(",\"args\":{{{}}}}}", args.join(",")));
            }
            emit(line, &mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// The machine-readable `phases` object for `BENCH_campion.json`:
    /// `{"<phase>": {"count": N, "total_s": x, "p50_s": x, "p90_s": x,
    /// "p99_s": x, "max_s": x}}`, keys sorted by name for stable diffs.
    pub fn phases_json(&self) -> String {
        let mut stats = self.phase_stats();
        stats.sort_by(|a, b| a.name.cmp(b.name));
        let entries: Vec<String> = stats
            .iter()
            .map(|s| {
                format!(
                    "\"{}\": {{\"count\": {}, \"total_s\": {:.6}, \
                     \"p50_s\": {:.6}, \"p90_s\": {:.6}, \"p99_s\": {:.6}, \
                     \"max_s\": {:.6}}}",
                    json::escape(s.name),
                    s.count,
                    s.total_ns as f64 / 1e9,
                    s.p50_ns as f64 / 1e9,
                    s.p90_ns as f64 / 1e9,
                    s.p99_ns as f64 / 1e9,
                    s.max_ns as f64 / 1e9
                )
            })
            .collect();
        format!("{{{}}}", entries.join(", "))
    }
}

/// Human label for a track id (worker lanes in the Chrome trace).
fn track_label(track: u32) -> String {
    match track {
        0 => "main".to_string(),
        t if t >= ANON_TRACK_BASE => format!("thread-{}", t - ANON_TRACK_BASE),
        t if t >= SUB_TRACK_BASE => format!(
            "localize-{}.{}",
            (t - SUB_TRACK_BASE) / SUB_TRACK_STRIDE,
            (t - SUB_TRACK_BASE) % SUB_TRACK_STRIDE
        ),
        t => format!("worker-{t}"),
    }
}

/// Render a nanosecond duration with an adaptive unit.
fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} \u{b5}s", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}
