//! Log2-bucketed latency histogram.
//!
//! A fixed-size, allocation-free histogram for nanosecond durations (or any
//! `u64` magnitude): value `v` lands in bucket `bit_length(v)`, so bucket
//! `i > 0` covers `[2^(i-1), 2^i)` and bucket 0 holds exact zeros. 64 buckets
//! cover the whole `u64` range, recording is a handful of integer ops, and
//! merging two histograms is 64 adds — cheap enough for the daemon to fold
//! every drained trace into long-lived per-phase aggregates.
//!
//! Quantiles are estimated by walking the cumulative bucket counts and
//! linearly interpolating inside the target bucket; the true maximum and sum
//! are tracked exactly, so `quantile(1.0)` returns the exact max and the
//! relative error of interior quantiles is bounded by the bucket width
//! (< 2x, typically far less after interpolation). Exact p50s remain
//! available from sorted samples where the caller retains them
//! ([`crate::PhaseStat`] does); the histogram supplies p90/p99 and the
//! Prometheus export.

/// Number of log2 buckets (covers the full `u64` range).
pub const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// Bucket index for a sample: its bit length, clamped to the last bucket.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i`.
#[inline]
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
#[inline]
fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by cumulative bucket walk
    /// with linear interpolation inside the target bucket. Returns 0 for an
    /// empty histogram; `q >= 1.0` returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let q = q.max(0.0);
        // 1-based rank of the target sample.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_lo(i);
                // The bucket holding the true max is capped at it: samples
                // can't exceed the observed maximum.
                let hi = bucket_hi(i).min(self.max).max(lo);
                let pos = rank - seen; // 1..=c within this bucket
                let frac = pos as f64 / c as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            seen += c;
        }
        self.max
    }

    /// Cumulative bucket counts as `(inclusive_upper_bound, cumulative)`
    /// pairs, covering buckets from the first non-empty through the bucket
    /// of the maximum. Empty histogram yields an empty vec. Used by the
    /// Prometheus exposition (`le` boundaries; the caller appends `+Inf`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let first = self
            .buckets
            .iter()
            .position(|&c| c > 0)
            .expect("count > 0 implies a non-empty bucket");
        let last = bucket_of(self.max);
        let mut out = Vec::with_capacity(last - first + 1);
        let mut cum = 0u64;
        for i in first..=last {
            cum += self.buckets[i];
            out.push((bucket_hi(i), cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        for i in 1..BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_of(bucket_hi(i)), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn exact_max_and_monotone_quantiles() {
        let mut h = Histogram::new();
        for v in [3u64, 9, 17, 1000, 65_536, 70_000, 70_001] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 70_001);
        assert_eq!(h.quantile(1.0), 70_001);
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn quantile_error_bounded_by_bucket_width() {
        // Uniform samples: every estimated quantile must fall within the
        // log2 bucket of the true quantile (< 2x relative error).
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=10_000u64).collect();
        for &v in &samples {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99] {
            let truth = samples[((q * samples.len() as f64).ceil() as usize - 1).min(9999)];
            let est = h.quantile(q);
            assert!(
                est <= truth.saturating_mul(2) && est * 2 >= truth,
                "q={q}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 2, 3, 100, 5000] {
            a.record(v);
            all.record(v);
        }
        for v in [7u64, 0, 999_999] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn cumulative_buckets_end_at_count() {
        let mut h = Histogram::new();
        for v in [5u64, 6, 7, 300, 300, 90_000] {
            h.record(v);
        }
        let cb = h.cumulative_buckets();
        assert!(!cb.is_empty());
        assert_eq!(cb.last().expect("non-empty").1, h.count());
        // Cumulative counts never decrease; bounds strictly increase.
        for w in cb.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}
