//! # campion-symbolic — BDD encodings of packets and route advertisements
//!
//! This crate is the bridge between the VI model ([`campion_ir`]) and the
//! BDD engine ([`campion_bdd`]): it fixes variable layouts for the two input
//! spaces Campion partitions —
//!
//! * [`RouteSpace`]: route advertisements (destination prefix + length,
//!   community *atoms*, tag/metric atoms, source protocol), used for route
//!   maps; and
//! * [`PacketSpace`]: the data-plane 5-tuple, used for ACLs —
//!
//! and provides the symbolic transfer machinery ([`SymbolicRoute`]) that
//! tracks attribute rewrites along fall-through paths, mirroring Batfish's
//! `TransferBDD` as used by the original Campion.
//!
//! ## Community atoms
//!
//! Communities are encoded as *atomic predicates*: one BDD variable per
//! community literal appearing in either compared component, plus one
//! variable per distinct regex meaning "the route carries some community
//! *outside* the literal universe that matches this pattern". A regex match
//! is then the disjunction of its matching literals' variables and its own
//! unknown-variable. Two textually different regexes therefore get distinct
//! unknown-atoms and are (soundly) flagged as potentially different — this
//! slightly overapproximates regex equivalence, as documented in DESIGN.md.

#![warn(missing_docs)]

mod action;
mod bits;
mod packet_space;
mod route_space;

pub use action::ActionEffect;
pub use packet_space::{FlowExample, PacketSpace, RuleKey};
pub use route_space::{
    AtomKey, FieldState, RouteExample, RouteSpace, SymbolicRoute, LEN_VARS, PREFIX_VARS, PROTO_VARS,
};

/// The destination-port variable run of the packet space.
pub fn packet_dport_vars() -> std::ops::Range<u32> {
    packet_space::DPORT_VARS
}

/// The source-port variable run of the packet space.
pub fn packet_sport_vars() -> std::ops::Range<u32> {
    packet_space::SPORT_VARS
}

/// Total variable count of the packet space.
pub fn packet_num_vars() -> u32 {
    packet_space::NUM_VARS
}

#[cfg(test)]
mod tests;
