//! Canonical action effects: the composition of every `set` applied along a
//! path through a policy, plus the terminal disposition. Two paths are
//! behaviorally equal exactly when their effects are equal — this is the
//! `a₁ ≠ a₂` test of the paper's SemanticDiff quintuples.

use std::collections::BTreeSet;
use std::fmt;
use std::net::Ipv4Addr;

use campion_ir::{CommAtom, SetAction};
use campion_net::regex::Regex;
use campion_net::Community;

/// The net effect of a path: terminal disposition plus the composed
/// attribute rewrites in canonical form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActionEffect {
    /// Terminal disposition (`true` = accept).
    pub accept: bool,
    /// Final LOCAL_PREF override.
    pub local_pref: Option<u32>,
    /// Final metric override.
    pub metric: Option<u32>,
    /// Final tag override.
    pub tag: Option<u32>,
    /// Final weight override.
    pub weight: Option<u32>,
    /// Final next hop override (`Some(None)` = next-hop self).
    pub next_hop: Option<Option<Ipv4Addr>>,
    /// Whether the community set was replaced wholesale at some point.
    pub comm_cleared: bool,
    /// Communities present at the end regardless of input.
    pub comm_added: BTreeSet<Community>,
    /// Atoms whose matching input communities are removed
    /// (irrelevant when `comm_cleared`).
    pub comm_deleted: BTreeSet<CommAtom>,
}

impl ActionEffect {
    /// The identity effect with a terminal disposition.
    pub fn terminal(accept: bool) -> Self {
        ActionEffect {
            accept,
            ..ActionEffect::default()
        }
    }

    /// Compose one more `set` action onto this effect (in execution order).
    pub fn apply(&mut self, set: &SetAction) {
        match set {
            SetAction::LocalPref(v) => self.local_pref = Some(*v),
            SetAction::Metric(v) => self.metric = Some(*v),
            SetAction::Tag(v) => self.tag = Some(*v),
            SetAction::Weight(v) => self.weight = Some(*v),
            SetAction::NextHop(nh) => self.next_hop = Some(*nh),
            SetAction::CommunitySet(cs) => {
                self.comm_cleared = true;
                self.comm_added = cs.iter().copied().collect();
                self.comm_deleted.clear();
            }
            SetAction::CommunityAdd(cs) => {
                for c in cs {
                    self.comm_added.insert(*c);
                    // An add after a delete revives the community.
                    self.comm_deleted.remove(&CommAtom::Literal(*c));
                }
            }
            SetAction::CommunityDelete(atoms) => {
                let regexes: Vec<Regex> = atoms
                    .iter()
                    .filter_map(|a| match a {
                        CommAtom::Regex(p) => Some(Regex::new(p).expect("validated")),
                        CommAtom::Literal(_) => None,
                    })
                    .collect();
                // A delete after an add removes the pending add.
                self.comm_added.retain(|c| {
                    let lit = atoms.contains(&CommAtom::Literal(*c));
                    let rex = regexes.iter().any(|r| r.is_match(&c.to_string()));
                    !(lit || rex)
                });
                if !self.comm_cleared {
                    self.comm_deleted.extend(atoms.iter().cloned());
                }
            }
        }
    }

    /// Compose a whole clause's sets.
    pub fn apply_all(&mut self, sets: &[SetAction]) {
        for s in sets {
            self.apply(s);
        }
    }

    /// Rejecting paths are behaviorally identical whatever they set —
    /// normalize so equality ignores the sets of rejected routes.
    pub fn normalized(mut self) -> Self {
        if !self.accept {
            self = ActionEffect::terminal(false);
        }
        self
    }
}

impl fmt::Display for ActionEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.accept {
            return write!(f, "REJECT");
        }
        let mut parts = Vec::new();
        if let Some(v) = self.local_pref {
            parts.push(format!("SET LOCAL PREF {v}"));
        }
        if let Some(v) = self.metric {
            parts.push(format!("SET METRIC {v}"));
        }
        if let Some(v) = self.tag {
            parts.push(format!("SET TAG {v}"));
        }
        if let Some(v) = self.weight {
            parts.push(format!("SET WEIGHT {v}"));
        }
        if let Some(nh) = self.next_hop {
            match nh {
                Some(ip) => parts.push(format!("SET NEXT-HOP {ip}")),
                None => parts.push("SET NEXT-HOP SELF".to_string()),
            }
        }
        if self.comm_cleared {
            let cs: Vec<String> = self.comm_added.iter().map(|c| c.to_string()).collect();
            parts.push(format!("SET COMMUNITY {}", cs.join(" ")));
        } else {
            if !self.comm_added.is_empty() {
                let cs: Vec<String> = self.comm_added.iter().map(|c| c.to_string()).collect();
                parts.push(format!("ADD COMMUNITY {}", cs.join(" ")));
            }
            if !self.comm_deleted.is_empty() {
                let cs: Vec<String> = self.comm_deleted.iter().map(|a| a.to_string()).collect();
                parts.push(format!("DELETE COMMUNITY {}", cs.join(" ")));
            }
        }
        parts.push("ACCEPT".to_string());
        write!(f, "{}", parts.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_display() {
        assert_eq!(ActionEffect::terminal(false).to_string(), "REJECT");
        assert_eq!(ActionEffect::terminal(true).to_string(), "ACCEPT");
    }

    #[test]
    fn last_local_pref_wins() {
        let mut e = ActionEffect::terminal(true);
        e.apply(&SetAction::LocalPref(10));
        e.apply(&SetAction::LocalPref(30));
        assert_eq!(e.local_pref, Some(30));
        assert_eq!(e.to_string(), "SET LOCAL PREF 30\nACCEPT");
    }

    #[test]
    fn community_set_then_add() {
        let mut e = ActionEffect::terminal(true);
        e.apply(&SetAction::CommunitySet(vec![Community::new(1, 1)]));
        e.apply(&SetAction::CommunityAdd(vec![Community::new(2, 2)]));
        assert!(e.comm_cleared);
        assert_eq!(e.comm_added.len(), 2);
    }

    #[test]
    fn delete_cancels_pending_add() {
        let mut e = ActionEffect::terminal(true);
        e.apply(&SetAction::CommunityAdd(vec![Community::new(1, 1)]));
        e.apply(&SetAction::CommunityDelete(vec![CommAtom::Literal(
            Community::new(1, 1),
        )]));
        assert!(e.comm_added.is_empty());
        assert!(e
            .comm_deleted
            .contains(&CommAtom::Literal(Community::new(1, 1))));
        // And add after delete revives.
        e.apply(&SetAction::CommunityAdd(vec![Community::new(1, 1)]));
        assert!(e.comm_added.contains(&Community::new(1, 1)));
        assert!(!e
            .comm_deleted
            .contains(&CommAtom::Literal(Community::new(1, 1))));
    }

    #[test]
    fn rejected_paths_normalize_equal() {
        let mut a = ActionEffect::terminal(false);
        a.apply(&SetAction::LocalPref(10));
        let b = ActionEffect::terminal(false);
        assert_ne!(a, b);
        assert_eq!(a.normalized(), b.normalized());
    }

    #[test]
    fn regex_delete_prunes_adds() {
        let mut e = ActionEffect::terminal(true);
        e.apply(&SetAction::CommunityAdd(vec![Community::new(65000, 5)]));
        e.apply(&SetAction::CommunityDelete(vec![CommAtom::Regex(
            "^65000:".to_string(),
        )]));
        assert!(e.comm_added.is_empty());
    }
}
