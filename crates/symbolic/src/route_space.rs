//! The symbolic route-advertisement space and the transfer machinery for
//! route policies.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use campion_bdd::{AnyManager, Assignment, Bdd, SharedPool};
use campion_ir::{
    CommAtom, CommunityDialect, Match, PrefixMatcher, RoutePolicy, RouteProtocol, SetAction,
};
use campion_net::regex::Regex;
use campion_net::{Community, Prefix, PrefixRange};

use crate::bits;

/// One community atom in the encoding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum AtomKey {
    /// A known community literal.
    Literal(Community),
    /// "Carries some community outside the literal universe matching this
    /// regex."
    UnknownRegex(String),
}

impl fmt::Display for AtomKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomKey::Literal(c) => write!(f, "{c}"),
            AtomKey::UnknownRegex(r) => write!(f, "community matching /{r}/"),
        }
    }
}

/// Tracks the current (possibly rewritten) symbolic attributes of a route as
/// it flows through a policy's clauses — so a match *after* a `set` sees the
/// written value, exactly like Batfish's TransferBDD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicRoute {
    /// Per-atom truth function over the *input* variables.
    pub comm: Vec<Bdd>,
    /// Current tag: still the input, or a constant written by a set.
    pub tag: FieldState,
    /// Current metric.
    pub metric: FieldState,
}

/// A scalar attribute is either still the unmodified input or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldState {
    /// The input value, unmodified.
    Input,
    /// Overwritten with a constant.
    Const(u32),
}

/// Variable layout and encoding operations for route advertisements.
///
/// Layout (in BDD variable order):
///
/// | vars             | meaning                              |
/// |------------------|--------------------------------------|
/// | `0..32`          | prefix address bits, MSB first       |
/// | `32..38`         | prefix length (6 bits)               |
/// | `38..41`         | source protocol (3 bits)             |
/// | then             | one var per community atom           |
/// | then             | one var per distinct tag constant    |
/// | then             | one var per distinct metric constant |
///
/// `Clone` snapshots the space (manager arena included, with node indices
/// preserved) so independent localization queries can run on per-thread
/// copies and be dropped afterwards.
#[derive(Clone)]
pub struct RouteSpace {
    /// The BDD manager (exposed so callers can run set operations).
    pub manager: AnyManager,
    atoms: Vec<AtomKey>,
    tag_values: Vec<u32>,
    metric_values: Vec<u32>,
    comm_base: u32,
    tag_base: u32,
    metric_base: u32,
    num_vars: u32,
    /// Cached canonical-prefix constraint (see [`RouteSpace::canonical`]).
    canonical: Option<Bdd>,
    /// Memoized first-match folds of prefix matchers, keyed by canonical
    /// content (entries only — name and spans don't shape the BDD). Both
    /// policies of a pair share this space and near-identical pairs reuse
    /// the same prefix lists, and fall-through forks of [`policy_paths`]
    /// re-encode the same clause once per frame; each distinct matcher is
    /// folded once. Entries are GC-rooted at insert (cache lives as long
    /// as the space).
    matcher_cache: HashMap<Vec<(bool, PrefixRange)>, Bdd>,
    matcher_cache_lookups: u64,
    matcher_cache_hits: u64,
}

/// First variable of the prefix-address run.
pub const PREFIX_VARS: std::ops::Range<u32> = 0..32;
/// Variables of the prefix-length field.
pub const LEN_VARS: std::ops::Range<u32> = 32..38;
/// Variables of the protocol field.
pub const PROTO_VARS: std::ops::Range<u32> = 38..41;

fn proto_code(p: RouteProtocol) -> u64 {
    match p {
        RouteProtocol::Connected => 0,
        RouteProtocol::Static => 1,
        RouteProtocol::Ospf => 2,
        RouteProtocol::Bgp => 3,
        RouteProtocol::Aggregate => 4,
    }
}

fn proto_from_code(c: u64) -> RouteProtocol {
    match c {
        0 => RouteProtocol::Connected,
        1 => RouteProtocol::Static,
        2 => RouteProtocol::Ospf,
        4 => RouteProtocol::Aggregate,
        _ => RouteProtocol::Bgp,
    }
}

impl RouteSpace {
    /// Build the space for a set of policies: the atom/tag/metric universes
    /// are the union over everything any policy matches or sets.
    pub fn for_policies(policies: &[&RoutePolicy]) -> RouteSpace {
        Self::for_policies_in(policies, None)
    }

    /// Like [`RouteSpace::for_policies`], but on a worker of `pool`'s shared
    /// arena when given.
    pub fn for_policies_in(policies: &[&RoutePolicy], pool: Option<&SharedPool>) -> RouteSpace {
        let mut literals: BTreeSet<Community> = BTreeSet::new();
        let mut regexes: BTreeSet<String> = BTreeSet::new();
        let mut tags: BTreeSet<u32> = BTreeSet::new();
        let mut metrics: BTreeSet<u32> = BTreeSet::new();
        for p in policies {
            for atom in p.community_atoms() {
                match atom {
                    CommAtom::Literal(c) => {
                        literals.insert(c);
                    }
                    CommAtom::Regex(r) => {
                        regexes.insert(r);
                    }
                }
            }
            for clause in &p.clauses {
                for m in &clause.matches {
                    match m {
                        Match::Tag(t) => {
                            tags.insert(*t);
                        }
                        Match::Metric(v) => {
                            metrics.insert(*v);
                        }
                        _ => {}
                    }
                }
                for s in &clause.sets {
                    match s {
                        SetAction::Tag(t) => {
                            tags.insert(*t);
                        }
                        SetAction::Metric(v) => {
                            metrics.insert(*v);
                        }
                        _ => {}
                    }
                }
            }
        }
        let mut atoms: Vec<AtomKey> = literals.into_iter().map(AtomKey::Literal).collect();
        atoms.extend(regexes.into_iter().map(AtomKey::UnknownRegex));
        let tag_values: Vec<u32> = tags.into_iter().collect();
        let metric_values: Vec<u32> = metrics.into_iter().collect();
        let comm_base = PROTO_VARS.end;
        let tag_base = comm_base + atoms.len() as u32;
        let metric_base = tag_base + tag_values.len() as u32;
        let num_vars = metric_base + metric_values.len() as u32;
        let manager = match pool {
            Some(p) => AnyManager::from(p.worker(num_vars)),
            None => AnyManager::new_private(num_vars),
        };
        RouteSpace {
            manager,
            atoms,
            tag_values,
            metric_values,
            comm_base,
            tag_base,
            metric_base,
            num_vars,
            canonical: None,
            matcher_cache: HashMap::new(),
            matcher_cache_lookups: 0,
            matcher_cache_hits: 0,
        }
    }

    /// Rule-cache counters `(lookups, hits)` — one lookup per
    /// [`RouteSpace::prefix_matcher_bdd`] call. The driver folds these into
    /// the report's [`campion_bdd::ManagerStats`].
    pub fn rule_cache_stats(&self) -> (u64, u64) {
        (self.matcher_cache_lookups, self.matcher_cache_hits)
    }

    /// The canonical-prefix constraint: address bits at positions ≥ the
    /// prefix length are zero (real advertisements carry canonical
    /// prefixes; without this, the space distinguishes phantom inputs that
    /// differ only in masked-out host bits). Encoded as
    /// `⋀ᵢ (addr bit i set → length > i)` together with `length ≤ 32`.
    pub fn canonical(&mut self) -> Bdd {
        if let Some(c) = self.canonical {
            return c;
        }
        let len_vars: Vec<u32> = LEN_VARS.collect();
        let mut acc = bits::le_const(&mut self.manager, &len_vars, 32);
        for i in (0..32u32).rev() {
            let bit = self.manager.var(i);
            let needs = bits::ge_const(&mut self.manager, &len_vars, u64::from(i) + 1);
            let implied = self.manager.ite(bit, needs, Bdd::TRUE);
            acc = self.manager.and(acc, implied);
        }
        // The cache is consulted for the lifetime of the space, so it must
        // survive any collection the driver runs between work phases.
        self.manager.protect(acc);
        self.canonical = Some(acc);
        acc
    }

    /// The community atoms in variable order.
    pub fn atoms(&self) -> &[AtomKey] {
        &self.atoms
    }

    /// Total variable count.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The valid-input constraint: canonical prefix with length ≤ 32,
    /// protocol is a real protocol, and the tag/metric one-hot fields carry
    /// at most one value.
    pub fn universe(&mut self) -> Bdd {
        let canon = self.canonical();
        let raw = self.universe_raw();
        self.manager.and(canon, raw)
    }

    /// The universe *without* the regex-language refinement of
    /// [`RouteSpace::universe`]'s atom constraints — used by the ablation
    /// harness to quantify how many spurious differences the refinement
    /// removes. (Canonicality and the one-hot field constraints are kept.)
    pub fn universe_without_regex_refinement(&mut self) -> Bdd {
        let canon = self.canonical();
        let len_vars: Vec<u32> = LEN_VARS.collect();
        let mut u = bits::le_const(&mut self.manager, &len_vars, 32);
        let proto_vars: Vec<u32> = PROTO_VARS.collect();
        let p = bits::le_const(&mut self.manager, &proto_vars, 4);
        u = self.manager.and(u, p);
        u = self.at_most_one(u, self.tag_base, self.tag_values.len());
        u = self.at_most_one(u, self.metric_base, self.metric_values.len());
        self.manager.and(u, canon)
    }

    /// The universe without the canonical-prefix constraint — the raw
    /// encoding actual Minesweeper-style checkers operate on (host bits
    /// beyond the length are unconstrained). Used by the baseline, whose
    /// concretization masks them anyway.
    pub fn universe_raw(&mut self) -> Bdd {
        let len_vars: Vec<u32> = LEN_VARS.collect();
        let mut u = bits::le_const(&mut self.manager, &len_vars, 32);
        let proto_vars: Vec<u32> = PROTO_VARS.collect();
        let p = bits::le_const(&mut self.manager, &proto_vars, 4);
        u = self.manager.and(u, p);
        u = self.at_most_one(u, self.tag_base, self.tag_values.len());
        u = self.at_most_one(u, self.metric_base, self.metric_values.len());
        u = self.regex_atom_constraints(u);
        u
    }

    /// Refine the unknown-regex atoms with language-level facts, so that
    /// semantically related regexes don't produce spurious differences:
    ///
    /// * a regex whose language is covered by the literal universe has no
    ///   unknown matches — its atom is pinned false;
    /// * when `L(R₁) ⊆ L(R₂) ∪ literals`, any unknown community matching
    ///   `R₁` also matches `R₂` — the atoms gain an implication. Equal
    ///   languages therefore get equivalent atoms.
    fn regex_atom_constraints(&mut self, mut u: Bdd) -> Bdd {
        let lits: Vec<String> = self
            .atoms
            .iter()
            .filter_map(|a| match a {
                AtomKey::Literal(c) => Some(c.to_string()),
                AtomKey::UnknownRegex(_) => None,
            })
            .collect();
        let regexes: Vec<(usize, String)> = self
            .atoms
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match a {
                AtomKey::UnknownRegex(r) => Some((i, r.clone())),
                AtomKey::Literal(_) => None,
            })
            .collect();
        let compiled: Vec<(usize, Regex)> = regexes
            .iter()
            .map(|(i, r)| (*i, Regex::new(r).expect("validated at lowering")))
            .collect();
        for (i, re) in &compiled {
            if !campion_net::regex_dfa::matches_beyond(re, &lits) {
                let nv = self.manager.nvar(self.comm_base + *i as u32);
                u = self.manager.and(u, nv);
            }
        }
        for (i, ri) in &compiled {
            for (j, rj) in &compiled {
                if i == j {
                    continue;
                }
                if campion_net::regex_dfa::language_subset_except(ri, rj, &lits) {
                    let a = self.manager.var(self.comm_base + *i as u32);
                    let b = self.manager.var(self.comm_base + *j as u32);
                    let implies = self.manager.implies(a, b);
                    u = self.manager.and(u, implies);
                }
            }
        }
        u
    }

    fn at_most_one(&mut self, mut acc: Bdd, base: u32, n: usize) -> Bdd {
        for i in 0..n {
            for j in (i + 1)..n {
                let a = self.manager.var(base + i as u32);
                let b = self.manager.var(base + j as u32);
                let both = self.manager.and(a, b);
                let not_both = self.manager.not(both);
                acc = self.manager.and(acc, not_both);
            }
        }
        acc
    }

    /// The unmodified-input symbolic state.
    pub fn initial_state(&mut self) -> SymbolicRoute {
        let comm = (0..self.atoms.len())
            .map(|i| self.manager.var(self.comm_base + i as u32))
            .collect();
        SymbolicRoute {
            comm,
            tag: FieldState::Input,
            metric: FieldState::Input,
        }
    }

    /// The set of (canonical) advertisements whose prefix is a member of
    /// `r`. The canonicality constraint is included so that range sets,
    /// path predicates and projections all live in the same subspace.
    pub fn prefix_range_bdd(&mut self, r: &PrefixRange) -> Bdd {
        let addr_vars: Vec<u32> = PREFIX_VARS.collect();
        let a = bits::prefix_const(
            &mut self.manager,
            &addr_vars,
            r.prefix.bits(),
            r.prefix.len(),
        );
        let len_vars: Vec<u32> = LEN_VARS.collect();
        let l = bits::range_const(
            &mut self.manager,
            &len_vars,
            u64::from(r.min_len),
            u64::from(r.max_len),
        );
        let range = self.manager.and(a, l);
        let canon = self.canonical();
        self.manager.and(range, canon)
    }

    /// First-match fold of an ordered permit/deny prefix matcher. Memoized
    /// on the matcher's canonical entry list (see `matcher_cache`).
    pub fn prefix_matcher_bdd(&mut self, pm: &PrefixMatcher) -> Bdd {
        let key: Vec<(bool, PrefixRange)> =
            pm.entries.iter().map(|e| (e.permit, e.range)).collect();
        self.matcher_cache_lookups += 1;
        if let Some(&b) = self.matcher_cache.get(&key) {
            self.matcher_cache_hits += 1;
            return b;
        }
        let mut result = Bdd::FALSE;
        // Fold from the last entry backwards: earlier entries shadow later.
        for e in pm.entries.iter().rev() {
            let cond = self.prefix_range_bdd(&e.range);
            let val = if e.permit { Bdd::TRUE } else { Bdd::FALSE };
            result = self.manager.ite(cond, val, result);
        }
        self.manager.protect(result);
        self.matcher_cache.insert(key, result);
        result
    }

    /// Truth function of one community atom under the current state.
    fn atom_bdd(&mut self, atom: &CommAtom, state: &SymbolicRoute) -> Bdd {
        match atom {
            CommAtom::Literal(c) => {
                match self.atom_index(&AtomKey::Literal(*c)) {
                    Some(i) => state.comm[i],
                    // A literal outside the universe (can only happen for
                    // adverts synthesized by tests): never present.
                    None => Bdd::FALSE,
                }
            }
            CommAtom::Regex(pat) => {
                let re = Regex::new(pat).expect("validated at lowering");
                let mut acc = Bdd::FALSE;
                for (i, key) in self.atoms.clone().iter().enumerate() {
                    let hit = match key {
                        AtomKey::Literal(c) => re.is_match(&c.to_string()),
                        AtomKey::UnknownRegex(r) => r == pat,
                    };
                    if hit {
                        acc = self.manager.or(acc, state.comm[i]);
                    }
                }
                acc
            }
        }
    }

    fn atom_index(&self, key: &AtomKey) -> Option<usize> {
        self.atoms.iter().position(|a| a == key)
    }

    /// Encode one match condition under the current symbolic state.
    pub fn match_bdd(&mut self, m: &Match, state: &SymbolicRoute) -> Bdd {
        match m {
            Match::Prefix(pms) => {
                let mut acc = Bdd::FALSE;
                for pm in pms {
                    let b = self.prefix_matcher_bdd(pm);
                    acc = self.manager.or(acc, b);
                }
                acc
            }
            Match::Community(cms) => {
                let mut acc = Bdd::FALSE;
                for cm in cms {
                    let b = match &cm.dialect {
                        CommunityDialect::CiscoList(entries) => {
                            let mut result = Bdd::FALSE;
                            for (permit, atoms, _) in entries.iter().rev() {
                                let mut conj = Bdd::TRUE;
                                for a in atoms {
                                    let ab = self.atom_bdd(a, state);
                                    conj = self.manager.and(conj, ab);
                                }
                                let val = if *permit { Bdd::TRUE } else { Bdd::FALSE };
                                result = self.manager.ite(conj, val, result);
                            }
                            result
                        }
                        CommunityDialect::JunosMembers(atoms) => {
                            let mut conj = Bdd::TRUE;
                            for a in atoms {
                                let ab = self.atom_bdd(a, state);
                                conj = self.manager.and(conj, ab);
                            }
                            conj
                        }
                    };
                    acc = self.manager.or(acc, b);
                }
                acc
            }
            Match::Tag(t) => self.scalar_eq(state.tag, *t, self.tag_base, &self.tag_values.clone()),
            Match::Metric(v) => self.scalar_eq(
                state.metric,
                *v,
                self.metric_base,
                &self.metric_values.clone(),
            ),
            Match::Protocol(ps) => {
                let proto_vars: Vec<u32> = PROTO_VARS.collect();
                let mut acc = Bdd::FALSE;
                for p in ps {
                    let e = bits::eq_const(&mut self.manager, &proto_vars, proto_code(*p));
                    acc = self.manager.or(acc, e);
                }
                acc
            }
        }
    }

    fn scalar_eq(&mut self, state: FieldState, wanted: u32, base: u32, values: &[u32]) -> Bdd {
        match state {
            FieldState::Const(c) => {
                if c == wanted {
                    Bdd::TRUE
                } else {
                    Bdd::FALSE
                }
            }
            FieldState::Input => match values.iter().position(|v| *v == wanted) {
                Some(i) => self.manager.var(base + i as u32),
                None => Bdd::FALSE,
            },
        }
    }

    /// Apply a clause's set actions to the symbolic state.
    pub fn apply_sets(&mut self, state: &mut SymbolicRoute, sets: &[SetAction]) {
        for s in sets {
            match s {
                SetAction::Tag(t) => state.tag = FieldState::Const(*t),
                SetAction::Metric(v) => state.metric = FieldState::Const(*v),
                SetAction::CommunitySet(cs) => {
                    for (i, key) in self.atoms.clone().iter().enumerate() {
                        state.comm[i] = match key {
                            AtomKey::Literal(c) if cs.contains(c) => Bdd::TRUE,
                            _ => Bdd::FALSE,
                        };
                    }
                }
                SetAction::CommunityAdd(cs) => {
                    for c in cs {
                        if let Some(i) = self.atom_index(&AtomKey::Literal(*c)) {
                            state.comm[i] = Bdd::TRUE;
                        }
                    }
                }
                SetAction::CommunityDelete(atoms) => {
                    let regexes: Vec<Regex> = atoms
                        .iter()
                        .filter_map(|a| match a {
                            CommAtom::Regex(p) => Some(Regex::new(p).expect("validated")),
                            CommAtom::Literal(_) => None,
                        })
                        .collect();
                    for (i, key) in self.atoms.clone().iter().enumerate() {
                        let deleted = match key {
                            AtomKey::Literal(c) => {
                                atoms.contains(&CommAtom::Literal(*c))
                                    || regexes.iter().any(|r| r.is_match(&c.to_string()))
                            }
                            AtomKey::UnknownRegex(r) => {
                                // Deleting by the same pattern removes the
                                // unknown matches; other patterns may or may
                                // not overlap — keep them (overapproximate).
                                atoms
                                    .iter()
                                    .any(|a| matches!(a, CommAtom::Regex(p) if p == r))
                            }
                        };
                        if deleted {
                            state.comm[i] = Bdd::FALSE;
                        }
                    }
                }
                // The remaining sets touch attributes no match can read.
                SetAction::LocalPref(_) | SetAction::Weight(_) | SetAction::NextHop(_) => {}
            }
        }
    }

    /// Project a predicate onto the prefix dimensions (address + length),
    /// existentially quantifying protocol, community, tag and metric vars.
    pub fn project_to_prefix(&mut self, f: Bdd) -> Bdd {
        let vars: Vec<u32> = (PROTO_VARS.start..self.num_vars).collect();
        self.manager.exists(f, &vars)
    }

    /// Decode a satisfying assignment into a human-readable example.
    pub fn concretize(&self, a: &Assignment) -> RouteExample {
        let addr = a.decode_be(PREFIX_VARS) as u32;
        let len = (a.decode_be(LEN_VARS) as u8).min(32);
        let prefix = Prefix::new(std::net::Ipv4Addr::from(addr), len);
        let protocol = proto_from_code(a.decode_be(PROTO_VARS));
        let mut communities = Vec::new();
        for (i, key) in self.atoms.iter().enumerate() {
            if a.get(self.comm_base + i as u32) {
                communities.push(key.clone());
            }
        }
        let tag = self
            .tag_values
            .iter()
            .enumerate()
            .find(|(i, _)| a.get(self.tag_base + *i as u32))
            .map(|(_, v)| *v);
        let metric = self
            .metric_values
            .iter()
            .enumerate()
            .find(|(i, _)| a.get(self.metric_base + *i as u32))
            .map(|(_, v)| *v);
        RouteExample {
            prefix,
            protocol,
            communities,
            tag,
            metric,
        }
    }
}

/// A decoded example advertisement for reports (Campion prints one concrete
/// example for non-prefix fields — Table 2(b)'s `Community: 10:10` row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteExample {
    /// The advertised prefix.
    pub prefix: Prefix,
    /// Source protocol.
    pub protocol: RouteProtocol,
    /// Communities carried (atoms; unknown-regex atoms print descriptively).
    pub communities: Vec<AtomKey>,
    /// Tag, when one of the known values is set.
    pub tag: Option<u32>,
    /// Metric, when one of the known values is set.
    pub metric: Option<u32>,
}

impl fmt::Display for RouteExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix)?;
        if !self.communities.is_empty() {
            let cs: Vec<String> = self.communities.iter().map(|c| c.to_string()).collect();
            write!(f, " communities: {}", cs.join(", "))?;
        }
        if let Some(t) = self.tag {
            write!(f, " tag: {t}")?;
        }
        if let Some(m) = self.metric {
            write!(f, " metric: {m}")?;
        }
        Ok(())
    }
}
